"""Crash tolerance: journal, checkpoint/restore, deterministic recovery."""

import json

import pytest

from repro.chaos.schedule import (
    ControllerCrashConfig,
    FaultKind,
    generate_controller_crashes,
)
from repro.core.engine import EngineConfig
from repro.elastic import ElasticConfig, ElasticController
from repro.elastic.hysteresis import HysteresisState
from repro.experiments.controller_crash import run_once
from repro.experiments.harness import (
    REPLAY_HEADROOM,
    TOPOLOGY_DEMAND_MBPS,
    standard_setup,
)
from repro.resilience import (
    CHECKPOINT,
    COMMIT,
    INTENT,
    SHUTDOWN,
    FileJournal,
    MemoryJournal,
    recover,
)
from repro.resilience.checkpoint import capture
from repro.resilience.journal import KINDS, record_id
from repro.sim.kernel import Simulator
from repro.southbound import SouthboundFabric
from repro.tenancy import (
    CreateChain,
    DeleteChain,
    ScaleChain,
    TenantOrchestrator,
    UpdateRates,
)
from repro.tenancy.bus import IntentBus
from repro.tenancy.intents import intent_from_payload, intent_to_payload
from repro.topology.datasets import internet2

SEED = 3


# ---------------------------------------------------------------------------
# Journal backends
# ---------------------------------------------------------------------------
def test_journal_append_derives_seeded_ids():
    journal = MemoryJournal(seed=7)
    a = journal.append(INTENT, {"seq": 0}, time=1.0)
    b = journal.append(COMMIT, {"seq": 0}, time=2.0)
    assert a.index == 0 and b.index == 1
    assert a.record_id == record_id(7, 0, INTENT)
    assert b.record_id == record_id(7, 1, COMMIT)
    assert journal.kind_counts() == {INTENT: 1, COMMIT: 1}
    assert journal.of_kind(COMMIT) == [b]


def test_journal_rejects_unknown_kind():
    journal = MemoryJournal()
    with pytest.raises(ValueError, match="unknown journal record kind"):
        journal.append("nonsense", {})


def test_journal_signature_is_seed_deterministic():
    def build(seed):
        j = MemoryJournal(seed=seed)
        for i, kind in enumerate(KINDS):
            j.append(kind, {"i": i}, time=float(i))
        return j

    assert build(5).signature() == build(5).signature()
    assert build(5).signature() != build(6).signature()


def test_last_checkpoint_returns_most_recent():
    journal = MemoryJournal()
    assert journal.last_checkpoint() is None
    journal.append(CHECKPOINT, {"n": 1})
    journal.append(INTENT, {"seq": 0})
    latest = journal.append(CHECKPOINT, {"n": 2})
    journal.append(COMMIT, {"seq": 0})
    assert journal.last_checkpoint() is latest


def test_file_journal_round_trips(tmp_path):
    path = tmp_path / "wal.jsonl"
    journal = FileJournal(path, seed=11)
    journal.append(INTENT, {"seq": 0, "cookie": "abc"}, time=0.5)
    journal.append(COMMIT, {"seq": 0, "status": "completed"}, time=1.5)

    loaded = FileJournal.load(path)
    assert loaded.seed == 11
    assert [r.to_dict() for r in loaded] == [r.to_dict() for r in journal]
    assert loaded.signature() == journal.signature()


def test_file_journal_load_rejects_corruption(tmp_path):
    path = tmp_path / "wal.jsonl"
    journal = FileJournal(path, seed=11)
    journal.append(INTENT, {"seq": 0}, time=0.5)
    lines = path.read_text().splitlines()
    rec = json.loads(lines[1])
    rec["record_id"] = "0" * 12
    path.write_text("\n".join([lines[0], json.dumps(rec)]) + "\n")
    with pytest.raises(ValueError, match="corrupt or wrong-seed"):
        FileJournal.load(path)

    bad_header = tmp_path / "bad.jsonl"
    bad_header.write_text(json.dumps({"schema": "not-a-wal"}) + "\n")
    with pytest.raises(ValueError, match="header"):
        FileJournal.load(bad_header)


# ---------------------------------------------------------------------------
# Intent codec + idempotency cookies
# ---------------------------------------------------------------------------
def test_intent_payload_round_trips_every_kind():
    intents = [
        CreateChain(
            "t0", chain_id="c0", src="ATLA", dst="STTL",
            chain=("firewall", "ids"), rate_mbps=123.456789, slo="gold",
        ),
        UpdateRates("t0", rates=(("c0", 250.5), ("c1", 80.25))),
        ScaleChain("t0", chain_id="c0", factor=1.5),
        DeleteChain("t0", chain_id="c0"),
    ]
    for intent in intents:
        clone = intent_from_payload(intent_to_payload(intent))
        assert clone == intent, intent.kind


def test_bus_cookies_are_seed_deterministic():
    def cookies(seed):
        sim = Simulator(seed=seed)
        bus = IntentBus(sim, seed=seed)
        bus.subscribe(lambda record: None)
        return [
            bus.submit(ScaleChain("t0", chain_id="c0", factor=2.0)).cookie
            for _ in range(3)
        ]

    assert cookies(4) == cookies(4)
    assert cookies(4) != cookies(5)


def test_bus_journals_intent_before_delivery():
    sim = Simulator(seed=0)
    journal = MemoryJournal(seed=0)
    bus = IntentBus(sim, seed=0, journal=journal)
    delivered = []
    bus.subscribe(delivered.append)
    record = bus.submit(DeleteChain("t0", chain_id="c0"), delay=1.0)
    # Write-ahead: journaled at submit time, delivered only when sim runs.
    assert len(journal) == 1 and not delivered
    entry = journal.records[0]
    assert entry.kind == INTENT
    assert entry.payload["cookie"] == record.cookie
    assert intent_from_payload(entry.payload["intent"]) == record.intent
    sim.run(until=2.0)
    assert delivered == [record]


# ---------------------------------------------------------------------------
# Checkpoint capture
# ---------------------------------------------------------------------------
def test_checkpoint_capture_shape():
    out = run_once(2, 0, SEED)
    journal = out.journal
    checkpoints = journal.of_kind(CHECKPOINT)
    assert checkpoints, "periodic checkpoints never fired"
    snap = checkpoints[-1].payload
    for key in ("time", "seq", "terminal_cookies", "arbiter", "workers"):
        assert key in snap
    all_cookies = {r.payload["cookie"] for r in journal.of_kind(INTENT)}
    assert set(snap["terminal_cookies"]) <= all_cookies
    for worker_snap in snap["workers"].values():
        assert set(worker_snap) == {
            "slo", "ops_completed", "chains", "versions", "epoch",
            "converged_epoch",
        }


# ---------------------------------------------------------------------------
# Crash → recover → bit-identical end state
# ---------------------------------------------------------------------------
def _crash_event(t, downtime=1.0):
    from repro.chaos.schedule import FaultEvent

    return FaultEvent(
        time=t, kind=FaultKind.CONTROLLER_CRASH,
        target="controller", duration=downtime,
    )


def test_crash_recovery_matches_never_crashed_run():
    base = run_once(3, 0, SEED)
    out = run_once(3, 0, SEED, events=(_crash_event(6.5),))
    assert out.signature == base.signature
    # Intent latencies are the one legitimate difference: a replayed
    # intent's submit→converged span includes the outage.  Everything
    # else in the summary must match exactly.
    drop = ("latency_p50", "latency_p99")
    assert {k: v for k, v in out.summary.items() if k not in drop} == {
        k: v for k, v in base.summary.items() if k not in drop
    }
    assert out.downtime_pv_seconds == 0
    assert out.pv_seconds == 0
    assert len(out.recoveries) == 1
    assert out.recoveries[0].caught_up_at is not None


def test_crash_recovery_is_exactly_once():
    """An intent committed after the checkpoint re-executes; one committed
    before it never double-applies — terminal outcome counts match."""
    base = run_once(3, 0, SEED)
    # Crash late enough that some intents are terminal both before and
    # after the restored checkpoint.
    out = run_once(3, 0, SEED, events=(_crash_event(14.0),))
    assert out.recoveries[0].skipped > 0, "no intent was terminal at checkpoint"
    assert out.recoveries[0].replayed > 0, "nothing was replayed"
    assert out.summary["completed"] == base.summary["completed"]
    assert out.summary["failed"] == base.summary["failed"]
    assert out.signature == base.signature


def _small_world(seed=SEED):
    topo = internet2(default_host_cores=192)
    sim = Simulator(seed=seed)
    orch = TenantOrchestrator(topo, sim, seed=seed)
    journal = MemoryJournal(seed=seed)
    orch.attach_journal(journal, checkpoint_interval=4.0)
    orch.start()
    orch.submit(
        CreateChain(
            "t0", chain_id="c0", src="ATLA", dst="STTL",
            chain=("firewall", "ids"), rate_mbps=300.0, slo="gold",
        ),
        delay=0.5,
    )
    orch.submit(ScaleChain("t0", chain_id="c0", factor=2.0), delay=6.0)
    orch.submit(UpdateRates("t0", rates=(("c0", 150.0),)), delay=9.0)
    return topo, sim, orch, journal


def _baseline_signature():
    _, sim, orch, _ = _small_world()
    sim.run(until=20.0)
    orch.stop()
    return orch.state_signature()


def test_recovery_without_harvest_rebuilds_the_wire():
    """No surviving switch state (harvest=None): the wire is rebuilt from
    regenerated rules and recovery still converges bit-identically."""
    topo, sim, orch, journal = _small_world()
    sim.run(until=7.0)
    orch.crash()  # harvest discarded — only the journal survives
    sim.run(until=8.0)
    recovered, report = recover(
        journal, topo, sim, seed=SEED, harvest=None, checkpoint_interval=4.0
    )
    assert report.tenants_rebuilt == 1 and report.tenants_restored == 0
    sim.run(until=20.0)
    recovered.stop()
    assert recovered.total_drift() == 0
    assert recovered.state_signature() == _baseline_signature()


def test_dead_controller_is_fully_frozen():
    """After crash() no control-plane actor makes progress: channels drop
    every queued delivery, timers are dead, ops stop applying."""
    topo, sim, orch, journal = _small_world()
    sim.run(until=6.2)  # mid scale push
    worker = orch.workers["t0"]
    assert worker.fabric is not None
    records_before = len(journal)
    checkpoints_before = orch.checkpoints_taken
    ops_before = {
        sw: ch.agent.ops_applied for sw, ch in worker.fabric.channels.items()
    }
    orch.crash()
    sim.run(until=12.0)
    assert len(journal) == records_before, "dead controller kept journaling"
    assert orch.checkpoints_taken == checkpoints_before
    for sw, ch in worker.fabric.channels.items():
        assert ch.agent.ops_applied == ops_before[sw], f"{sw} applied ops"


def test_graceful_shutdown_then_recover_is_lossless():
    """stop() journals the drain: a pending intent survives stop→start."""
    topo, sim, orch, journal = _small_world()
    sim.run(until=7.0)  # the t=9 UpdateRates is still pending
    harvest = orch.shutdown()
    drains = journal.of_kind(SHUTDOWN)
    assert len(drains) == 1
    assert drains[0].payload["pending_seqs"] == [2]
    sim.run(until=8.0)
    recovered, _ = recover(
        journal, topo, sim, seed=SEED, harvest=harvest, checkpoint_interval=4.0
    )
    sim.run(until=20.0)
    recovered.stop()
    assert recovered.waiting_intents() == 0
    assert recovered.state_signature() == _baseline_signature()


# ---------------------------------------------------------------------------
# Elastic-loop control state
# ---------------------------------------------------------------------------
def test_elastic_checkpoint_state_round_trips():
    topo, controller, series = standard_setup(
        "internet2",
        snapshots=1,
        seed=0,
        demand_mbps=TOPOLOGY_DEMAND_MBPS["internet2"],
        engine_config=EngineConfig(capacity_headroom=REPLAY_HEADROOM),
    )
    sim = Simulator()
    deployment = controller.run(series.snapshots[0], sim=sim)
    fabric = SouthboundFabric(
        sim, deployment.network, 0, controller.rule_generator
    )
    controller.attach_southbound(fabric)
    loop = ElasticController(
        sim, controller, fabric, lambda now: {},
        config=ElasticConfig(enabled=False),
    )
    loop.state = HysteresisState(above=3, below=1)
    loop.shed_ids = {"z", "a"}
    loop.degraded_caps = {"a": 0.5}
    snap = json.loads(json.dumps(loop.checkpoint_state()))  # JSON-safe
    assert snap["shed_ids"] == ["a", "z"]

    other = ElasticController(
        sim, controller, fabric, lambda now: {},
        config=ElasticConfig(enabled=False),
    )
    other.restore_state(snap)
    assert other.state.above == 3 and other.state.below == 1
    assert other.shed_ids == {"a", "z"}
    assert other.degraded_caps == {"a": 0.5}
    assert other._pending is None
    assert other.checkpoint_state() == loop.checkpoint_state()


# ---------------------------------------------------------------------------
# Crash schedule generation
# ---------------------------------------------------------------------------
def test_controller_crash_schedule_is_deterministic():
    config = ControllerCrashConfig(crashes=4)
    a = generate_controller_crashes(config, 9)
    b = generate_controller_crashes(config, 9)
    c = generate_controller_crashes(config, 10)
    assert a.signature() == b.signature()
    assert a.signature() != c.signature()
    assert len(a) == 4
    for ev in a:
        assert ev.kind is FaultKind.CONTROLLER_CRASH
        assert ev.target == "controller"
        lo, hi = config.downtime
        assert lo <= ev.duration <= hi


def test_controller_crashes_never_overlap():
    config = ControllerCrashConfig(crashes=6, window=(5.0, 10.0))
    for seed in range(5):
        events = sorted(
            generate_controller_crashes(config, seed), key=lambda e: e.time
        )
        for earlier, later in zip(events, events[1:]):
            assert later.time >= earlier.time + earlier.duration, (
                f"seed {seed}: crash at {later.time} lands inside the "
                f"downtime of the crash at {earlier.time}"
            )


def test_controller_crash_window_validation():
    with pytest.raises(ValueError, match="window end precedes"):
        generate_controller_crashes(
            ControllerCrashConfig(window=(10.0, 5.0)), 0
        )
