"""Property tests for the elastic loop (hypothesis).

Two invariants the paper's operators care about:

1. **No flapping.** If every scale action re-plans capacity so that the
   post-action utilization sits at the hysteresis target (which is inside
   the dead band by construction), then a scale-out can never be followed
   by a scale-in while the offered load is unchanged — and vice versa.
2. **Strict cheapest-first shedding.** The set of shed classes is always
   a prefix of ``shed_order``: if a class was shed, every cheaper class
   (lower SLO weight, then lower offered rate, then class id) was shed
   too, and at most one class — the next one in order — is degraded.
"""

from hypothesis import given, settings, strategies as st

from repro.elastic.admission import DEGRADE, SHED, admission_control, shed_order
from repro.elastic.hysteresis import (
    HOLD,
    SCALE_IN,
    SCALE_OUT,
    HysteresisConfig,
    HysteresisState,
    decide,
)
from repro.elastic.slo import SLO_CLASSES


@st.composite
def configs(draw):
    low = draw(st.floats(min_value=0.05, max_value=0.5))
    target = draw(st.floats(min_value=low + 0.05, max_value=0.8))
    high = draw(st.floats(min_value=target + 0.05, max_value=0.99))
    return HysteresisConfig(
        high_watermark=high,
        low_watermark=low,
        target_utilization=target,
        up_dwell=draw(st.integers(min_value=1, max_value=4)),
        down_dwell=draw(st.integers(min_value=1, max_value=6)),
    )


@settings(max_examples=200, deadline=None)
@given(
    config=configs(),
    loads=st.lists(
        st.floats(min_value=1.0, max_value=10_000.0), min_size=1, max_size=40
    ),
)
def test_no_flap_under_target_replanning(config, loads):
    """Model the closed loop: each action re-sizes capacity so that the
    current load lands exactly at the target utilization.  With the
    target strictly inside the dead band, the very next tick on the SAME
    load must HOLD — an out can never be chased by an in (or repeat)."""
    capacity = loads[0] / config.target_utilization
    state = HysteresisState()
    last_action = None
    for load in loads:
        action, state = decide(config, state, load / capacity)
        if action != HOLD:
            # Flap check: an action immediately after another action can
            # only happen if the load moved; we verify the stronger form
            # below by re-ticking on the unchanged load.
            capacity = load / config.target_utilization
            after, _ = decide(config, state, load / capacity)
            assert after == HOLD, (
                f"{action} at load {load} was immediately followed by "
                f"{after} with no load change"
            )
            last_action = action
    assert last_action in (None, SCALE_OUT, SCALE_IN)


@settings(max_examples=200, deadline=None)
@given(
    rates=st.lists(
        st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=8
    ),
    slo_names=st.lists(st.sampled_from(sorted(SLO_CLASSES)), min_size=8, max_size=8),
    budget_fraction=st.floats(min_value=0.0, max_value=1.2),
)
def test_shedding_is_strictly_cheapest_first(rates, slo_names, budget_fraction):
    offered = {f"c{i}": r for i, r in enumerate(rates)}
    slo = {cid: SLO_CLASSES[slo_names[i]] for i, cid in enumerate(offered)}
    budget = budget_fraction * sum(offered.values())
    plan = admission_control(
        sorted(offered),
        offered,
        slo,
        lambda admitted: sum(admitted.values()) <= budget,
    )
    order = shed_order(sorted(offered), offered, slo)
    verdicts = {d.class_id: d.action for d in plan.decisions}
    shed = [cid for cid in order if verdicts[cid] == SHED]
    degraded = [cid for cid in order if verdicts[cid] == DEGRADE]
    # Shed set is a prefix of the canonical victim order.
    assert shed == order[: len(shed)]
    # At most one degraded class, and it is the next victim in order.
    assert len(degraded) <= 1
    if degraded:
        assert order.index(degraded[0]) == len(shed)
    # A feasible plan really is feasible under the oracle's own bound.
    if plan.feasible:
        assert sum(plan.admitted_rates().values()) <= budget + 1e-9
