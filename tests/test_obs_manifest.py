"""Tests for run manifests, BENCH entries, and the validation CLI."""

import json

import pytest

from repro import obs
from repro.obs.manifest import (
    BENCH_SCHEMA,
    RUN_SCHEMA,
    bench_entry,
    build_manifest,
    git_sha,
    machine_info,
    validate_bench_entry,
    validate_manifest,
    write_json,
)
from repro.obs.validate import classify_and_validate, main as validate_main


@pytest.fixture
def manifest():
    return build_manifest(
        experiments=[
            {"experiment": "failure-recovery", "rows": 1, "columns": 15,
             "elapsed_seconds": 0.4}
        ],
        argv=["failure-recovery", "--seed", "7", "--trace"],
        seed=7,
        config={"quick": True, "jobs": 1, "batch": 1,
                "experiments": ["failure-recovery"]},
        metrics={},
        wall_seconds=0.41,
        trace_file="trace.json",
    )


def test_build_manifest_validates(manifest):
    assert manifest["schema"] == RUN_SCHEMA
    assert validate_manifest(manifest) == []
    assert manifest["seed"] == 7
    assert manifest["trace_file"] == "trace.json"


def test_manifest_provenance_fields(manifest):
    assert len(manifest["git_sha"]) == 40 or manifest["git_sha"] == "unknown"
    for key in ("platform", "python", "cpus"):
        assert key in manifest["machine"]


def test_validate_manifest_catches_problems(manifest):
    assert validate_manifest([]) == ["manifest must be a JSON object"]
    bad = dict(manifest)
    bad["schema"] = "nope"
    del bad["seed"]
    bad["experiments"] = [{"rows": "x"}]
    errors = validate_manifest(bad)
    assert any("schema" in e for e in errors)
    assert any("seed" in e for e in errors)
    assert any("experiments[0]" in e for e in errors)


def test_bench_entry_unified_schema():
    entry = bench_entry("engine_warm", {"solves": 10, "seconds": 0.5})
    assert entry["schema"] == BENCH_SCHEMA
    assert validate_bench_entry(entry) == []
    # Pre-unification entries (no schema tag) stay valid.
    legacy = {k: v for k, v in entry.items() if k != "schema"}
    assert validate_bench_entry(legacy) == []
    legacy["schema"] = "wrong"
    assert validate_bench_entry(legacy) != []


def test_git_sha_and_machine_info_shapes():
    sha = git_sha()
    assert isinstance(sha, str) and sha
    info = machine_info()
    assert set(info) == {"platform", "python", "cpus"}


def test_classify_and_validate_sniffing(manifest):
    assert classify_and_validate(manifest)[0] == "run-manifest"
    assert classify_and_validate({"traceEvents": []})[0] == "chrome-trace"
    entry = bench_entry("x", {})
    kind, errors = classify_and_validate([entry])
    assert (kind, errors) == ("bench-trajectory", [])
    kind, errors = classify_and_validate({"what": "ever"})
    assert kind == "unknown" and errors


def test_validate_cli(tmp_path, manifest, capsys):
    good = tmp_path / "run.json"
    write_json(good, manifest)
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": RUN_SCHEMA}))
    missing = tmp_path / "missing.json"

    assert validate_main([str(good)]) == 0
    assert validate_main([str(good), str(bad)]) == 1
    assert validate_main([str(missing)]) == 1
    assert validate_main([]) == 2
    out = capsys.readouterr().out
    assert "ok" in out and "FAIL" in out


def test_cli_trace_run_emits_valid_artifacts(tmp_path):
    """End to end: --trace writes a valid trace + manifest (quick config)."""
    from repro.experiments.cli import main as cli_main

    trace = tmp_path / "t.json"
    manifest = tmp_path / "r.json"
    try:
        rc = cli_main(
            ["failure-recovery", "--quick", "--seed", "7",
             "--trace", str(trace), "--manifest", str(manifest)]
        )
        assert rc == 0
        assert validate_main([str(trace), str(manifest)]) == 0
        run = json.loads(manifest.read_text())
        assert run["seed"] == 7
        assert run["config"]["experiments"] == ["failure-recovery"]
        assert run["experiments"][0]["experiment"] == "failure-recovery"
        # The metric snapshot made it into the manifest.
        assert run["metrics"]["chaos_faults_injected_total"]["series"]
        trace_obj = json.loads(trace.read_text())
        names = {e["name"] for e in trace_obj["traceEvents"]}
        assert any(n.startswith("fault:") for n in names)
    finally:
        obs.disable()
        obs.reset()
