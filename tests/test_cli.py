"""Tests for the experiments command-line interface."""

import pytest

from repro.experiments.cli import _QUICKABLE, EXPERIMENTS, main
from repro.experiments.harness import display_name, normalize_name


def test_all_experiments_registered():
    expected = {
        "table1", "table4", "table5",
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        "packet_replay", "failure_recovery", "failure_sweep",
        "southbound_chaos", "scale_sweep", "multi_tenant", "flash_crowd",
        "controller_crash",
    }
    assert set(EXPERIMENTS) == expected
    assert _QUICKABLE <= set(EXPERIMENTS)


def test_name_normalization_single_source():
    """harness.normalize_name is THE hyphen/underscore folding point."""
    assert normalize_name("failure-recovery") == "failure_recovery"
    assert normalize_name("failure_recovery") == "failure_recovery"
    assert normalize_name("  Packet-Replay ") == "packet_replay"
    assert normalize_name("southbound-chaos") == "southbound_chaos"
    assert display_name("failure_recovery") == "failure-recovery"
    assert display_name("southbound_chaos") == "southbound-chaos"
    assert display_name("fig12") == "fig12"
    # Every registry key round-trips through both spellings.
    for key in EXPERIMENTS:
        assert normalize_name(display_name(key)) == key


def test_help_text_uses_hyphenated_names(capsys):
    """The CLI help and EXPERIMENTS.md agree: hyphenated display names
    everywhere, with normalize_name as the single folding point."""
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    # Every multi-word experiment appears in hyphenated form...
    for key in EXPERIMENTS:
        assert display_name(key) in out
    # ...and no underscored registry key leaks into the help text.
    for key in EXPERIMENTS:
        if "_" in key:
            assert key not in out, f"underscored name {key!r} leaked into --help"
    assert "normalize_name" in out  # the documented folding point


def test_cli_accepts_hyphenated_names(capsys):
    # failure-recovery and failure_recovery are the same experiment.
    assert main(["failure-recovery", "--quick", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "failure-recovery" in out
    assert "seed 2" in out


def test_cli_runs_subset(capsys):
    assert main(["table1", "table4"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out and "Table IV" in out
    assert "Fig. 6" not in out


def test_cli_quick_flag(capsys):
    assert main(["fig9", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "overload-detected" in out


def test_cli_output_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["table4", "--output", str(target)]) == 0
    text = target.read_text()
    assert text.startswith("# APPLE reproduction")
    assert "VNF data sheets" in text


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["not-an-experiment"])


def test_module_entry_point():
    import repro.__main__  # importable without running

    from repro.experiments import cli

    assert repro.__main__.main is cli.main
