"""The repo's Markdown cross-references stay unbroken (tools/check_links.py)."""

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_links  # noqa: E402


def test_github_slug():
    assert check_links.github_slug("Quick start") == "quick-start"
    assert check_links.github_slug("Run manifests (`run.json`, schema `apple-run/v1`)") == (
        "run-manifests-runjson-schema-apple-runv1"
    )
    assert check_links.github_slug("Fig. 12 — loss") == "fig-12--loss"


def test_checker_flags_broken_links(tmp_path, monkeypatch):
    (tmp_path / "a.md").write_text("# A\n[ok](b.md)\n[bad](missing.md)\n")
    (tmp_path / "b.md").write_text("# B heading\n[anchor](a.md#a)\n[bad](a.md#nope)\n")
    monkeypatch.setattr(check_links, "ROOT", tmp_path)
    assert check_links.main([]) == 1
    problems = check_links.check_file(tmp_path / "a.md")
    assert [p[0] for p in problems] == ["missing.md"]
    problems = check_links.check_file(tmp_path / "b.md")
    assert [p[0] for p in problems] == ["a.md#nope"]


def test_code_fences_are_skipped(tmp_path):
    md = tmp_path / "c.md"
    md.write_text("# C\n```\n[not a link](nowhere.md)\n```\n")
    assert check_links.check_file(md) == []


def test_repo_docs_have_no_broken_links(capsys):
    """The real check CI runs — every *.md and docs/ link resolves."""
    rc = check_links.main([])
    out = capsys.readouterr().out
    assert rc == 0, f"broken markdown links:\n{out}"


@pytest.mark.parametrize("doc", ["ARCHITECTURE.md", "OBSERVABILITY.md"])
def test_docs_linked_from_readme(doc):
    readme = (Path(__file__).parent.parent / "README.md").read_text()
    assert f"docs/{doc}" in readme, f"README.md must link docs/{doc}"
