"""The resilient southbound channel: acks, retries, transactions, fabric.

Four layers of coverage, bottom up:

* channel semantics — exactly-once application (idempotency cookies),
  epoch fencing, retry/backoff on loss, circuit breaker over a
  disconnect, and the single-source 70 ms install latency;
* transaction phasing — the three-phase make-before-break state machine
  and its per-phase failure outcomes (rollback / failed / partial /
  superseded);
* fabric lifecycle — adopt-is-a-no-op, acked pushes, and the
  anti-entropy reconciler repairing injected drift;
* run-level determinism — same-seed southbound-chaos runs are
  bit-identical, and control-plane chaos never perturbs an existing
  data-plane fault schedule (independent substreams).
"""

import pytest

from repro.chaos import ChaosConfig, ChaosEngine, FaultKind, generate_schedule
from repro.chaos.recovery import RecoveryConfig
from repro.cloud.opendaylight import RULE_INSTALL_SECONDS
from repro.core.controller import AppleController
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.switch import host_match_entry
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRNG, derive
from repro.southbound import (
    ChannelConfig,
    SouthboundChaosConfig,
    SouthboundFabric,
    generate_southbound_schedule,
)
from repro.southbound.channel import RESULT_FAILED, ControlChannel, SwitchAgent
from repro.southbound.config import SOUTHBOUND_STREAM
from repro.southbound.messages import (
    ACK_APPLIED,
    ACK_DUPLICATE,
    ACK_STALE,
    ControlMessage,
    entry_spec,
)
from repro.southbound.metrics import SouthboundMetrics
from repro.southbound.state import SwitchDiff, read_installed
from repro.southbound.transaction import Transaction
from repro.topology.datasets import internet2
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS

SEED = 7


# ----------------------------------------------------------------------
# Channel semantics (one switch, real agent, real sim)
# ----------------------------------------------------------------------
def _tiny_network() -> DataPlaneNetwork:
    topo = Topology(
        "line",
        ["a", "b", "c"],
        [Link("a", "b"), Link("b", "c")],
        hosts={"b": AppleHostSpec(cores=8)},
    )
    return DataPlaneNetwork(topo)


def _channel(sim, network, chaos=None, config=None):
    metrics = SouthboundMetrics()
    agent = SwitchAgent("a", network)
    channel = ControlChannel(
        sim,
        agent,
        config or ChannelConfig(),
        chaos or SouthboundChaosConfig(),
        SeededRNG(derive(derive(SEED, SOUTHBOUND_STREAM), "channel.a")),
        metrics,
    )
    return channel, agent, metrics


def _msg(epoch=1, txn_id=1, phase="add"):
    spec = entry_spec(host_match_entry("a"))
    return ControlMessage.make("a", epoch, txn_id, phase, (("tcam_put", spec),))


def test_install_latency_single_source():
    # Satellite: the paper's measured 70 ms lives in exactly one place.
    assert ChannelConfig().install_latency == RULE_INSTALL_SECONDS
    # The legacy fixed-delay commit path resolves to the same number...
    assert RecoveryConfig().resolved_install_delay() == RULE_INSTALL_SECONDS
    # ...unless explicitly overridden.
    assert RecoveryConfig(rule_install_delay=0.1).resolved_install_delay() == 0.1


def test_lossless_roundtrip_is_exactly_install_latency():
    sim = Simulator()
    network = _tiny_network()
    channel, agent, metrics = _channel(sim, network)
    results = []
    channel.send(_msg(), lambda status: results.append((sim.now, status)))
    sim.run(until=1.0)
    assert results == [(pytest.approx(RULE_INSTALL_SECONDS), ACK_APPLIED)]
    assert agent.ops_applied == 1
    assert metrics.retries == 0 and metrics.messages_lost == 0


def test_duplicate_cookie_applied_exactly_once():
    network = _tiny_network()
    agent = SwitchAgent("a", network)
    msg = _msg()
    assert agent.receive(msg).status == ACK_APPLIED
    # A retransmission of an already-applied message is acked but inert.
    assert agent.receive(msg).status == ACK_DUPLICATE
    assert agent.ops_applied == 1


def test_epoch_fencing_rejects_stale_messages():
    network = _tiny_network()
    agent = SwitchAgent("a", network)
    assert agent.receive(_msg(epoch=2)).status == ACK_APPLIED
    # A delayed retransmission from a superseded epoch must not clobber
    # the newer desired state.
    assert agent.receive(_msg(epoch=1, txn_id=9)).status == ACK_STALE
    assert agent.ops_applied == 1


def test_backoff_schedule_is_exponential_and_capped():
    cfg = ChannelConfig()
    assert cfg.rto(1) == pytest.approx(0.25)
    assert cfg.rto(2) == pytest.approx(0.5)
    assert cfg.rto(3) == pytest.approx(1.0)
    # ...and every later attempt is capped at max_backoff.
    assert cfg.rto(6) == cfg.max_backoff


def test_total_loss_retries_then_gives_up_and_opens_circuit():
    sim = Simulator()
    network = _tiny_network()
    channel, agent, metrics = _channel(
        sim, network, chaos=SouthboundChaosConfig(loss_rate=1.0)
    )
    results = []
    channel.send(_msg(), results.append)
    sim.run(until=60.0)
    cfg = channel.config
    assert results == [RESULT_FAILED]
    assert agent.ops_applied == 0
    assert metrics.messages_sent == 1
    assert metrics.retries == cfg.max_attempts - 1
    assert metrics.timeouts == cfg.max_attempts
    assert metrics.give_ups == 1
    # The breaker opened after circuit_threshold consecutive timeouts.
    assert metrics.circuit_opens == 1
    assert channel.degraded


def test_disconnect_recovers_via_retries_and_closes_circuit():
    sim = Simulator()
    network = _tiny_network()
    channel, agent, metrics = _channel(sim, network)
    channel.disconnect()
    results = []
    channel.send(_msg(), results.append)
    # Long enough for the circuit to open (3 consecutive timeouts).
    sim.run(until=3.0)
    assert channel.degraded and agent.ops_applied == 0
    channel.reconnect()
    sim.run(until=10.0)
    assert results == [ACK_APPLIED]
    assert agent.ops_applied == 1
    assert not channel.degraded  # first ack closed the breaker
    assert metrics.degraded_seconds > 0


def test_inflight_window_queues_excess_messages():
    sim = Simulator()
    network = _tiny_network()
    channel, agent, metrics = _channel(sim, network)
    done = []
    for txn in range(1, 6):
        channel.send(_msg(txn_id=txn), lambda s, t=txn: done.append(t))
    assert len(channel._inflight) == channel.config.max_inflight
    sim.run(until=2.0)
    assert done == [1, 2, 3, 4, 5]  # FIFO drain, all applied
    assert agent.ops_applied == 5


# ----------------------------------------------------------------------
# Transaction phasing (scripted channels, no sim needed)
# ----------------------------------------------------------------------
class _ScriptedChannel:
    """Channel stub acking synchronously, with scripted phase failures."""

    def __init__(self, switch, log, fail_phases=(), stale_phases=()):
        self.switch = switch
        self.log = log
        self.fail_phases = set(fail_phases)
        self.stale_phases = set(stale_phases)

    def send(self, msg, on_result):
        self.log.append((msg.phase, msg.switch, msg.ops))
        if msg.phase in self.fail_phases:
            on_result(RESULT_FAILED)
        elif msg.phase in self.stale_phases:
            on_result(ACK_STALE)
        else:
            on_result(ACK_APPLIED)


_SPEC_A = ("entry-a", 300, None, None, None, "forward", None, None)
_SPEC_B = ("entry-b", 300, None, None, None, "forward", None, None)


def _diffs():
    return [
        SwitchDiff(
            switch="s1",
            adds=[("tcam_put", _SPEC_A), ("vsw_put", "c0", 1, ("i0",), "h")],
            swap=[("classify_sync", (), ())],
            dels=[("tcam_del", "old-1")],
        ),
        SwitchDiff(switch="s2", adds=[("tcam_put", _SPEC_B)]),
    ]


def _txn(log, **channel_kwargs):
    channels = {
        s: _ScriptedChannel(s, log, **channel_kwargs) for s in ("s1", "s2")
    }
    outcomes = []
    txn = Transaction(
        Simulator(), channels, 1, 1, _diffs(),
        on_done=lambda outcome, rb: outcomes.append((outcome, rb)),
    )
    txn.start()
    return txn, outcomes


def test_transaction_phases_are_globally_barriered():
    log = []
    txn, outcomes = _txn(log)
    assert outcomes == [("committed", 0)]
    phases = [p for p, _, _ in log]
    # Every add on every switch precedes every swap precedes every del.
    assert phases == sorted(phases, key=("add", "swap", "del").index)
    assert phases.count("add") == 2 and phases.count("swap") == 1


def test_add_failure_rolls_back_inverse_ops_everywhere():
    log = []
    txn, outcomes = _txn(log, fail_phases=("add",))
    assert outcomes == [("rolled_back", 3)]
    # No swap or del ever ran: the old state kept serving untouched.
    assert all(p in ("add", "rollback") for p, _, _ in log)
    rollbacks = {s: ops for p, s, ops in log if p == "rollback"}
    # Inverse ops in reverse order, sent to *every* add switch (an ack
    # may have been lost after the apply).
    assert rollbacks["s1"] == (("vsw_del", "c0", 1), ("tcam_del", "entry-a"))
    assert rollbacks["s2"] == (("tcam_del", "entry-b"),)


def test_swap_failure_stops_before_deletes():
    log = []
    txn, outcomes = _txn(log, fail_phases=("swap",))
    assert outcomes == [("failed", 0)]
    # Deletes never run, so nothing any class still references was
    # removed — old and new versions both remain complete.
    assert not any(p == "del" for p, _, _ in log)


def test_del_failure_commits_partially():
    log = []
    txn, outcomes = _txn(log, fail_phases=("del",))
    # The new state serves everywhere; only garbage survives for the
    # reconciler to sweep.
    assert outcomes == [("committed_partial", 0)]


def test_stale_ack_supersedes_transaction():
    log = []
    txn, outcomes = _txn(log, stale_phases=("add",))
    assert outcomes == [("superseded", 0)]
    assert not any(p in ("swap", "del", "rollback") for p, _, _ in log)


# ----------------------------------------------------------------------
# Fabric lifecycle on a real deployment
# ----------------------------------------------------------------------
def _deployed(seed=SEED):
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    matrix = gravity_matrix(topo, 8000.0, seed=seed)
    sim = Simulator()
    deployment = controller.run(matrix, sim=sim)
    return topo, controller, sim, deployment


def _fabric(sim, controller, deployment, chaos=None, seed=SEED):
    fabric = SouthboundFabric(
        sim,
        deployment.network,
        seed,
        controller.rule_generator,
        chaos=chaos,
    )
    controller.attach_southbound(fabric)
    return fabric


def test_adopt_is_a_noop_on_the_wire():
    _topo, controller, sim, deployment = _deployed()
    fabric = _fabric(sim, controller, deployment)
    assert fabric.converged and fabric.epoch == 0
    assert fabric.drift_count() == 0
    assert fabric.metrics.messages_sent == 0
    # The probe oracle starts from the plan's registered paths.
    for cls in deployment.plan.classes:
        assert fabric.active_path(cls.class_id) == tuple(cls.path)


def test_reconciler_repairs_injected_drift():
    _topo, controller, sim, deployment = _deployed()
    fabric = _fabric(sim, controller, deployment)

    # Rip out installed state behind the fabric's back: a vSwitch loses
    # its rules (VM restart) and a switch loses its classifications.
    victim_vsw = sorted(deployment.rules.vswitch_rules)[0]
    vsw = deployment.network.vswitch_at(victim_vsw)
    for class_id, sub_id, _rule in deployment.rules.vswitch_rules[victim_vsw]:
        vsw.remove_rule(class_id, sub_id)
    victim_sw = sorted(deployment.rules.switch_rule_sets)[0]
    deployment.network.switches[victim_sw].table.remove_where(
        lambda e: e.name.startswith(f"{victim_sw}/classify/")
    )
    drift = fabric.drift_count()
    assert drift > 0

    fabric.start()
    sim.run(until=5.0)
    fabric.stop()
    assert fabric.drift_count() == 0
    assert fabric.metrics.reconcile_repairs >= 1
    assert fabric.metrics.max_observed_drift >= drift
    assert fabric.metrics.transactions["committed"] >= 1


def test_reconciler_converges_even_under_loss():
    _topo, controller, sim, deployment = _deployed()
    fabric = _fabric(
        sim, controller, deployment, chaos=SouthboundChaosConfig(loss_rate=0.3)
    )
    # Strip every vSwitch and every classification table: the repair
    # spans many switches, so plenty of messages face the 30% loss.
    for victim, rows in deployment.rules.vswitch_rules.items():
        vsw = deployment.network.vswitch_at(victim)
        for class_id, sub_id, _rule in rows:
            vsw.remove_rule(class_id, sub_id)
    for victim in deployment.rules.switch_rule_sets:
        deployment.network.switches[victim].table.remove_where(
            lambda e, v=victim: e.name.startswith(f"{v}/classify/")
        )
    assert fabric.drift_count() > 0

    fabric.start()
    sim.run(until=30.0)
    fabric.stop()
    assert fabric.drift_count() == 0
    assert fabric.metrics.messages_lost > 0  # the chaos actually bit
    assert fabric.metrics.retries > 0


# ----------------------------------------------------------------------
# Run-level determinism and substream independence
# ----------------------------------------------------------------------
_SB_CHAOS = SouthboundChaosConfig(
    loss_rate=0.1,
    extra_delay_mean=0.01,
    disconnects=2,
    window=(3.0, 10.0),
    disconnect_duration=(1.5, 4.0),
)
_DP_CHAOS = ChaosConfig(
    link_flaps=1,
    host_crashes=0,
    vnf_crashes=1,
    brownouts=0,
    window=(3.0, 10.0),
    flap_duration=(4.0, 7.0),
)


def _southbound_chaos_run(seed=1, sb_chaos=_SB_CHAOS, until=24.0):
    topo, controller, sim, deployment = _deployed(seed)
    fabric = _fabric(sim, controller, deployment, chaos=sb_chaos, seed=seed)
    schedule = generate_schedule(
        topo,
        _DP_CHAOS,
        seed,
        instance_keys=sorted(deployment.instances),
        hosts_in_use=deployment.rules.hosts_in_use,
    )
    sb_schedule = generate_southbound_schedule(
        sorted(deployment.network.switches), fabric.chaos, seed
    )
    engine = ChaosEngine(
        sim,
        controller,
        schedule,
        southbound=fabric,
        southbound_schedule=sb_schedule,
    )
    result = engine.run(until=until)
    return result, fabric


def test_same_seed_southbound_runs_bit_identical():
    a, fa = _southbound_chaos_run()
    b, fb = _southbound_chaos_run()
    assert a.signature() == b.signature()
    assert fa.state_signature() == fb.state_signature()
    assert a.metrics["southbound"] == b.metrics["southbound"]


def test_southbound_chaos_holds_the_acceptance_bar():
    # ISSUE 5 acceptance: >=10% loss + two switch disconnects, and still
    # zero policy-violation-seconds, full convergence, verify ok.
    result, fabric = _southbound_chaos_run()
    sb = result.metrics["southbound"]
    assert sb["messages_lost"] > 0
    assert result.southbound_signature is not None
    assert result.metrics["policy_violation_seconds"] == 0
    assert result.final_verify_ok
    assert fabric.drift_count() == 0
    assert fabric.converged


def test_chaos_disabled_fabric_run_is_clean_and_converges():
    # Southbound chaos off: every message applies on the first attempt,
    # and the run ends converged with the installed state == desired.
    result, fabric = _southbound_chaos_run(sb_chaos=SouthboundChaosConfig())
    sb = result.metrics["southbound"]
    assert sb["messages_lost"] == 0
    assert sb["retries"] == 0
    assert sb["timeouts"] == 0
    assert sb["circuit_opens"] == 0
    assert sb["acks"]["stale"] == 0
    assert result.metrics["policy_violation_seconds"] == 0
    assert result.final_verify_ok
    assert fabric.drift_count() == 0
    installed = read_installed(fabric.network)
    assert installed.signature_payload() == fabric.desired.signature_payload()


def test_southbound_schedule_rides_an_independent_substream():
    topo, controller, sim, deployment = _deployed()
    kwargs = dict(
        instance_keys=sorted(deployment.instances),
        hosts_in_use=deployment.rules.hosts_in_use,
    )
    before = generate_schedule(topo, _DP_CHAOS, SEED, **kwargs)
    sb = generate_southbound_schedule(
        sorted(deployment.network.switches), _SB_CHAOS, SEED
    )
    after = generate_schedule(topo, _DP_CHAOS, SEED, **kwargs)
    # Drawing the southbound schedule moved no data-plane draw.
    assert before.signature() == after.signature()
    assert len(sb.events) == _SB_CHAOS.disconnects
    lo, hi = _SB_CHAOS.window
    for ev in sb.events:
        assert ev.kind is FaultKind.SWITCH_DISCONNECT
        assert lo <= ev.time <= hi
    assert len({ev.target for ev in sb.events}) == len(sb.events)


def test_legacy_signature_unchanged_without_fabric():
    # A fabric-less chaos run must not grow a southbound key: stacked
    # replay tooling hashes these signatures.
    topo, controller, sim, deployment = _deployed()
    schedule = generate_schedule(
        topo,
        _DP_CHAOS,
        SEED,
        instance_keys=sorted(deployment.instances),
        hosts_in_use=deployment.rules.hosts_in_use,
    )
    result = ChaosEngine(sim, controller, schedule).run(until=12.0)
    assert result.southbound_signature is None
    assert "southbound_schedule" not in result.signature()
    assert "southbound" not in result.metrics
