"""Sanity tests for every experiment module (quick-scale)."""

import pytest

from repro.experiments import (
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table4,
    table5,
)
from repro.experiments.harness import ExperimentResult, standard_setup


def test_result_formatting():
    result = ExperimentResult(
        experiment="X",
        description="desc",
        paper_expectation="expect",
        columns=["a", "b"],
        rows=[[1, 2.34567], ["x", "y"]],
        notes="n",
    )
    text = result.format()
    assert "X: desc" in text and "paper: expect" in text and "note: n" in text
    assert "2.346" in text  # float formatting


def test_standard_setup_shapes():
    topo, controller, series = standard_setup("internet2", snapshots=3)
    assert topo.name == "internet2"
    assert len(series) == 3
    classes = controller.build_classes(series.mean())
    assert classes


def test_standard_setup_univ1_edge_only():
    topo, controller, series = standard_setup("univ1", snapshots=2)
    for src, dst, _ in series.mean().pairs(min_rate=1e-6):
        assert src.startswith("edge") and dst.startswith("edge")
    assert controller.router.ecmp  # data center uses multipath


def test_table1_rows():
    result = table1.run()
    assert len(result.rows) == 8


def test_table4_matches_catalog():
    result = table4.run()
    assert len(result.rows) == 4


def test_table5_quick():
    result = table5.run(quick=True)
    assert {r[0] for r in result.rows} == {"internet2", "geant", "univ1"}
    for row in result.rows:
        assert row[4] > 0  # measured time
        assert row[6] > 0  # instances


def test_fig6_knee_and_size_independence():
    result = fig6.run(quick=True)
    below = [r for r in result.rows if r[0] <= 8.0]
    above = [r for r in result.rows if r[0] >= 10.0]
    assert all(r[1] == 0 for r in below)
    assert all(r[1] > 0 for r in above)
    for r in result.rows:
        assert abs(r[1] - r[2]) < 0.02  # 64B vs 1500B


def test_fig7_boot_band():
    result = fig7.run(quick=True)
    per_run = [r for r in result.rows if isinstance(r[0], int)]
    assert all(3.7 <= r[1] <= 4.8 for r in per_run)


def test_fig8_scenarios():
    result = fig8.run(quick=True)
    assert {r[0] for r in result.rows} == {
        "no-failover", "wait-5s", "reconfigure", "naive",
    }


def test_fig9_zero_loss():
    result = fig9.run()
    loss = next(r[2] for r in result.rows if r[1] == "total packet loss")
    assert loss == 0


def test_fig10_quick():
    result = fig10.run(topologies=("internet2",), quick=True)
    assert result.rows[0][3] > 2.0  # median reduction well above 1


def test_fig11_quick():
    result = fig11.run(topologies=("internet2",), quick=True)
    assert result.rows[0][3] > 1.5


def test_fig12_quick():
    result = fig12.run(topologies=("internet2",), quick=True)
    row = result.rows[0]
    assert row[3] <= row[1]  # failover mean loss <= baseline


def test_fig5_breakdown_quick():
    from repro.experiments import fig5

    result = fig5.run(quick=True)
    rows = {r[0]: r[1] for r in result.rows}
    assert 3.8 <= rows["end-to-end boot (mean)"] <= 4.7
    assert rows["fast path (reconfigure spare), measured"] <= 0.05


def test_packet_replay_quick():
    from repro.experiments import packet_replay

    result = packet_replay.run(quick=True)
    rows = {r[0]: r[1] for r in result.rows}
    assert rows["policy violations"] == 0
    assert rows["delivered"] > 0
    assert rows["measured loss"] < 0.1


def test_scale_sweep_quick():
    from repro.experiments import scale_sweep

    result = scale_sweep.run(quick=True, seed=0)
    assert result.columns[3] == "mode"
    modes = [r[3] for r in result.rows]
    assert modes == ["monolithic", "decomposed-2"]
    for row in result.rows:
        assert row[-1] == 0  # no validation violations
        assert row[7] is True  # warm snapshot re-solved warm
    mono, dec = result.rows
    # decomposed objective stays within the per-slot rounding gap
    assert abs(dec[6] - mono[6]) <= max(4, mono[6] // 4)
    # same seed, same sweep: the experiment is deterministic
    again = scale_sweep.run(quick=True, seed=0)
    assert [r[6] for r in again.rows] == [r[6] for r in result.rows]
