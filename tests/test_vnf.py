"""Tests for VNF types, chains, instances, and ClickOS models."""

import pytest

from repro.sim.kernel import Simulator
from repro.vnf.chains import ChainGenerator, PolicyChain, STANDARD_CHAINS
from repro.vnf.clickos import (
    CLICKOS_RECONFIGURE_SECONDS,
    ClickOSConfig,
    ClickOSImage,
    PASSIVE_MONITOR,
)
from repro.vnf.instance import VNFInstance
from repro.vnf.types import (
    DEFAULT_CATALOG,
    FIREWALL,
    IDS,
    NAT,
    NFType,
    NFTypeCatalog,
    PROXY,
)


# ---------------------------------------------------------------------------
# Types (Table IV)
# ---------------------------------------------------------------------------
def test_table_iv_datasheets():
    assert (FIREWALL.cores, FIREWALL.capacity_mbps, FIREWALL.clickos) == (4, 900.0, True)
    assert (PROXY.cores, PROXY.capacity_mbps, PROXY.clickos) == (4, 900.0, False)
    assert (NAT.cores, NAT.capacity_mbps, NAT.clickos) == (2, 900.0, True)
    assert (IDS.cores, IDS.capacity_mbps, IDS.clickos) == (8, 600.0, False)


def test_catalog_lookup_and_clickos_subset():
    assert DEFAULT_CATALOG.get("nat") is NAT
    assert set(t.name for t in DEFAULT_CATALOG.clickos_types()) == {"firewall", "nat"}
    assert "proxy" in DEFAULT_CATALOG
    assert len(DEFAULT_CATALOG) == 4
    with pytest.raises(KeyError):
        DEFAULT_CATALOG.get("dpi")


def test_catalog_rejects_duplicates():
    with pytest.raises(ValueError):
        NFTypeCatalog([FIREWALL, FIREWALL])


def test_instances_for_ceil():
    assert FIREWALL.instances_for(0.0) == 0
    assert FIREWALL.instances_for(900.0) == 1
    assert FIREWALL.instances_for(900.1) == 2
    assert IDS.instances_for(1800.0) == 3


def test_nf_type_validation():
    with pytest.raises(ValueError):
        NFType("bad", cores=0, capacity_mbps=100.0, clickos=False)
    with pytest.raises(ValueError):
        NFType("bad", cores=1, capacity_mbps=0.0, clickos=False)


# ---------------------------------------------------------------------------
# Chains
# ---------------------------------------------------------------------------
def test_chain_order_and_lookup():
    chain = PolicyChain(["nat", "firewall", "ids"])
    assert len(chain) == 3
    assert chain[0] == "nat"
    assert chain.index("ids") == 2
    assert chain.successor("nat") == "firewall"
    assert chain.successor("ids") is None
    assert chain.total_cores() == 2 + 4 + 8
    assert chain.min_capacity_mbps() == 600.0


def test_chain_rejects_unknown_and_duplicate():
    with pytest.raises(KeyError):
        PolicyChain(["firewall", "dpi"])
    with pytest.raises(ValueError):
        PolicyChain(["firewall", "firewall"])


def test_chain_equality_hash():
    assert PolicyChain(["firewall", "ids"]) == PolicyChain(["firewall", "ids"])
    assert PolicyChain(["firewall", "ids"]) != PolicyChain(["ids", "firewall"])
    assert len({PolicyChain(["nat"]), PolicyChain(["nat"])}) == 1


def test_standard_chains_use_four_nfs():
    names = set()
    for chain in STANDARD_CHAINS:
        names.update(chain.names)
    assert names == {"firewall", "proxy", "nat", "ids"}


def test_chain_generator_bounds_and_determinism():
    gen = ChainGenerator(min_len=2, max_len=3, seed=5)
    chains = gen.generate_many(20)
    assert all(2 <= len(c) <= 3 for c in chains)
    again = ChainGenerator(min_len=2, max_len=3, seed=5).generate_many(20)
    assert chains == again
    with pytest.raises(ValueError):
        ChainGenerator(min_len=0)
    with pytest.raises(ValueError):
        ChainGenerator(min_len=3, max_len=9)


# ---------------------------------------------------------------------------
# Instances: fluid + packet-level loss models
# ---------------------------------------------------------------------------
def test_fluid_loss_knee():
    inst = VNFInstance("i0", FIREWALL, "s1")
    assert inst.offered_load_loss(450.0) == 0.0
    assert inst.offered_load_loss(900.0) == 0.0
    assert inst.offered_load_loss(1800.0) == pytest.approx(0.5)
    assert inst.utilization(450.0) == pytest.approx(0.5)
    assert inst.is_overloaded(901.0)
    assert not inst.is_overloaded(900.0)


def test_packet_level_admission_below_capacity():
    sim = Simulator()
    fast = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=1000.0)
    inst = VNFInstance("i0", fast, "s1", sim=sim, window=0.1)
    # 50 packets over 1 second = 50 pps << 1000 pps: all admitted.
    for k in range(50):
        assert inst.consume(1500, now=k * 0.02)
    assert inst.stats.packets_dropped == 0


def test_packet_level_drops_over_capacity():
    fast = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=100.0)
    inst = VNFInstance("i0", fast, "s1", window=0.1)
    # 50 packets in 10 ms = 5000 pps >> 100 pps.
    admitted = sum(inst.consume(1500, now=k * 0.0002) for k in range(50))
    assert inst.stats.packets_dropped > 0
    assert admitted + inst.stats.packets_dropped == 50
    assert inst.stats.loss_ratio > 0


def test_packet_size_does_not_affect_admission():
    """The Fig. 6 claim: loss depends on rate, not size."""
    results = {}
    for size in (64, 1500):
        fast = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=100.0)
        inst = VNFInstance("i0", fast, "s1", window=0.1)
        for k in range(50):
            inst.consume(size, now=k * 0.0002)
        results[size] = inst.stats.packets_dropped
    assert results[64] == results[1500]


def test_shutdown_drops_everything():
    inst = VNFInstance("i0", FIREWALL, "s1")
    inst.shutdown()
    assert not inst.consume(100, now=0.0)


def test_downstream_hook_receives_processed():
    got = []
    fast = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=1e6)
    inst = VNFInstance("i0", fast, "s1", downstream=lambda s, t: got.append(s))
    inst.consume(777, now=0.0)
    assert got == [777]


def test_consume_without_clock_raises():
    inst = VNFInstance("i0", FIREWALL, "s1")  # no sim
    with pytest.raises(ValueError):
        inst.consume(100)


# ---------------------------------------------------------------------------
# ClickOS
# ---------------------------------------------------------------------------
def test_clickos_image_reconfigure():
    img = ClickOSImage("img0")
    assert not img.configured
    cost = img.reconfigure(PASSIVE_MONITOR)
    assert cost == CLICKOS_RECONFIGURE_SECONDS
    assert img.configured
    assert img.reconfigure_count == 1
    assert "passive-monitor" in repr(img)


def test_clickos_config_describe():
    cfg = ClickOSConfig(role="firewall", parameters=(("rules", "100"),))
    assert cfg.describe() == "firewall(rules=100)"
    assert PASSIVE_MONITOR.describe() == "passive-monitor"
