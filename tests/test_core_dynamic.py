"""Tests for the Dynamic Handler: detection, fast failover, rollback."""

import numpy as np
import pytest

from repro.core.dynamic import (
    DynamicHandler,
    FailoverConfig,
    OverloadDetector,
    OVERLOAD_DOWN_PPS,
    OVERLOAD_UP_PPS,
)
from repro.core.placement import PlacementPlan
from repro.core.subclasses import assign_subclasses
from repro.sim.kernel import Simulator
from repro.traffic.classes import TrafficClass
from repro.traffic.replay import ClassRateTimeline
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


# ---------------------------------------------------------------------------
# OverloadDetector (packet-level, Fig. 9 machinery)
# ---------------------------------------------------------------------------
def test_detector_hysteresis_cycle():
    sim = Simulator()
    rate = {"value": 1000.0}
    over, under = [], []
    det = OverloadDetector(
        sim,
        rate_fn=lambda: rate["value"],
        on_overload=lambda: over.append(sim.now),
        on_recovery=lambda: under.append(sim.now),
        poll_interval=0.1,
    )
    sim.run(until=1.0)
    assert not over
    rate["value"] = 10_000.0
    sim.run(until=2.0)
    assert len(over) == 1  # fires once, not repeatedly
    # Dropping to 5 Kpps is between thresholds: no recovery yet.
    rate["value"] = 5_000.0
    sim.run(until=3.0)
    assert not under
    rate["value"] = 1_000.0
    sim.run(until=4.0)
    assert len(under) == 1
    det.stop()
    assert [e.kind for e in det.events] == ["overload", "rollback"]


def test_detector_thresholds_are_papers():
    assert OVERLOAD_UP_PPS == 8500.0
    assert OVERLOAD_DOWN_PPS == 4000.0


def test_detector_rejects_inverted_thresholds():
    sim = Simulator()
    with pytest.raises(ValueError):
        OverloadDetector(
            sim, lambda: 0.0, lambda: None, lambda: None, up_pps=1.0, down_pps=2.0
        )


# ---------------------------------------------------------------------------
# DynamicHandler (fluid, Fig. 12 machinery)
# ---------------------------------------------------------------------------
def _cls(cid, rate):
    return TrafficClass(
        cid, "a", "c", ("a", "b", "c"), PolicyChain(["firewall"]), rate
    )


def _handler(rate=400.0, free=None, config=None):
    cls = _cls("c1", rate)
    plan = PlacementPlan(
        quantities={("b", "firewall"): 1},
        distribution={("c1", 1, 0): 1.0},
        classes=[cls],
        catalog=DEFAULT_CATALOG,
        objective=1.0,
    )
    sub_plan = assign_subclasses(plan)
    return DynamicHandler(
        plan,
        sub_plan,
        DEFAULT_CATALOG,
        free_cores=dict(free or {"a": 64, "b": 0, "c": 64}),
        config=config or FailoverConfig(),
    )


def _timeline(rates, interval=60.0):
    cls = _cls("c1", rates[0])
    times = [k * interval for k in range(len(rates))]
    return ClassRateTimeline(
        [cls], times, np.array(rates, dtype=float).reshape(-1, 1)
    )


def test_no_overload_no_loss_no_events():
    handler = _handler()
    result = handler.replay(_timeline([400.0, 500.0, 300.0]))
    assert result.mean_loss == 0.0
    assert result.extra_cores == [0, 0, 0]
    assert not handler.events


def test_without_failover_sustained_loss():
    handler = _handler(config=FailoverConfig(enabled=False))
    result = handler.replay(_timeline([1800.0, 1800.0]))
    # 1800 Mbps through one 900 Mbps firewall: 50% loss.
    assert result.loss[0] == pytest.approx(0.5)
    assert result.extra_cores == [0, 0]


def test_failover_absorbs_burst_and_rolls_back():
    handler = _handler()
    result = handler.replay(_timeline([400.0, 1800.0, 400.0]))
    # Burst snapshot: loss far below the 50% no-failover level.
    assert result.loss[1] < 0.1
    # An extra instance was created during the burst...
    assert result.extra_cores[1] > 0
    # ...and cancelled after the burst passed.
    assert result.extra_cores[2] == 0
    kinds = {e.kind for e in handler.events}
    assert {"overload", "new-instance", "rollback"} <= kinds


def test_failover_without_spare_cores_cannot_help():
    handler = _handler(free={"a": 0, "b": 0, "c": 0})
    result = handler.replay(_timeline([1800.0]))
    assert result.loss[0] == pytest.approx(0.5, abs=0.05)
    assert result.extra_cores[0] == 0


def test_extra_instances_placed_on_path_order_compatible():
    handler = _handler(free={"a": 64, "b": 0, "c": 64})
    handler.replay(_timeline([1800.0]))
    for ref in handler._extra_instances:
        assert ref.switch in ("a", "b", "c")


def test_core_conservation_invariant():
    handler = _handler()
    free0 = sum(handler.free_cores.values())
    handler.replay(_timeline([400.0, 2500.0, 2500.0, 400.0, 400.0]))
    assert sum(handler.free_cores.values()) + handler._extra_core_count() == free0


def test_detection_delay_scales_loss():
    fast = _handler(config=FailoverConfig(detection_delay=0.6))
    slow = _handler(config=FailoverConfig(detection_delay=30.0))
    loss_fast = fast.replay(_timeline([1800.0, 1800.0], interval=60.0)).loss[0]
    loss_slow = slow.replay(_timeline([1800.0, 1800.0], interval=60.0)).loss[0]
    assert loss_fast < loss_slow


def test_chain_loss_composes_across_instances():
    """Loss at successive chain steps composes multiplicatively."""
    cls = TrafficClass(
        "c1", "a", "c", ("a", "b", "c"), PolicyChain(["firewall", "ids"]), 1800.0
    )
    plan = PlacementPlan(
        quantities={("b", "firewall"): 1, ("b", "ids"): 1},
        distribution={("c1", 1, 0): 1.0, ("c1", 1, 1): 1.0},
        classes=[cls],
        catalog=DEFAULT_CATALOG,
        objective=2.0,
    )
    handler = DynamicHandler(
        plan,
        assign_subclasses(plan),
        DEFAULT_CATALOG,
        free_cores={"a": 0, "b": 0, "c": 0},
        config=FailoverConfig(enabled=False),
    )
    result = handler.replay(_timeline([1800.0]))
    # firewall passes 900/1800 = 0.5; ids passes 600/1800 of the *offered*
    # load — the fluid model composes survival 0.5 * (600/1800 scaled).
    assert 0.5 < result.loss[0] < 1.0
