"""Tests for the cloud substrate: hosts, hypervisor, OpenStack, orchestrator."""

import pytest

from repro.cloud.host import AppleHost, HostResourceError
from repro.cloud.hypervisor import VmState, XenHypervisor
from repro.cloud.opendaylight import OpenDaylight, RULE_INSTALL_SECONDS
from repro.cloud.openstack import OpenStack
from repro.cloud.orchestrator import ResourceOrchestrator
from repro.sim.kernel import Simulator
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.vnf.clickos import CLICKOS_RECONFIGURE_SECONDS, PASSIVE_MONITOR
from repro.vnf.instance import VNFInstance
from repro.vnf.types import FIREWALL, IDS, NAT


def _instance(name="fw0", nf=FIREWALL, switch="s1"):
    return VNFInstance(name, nf, switch)


# ---------------------------------------------------------------------------
# AppleHost: resource isolation accounting
# ---------------------------------------------------------------------------
def test_host_allocate_release_cycle():
    host = AppleHost("h1", "s1", total_cores=16)
    inst = _instance()
    host.allocate(inst)
    assert host.allocated_cores == 4
    assert host.free_cores == 12
    released = host.release("fw0")
    assert released is inst
    assert not released.running  # shutdown on release
    assert host.free_cores == 16


def test_host_rejects_oversubscription():
    host = AppleHost("h1", "s1", total_cores=10)
    host.allocate(_instance("fw0"))  # 4 cores
    host.allocate(_instance("nat0", NAT))  # 2 cores
    with pytest.raises(HostResourceError):
        host.allocate(_instance("ids0", IDS))  # needs 8 > 4 free
    assert host.can_fit(NAT, count=2)
    assert not host.can_fit(IDS)


def test_host_duplicate_and_unknown():
    host = AppleHost("h1", "s1", total_cores=16)
    host.allocate(_instance("fw0"))
    with pytest.raises(ValueError):
        host.allocate(_instance("fw0"))
    with pytest.raises(KeyError):
        host.release("ghost")


def test_host_instances_of():
    host = AppleHost("h1", "s1", total_cores=16)
    host.allocate(_instance("fw0"))
    host.allocate(_instance("nat0", NAT))
    assert [i.instance_id for i in host.instances_of("firewall")] == ["fw0"]


# ---------------------------------------------------------------------------
# Hypervisor lifecycle
# ---------------------------------------------------------------------------
def test_clickos_boots_in_30ms():
    sim = Simulator()
    hyp = XenHypervisor(sim)
    vm = hyp.define_domain(cores=1, clickos=True)
    hyp.attach_bridge(vm)
    booted = []
    hyp.boot(vm, booted.append, config=PASSIVE_MONITOR)
    sim.run_all()
    assert booted and booted[0].state is VmState.RUNNING
    assert vm.boot_completed_at == pytest.approx(0.030)
    assert vm.image is not None and vm.image.config is PASSIVE_MONITOR


def test_full_vm_boots_slower():
    sim = Simulator()
    hyp = XenHypervisor(sim)
    vm = hyp.define_domain(cores=8, clickos=False)
    hyp.attach_bridge(vm)
    hyp.boot(vm, lambda v: None)
    sim.run_all()
    assert vm.boot_completed_at > 1.0


def test_boot_requires_bridge_and_defined_state():
    sim = Simulator()
    hyp = XenHypervisor(sim)
    vm = hyp.define_domain(cores=1, clickos=True)
    with pytest.raises(ValueError):
        hyp.boot(vm, lambda v: None)  # no bridge (Step 4 missing)
    hyp.attach_bridge(vm)
    hyp.boot(vm, lambda v: None)
    with pytest.raises(ValueError):
        hyp.boot(vm, lambda v: None)  # already booting


def test_destroy():
    sim = Simulator()
    hyp = XenHypervisor(sim)
    vm = hyp.define_domain(cores=1, clickos=True)
    hyp.destroy(vm.vm_id)
    assert vm.state is VmState.DESTROYED
    assert not hyp.running_domains()
    with pytest.raises(KeyError):
        hyp.destroy("nope")


# ---------------------------------------------------------------------------
# OpenDaylight + OpenStack pipeline
# ---------------------------------------------------------------------------
def test_rule_install_takes_70ms():
    sim = Simulator()
    odl = OpenDaylight(sim)
    done = []
    odl.install_rules(["r1", "r2"], on_installed=lambda: done.append(sim.now))
    sim.run_all()
    assert done == [pytest.approx(RULE_INSTALL_SECONDS)]
    assert odl.installed_rules == ["r1", "r2"]
    assert odl.rule_install_count == 1


def test_openstack_boot_is_seconds_not_milliseconds():
    """The Fig. 5 / Sec. VIII-B result: ~4.2 s end to end for ClickOS."""
    sim = Simulator(seed=0)
    odl = OpenDaylight(sim)
    hyp = XenHypervisor(sim)
    stack = OpenStack(sim, odl, hyp)
    results = []
    stack.boot_vm(1, True, "ovs-s1", lambda vm, tl: results.append(tl))
    sim.run_all()
    timeline = results[0]
    assert 3.8 <= timeline.total_seconds <= 4.7
    assert timeline.network_ready_at is not None
    assert timeline.steps[-1] == "running"


def test_openstack_boot_jitter_spread():
    durations = []
    for k in range(10):
        sim = Simulator(seed=k)
        odl = OpenDaylight(sim)
        stack = OpenStack(sim, odl, XenHypervisor(sim))
        out = []
        stack.boot_vm(1, True, "ovs", lambda vm, tl: out.append(tl))
        sim.run_all()
        durations.append(out[0].total_seconds)
    assert max(durations) - min(durations) > 0.1  # jitter exists
    assert 3.9 <= sum(durations) / len(durations) <= 4.6  # paper's mean band


# ---------------------------------------------------------------------------
# Resource Orchestrator
# ---------------------------------------------------------------------------
def _topo():
    return Topology(
        "t",
        ["s1", "s2"],
        [Link("s1", "s2")],
        hosts={"s1": AppleHostSpec(cores=16), "s2": AppleHostSpec(cores=8)},
    )


def test_orchestrator_reports_available_resources():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    assert orch.available_resources() == {"s1": 16, "s2": 8}


def test_slow_launch_allocates_after_boot():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    ready = []
    req = orch.launch_instance(FIREWALL, "s1", on_ready=ready.append)
    sim.run_all()
    assert ready and ready[0].nf_type is FIREWALL
    assert req.latency is not None and req.latency > 3.5
    assert orch.available_resources()["s1"] == 12
    assert orch.instances_at("s1", "firewall")


def test_fast_launch_uses_spare_clickos():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo(), spare_clickos=1)
    sim.run(until=1.0)  # let spares boot
    assert orch.spare_count("s1") == 1
    ready = []
    req = orch.launch_instance(FIREWALL, "s1", on_ready=ready.append, fast=True)
    sim.run_all()
    assert ready
    assert req.latency == pytest.approx(CLICKOS_RECONFIGURE_SECONDS)
    assert orch.spare_count("s1") == 0


def test_fast_launch_falls_back_without_spares():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    req = orch.launch_instance(FIREWALL, "s1", fast=True)
    sim.run_all()
    assert req.latency > 3.5  # slow path


def test_fast_launch_ignored_for_full_vms():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo(), spare_clickos=1)
    sim.run(until=1.0)
    req = orch.launch_instance(IDS, "s1", fast=True)
    sim.run_all()
    assert req.latency > 3.5  # IDS is not ClickOS-capable
    assert orch.spare_count("s1") == 1  # spare untouched


def test_launch_rejects_when_no_cores():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    orch.launch_instance(IDS, "s2")  # 8 of 8 cores
    sim.run_all()
    from repro.cloud.host import HostResourceError

    with pytest.raises(HostResourceError):
        orch.launch_instance(NAT, "s2")
    with pytest.raises(KeyError):
        orch.launch_instance(NAT, "s99")


def test_terminate_returns_cores():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    got = []
    orch.launch_instance(NAT, "s1", on_ready=got.append)
    sim.run_all()
    orch.terminate_instance(got[0])
    assert orch.available_resources()["s1"] == 16
    assert not orch.all_instances()


def test_add_spares():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    orch.add_spares("s1", 3)
    sim.run(until=1.0)
    assert orch.spare_count("s1") == 3
