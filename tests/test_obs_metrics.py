"""Unit tests for the metrics registry (repro.obs.metrics)."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MAX_SERIES_PER_METRIC,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def reg():
    r = MetricsRegistry()
    r.enabled = True
    return r


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def test_registration_is_idempotent(reg):
    a = reg.counter("x_total", "help", ("mode",))
    b = reg.counter("x_total", "other help", ("mode",))
    assert a is b


def test_reregistration_type_mismatch_raises(reg):
    reg.counter("x_total", "h")
    with pytest.raises(MetricError):
        reg.gauge("x_total", "h")


def test_reregistration_label_mismatch_raises(reg):
    reg.counter("x_total", "h", ("a",))
    with pytest.raises(MetricError):
        reg.counter("x_total", "h", ("b",))


def test_invalid_names_rejected(reg):
    for bad in ("X", "1x", "a-b", "", "a b"):
        with pytest.raises(MetricError):
            reg.counter(bad, "h")
    with pytest.raises(MetricError):
        reg.counter("ok_total", "h", ("BadLabel",))


def test_unknown_metric_lookup_raises(reg):
    with pytest.raises(MetricError):
        reg.get("nope")
    assert "nope" not in reg


# ----------------------------------------------------------------------
# Counters / gauges
# ----------------------------------------------------------------------
def test_counter_inc_and_negative_rejected(reg):
    c = reg.counter("c_total", "h")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(MetricError):
        c.inc(-1)


def test_counter_set_total_for_collectors(reg):
    c = reg.counter("c_total", "h")
    c.set_total(41)
    c.set_total(44)
    assert c.value == 44.0
    with pytest.raises(MetricError):
        c.set_total(-1)


def test_gauge_set_inc_dec(reg):
    g = reg.gauge("g", "h")
    g.set(10)
    g.inc(5)
    g.dec(2)
    assert g.value == 13.0


def test_labeled_series_positional_and_kw(reg):
    c = reg.counter("c_total", "h", ("mode",))
    c.labels("warm").inc()
    c.labels(mode="warm").inc()
    c.labels(mode="cold").inc()
    snap = c.snapshot()
    values = {s["labels"]["mode"]: s["value"] for s in snap["series"]}
    assert values == {"warm": 2.0, "cold": 1.0}


def test_label_misuse_raises(reg):
    c = reg.counter("c_total", "h", ("mode",))
    with pytest.raises(MetricError):
        c.inc()  # labeled family has no sole series
    with pytest.raises(MetricError):
        c.labels()  # wrong arity
    with pytest.raises(MetricError):
        c.labels("a", "b")
    with pytest.raises(MetricError):
        c.labels(bogus="x")
    with pytest.raises(MetricError):
        c.labels("a", mode="b")  # positional and kw together


def test_series_cardinality_cap(reg):
    c = reg.counter("c_total", "h", ("id",))
    for i in range(MAX_SERIES_PER_METRIC):
        c.labels(str(i)).inc()
    with pytest.raises(MetricError, match="cardinality"):
        c.labels("one-too-many").inc()


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
def test_histogram_bucketing(reg):
    h = reg.histogram("h_seconds", "h", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 100.0):
        h.observe(v)
    # le=1: {0.5, 1.0}; le=2: +1.5; le=4: +3.0; +Inf: +100
    assert h._sole().bucket_counts == [2, 1, 1, 1]
    cum = h._sole().cumulative_buckets()
    assert cum == [(1.0, 2), (2.0, 3), (4.0, 4), (math.inf, 5)]
    assert h._sole().count == 5
    assert h._sole().sum == pytest.approx(106.0)


def test_histogram_default_and_size_buckets(reg):
    t = reg.histogram("t_seconds", "h")
    assert t.buckets == DEFAULT_TIME_BUCKETS
    s = reg.histogram("s_packets", "h", buckets=DEFAULT_SIZE_BUCKETS)
    assert s.buckets == DEFAULT_SIZE_BUCKETS


def test_histogram_bad_buckets_raises(reg):
    with pytest.raises(MetricError):
        reg.histogram("bad", "h", buckets=(2.0, 1.0))
    with pytest.raises(MetricError):
        reg.histogram("bad2", "h", buckets=(1.0, 1.0))


# ----------------------------------------------------------------------
# Disabled behaviour (the tier-1 contract)
# ----------------------------------------------------------------------
def test_disabled_registry_is_noop():
    r = MetricsRegistry()
    assert not r.enabled
    c = r.counter("c_total", "h")
    g = r.gauge("g", "h")
    h = r.histogram("h_seconds", "h")
    c.inc(5)
    c.set_total(9)
    g.set(3)
    h.observe(1.0)
    assert c.value == 0.0
    assert g.value == 0.0
    assert h._sole().count == 0


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def test_prometheus_text_format(reg):
    c = reg.counter("c_total", "counts things", ("mode",))
    c.labels(mode="warm").inc(2)
    h = reg.histogram("h_seconds", "times things", buckets=(0.5, 1.0))
    h.observe(0.25)
    h.observe(0.75)
    text = reg.to_prometheus()
    assert "# HELP c_total counts things" in text
    assert "# TYPE c_total counter" in text
    assert 'c_total{mode="warm"} 2' in text
    assert 'h_seconds_bucket{le="0.5"} 1' in text
    assert 'h_seconds_bucket{le="1"} 2' in text
    assert 'h_seconds_bucket{le="+Inf"} 2' in text
    assert "h_seconds_sum 1" in text
    assert "h_seconds_count 2" in text


def test_snapshot_shape_and_determinism(reg):
    c = reg.counter("c_total", "h", ("mode",))
    c.labels(mode="b").inc()
    c.labels(mode="a").inc()
    snap1 = reg.snapshot()
    snap2 = reg.snapshot()
    assert snap1 == snap2
    # Series are sorted by label values, independent of creation order.
    modes = [s["labels"]["mode"] for s in snap1["c_total"]["series"]]
    assert modes == ["a", "b"]


def test_reset_values_keeps_registrations(reg):
    c = reg.counter("c_total", "h", ("mode",))
    c.labels(mode="warm").inc(7)
    g = reg.gauge("g", "h")
    g.set(3)
    reg.reset_values()
    assert "c_total" in reg
    assert g.value == 0.0
    assert c.snapshot()["series"] == []
