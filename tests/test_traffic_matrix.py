"""Tests for traffic matrices and snapshot series."""

import numpy as np
import pytest

from repro.traffic.matrix import series_from_arrays, TrafficMatrix, TrafficMatrixSeries


def _tm(values):
    return TrafficMatrix(["a", "b", "c"], values)


def test_rate_lookup_and_total():
    tm = _tm([[0, 1, 2], [3, 0, 4], [5, 6, 0]])
    assert tm.rate("a", "b") == 1
    assert tm.rate("c", "b") == 6
    assert tm.total() == 21


def test_rejects_bad_shapes_and_values():
    with pytest.raises(ValueError):
        TrafficMatrix(["a", "b"], [[0, 1, 2], [3, 0, 4], [5, 6, 0]])
    with pytest.raises(ValueError):
        _tm([[0, -1, 0], [0, 0, 0], [0, 0, 0]])
    with pytest.raises(ValueError):
        _tm([[1, 0, 0], [0, 0, 0], [0, 0, 0]])  # nonzero diagonal


def test_pairs_filters_by_min_rate():
    tm = _tm([[0, 0.5, 2], [0, 0, 0], [0, 0, 0]])
    assert list(tm.pairs(min_rate=1.0)) == [("a", "c", 2.0)]
    assert len(list(tm.pairs())) == 2


def test_scaled():
    tm = _tm([[0, 1, 2], [3, 0, 4], [5, 6, 0]])
    assert tm.scaled(2.0).total() == 42
    with pytest.raises(ValueError):
        tm.scaled(-1.0)


def test_series_mean_and_peak():
    s1 = _tm([[0, 2, 0], [0, 0, 0], [0, 0, 0]])
    s2 = _tm([[0, 4, 0], [0, 0, 0], [0, 0, 0]])
    series = TrafficMatrixSeries(("a", "b", "c"), [s1, s2], interval=10.0)
    assert series.mean().rate("a", "b") == 3.0
    assert series.peak().rate("a", "b") == 4.0
    assert series.times() == [0.0, 10.0]
    assert len(series) == 2
    assert series[1].rate("a", "b") == 4.0


def test_series_node_consistency_enforced():
    s1 = _tm([[0, 1, 0], [0, 0, 0], [0, 0, 0]])
    s2 = TrafficMatrix(["x", "y", "z"], np.zeros((3, 3)))
    with pytest.raises(ValueError):
        TrafficMatrixSeries(("a", "b", "c"), [s1, s2])


def test_series_slice():
    snaps = [_tm(np.full((3, 3), i) - np.diag([i] * 3)) for i in range(5)]
    series = TrafficMatrixSeries(("a", "b", "c"), snaps, interval=1.0)
    sub = series.slice(1, 3)
    assert len(sub) == 2
    assert sub[0].rate("a", "b") == 1.0


def test_empty_series_mean_raises():
    series = TrafficMatrixSeries(("a", "b", "c"), [], interval=1.0)
    with pytest.raises(ValueError):
        series.mean()
    with pytest.raises(ValueError):
        series.peak()


def test_series_from_arrays():
    arrays = [np.zeros((3, 3)), np.ones((3, 3)) - np.eye(3)]
    series = series_from_arrays(["a", "b", "c"], arrays, interval=5.0)
    assert len(series) == 2
    assert series.interval == 5.0
