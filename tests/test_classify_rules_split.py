"""Tests for match rules, prefix handling, and sub-class splitting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classify.rules import (
    format_prefix,
    MatchRule,
    parse_prefix,
    prefix_cube,
)
from repro.classify.fields import DEFAULT_FIELDS
from repro.classify.split import (
    fraction_to_prefixes,
    range_to_cidr_count,
    range_to_cidrs,
    SubclassSplit,
)


# ---------------------------------------------------------------------------
# Prefix parsing
# ---------------------------------------------------------------------------
def test_parse_prefix_basics():
    lo, hi = parse_prefix("10.1.1.0/24")
    assert hi - lo + 1 == 256
    assert format_prefix(lo, 24) == "10.1.1.0/24"
    lo32, hi32 = parse_prefix("1.2.3.4")
    assert lo32 == hi32


def test_parse_prefix_masks_host_bits():
    lo, hi = parse_prefix("10.1.1.77/24")
    assert format_prefix(lo, 24) == "10.1.1.0/24"


@pytest.mark.parametrize(
    "bad", ["10.1.1/24", "10.1.1.256/24", "10.1.1.0/33", "abc", "1.2.3.4.5/8"]
)
def test_parse_prefix_rejects_garbage(bad):
    with pytest.raises(ValueError):
        parse_prefix(bad)


def test_prefix_cube_fields():
    c = prefix_cube(DEFAULT_FIELDS, src="10.0.0.0/8", proto="tcp", dst_port=(80, 80))
    assert c.contains({"src_ip": parse_prefix("10.1.2.3")[0], "proto": 6, "dst_port": 80})
    assert not c.contains({"src_ip": parse_prefix("11.0.0.1")[0], "proto": 6, "dst_port": 80})
    with pytest.raises(ValueError):
        prefix_cube(DEFAULT_FIELDS, proto="quic")


def test_match_rule_predicate_and_entries():
    rule = MatchRule(src="10.1.0.0/16", proto="udp")
    assert rule.to_predicate().volume() > 0
    assert rule.tcam_entries() == 1
    ranged = MatchRule(dst_port=(1024, 65535))
    assert ranged.tcam_entries() > 1  # port range expands
    assert "src=10.1.0.0/16" in MatchRule(src="10.1.0.0/16").describe()


# ---------------------------------------------------------------------------
# Range -> CIDR
# ---------------------------------------------------------------------------
def test_range_to_cidrs_aligned_single_block():
    assert range_to_cidrs(0, 255, bits=32) == [(0, 24)]
    assert range_to_cidrs(128, 255, bits=8) == [(128, 1)]


def test_range_to_cidrs_worst_case():
    # [1, 2^32-2] is the classic worst case: 62 blocks.
    assert range_to_cidr_count(1, (1 << 32) - 2, bits=32) == 62


def test_range_to_cidrs_rejects_bad_ranges():
    with pytest.raises(ValueError):
        range_to_cidrs(5, 4)
    with pytest.raises(ValueError):
        range_to_cidrs(0, 256, bits=8)


@given(st.integers(0, 1023), st.integers(0, 1023))
@settings(max_examples=100, deadline=None)
def test_range_to_cidrs_exact_cover(a, b):
    """Property: blocks tile the range exactly, in order, no overlap."""
    lo, hi = min(a, b), max(a, b)
    blocks = range_to_cidrs(lo, hi, bits=10)
    cursor = lo
    for base, plen in blocks:
        size = 1 << (10 - plen)
        assert base == cursor  # contiguous
        assert base % size == 0  # aligned
        cursor += size
    assert cursor == hi + 1


# ---------------------------------------------------------------------------
# fraction_to_prefixes (the paper's Sec. V-A example)
# ---------------------------------------------------------------------------
def test_paper_example():
    assert fraction_to_prefixes("10.1.1.0/24", 0.5, 1.0) == ["10.1.1.128/25"]


def test_quarters():
    assert fraction_to_prefixes("10.1.1.0/24", 0.0, 0.25) == ["10.1.1.0/26"]
    assert fraction_to_prefixes("10.1.1.0/24", 0.25, 0.5) == ["10.1.1.64/26"]


def test_unaligned_fraction_needs_multiple_prefixes():
    prefixes = fraction_to_prefixes("10.1.1.0/24", 0.0, 0.3)
    assert len(prefixes) > 1


def test_fraction_bounds_validated():
    with pytest.raises(ValueError):
        fraction_to_prefixes("10.1.1.0/24", 0.5, 0.5)
    with pytest.raises(ValueError):
        fraction_to_prefixes("10.1.1.0/24", -0.1, 0.5)


# ---------------------------------------------------------------------------
# SubclassSplit
# ---------------------------------------------------------------------------
def test_split_from_weights():
    split = SubclassSplit.from_weights("10.0.0.0/16", [1.0, 1.0, 2.0])
    assert split.num_subclasses == 3
    assert split.weight(0) == pytest.approx(0.25)
    assert split.weight(2) == pytest.approx(0.5)
    assert split.boundaries[-1] == 1.0


def test_split_hash_lookup():
    split = SubclassSplit.from_weights("10.0.0.0/16", [0.5, 0.5])
    assert split.subclass_of_hash(0.1) == 0
    assert split.subclass_of_hash(0.75) == 1
    with pytest.raises(ValueError):
        split.subclass_of_hash(1.0)


def test_split_prefix_realisation_counts():
    split = SubclassSplit.from_weights("10.0.0.0/16", [0.25, 0.25, 0.5])
    assert split.total_prefix_rules() == 3  # aligned: one prefix each
    uneven = SubclassSplit.from_weights("10.0.0.0/16", [0.3, 0.7])
    assert uneven.total_prefix_rules() > 2


def test_split_invalid_weights():
    with pytest.raises(ValueError):
        SubclassSplit.from_weights("10.0.0.0/16", [])
    with pytest.raises(ValueError):
        SubclassSplit.from_weights("10.0.0.0/16", [-1.0, 2.0])
    with pytest.raises(ValueError):
        SubclassSplit.from_weights("10.0.0.0/16", [0.0, 0.0])


@given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_split_weights_partition_hash_domain(weights):
    """Property: hash ranges tile [0,1) and weights renormalise exactly."""
    split = SubclassSplit.from_weights("10.0.0.0/8", weights)
    total = sum(split.weight(i) for i in range(split.num_subclasses))
    assert total == pytest.approx(1.0)
    for i in range(split.num_subclasses - 1):
        assert split.hash_range(i)[1] == pytest.approx(split.hash_range(i + 1)[0])


@given(st.lists(st.floats(0.05, 5.0), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_split_prefixes_cover_class_block(weights):
    """Property: the union of all sub-class prefixes covers the class."""
    split = SubclassSplit.from_weights("10.2.0.0/16", weights)
    from repro.classify.rules import parse_prefix

    covered = 0
    for i in range(split.num_subclasses):
        for p in split.prefixes(i):
            lo, hi = parse_prefix(p)
            covered += hi - lo + 1
    lo, hi = parse_prefix("10.2.0.0/16")
    assert covered == hi - lo + 1
