"""The three tagging scenarios of Fig. 3, reconstructed end to end.

Fig. 3: three classes share the path S1 → S2; each exercises a different
corner of the tagging scheme:

* ip1 → ip4 — packets traverse VNF instances in **multiple APPLE hosts**;
* ip2 → ip4 — packets are processed in a host **not connected to the
  ingress switch**;
* ip3 → ip4 — packets **originate within an APPLE host** (production VM),
  so the vSwitch, not the physical switch, performs classification.
"""

import pytest

from repro.core.placement import PlacementPlan
from repro.core.rulegen import RuleGenerator
from repro.core.subclasses import assign_subclasses
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import FIN, Packet
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


@pytest.fixture
def fig3():
    """Two switches, both with APPLE hosts, three classes as in Fig. 3."""
    topo = Topology(
        "fig3",
        ["S1", "S2"],
        [Link("S1", "S2")],
        hosts={"S1": AppleHostSpec(cores=64), "S2": AppleHostSpec(cores=64)},
    )
    chain2 = PolicyChain(["firewall", "ids"])
    chain1 = PolicyChain(["firewall"])
    classes = [
        # ip1: firewall at S1's host, ids at S2's host (multi-host traversal).
        TrafficClass("ip1", "S1", "S2", ("S1", "S2"), chain2, 100.0),
        # ip2: processed only at S2's host (not the ingress switch's).
        TrafficClass("ip2", "S1", "S2", ("S1", "S2"), chain1, 100.0),
        # ip3: originates inside S1's APPLE host, firewall at S1.
        TrafficClass("ip3", "S1", "S2", ("S1", "S2"), chain1, 100.0),
    ]
    plan = PlacementPlan(
        quantities={
            ("S1", "firewall"): 1,
            ("S2", "ids"): 1,
            ("S2", "firewall"): 1,
        },
        distribution={
            ("ip1", 0, 0): 1.0,  # firewall at S1
            ("ip1", 1, 1): 1.0,  # ids at S2
            ("ip2", 1, 0): 1.0,  # firewall at S2
            ("ip3", 0, 0): 1.0,  # firewall at S1 (local to origin host)
        },
        classes=classes,
        catalog=DEFAULT_CATALOG,
        objective=3.0,
    )
    sub_plan = assign_subclasses(plan)
    gen = RuleGenerator(DEFAULT_CATALOG)
    rules = gen.generate(plan.classes, sub_plan, host_originated={"ip3"})
    network = DataPlaneNetwork(topo)
    gen.install(rules, network, plan.classes)
    return network, rules


def test_scenario_ip1_multiple_hosts(fig3):
    network, rules = fig3
    p = Packet(class_id="ip1", flow_hash=0.5, src="S1", dst="S2")
    record = network.inject(p)
    assert record.policy_satisfied
    vnfs = [v.split("[")[0] for v in p.vnfs_visited()]
    assert vnfs == ["firewall", "ids"]
    # Two distinct vSwitches were traversed.
    vswitches = [n for k, n in p.trace if k == "vswitch"]
    assert vswitches == ["ovs-S1", "ovs-S2"]


def test_scenario_ip2_remote_host(fig3):
    network, rules = fig3
    p = Packet(class_id="ip2", flow_hash=0.5, src="S1", dst="S2")
    record = network.inject(p)
    assert record.policy_satisfied
    # Tagged at S1 with host ID S2, processed only there.
    vswitches = [n for k, n in p.trace if k == "vswitch"]
    assert vswitches == ["ovs-S2"]
    assert p.host_tag == FIN


def test_scenario_ip3_host_originated(fig3):
    network, rules = fig3
    p = Packet(class_id="ip3", flow_hash=0.5, src="S1", dst="S2")
    record = network.inject_from_host(p)
    assert record.policy_satisfied
    # Classification happened in the vSwitch (origin table), not at the
    # physical ingress — S1's switch table holds no rule for ip3.
    s1_rules = rules.switch_rule_sets.get("S1")
    assert s1_rules is None or all(
        c[0] != "ip3" for c in s1_rules.classifications
    )
    assert network.vswitches["S1"].origin_rule_count == 1
    vnfs = [v.split("[")[0] for v in p.vnfs_visited()]
    assert vnfs == ["firewall"]


def test_scenario_ip3_missing_origin_rule_raises(fig3):
    network, _ = fig3
    p = Packet(class_id="ip1", flow_hash=0.5, src="S1", dst="S2")
    with pytest.raises(KeyError):
        network.inject_from_host(p)  # ip1 is not host-originated


def test_subclass_tags_remain_unchanged_in_network(fig3):
    """Sec. V-B: 'The Sub-class tagging field remains unchanged'."""
    network, _ = fig3
    p = Packet(class_id="ip1", flow_hash=0.5, src="S1", dst="S2")
    network.inject(p)
    assert p.subclass_tag is not None
    tag_at_ingress = p.subclass_tag
    # Inject a second packet and check the tag never mutates mid-path by
    # re-walking with a tap: the final tag equals the ingress tag.
    assert p.subclass_tag == tag_at_ingress
