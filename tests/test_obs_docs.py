"""Docs-coverage: the metric catalog in the docs matches the code.

Every metric registered via the central catalog must appear in
``docs/OBSERVABILITY.md``'s catalog table with the right type and
labels — and the doc must not list metrics that no longer exist.
"""

import re
from pathlib import Path

from repro.obs.catalog import CATALOG, catalog_names, register_all
from repro.obs.metrics import MetricsRegistry

DOC = Path(__file__).parent.parent / "docs" / "OBSERVABILITY.md"

ROW_RE = re.compile(
    r"^\| `(?P<name>[a-z][a-z0-9_]*)` \| (?P<type>counter|gauge|histogram)"
    r"(?: \([a-z ]+\))? \| (?P<labels>[^|]+) \|"
)


def _documented_rows():
    rows = {}
    for line in DOC.read_text().splitlines():
        m = ROW_RE.match(line)
        if m:
            labels = re.findall(r"`([a-z0-9_]+)`", m.group("labels"))
            rows[m.group("name")] = (m.group("type"), tuple(labels))
    return rows


def test_doc_exists_and_has_rows():
    assert DOC.exists(), "docs/OBSERVABILITY.md missing"
    assert len(_documented_rows()) >= 30


def test_every_catalog_metric_is_documented():
    documented = _documented_rows()
    missing = [n for n in catalog_names() if n not in documented]
    assert not missing, (
        f"metrics registered in repro/obs/catalog.py but absent from "
        f"docs/OBSERVABILITY.md: {missing}"
    )


def test_no_stale_documented_metrics():
    documented = _documented_rows()
    stale = [n for n in documented if n not in catalog_names()]
    assert not stale, (
        f"metrics documented in docs/OBSERVABILITY.md but no longer in "
        f"repro/obs/catalog.py: {stale}"
    )


def test_documented_types_and_labels_match():
    documented = _documented_rows()
    for d in CATALOG:
        doc_type, doc_labels = documented[d.name]
        assert doc_type == d.kind, f"{d.name}: doc says {doc_type}, code {d.kind}"
        assert doc_labels == d.labels, (
            f"{d.name}: doc labels {doc_labels}, code labels {d.labels}"
        )


def test_registry_contents_equal_catalog():
    """enable() registers exactly the catalog — nothing ad hoc."""
    reg = MetricsRegistry()
    register_all(reg)
    assert reg.names() == list(catalog_names())
