"""Tests for the Optimization Engine against the paper's constraints."""

import pytest

from repro.core.engine import EngineConfig, OptimizationEngine, PlacementError
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


def _cls(cid, src, dst, path, chain, rate):
    return TrafficClass(cid, src, dst, tuple(path), PolicyChain(chain), rate)


def _place(classes, cores, **cfg):
    engine = OptimizationEngine(config=EngineConfig(**cfg))
    return engine.place(classes, cores)


LINE = ("a", "b", "c")
CORES = {"a": 64, "b": 64, "c": 64}


def test_single_class_single_nf():
    plan = _place([_cls("c1", "a", "c", LINE, ["firewall"], 100.0)], CORES)
    assert plan.total_instances() == 1
    assert not plan.validate(CORES)
    # The whole class is processed at exactly one position.
    total = sum(plan.portion("c1", i, 0) for i in range(3))
    assert total == pytest.approx(1.0)


def test_capacity_forces_multiple_instances():
    plan = _place([_cls("c1", "a", "c", LINE, ["firewall"], 2000.0)], CORES)
    # 2000 Mbps / 900 Mbps → at least 3 instances.
    assert plan.total_instances() >= 3
    assert not plan.validate(CORES)


def test_classes_share_instances():
    """Resource multiplexing: two small same-path classes share one instance."""
    classes = [
        _cls("c1", "a", "c", LINE, ["firewall"], 100.0),
        _cls("c2", "a", "c", LINE, ["firewall"], 100.0),
    ]
    plan = _place(classes, CORES)
    assert plan.total_instances() == 1


def test_crossing_paths_multiplex_at_shared_switch():
    """Classes crossing at b can share instances only APPLE-style."""
    cores = {"b": 64}  # host only at the crossing switch
    classes = [
        _cls("c1", "a", "c", ("a", "b", "c"), ["firewall"], 100.0),
        _cls("c2", "d", "e", ("d", "b", "e"), ["firewall"], 100.0),
    ]
    plan = _place(classes, cores)
    assert plan.total_instances() == 1
    assert plan.quantity("b", "firewall") == 1


def test_chain_order_constraint_holds():
    classes = [_cls("c1", "a", "c", LINE, ["nat", "firewall", "ids"], 500.0)]
    plan = _place(classes, CORES)
    assert not plan.validate(CORES)
    # Cumulative of step j never exceeds cumulative of step j-1 (Eq. 3).
    for j in range(1, 3):
        cum_prev = cum_cur = 0.0
        for i in range(3):
            cum_prev += plan.portion("c1", i, j - 1)
            cum_cur += plan.portion("c1", i, j)
            assert cum_cur <= cum_prev + 1e-6


def test_no_host_on_path_raises():
    classes = [_cls("c1", "a", "c", LINE, ["firewall"], 10.0)]
    with pytest.raises(PlacementError):
        _place(classes, {"z": 64})


def test_duplicate_class_ids_rejected():
    c = _cls("c1", "a", "c", LINE, ["firewall"], 10.0)
    with pytest.raises(PlacementError):
        _place([c, c], CORES)


def test_infeasible_resources_raise():
    # IDS needs 8 cores; only 4 available anywhere.
    classes = [_cls("c1", "a", "c", LINE, ["ids"], 10.0)]
    with pytest.raises(PlacementError):
        _place(classes, {"a": 4, "b": 4, "c": 4})


def test_resource_constraint_respected():
    # One switch with room for exactly one IDS; demand needs two; second
    # must land elsewhere.
    cores = {"a": 8, "b": 8, "c": 0}
    classes = [_cls("c1", "a", "c", LINE, ["ids"], 1000.0)]
    plan = _place(classes, cores)
    assert not plan.validate(cores)
    assert plan.quantity("a", "ids") + plan.quantity("b", "ids") >= 2


def test_zero_rate_class_still_covered():
    """Proactive provisioning: near-idle classes get a (shared) instance."""
    classes = [
        _cls("c1", "a", "c", LINE, ["firewall"], 0.0),
        _cls("c2", "a", "c", LINE, ["firewall"], 100.0),
    ]
    plan = _place(classes, CORES)
    assert plan.total_instances() == 1
    total = sum(plan.portion("c1", i, 0) for i in range(3))
    assert total == pytest.approx(1.0)


def test_capacity_headroom_scales_instances():
    classes = [_cls("c1", "a", "c", LINE, ["firewall"], 890.0)]
    tight = _place(classes, CORES, capacity_headroom=1.0)
    slack = _place(classes, CORES, capacity_headroom=0.5)
    assert tight.total_instances() == 1
    assert slack.total_instances() == 2  # 890 > 0.5 * 900


def test_exact_solver_small_instance():
    classes = [
        _cls("c1", "a", "c", LINE, ["firewall", "ids"], 400.0),
        _cls("c2", "a", "c", LINE, ["firewall"], 300.0),
    ]
    exact = _place(classes, CORES, solver="exact")
    rounded = _place(classes, CORES, solver="rounding")
    assert not exact.validate(CORES)
    assert exact.total_instances() <= rounded.total_instances()


def test_bad_solver_name_rejected():
    with pytest.raises(ValueError):
        EngineConfig(solver="magic")


def test_consolidation_reduces_or_preserves():
    classes = [
        _cls(f"c{k}", "a", "c", LINE, ["firewall"], 30.0) for k in range(6)
    ]
    with_c = _place(classes, CORES, consolidate=True)
    without = _place(classes, CORES, consolidate=False)
    assert with_c.total_instances() <= without.total_instances()
    assert not with_c.validate(CORES)


def test_solve_seconds_recorded():
    plan = _place([_cls("c1", "a", "c", LINE, ["nat"], 10.0)], CORES)
    assert plan.solve_seconds > 0
    assert plan.lp_bound <= plan.objective + 1e-9
