"""Decomposed placement: partition, coordination, and equivalence tests.

The contract under test (DESIGN.md "Decomposed placement"):

* below ``min_classes`` the decomposed engine is a bit-identical
  passthrough to the monolithic one;
* forced decomposition agrees with the monolithic engine on feasibility
  and stays within the provable rounding gap on the objective
  (``dec <= mono + #slots``: the load/capacity sum is invariant under
  re-distribution, and the trim pass pays at most one ceiling per slot);
* partitions that share no saturated host merge bit-identically;
* per-shard warm re-solves are bit-identical to cold solves;
* ``estimate_solve_seconds`` is shard-aware, so deadlines that the
  decomposition can meet no longer degrade to the greedy placer.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.decompose import (
    DecomposeConfig,
    DecomposedEngine,
    _allocate,
    _repair_allocation,
    auto_shard_count,
    partition_classes,
    structure_weight,
)
from repro.core.engine import EngineConfig, OptimizationEngine, PlacementError
from repro.traffic.classes import TrafficClass
from repro.traffic.hyperscale import scale_rates
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG

SWITCHES = ["s0", "s1", "s2", "s3", "s4"]
NFS = DEFAULT_CATALOG.names


def mk_class(cid, path, chain, rate):
    return TrafficClass(cid, path[0], path[-1], tuple(path), PolicyChain(chain), rate)


@st.composite
def instances(draw):
    """Random multi-ingress instances over the 5-switch line."""
    num_classes = draw(st.integers(2, 6))
    classes = []
    for k in range(num_classes):
        start = draw(st.integers(0, 2))
        end = draw(st.integers(start + 1, 4))
        path = tuple(SWITCHES[start : end + 1])
        chain_len = draw(st.integers(1, 3))
        chain = draw(st.permutations(NFS).map(lambda p: list(p[:chain_len])))
        rate = draw(st.floats(min_value=1.0, max_value=2500.0))
        classes.append(
            TrafficClass(f"c{k}", path[0], path[-1], path, PolicyChain(chain), rate)
        )
    cores = {s: draw(st.sampled_from([0, 32, 64, 128])) for s in SWITCHES}
    return classes, cores


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
def test_partition_covers_every_class_exactly_once():
    classes = [
        mk_class(f"c{k}", SWITCHES[k % 3 :], ["firewall"], 100.0) for k in range(9)
    ]
    cores = {s: 64 for s in SWITCHES}
    parts = partition_classes(classes, cores, 3)
    seen = sorted(i for p in parts for i in p)
    assert seen == list(range(9))


def test_partition_keeps_ingress_groups_together():
    classes = [
        mk_class(f"c{k}", SWITCHES[k % 3 :], ["firewall"], 100.0) for k in range(9)
    ]
    cores = {s: 64 for s in SWITCHES}
    for shards in (2, 3):
        parts = partition_classes(classes, cores, shards)
        for part in parts:
            srcs = {classes[i].src for i in part}
            # every ingress group lands whole in exactly one shard
            for src in srcs:
                members = [i for i, c in enumerate(classes) if c.src == src]
                assert set(members) <= set(part)


def test_partition_is_deterministic_and_rate_free():
    classes = [
        mk_class(f"c{k}", SWITCHES[k % 3 :], ["firewall", "proxy"], 100.0 + k)
        for k in range(12)
    ]
    cores = {s: 64 for s in SWITCHES}
    a = partition_classes(classes, cores, 4)
    b = partition_classes(classes, cores, 4)
    assert a == b
    # rates must not influence the partition (snapshot stability)
    scaled = scale_rates(classes, 7.5)
    assert partition_classes(scaled, cores, 4) == a


def test_partition_caps_at_ingress_group_count():
    classes = [mk_class(f"c{k}", SWITCHES, ["firewall"], 50.0) for k in range(5)]
    cores = {s: 64 for s in SWITCHES}
    parts = partition_classes(classes, cores, 8)
    assert len(parts) == 1  # single ingress group -> one shard
    with pytest.raises(ValueError):
        partition_classes(classes, cores, 0)


def test_auto_shard_count_scales_with_model_size():
    cores = {s: 64 for s in SWITCHES}
    small = [mk_class(f"c{k}", SWITCHES[k % 3 :], ["firewall"], 10.0) for k in range(6)]
    assert auto_shard_count(small, cores) == 1
    big = [
        mk_class(f"c{k}", SWITCHES[k % 3 :], list(NFS[:4]), 10.0) for k in range(3000)
    ]
    n = auto_shard_count(big, cores)
    assert 1 < n <= 3  # capped by the 3 ingress groups
    total = sum(structure_weight(c, cores) for c in big)
    assert n == min(3, math.ceil(total / 2500))


# ---------------------------------------------------------------------------
# Capacity allocation primitives
# ---------------------------------------------------------------------------
def test_allocate_proportional_and_never_oversubscribes():
    weights = [{"a": 3.0, "b": 1.0}, {"a": 1.0}, {"a": 0.0, "b": 1.0}]
    grants = _allocate(weights, {"a": 64, "b": 10, "c": 4})
    assert sum(g.get("a", 0) for g in grants) <= 64
    assert sum(g.get("b", 0) for g in grants) <= 10
    assert grants[0]["a"] == 48 and grants[1]["a"] == 16
    assert "a" not in grants[2]  # zero weight -> no grant
    assert all("c" not in g for g in grants)  # nobody asked for c
    assert grants == _allocate(weights, {"a": 64, "b": 10, "c": 4})


def test_repair_allocation_tops_up_starved_shard():
    classes = [
        mk_class("big", ["s0", "s1"], ["ids"], 100.0),  # IDS needs 8 cores
        mk_class("small", ["s0", "s1"], ["firewall"], 100.0),
    ]
    cores = {"s0": 0, "s1": 16}
    # proportional rounding left shard 0 with 2 cores at the only host
    alloc = [{"s1": 2}, {"s1": 14}]
    _repair_allocation(alloc, classes, [[0], [1]], cores, DEFAULT_CATALOG)
    need = DEFAULT_CATALOG.get("ids").cores
    assert alloc[0]["s1"] >= need
    assert sum(a.get("s1", 0) for a in alloc) <= 16
    assert alloc[1]["s1"] >= 1  # donor never drained below one core


# ---------------------------------------------------------------------------
# Passthrough and equivalence
# ---------------------------------------------------------------------------
def _plans_identical(a, b):
    assert a.quantities == b.quantities
    assert a.distribution == b.distribution
    assert a.objective == b.objective
    assert a.lp_bound == b.lp_bound


def test_small_instance_is_bit_identical_passthrough():
    classes = [
        mk_class(f"c{k}", SWITCHES[k % 2 :], ["firewall", "proxy"], 300.0 + k)
        for k in range(8)
    ]
    cores = {s: 64 for s in SWITCHES}
    dec = DecomposedEngine()
    mono = OptimizationEngine()
    plan = dec.place(classes, cores)
    _plans_identical(plan, mono.place(classes, cores))
    assert dec.mono_passthroughs == 1
    assert dec.decomposed_solves == 0


def test_single_ingress_group_resolves_to_monolithic():
    classes = [mk_class(f"c{k}", SWITCHES, ["firewall"], 200.0) for k in range(10)]
    cores = {s: 64 for s in SWITCHES}
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=4, min_classes=0))
    plan = dec.place(classes, cores)
    assert dec.mono_passthroughs == 1  # effective shard count is 1
    _plans_identical(plan, OptimizationEngine().place(classes, cores))


def test_disjoint_partitions_merge_bit_identically():
    """Shards sharing no saturated host merge to the union of the
    per-group monolithic solves, bit for bit (the joint LP may pick a
    different — equally optimal — vertex, so the comparison is against
    what the monolithic engine does to each partition)."""
    left = [mk_class(f"l{k}", ["s0", "s1"], ["firewall", "proxy"], 400.0) for k in range(3)]
    right = [mk_class(f"r{k}", ["s3", "s4"], ["nat", "firewall"], 700.0) for k in range(3)]
    classes = left + right
    cores = {"s0": 64, "s1": 64, "s2": 0, "s3": 64, "s4": 64}
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=2, min_classes=0))
    plan = dec.place(classes, cores)
    assert dec.decomposed_solves == 1 and dec.mono_fallbacks == 0
    mono = OptimizationEngine()
    union: dict = {}
    for group in (right, left):  # partition order must not matter
        for slot, count in mono.place(group, cores).quantities.items():
            union[slot] = union.get(slot, 0) + count
    assert plan.quantities == union
    assert plan.total_instances() == mono.place(classes, cores).total_instances()
    assert plan.validate(cores) == []


@given(instances())
@settings(max_examples=30, deadline=None)
def test_decomposed_matches_monolithic_feasibility(instance):
    classes, cores = instance
    mono = OptimizationEngine(config=EngineConfig())
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=2, min_classes=0))
    try:
        mono_plan = mono.place(classes, cores)
    except PlacementError:
        # The monolithic ceiling-repair heuristic gave up.  The shards
        # are smaller models, so the decomposition may still succeed —
        # but whatever it returns must be a valid placement.
        try:
            plan = dec.place(classes, cores)
        except PlacementError:
            return
        assert plan.validate(cores) == []
        return
    plan = dec.place(classes, cores)  # mono feasible -> dec must be too
    problems = plan.validate(cores)
    assert problems == [], problems
    # provable rounding gap: the load/capacity sum is distribution-
    # invariant, and the merged trim pays at most one ceiling per slot
    assert plan.total_instances() <= mono_plan.total_instances() + len(
        plan.quantities
    )
    assert plan.total_instances() >= mono_plan.lp_bound - 1e-6


@given(instances())
@settings(max_examples=15, deadline=None)
def test_decomposed_warm_resolve_bit_identical_to_cold(instance):
    classes, cores = instance
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=2, min_classes=0))
    try:
        first = dec.place(classes, cores)
    except PlacementError:
        return
    again = dec.place(classes, cores)  # warm re-solve, same rates
    assert again.quantities == first.quantities
    assert again.distribution == first.distribution
    assert again.warm_start


def test_warm_snapshot_equals_cold_solve_of_same_rates():
    """Rate-only snapshots re-solved warm match a cold engine bitwise."""
    base = [
        mk_class(f"c{k}", SWITCHES[k % 3 :], ["firewall", "proxy"], 150.0 + 10 * k)
        for k in range(12)
    ]
    cores = {s: 64 for s in SWITCHES}
    cfg = DecomposeConfig(shards=3, min_classes=0)
    warm = DecomposedEngine(decompose=cfg)
    warm.place(base, cores)  # cold build
    for factor in (1.4, 0.6):
        snapshot = scale_rates(base, factor)
        warm_plan = warm.place(snapshot, cores)
        cold_plan = DecomposedEngine(decompose=cfg).place(snapshot, cores)
        assert warm_plan.warm_start and not cold_plan.warm_start
        assert warm_plan.quantities == cold_plan.quantities
        assert warm_plan.distribution == cold_plan.distribution
    assert warm.warm_solves >= 6  # 3 shards x 2 snapshots


# ---------------------------------------------------------------------------
# Coordination under contention
# ---------------------------------------------------------------------------
def test_contended_hosts_converge_to_a_valid_plan():
    """Two ingress groups squeezed onto two shared hosts stay feasible."""
    shared = {"s0": 0, "s1": 0, "s2": 24, "s3": 24, "s4": 0}
    a = [mk_class(f"a{k}", SWITCHES, ["firewall", "proxy"], 800.0) for k in range(3)]
    b = [
        mk_class(f"b{k}", SWITCHES[1:], ["nat", "firewall"], 800.0) for k in range(3)
    ]
    classes = a + b
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=2, min_classes=0))
    plan = dec.place(classes, shared)
    assert plan.validate(shared) == []
    # merged usage respects the shared-host capacities (Eq. 6 coupling)
    for sw, used in plan.cores_by_switch().items():
        assert used <= shared[sw]


def test_max_rounds_zero_falls_back_monolithic_on_contention():
    """With no coordination budget, contention latches the mono fallback."""
    shared = {"s0": 0, "s1": 0, "s2": 16, "s3": 16, "s4": 0}
    a = [mk_class(f"a{k}", SWITCHES, ["firewall"], 900.0) for k in range(2)]
    b = [mk_class(f"b{k}", SWITCHES[1:], ["firewall"], 900.0) for k in range(2)]
    classes = a + b
    dec = DecomposedEngine(
        decompose=DecomposeConfig(shards=2, min_classes=0, max_rounds=0)
    )
    plan = dec.place(classes, shared)
    assert plan.validate(shared) == []
    if dec.mono_fallbacks:
        # the latch is cached: the next snapshot skips coordination
        before = dec.mono_fallbacks
        dec.place(classes, shared)
        assert dec.mono_fallbacks == before + 1


def test_infeasible_instance_raises_like_monolithic():
    classes = [mk_class("c0", ["s0", "s1"], ["ids"], 5000.0)]
    cores = {"s0": 0, "s1": 4}  # IDS needs 8 cores: nowhere to stand
    with pytest.raises(PlacementError):
        OptimizationEngine().place(classes, cores)
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=2, min_classes=0))
    with pytest.raises(PlacementError):
        dec.place(classes, cores)


# ---------------------------------------------------------------------------
# Shard-aware solve estimates (deadline regression)
# ---------------------------------------------------------------------------
def _estimate_instance():
    classes = [
        mk_class(f"c{k}", SWITCHES[k % 3 :], ["firewall", "proxy", "nat"], 20.0)
        for k in range(240)
    ]
    cores = {s: 640 for s in SWITCHES}
    return classes, cores


def test_estimate_accounts_for_partitioned_model():
    classes, cores = _estimate_instance()
    mono = OptimizationEngine()
    est_mono = mono.estimate_solve_seconds(classes, cores)
    est_dec = mono.estimate_solve_seconds(classes, cores, shards=3)
    assert est_dec < est_mono  # superlinear model cost: shards are cheaper
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=3, min_classes=0))
    assert dec.estimate_solve_seconds(classes, cores) == pytest.approx(est_dec)
    # below min_classes the estimate is the monolithic one (passthrough)
    small = DecomposedEngine(decompose=DecomposeConfig(shards=3, min_classes=10_000))
    assert small.estimate_solve_seconds(classes, cores) == pytest.approx(est_mono)


def test_deadline_between_estimates_no_longer_degrades():
    """A deadline only the decomposition can meet runs the real solver."""
    classes, cores = _estimate_instance()
    mono = OptimizationEngine()
    est_mono = mono.estimate_solve_seconds(classes, cores)
    est_dec = mono.estimate_solve_seconds(classes, cores, shards=3)
    deadline = (est_mono + est_dec) / 2
    _, degraded = mono.place_with_deadline(classes, cores, deadline=deadline)
    assert degraded  # the monolithic estimate blows the deadline
    dec = DecomposedEngine(decompose=DecomposeConfig(shards=3, min_classes=0))
    plan, degraded = dec.place_with_deadline(classes, cores, deadline=deadline)
    assert not degraded
    assert plan.validate(cores) == []
    assert dec.deadline_fallbacks == 0
