"""Tests for the flash-crowd spike generator."""

import pytest

from repro.traffic.flashcrowd import (
    FlashCrowdConfig,
    FlashCrowdSchedule,
    SpikeEvent,
    generate_flash_crowd,
)

CLASSES = [f"c{i}" for i in range(10)]


def test_same_seed_same_schedule():
    a = generate_flash_crowd(CLASSES, FlashCrowdConfig(), seed=7)
    b = generate_flash_crowd(CLASSES, FlashCrowdConfig(), seed=7)
    assert a == b
    assert a.signature() == b.signature()


def test_different_seed_different_schedule():
    a = generate_flash_crowd(CLASSES, FlashCrowdConfig(), seed=1)
    b = generate_flash_crowd(CLASSES, FlashCrowdConfig(), seed=2)
    assert a.signature() != b.signature()


def test_schedule_independent_of_input_order():
    a = generate_flash_crowd(CLASSES, FlashCrowdConfig(), seed=3)
    b = generate_flash_crowd(list(reversed(CLASSES)), FlashCrowdConfig(), seed=3)
    assert a == b


def test_trapezoid_shape():
    ev = SpikeEvent(
        start=10.0, ramp=2.0, hold=4.0, decay=2.0, amplitude=5.0, targets=("x",)
    )
    assert ev.multiplier("x", 9.9) == 1.0          # before
    assert ev.multiplier("x", 11.0) == pytest.approx(3.0)   # mid-ramp
    assert ev.multiplier("x", 12.0) == pytest.approx(5.0)   # plateau start
    assert ev.multiplier("x", 15.0) == pytest.approx(5.0)   # plateau
    assert ev.multiplier("x", 17.0) == pytest.approx(3.0)   # mid-decay
    assert ev.multiplier("x", 18.1) == 1.0          # after
    assert ev.multiplier("other", 12.0) == 1.0      # untargeted class
    assert ev.end == pytest.approx(18.0)


def test_overlapping_spikes_stack_multiplicatively():
    sched = FlashCrowdSchedule(
        seed=0,
        events=(
            SpikeEvent(0.0, 0.0, 10.0, 0.0, 2.0, ("x",)),
            SpikeEvent(0.0, 0.0, 10.0, 0.0, 3.0, ("x",)),
        ),
    )
    assert sched.multiplier("x", 5.0) == pytest.approx(6.0)
    assert sched.multiplier("y", 5.0) == 1.0


def test_targets_respect_fraction_and_pool():
    config = FlashCrowdConfig(spikes=3, target_fraction=0.3)
    sched = generate_flash_crowd(CLASSES, config, seed=5)
    assert len(sched.events) == 3
    for ev in sched.events:
        assert len(ev.targets) == 3  # ceil(0.3 * 10)
        assert set(ev.targets) <= set(CLASSES)
        assert ev.amplitude >= 1.0
        assert ev.targets == tuple(sorted(ev.targets))


def test_empty_schedule():
    sched = FlashCrowdSchedule.empty(seed=9)
    assert sched.multiplier("anything", 100.0) == 1.0
    assert sched.horizon() == 0.0
    assert sched.windows() == ()
    assert generate_flash_crowd([], FlashCrowdConfig(), seed=9) == sched
