"""Tests for the LP/ILP layer: model builder, LP, rounding, branch & bound."""

import numpy as np
import pytest

from repro.solver.branch_bound import solve_branch_bound
from repro.solver.lp import solve_lp, SolverError
from repro.solver.model import LinExpr, Model, Sense
from repro.solver.rounding import solve_with_rounding


# ---------------------------------------------------------------------------
# Expressions and model building
# ---------------------------------------------------------------------------
def test_expression_arithmetic():
    m = Model()
    x = m.add_var("x")
    y = m.add_var("y")
    expr = 2 * x + y - 3
    assert expr.coeffs == {0: 2.0, 1: 1.0}
    assert expr.constant == -3.0
    expr2 = (x + y) * 2 + (1 - x)
    assert expr2.coeffs == {0: 1.0, 1: 2.0}
    assert expr2.constant == 1.0


def test_total_with_coefficient_pairs():
    m = Model()
    x, y = m.add_var("x"), m.add_var("y")
    expr = LinExpr.total([(3.0, x), (4.0, y), 5.0])
    assert expr.coeffs == {0: 3.0, 1: 4.0}
    assert expr.constant == 5.0


def test_constraint_senses():
    m = Model()
    x = m.add_var("x")
    le = x <= 5
    ge = x >= 1
    eq = LinExpr.of(x).eq(3)
    assert le.sense is Sense.LE and ge.sense is Sense.GE and eq.sense is Sense.EQ


def test_constraint_violation():
    m = Model()
    x = m.add_var("x")
    con = m.add_constraint(2 * x <= 4)
    assert con.violation(np.array([1.0])) == 0.0
    assert con.violation(np.array([3.0])) == pytest.approx(2.0)


def test_model_compile_shapes():
    m = Model()
    x = m.add_var("x", ub=10)
    y = m.add_var("y", integer=True)
    m.add_constraint(x + y <= 4)
    m.add_constraint(x - y >= 0)
    m.add_constraint((x + 2 * y).eq(2))
    m.minimize(x + y)
    cm = m.compile()
    assert cm.a_ub.shape == (2, 2)
    assert cm.a_eq.shape == (1, 2)
    assert cm.integer_mask.tolist() == [False, True]
    assert cm.ub_row_of == {0: 0, 1: 1}
    assert cm.eq_row_of == {2: 0}


def test_check_feasible_reports_violations():
    m = Model()
    x = m.add_var("x", lb=0, ub=1)
    m.add_constraint(x >= 0.5, name="half")
    m.minimize(LinExpr.of(x))
    assert m.check_feasible(np.array([0.7])) == []
    assert "half" in m.check_feasible(np.array([0.2]))
    assert "bounds[x]" in m.check_feasible(np.array([2.0]))


def test_invalid_bounds_rejected():
    m = Model()
    with pytest.raises(ValueError):
        m.add_var("x", lb=2, ub=1)


def test_objective_required():
    m = Model()
    m.add_var("x")
    with pytest.raises(ValueError):
        m.objective


# ---------------------------------------------------------------------------
# LP solving
# ---------------------------------------------------------------------------
def _simple_lp():
    # min x + y  s.t. x + y >= 2, x >= 0.5  ->  optimum 2 at (0.5, 1.5) etc.
    m = Model("simple")
    x = m.add_var("x")
    y = m.add_var("y")
    m.add_constraint(x + y >= 2)
    m.add_constraint(x >= 0.5)
    m.minimize(x + y)
    return m, x, y


def test_lp_known_optimum():
    m, x, y = _simple_lp()
    res = solve_lp(m)
    assert res.objective == pytest.approx(2.0)
    assert res.value_of(x) + res.value_of(y) == pytest.approx(2.0)


def test_lp_infeasible_raises():
    m = Model("inf")
    x = m.add_var("x", ub=1)
    m.add_constraint(x >= 2)
    m.minimize(LinExpr.of(x))
    with pytest.raises(SolverError):
        solve_lp(m)


def test_lp_unbounded_raises():
    m = Model("unb")
    x = m.add_var("x", lb=float("-inf"))
    m.minimize(LinExpr.of(x))
    with pytest.raises(SolverError):
        solve_lp(m)


def test_lp_extra_bounds_branching():
    m, x, y = _simple_lp()
    cm = m.compile()
    lbs = np.full(2, np.nan)
    lbs[x.index] = 1.5
    res = solve_lp(m, cm, extra_lower_bounds=lbs)
    assert res.value_of(x) >= 1.5 - 1e-9
    assert res.objective == pytest.approx(2.0)


def test_lp_b_ub_override():
    m = Model("ov")
    x = m.add_var("x")
    m.add_constraint(x <= 5, name="cap")
    m.minimize(-1 * x + 0)  # maximise x
    cm = m.compile()
    res = solve_lp(m, cm)
    assert res.value_of(x) == pytest.approx(5.0)
    override = cm.b_ub.copy()
    override[cm.ub_row_of[0]] = 2.0
    res2 = solve_lp(m, cm, b_ub_override=override)
    assert res2.value_of(x) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Integer solving: a covering problem with known optimum
# ---------------------------------------------------------------------------
def _covering_model(demands=(2.5, 1.2), cap=1.0):
    """min sum(q_i) s.t. q_i >= demand_i / cap, q integer → sum of ceils."""
    m = Model("cover")
    qs = [m.add_var(f"q{i}", integer=True) for i in range(len(demands))]
    for q, d in zip(qs, demands):
        m.add_constraint(cap * q >= d)
    m.minimize(LinExpr.total(qs))
    return m, qs


def test_rounding_matches_ceil_cover():
    m, qs = _covering_model()
    res = solve_with_rounding(m)
    assert res.objective == pytest.approx(3 + 2)
    assert res.lp_objective == pytest.approx(2.5 + 1.2)
    assert res.integrality_gap > 0


def test_branch_bound_matches_ceil_cover():
    m, qs = _covering_model()
    res = solve_branch_bound(m)
    assert res.status == "optimal"
    assert res.objective == pytest.approx(5.0)
    assert res.gap <= 1e-6


def test_branch_bound_beats_naive_rounding_on_knapsack():
    # min q1 + q2 s.t. 3 q1 + 2 q2 >= 4; LP gives 4/3, ILP optimum is 2
    # (q1=0,q2=2 or q1=2,q2=0 infeasible... q1=1,q2=1 = 5 >= 4 → obj 2).
    m = Model()
    q1 = m.add_var("q1", integer=True)
    q2 = m.add_var("q2", integer=True)
    m.add_constraint(3 * q1 + 2 * q2 >= 4)
    m.minimize(q1 + q2)
    bb = solve_branch_bound(m)
    assert bb.objective == pytest.approx(2.0)
    rnd = solve_with_rounding(m)
    assert rnd.objective >= bb.objective - 1e-9


def test_branch_bound_infeasible():
    m = Model()
    q = m.add_var("q", integer=True, ub=1)
    m.add_constraint(q >= 2)
    m.minimize(LinExpr.of(q))
    res = solve_branch_bound(m)
    assert res.status == "infeasible"


def test_rounding_integral_lp_shortcuts():
    m = Model()
    q = m.add_var("q", integer=True)
    m.add_constraint(q >= 3)
    m.minimize(LinExpr.of(q))
    res = solve_with_rounding(m)
    assert res.objective == pytest.approx(3.0)
    assert res.lp_solves == 1  # already integral


def test_rounding_respects_side_constraints():
    # Two resources: rounding up q1 would violate q1 + q2 <= 3 unless the
    # solver re-balances; final solution must satisfy everything.
    m = Model()
    q1 = m.add_var("q1", integer=True)
    q2 = m.add_var("q2", integer=True)
    m.add_constraint(1.4 * q1 + 1.4 * q2 >= 3.5)
    m.add_constraint(q1 + q2 <= 3)
    m.minimize(q1 + q2)
    res = solve_with_rounding(m)
    assert not m.check_feasible(res.solution)
    assert res.objective == pytest.approx(3.0)
