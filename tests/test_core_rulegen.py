"""Tests for the Rule Generator: Table III layouts + vSwitch rules."""

import pytest

from repro.core.placement import PlacementPlan
from repro.core.rulegen import RuleGenerator
from repro.core.subclasses import assign_subclasses
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import FIN, Packet
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


def _topo():
    return Topology(
        "line",
        ["a", "b", "c"],
        [Link("a", "b"), Link("b", "c")],
        hosts={
            "a": AppleHostSpec(cores=64),
            "b": AppleHostSpec(cores=64),
            "c": AppleHostSpec(cores=64),
        },
    )


def _cls(cid, rate, chain):
    return TrafficClass(cid, "a", "c", ("a", "b", "c"), PolicyChain(chain), rate)


def _plan(quantities, distribution, classes):
    return PlacementPlan(
        quantities=dict(quantities),
        distribution=dict(distribution),
        classes=list(classes),
        catalog=DEFAULT_CATALOG,
        objective=float(sum(quantities.values())),
    )


@pytest.fixture
def deployed():
    """A two-host deployment: nat at b, firewall split between b and c."""
    cls = _cls("c1", 800.0, ["nat", "firewall"])
    plan = _plan(
        {("b", "nat"): 1, ("b", "firewall"): 1, ("c", "firewall"): 1},
        {
            ("c1", 1, 0): 1.0,
            ("c1", 1, 1): 0.5,
            ("c1", 2, 1): 0.5,
        },
        [cls],
    )
    sub_plan = assign_subclasses(plan)
    gen = RuleGenerator(DEFAULT_CATALOG)
    rules = gen.generate(plan.classes, sub_plan)
    network = DataPlaneNetwork(_topo())
    instances = gen.install(rules, network, plan.classes)
    return plan, sub_plan, rules, network, instances


def test_classification_only_at_ingress(deployed):
    plan, sub_plan, rules, network, _ = deployed
    assert rules.switch_rule_sets["a"].classifications  # ingress has them
    for switch in ("b", "c"):
        rs = rules.switch_rule_sets.get(switch)
        assert rs is None or not rs.classifications


def test_host_match_only_where_instances_live(deployed):
    _, _, rules, _, _ = deployed
    assert rules.hosts_in_use == ["b", "c"]
    assert rules.switch_rule_sets["b"].host_match
    assert rules.switch_rule_sets["c"].host_match
    assert not rules.switch_rule_sets["a"].host_match


def test_vswitch_rules_group_consecutive_steps(deployed):
    _, sub_plan, rules, _, _ = deployed
    # Sub-class 0: nat@b then firewall@b → single vSwitch rule at b with
    # both instances and FIN exit.
    b_rules = {(cid, sid): rule for cid, sid, rule in rules.vswitch_rules["b"]}
    sub0 = sub_plan.subclasses("c1")[0]
    rule0 = b_rules[("c1", sub0.sub_id)]
    if sub0.switches() == ("b", "b"):
        assert len(rule0.instance_ids) == 2
        assert rule0.exit_host_tag == FIN
    # Sub-class routed b → c exits b tagged for c.
    multi = next(
        s for s in sub_plan.subclasses("c1") if s.switches() == ("b", "c")
    )
    rule_multi = b_rules[("c1", multi.sub_id)]
    assert rule_multi.exit_host_tag == "c"


def test_installed_network_enforces_policy(deployed):
    plan, sub_plan, rules, network, _ = deployed
    for h in (0.1, 0.4, 0.6, 0.9):
        p = Packet(class_id="c1", flow_hash=h, src="a", dst="c")
        record = network.inject(p)
        assert record.delivered and record.policy_satisfied
        vnf_types = [v.split("[")[0] for v in p.vnfs_visited()]
        assert vnf_types == ["nat", "firewall"]
        assert p.switches_visited() == ["a", "b", "c"]


def test_install_reuses_supplied_instances(deployed):
    plan, sub_plan, rules, _, instances = deployed
    gen = RuleGenerator(DEFAULT_CATALOG)
    network2 = DataPlaneNetwork(_topo())
    instances2 = gen.install(rules, network2, plan.classes, instances=instances)
    for key in instances:
        assert instances2[key] is instances[key]


def test_tag_allocator_sized(deployed):
    _, sub_plan, rules, _, _ = deployed
    assert rules.tag_allocator.host_id(FIN) == 0
    assert rules.tag_allocator.host_id("b") > 0
    assert (
        rules.tag_allocator.subclass_field.capacity
        >= sub_plan.max_subclasses_per_class()
    )


def test_generate_rejects_unknown_class():
    cls = _cls("c1", 100.0, ["nat"])
    plan = _plan({("b", "nat"): 1}, {("c1", 1, 0): 1.0}, [cls])
    sub_plan = assign_subclasses(plan)
    gen = RuleGenerator(DEFAULT_CATALOG)
    with pytest.raises(KeyError):
        gen.generate([], sub_plan)  # class list missing c1


def test_classification_counts(deployed):
    _, sub_plan, rules, _, _ = deployed
    assert rules.classification_rule_count() == sub_plan.total_subclasses()
