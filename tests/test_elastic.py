"""Tests for the elastic scaling loop: units + end-to-end flash crowd."""

import pytest

from repro.chaos import ChaosEngine, FaultSchedule
from repro.core.engine import EngineConfig
from repro.core.placement import PlacementPlan, diff_plans
from repro.elastic import (
    ADMIT,
    DEGRADE,
    SHED,
    ElasticConfig,
    ElasticController,
    HOLD,
    SCALE_IN,
    SCALE_OUT,
    HysteresisConfig,
    HysteresisState,
    admission_control,
    assign_slo_classes,
    decide,
    shed_order,
    utilization_snapshot,
)
from repro.elastic.slo import BRONZE, GOLD, SILVER, SLO_CLASSES
from repro.experiments.flash_crowd import _flash_row
from repro.experiments.harness import (
    REPLAY_HEADROOM,
    TOPOLOGY_DEMAND_MBPS,
    standard_setup,
)
from repro.sim.kernel import Simulator
from repro.southbound import SouthboundFabric
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


def _cls(cid, rate, chain=("firewall",)):
    return TrafficClass(
        class_id=cid,
        src="A",
        dst="B",
        path=("A", "B"),
        chain=PolicyChain(chain, DEFAULT_CATALOG),
        rate_mbps=rate,
    )


# ----------------------------------------------------------------------
# Hysteresis
# ----------------------------------------------------------------------
def test_hysteresis_dwell_before_scale_out():
    config = HysteresisConfig(up_dwell=2)
    state = HysteresisState()
    action, state = decide(config, state, 0.9)
    assert action == HOLD  # first breach arms the counter
    action, state = decide(config, state, 0.9)
    assert action == SCALE_OUT  # second consecutive breach fires
    assert state == HysteresisState()  # counters reset after an action


def test_hysteresis_dead_band_resets_dwell():
    config = HysteresisConfig(up_dwell=2)
    state = HysteresisState()
    _, state = decide(config, state, 0.9)
    _, state = decide(config, state, 0.6)  # back in the dead band
    action, state = decide(config, state, 0.9)
    assert action == HOLD  # the counter restarted from zero


def test_hysteresis_scale_in_needs_longer_dwell():
    config = HysteresisConfig(up_dwell=2, down_dwell=3)
    state = HysteresisState()
    actions = []
    for _ in range(3):
        action, state = decide(config, state, 0.1)
        actions.append(action)
    assert actions == [HOLD, HOLD, SCALE_IN]


def test_hysteresis_config_validates_band_ordering():
    with pytest.raises(ValueError):
        HysteresisConfig(high_watermark=0.5, target_utilization=0.6)


# ----------------------------------------------------------------------
# Monitor
# ----------------------------------------------------------------------
def test_utilization_snapshot_math():
    classes = [_cls("a", 450.0), _cls("b", 450.0)]
    plan = PlacementPlan(
        quantities={("A", "firewall"): 2},
        distribution={},
        classes=classes,
        catalog=DEFAULT_CATALOG,
        objective=2,
    )
    snap = utilization_snapshot(
        1.0, plan, {"a": 450.0, "b": 450.0}, DEFAULT_CATALOG, headroom=1.0
    )
    # firewall: 900 demand over 2 * 900 capacity = 0.5
    assert snap.max_utilization == pytest.approx(0.5)
    assert snap.utilization("firewall") == pytest.approx(0.5)
    assert snap.offered_mbps == pytest.approx(900.0)
    # Headroom derates capacity: same demand, 0.5 headroom => util 1.0.
    snap2 = utilization_snapshot(
        1.0, plan, {"a": 450.0, "b": 450.0}, DEFAULT_CATALOG, headroom=0.5
    )
    assert snap2.max_utilization == pytest.approx(1.0)


def test_utilization_snapshot_ignores_shed_classes():
    classes = [_cls("a", 450.0), _cls("b", 450.0)]
    plan = PlacementPlan(
        quantities={("A", "firewall"): 1},
        distribution={},
        classes=classes,
        catalog=DEFAULT_CATALOG,
        objective=1,
    )
    snap = utilization_snapshot(
        0.0, plan, {"a": 450.0}, DEFAULT_CATALOG, headroom=1.0
    )
    assert snap.max_utilization == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Admission oracle
# ----------------------------------------------------------------------
SLO = {"gold": GOLD, "cheap": BRONZE, "mid": SILVER}


def test_shed_order_is_weight_then_rate_then_id():
    offered = {"gold": 1.0, "cheap": 9.0, "mid": 5.0, "cheap2": 2.0}
    slo = {"gold": GOLD, "cheap": BRONZE, "cheap2": BRONZE, "mid": SILVER}
    order = shed_order(sorted(offered), offered, slo)
    assert order == ["cheap2", "cheap", "mid", "gold"]


def test_admission_admits_everything_when_feasible():
    plan = admission_control(
        ["a", "b"], {"a": 5.0, "b": 5.0}, {}, lambda r: True
    )
    assert plan.feasible
    assert all(d.action == ADMIT for d in plan.decisions)
    assert plan.admitted_rates() == {"a": 5.0, "b": 5.0}


def test_admission_degrades_before_shedding():
    # Capacity 8: bronze victim degraded to 2.5 (floor 0.25) fits.
    offered = {"keep": 5.0, "victim": 10.0}
    slo = {"keep": GOLD, "victim": BRONZE}
    plan = admission_control(
        sorted(offered), offered, slo, lambda r: sum(r.values()) <= 8.0
    )
    assert plan.feasible
    verdicts = {d.class_id: d.action for d in plan.decisions}
    assert verdicts == {"keep": ADMIT, "victim": DEGRADE}
    assert plan.degraded_caps() == {"victim": 2.5}


def test_admission_sheds_cheapest_first_and_fully():
    offered = {"g": 6.0, "s": 6.0, "b": 6.0}
    slo = {"g": GOLD, "s": SILVER, "b": BRONZE}
    plan = admission_control(
        sorted(offered), offered, slo, lambda r: sum(r.values()) <= 9.0
    )
    verdicts = {d.class_id: d.action for d in plan.decisions}
    # Bronze is shed outright (its degrade to 1.5 still leaves 13.5);
    # silver's degrade to 3.0 lands exactly at the budget.
    assert verdicts["b"] == SHED
    assert verdicts["s"] == DEGRADE
    assert verdicts["g"] == ADMIT
    assert plan.shed_ids() == ("b",)


def test_admission_extra_shed_extends_in_order():
    offered = {"g": 1.0, "s": 1.0, "b": 1.0}
    slo = {"g": GOLD, "s": SILVER, "b": BRONZE}
    plan = admission_control(
        sorted(offered), offered, slo, lambda r: True, extra_shed=2
    )
    verdicts = {d.class_id: d.action for d in plan.decisions}
    assert verdicts == {"b": SHED, "s": SHED, "g": ADMIT}


def test_assign_slo_classes_is_order_independent():
    ids = ["c2", "c0", "c1"]
    a = assign_slo_classes(ids)
    b = assign_slo_classes(sorted(ids))
    assert a == b
    assert {v.name for v in a.values()} <= set(SLO_CLASSES)


# ----------------------------------------------------------------------
# Plan diff
# ----------------------------------------------------------------------
def test_diff_plans_reports_slot_delta():
    classes = [_cls("a", 100.0)]
    old = PlacementPlan(
        quantities={("A", "firewall"): 2},
        distribution={},
        classes=classes,
        catalog=DEFAULT_CATALOG,
        objective=2,
    )
    new = PlacementPlan(
        quantities={("A", "firewall"): 1, ("B", "nat"): 1},
        distribution={},
        classes=classes,
        catalog=DEFAULT_CATALOG,
        objective=2,
    )
    delta = diff_plans(old, new)
    assert delta.retired == ("firewall[1]@A",)
    assert delta.added == ("nat[0]@B",)
    # -1 firewall (4 cores) + 1 nat (2 cores)
    assert delta.core_delta == -2
    assert diff_plans(old, old).is_noop


# ----------------------------------------------------------------------
# End to end: the flash-crowd scenario
# ----------------------------------------------------------------------
def test_flash_crowd_quick_row_scales_and_stays_clean():
    row, sig = _flash_row(2.0, seed=0, quick=True)
    out, in_, drained = row[2], row[3], row[5]
    pv_seconds, drift, verify = row[-3], row[-2], row[-1]
    assert out >= 1 and in_ >= 1  # the spike triggered both directions
    assert drained > 0  # scale-in actually retired instances
    assert pv_seconds == 0.0
    assert drift == 0
    assert verify == "OK"
    # Bit-identical rerun.
    _, sig2 = _flash_row(2.0, seed=0, quick=True)
    assert sig == sig2


def test_flash_crowd_high_amplitude_sheds_not_violates():
    row, _ = _flash_row(8.0, seed=0, quick=True)
    shed, pv_seconds, verify = row[7], row[-3], row[-1]
    assert shed > 0  # capacity exhaustion engaged the admission oracle
    assert pv_seconds == 0.0  # shed flows are quarantined, never misrouted
    assert verify == "OK"


def _baseline_run(with_disabled_elastic: bool):
    """A plain southbound run, optionally with a disabled elastic loop."""
    topo, controller, series = standard_setup(
        "internet2",
        snapshots=1,
        seed=0,
        demand_mbps=TOPOLOGY_DEMAND_MBPS["internet2"],
        engine_config=EngineConfig(capacity_headroom=REPLAY_HEADROOM),
    )
    sim = Simulator()
    deployment = controller.run(series.snapshots[0], sim=sim)
    fabric = SouthboundFabric(
        sim, deployment.network, 0, controller.rule_generator
    )
    controller.attach_southbound(fabric)
    engine = ChaosEngine(sim, controller, FaultSchedule.empty(0), southbound=fabric)
    if with_disabled_elastic:
        elastic = ElasticController(
            sim,
            controller,
            fabric,
            lambda now: {},
            config=ElasticConfig(enabled=False),
        )
        elastic.start()
        assert elastic.metrics.ticks_total == 0
    result = engine.run(until=6.0)
    return result.signature(), fabric.state_signature()


def test_disabled_loop_reproduces_baseline_bit_identically():
    assert _baseline_run(False) == _baseline_run(True)


def test_fabric_drain_is_opt_in():
    # Default fabric never drains, even across shrinking pushes.
    topo, controller, series = standard_setup(
        "internet2",
        snapshots=1,
        seed=0,
        demand_mbps=TOPOLOGY_DEMAND_MBPS["internet2"],
        engine_config=EngineConfig(capacity_headroom=REPLAY_HEADROOM),
    )
    sim = Simulator()
    deployment = controller.run(series.snapshots[0], sim=sim)
    fabric = SouthboundFabric(
        sim, deployment.network, 0, controller.rule_generator
    )
    assert fabric.drain_retired is False
    assert fabric.drained_total == 0
