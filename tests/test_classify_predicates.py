"""Unit tests for the cube/predicate algebra."""

import pytest

from repro.classify.fields import DEFAULT_FIELDS, FieldSpace, HeaderField
from repro.classify.predicates import Cube, Predicate

SMALL = FieldSpace([HeaderField("x", 4), HeaderField("y", 4)])


def cube(**kw):
    return Cube.make(SMALL, kw)


def pred(**kw):
    return Predicate.of_cube(cube(**kw))


# ---------------------------------------------------------------------------
# Fields
# ---------------------------------------------------------------------------
def test_field_domain():
    f = HeaderField("x", 4)
    assert f.max_value == 15
    assert f.size == 16
    with pytest.raises(ValueError):
        HeaderField("bad", 0)


def test_field_space_lookup():
    assert SMALL.field("x").bits == 4
    assert "y" in SMALL
    assert SMALL.total_volume() == 256
    with pytest.raises(KeyError):
        SMALL.field("z")
    with pytest.raises(ValueError):
        FieldSpace([HeaderField("x", 4), HeaderField("x", 8)])
    with pytest.raises(ValueError):
        FieldSpace([])


# ---------------------------------------------------------------------------
# Cubes
# ---------------------------------------------------------------------------
def test_cube_volume_and_contains():
    c = cube(x=(0, 7), y=(4, 4))
    assert c.volume() == 8
    assert c.contains({"x": 3, "y": 4})
    assert not c.contains({"x": 3, "y": 5})
    assert not c.contains({"x": 8, "y": 4})


def test_unconstrained_cube_is_everything():
    c = cube()
    assert c.volume() == 256
    assert c.contains({"x": 15, "y": 0})


def test_cube_out_of_range_rejected():
    with pytest.raises(ValueError):
        cube(x=(0, 16))
    with pytest.raises(ValueError):
        cube(x=(5, 3))


def test_cube_intersection():
    a = cube(x=(0, 7))
    b = cube(x=(4, 15), y=(0, 3))
    ab = a.intersect(b)
    assert ab is not None
    assert ab.volume() == 4 * 4  # x in 4..7, y in 0..3
    disjoint = cube(x=(0, 3)).intersect(cube(x=(8, 15)))
    assert disjoint is None


def test_cube_subtract_partitions():
    a = cube()
    b = cube(x=(4, 7), y=(4, 7))
    pieces = a.subtract(b)
    total = sum(p.volume() for p in pieces)
    assert total == 256 - 16
    # Pieces are disjoint from b and from each other.
    for p in pieces:
        assert p.intersect(b) is None
    for i in range(len(pieces)):
        for j in range(i + 1, len(pieces)):
            assert pieces[i].intersect(pieces[j]) is None


def test_cube_subtract_no_overlap_returns_self():
    a = cube(x=(0, 3))
    b = cube(x=(8, 15))
    assert a.subtract(b) == [a]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------
def test_everything_nothing():
    assert Predicate.everything(SMALL).volume() == 256
    assert Predicate.nothing(SMALL).is_empty()


def test_union_volume_exact_with_overlap():
    a = pred(x=(0, 7))  # 8 * 16 = 128
    b = pred(x=(4, 11))  # 128, overlap 64
    u = a.union(b)
    assert u.volume() == 128 + 128 - 64


def test_complement_partitions_space():
    p = pred(x=(0, 7), y=(0, 7))
    comp = p.complement()
    assert p.volume() + comp.volume() == 256
    assert not p.overlaps(comp)
    assert p.union(comp).volume() == 256


def test_subtract_and_subset():
    big = pred(x=(0, 11))
    small = pred(x=(4, 7))
    assert small.is_subset(big)
    assert not big.is_subset(small)
    assert big.subtract(small).volume() == big.volume() - small.volume()


def test_equals_semantic():
    a = pred(x=(0, 7)).union(pred(x=(8, 15)))
    b = Predicate.everything(SMALL)
    assert a.equals(b)
    assert not a.equals(pred(x=(0, 7)))


def test_contains_header():
    p = pred(x=(2, 5))
    assert p.contains({"x": 3})
    assert not p.contains({"x": 9})


def test_intersect_empty():
    a = pred(x=(0, 3))
    b = pred(x=(8, 15))
    assert a.intersect(b).is_empty()
    assert not a.overlaps(b)


def test_default_fields_five_tuple():
    assert len(DEFAULT_FIELDS) == 5
    assert DEFAULT_FIELDS.field("src_ip").bits == 32
    assert DEFAULT_FIELDS.field("proto").bits == 8
