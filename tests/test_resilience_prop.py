"""Property test: recovery is bit-identical at *every* crash point.

The deterministic sweep crashes the controller just after every distinct
journal-record time of a small never-crashed reference run — i.e. at
every point where the write-ahead journal grew — and asserts the
recovered run converges to the reference ``state_signature()`` with zero
policy-violation-seconds.  The hypothesis layer then samples crash
times from the *continuous* timeline (between, before and after journal
positions), catching any dependence on crashing exactly at a record
boundary.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos.schedule import FaultEvent, FaultKind
from repro.experiments.controller_crash import run_once

TENANTS = 2
BURST = 0
SEED = 1
DOWNTIME = 0.8
#: Crash epsilon: just after the journal record lands (same sim time
#: would race the record's own event on insertion order).
EPS = 1e-6

_BASE = None
_CRASH_TIMES = None


def _reference():
    """The never-crashed run + the distinct journal-growth times."""
    global _BASE, _CRASH_TIMES
    if _BASE is None:
        _BASE = run_once(TENANTS, BURST, SEED)
        times = sorted({rec.time for rec in _BASE.journal})
        # Crashing after the horizon is meaningless; keep room to recover.
        _CRASH_TIMES = tuple(t + EPS for t in times if t + DOWNTIME < 40.0)
    return _BASE, _CRASH_TIMES


def _crash_at(t: float) -> FaultEvent:
    return FaultEvent(
        time=t,
        kind=FaultKind.CONTROLLER_CRASH,
        target="controller",
        duration=DOWNTIME,
    )


def _assert_recovers_bit_identically(t: float) -> None:
    base, _ = _reference()
    out = run_once(TENANTS, BURST, SEED, events=(_crash_at(t),))
    assert len(out.recoveries) == 1, f"crash at t={t} never recovered"
    assert out.signature == base.signature, (
        f"crash at t={t}: recovered signature {out.signature} != "
        f"never-crashed {base.signature}"
    )
    assert out.pv_seconds == 0, (
        f"crash at t={t}: {out.pv_seconds} policy-violation-seconds"
    )
    assert out.downtime_pv_seconds == 0
    assert out.summary["cross_tenant_violation_seconds"] == 0
    assert out.summary["drift"] == 0
    assert out.summary["waiting"] == 0


def test_every_journal_position_recovers_bit_identically():
    """The full deterministic sweep: one crash per journal-growth point."""
    base, crash_times = _reference()
    assert len(base.journal) > 20, "reference journal suspiciously short"
    assert crash_times, "no crashable journal positions"
    for t in crash_times:
        _assert_recovers_bit_identically(t)


@settings(
    deadline=None,
    max_examples=10,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(t=st.floats(min_value=0.1, max_value=35.0, allow_nan=False))
def test_sampled_crash_times_recover_bit_identically(t):
    """Continuous sampling between/around the journal positions."""
    _assert_recovers_bit_identically(t)
