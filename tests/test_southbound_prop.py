"""Property test: the reconciler converges, whatever we do to the wire.

Hypothesis drives the anti-entropy loop with randomized drift injection
(which rules get ripped out from under the fabric) and randomized
control-plane weather (loss rate, extra delay, channel substream seed),
and asserts the one property the whole southbound layer exists for:
after quiescence, every switch's installed state is *exactly* the
desired state — ``drift_count() == 0`` is literally the diff engine
reporting ``installed == desired`` field by field.

The placement blueprint (plan + rules) is computed once and cached; each
example rebuilds only the cheap parts — a fresh network, a fresh install,
a fresh fabric — so examples are independent yet fast.
"""

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.core.controller import AppleController
from repro.core.subclasses import assign_subclasses
from repro.dataplane.network import DataPlaneNetwork
from repro.sim.kernel import Simulator
from repro.southbound import SouthboundChaosConfig, SouthboundFabric
from repro.southbound.state import read_installed
from repro.topology.datasets import internet2
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS

#: Ample quiescence.  A message that exhausts all 8 attempts burns
#: ~15 s of backoff, its phase rolls back (drift deliberately regresses),
#: and the next reconcile tick starts over — at the harshest generated
#: loss rate a repair can take several such rounds, so the horizon
#: leaves room for many.
HORIZON = 150.0


@lru_cache(maxsize=1)
def _blueprint():
    """One placement, solved once: (controller, plan, subclass_plan, rules)."""
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    matrix = gravity_matrix(topo, 8000.0, seed=0)
    plan = controller.compute_placement(matrix)
    subclass_plan = assign_subclasses(plan)
    rules = controller.rule_generator.generate(plan.classes, subclass_plan)
    return controller, plan, subclass_plan, rules


def _fresh_fabric(seed, chaos):
    controller, plan, _subclass_plan, rules = _blueprint()
    sim = Simulator()
    network = DataPlaneNetwork(controller.topo)
    instances = controller.rule_generator.install(
        rules, network, plan.classes, sim=sim
    )
    fabric = SouthboundFabric(
        sim, network, seed, controller.rule_generator, chaos=chaos
    )
    fabric.adopt(rules, plan.classes, instances)
    return sim, network, fabric, plan, rules


@given(
    seed=st.integers(0, 2**16),
    loss=st.floats(0.0, 0.35),
    extra_delay=st.sampled_from([0.0, 0.005, 0.02]),
    vsw_mask=st.integers(0, 2**12 - 1),
    classify_mask=st.integers(0, 2**12 - 1),
)
@settings(max_examples=10, deadline=None)
def test_reconciler_always_converges_to_desired(
    seed, loss, extra_delay, vsw_mask, classify_mask
):
    chaos = SouthboundChaosConfig(loss_rate=loss, extra_delay_mean=extra_delay)
    sim, network, fabric, plan, rules = _fresh_fabric(seed, chaos)
    assert fabric.drift_count() == 0  # adoption starts converged

    # Randomized drift: bitmasks select which hosts shed their vSwitch
    # rules and which switches lose their classification tables.
    for i, victim in enumerate(sorted(rules.vswitch_rules)):
        if not (vsw_mask >> i) & 1:
            continue
        vsw = network.vswitch_at(victim)
        for class_id, sub_id, _rule in rules.vswitch_rules[victim]:
            vsw.remove_rule(class_id, sub_id)
    for i, victim in enumerate(sorted(rules.switch_rule_sets)):
        if not (classify_mask >> i) & 1:
            continue
        network.switches[victim].table.remove_where(
            lambda e, v=victim: e.name.startswith(f"{v}/classify/")
        )
    injected = fabric.drift_count()

    fabric.start()
    sim.run(until=HORIZON)
    fabric.stop()

    # THE property: anti-entropy converged every switch exactly.
    assert fabric.drift_count() == 0
    installed = read_installed(network)
    assert installed.signature_payload() == fabric.desired.signature_payload()
    if injected:
        assert fabric.metrics.reconcile_repairs >= 1
        assert fabric.metrics.max_observed_drift >= injected
    else:
        # Nothing drifted, so the reconciler must not have touched the
        # wire at all (anti-entropy is read-only at zero drift).
        assert fabric.metrics.messages_sent == 0
