"""Tests for the periodic re-optimization loop (large time-scale)."""

import pytest

from repro.core.controller import AppleController
from repro.core.periodic import diff_plans, PeriodicReoptimizer
from repro.sim.kernel import Simulator
from repro.topology.datasets import internet2
from repro.traffic.classes import hashed_assignment
from repro.traffic.diurnal import synthesize_series
from repro.vnf.chains import STANDARD_CHAINS


@pytest.fixture
def setup():
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    series = synthesize_series(topo, 10_000.0, snapshots=6, interval=300.0, seed=2)
    return controller, series


def _provider(series):
    def provide(now: float):
        idx = min(int(now // series.interval), len(series) - 1)
        return series[idx]

    return provide


def test_periodic_runs_each_period(setup):
    controller, series = setup
    sim = Simulator()
    reopt = PeriodicReoptimizer(
        sim, controller, _provider(series), period=300.0, redeploy=False
    )
    reopt.start(immediately=True)
    sim.run(until=4 * 300.0 - 1)
    reopt.stop()
    assert reopt.runs == 4  # t = 0, 300, 600, 900
    assert all(not r.failed for r in reopt.reports)
    assert all(r.solve_seconds > 0 for r in reopt.reports)


def test_first_run_launches_everything(setup):
    controller, series = setup
    sim = Simulator()
    reopt = PeriodicReoptimizer(
        sim, controller, _provider(series), period=300.0, redeploy=False
    )
    reopt.start()
    sim.run(until=1.0)
    first = reopt.reports[0]
    assert first.instances_before == 0
    assert sum(first.launched.values()) == first.instances_after
    assert not first.retired


def test_churn_tracks_traffic_change(setup):
    controller, series = setup
    sim = Simulator()
    reopt = PeriodicReoptimizer(
        sim, controller, _provider(series), period=300.0, redeploy=False
    )
    reopt.start()
    sim.run(until=3 * 300.0 - 1)
    reopt.stop()
    later = reopt.reports[1:]
    # Subsequent runs adjust at the margin, far below full redeployment.
    initial = reopt.reports[0].churn
    assert all(r.churn < initial for r in later)


def test_redeploy_installs_rules(setup):
    controller, series = setup
    sim = Simulator()
    reopt = PeriodicReoptimizer(
        sim, controller, _provider(series), period=300.0, redeploy=True
    )
    reopt.start()
    sim.run(until=1.0)
    assert controller.deployment is not None
    record = controller.send_packet(
        controller.deployment.plan.classes[0].class_id, 0.5
    )
    assert record.policy_satisfied


def test_diff_plans_directions(setup):
    controller, series = setup
    plan_a = controller.compute_placement(series[0])
    plan_b = controller.compute_placement(series[0].scaled(3.0))
    launched, retired = diff_plans(plan_a, plan_b)
    assert sum(launched.values()) > 0  # 3x demand needs more instances
    back_l, back_r = diff_plans(plan_b, plan_a)
    assert back_l == retired and back_r == launched


def test_invalid_period_rejected(setup):
    controller, series = setup
    with pytest.raises(ValueError):
        PeriodicReoptimizer(Simulator(), controller, _provider(series), period=0.0)
