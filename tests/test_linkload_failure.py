"""Tests for link-load accounting and instance-failure injection."""

import numpy as np
import pytest

from repro.core.controller import AppleController
from repro.core.dynamic import FailoverConfig
from repro.core.placement import InstanceRef
from repro.topology.datasets import internet2, univ1
from repro.topology.graph import Link, Topology
from repro.topology.linkload import link_loads, link_utilisation, max_utilisation
from repro.topology.routing import Router
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.traffic.matrix import TrafficMatrix
from repro.vnf.chains import STANDARD_CHAINS


# ---------------------------------------------------------------------------
# Link loads
# ---------------------------------------------------------------------------
def _line():
    return Topology("line", ["a", "b", "c"], [Link("a", "b"), Link("b", "c")])


def test_link_loads_simple_path():
    topo = _line()
    router = Router(topo)
    tm = TrafficMatrix(["a", "b", "c"], [[0, 0, 30], [0, 0, 0], [0, 0, 0]])
    loads = link_loads(topo, router, tm)
    assert loads[("a", "b")] == pytest.approx(30.0)
    assert loads[("b", "c")] == pytest.approx(30.0)


def test_ecmp_splits_load():
    topo = Topology(
        "sq",
        ["a", "b", "c", "d"],
        [Link("a", "b"), Link("b", "d"), Link("a", "c"), Link("c", "d")],
    )
    router = Router(topo, ecmp=True)
    tm = TrafficMatrix(
        ["a", "b", "c", "d"],
        [[0, 0, 0, 100], [0] * 4, [0] * 4, [0] * 4],
    )
    loads = link_loads(topo, router, tm)
    assert loads[("a", "b")] == pytest.approx(50.0)
    assert loads[("a", "c")] == pytest.approx(50.0)


def test_utilisation_and_hottest_link():
    topo = _line()
    router = Router(topo)
    tm = TrafficMatrix(["a", "b", "c"], [[0, 0, 5000], [0, 0, 0], [0, 3000, 0]])
    utils = link_utilisation(topo, router, tm)
    assert utils[("a", "b")] == pytest.approx(0.5)  # 5000 / 10000
    hottest, value = max_utilisation(topo, router, tm)
    assert hottest == ("b", "c")
    assert value == pytest.approx(0.8)


def test_interference_freedom_at_link_level():
    """APPLE deployment leaves link loads exactly as routing computed."""
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    matrix = gravity_matrix(topo, 8000.0, seed=0)
    before = link_loads(topo, controller.router, matrix)
    controller.run(matrix)  # full deployment
    after = link_loads(topo, controller.router, matrix)
    assert before == after  # placement touched no path


# ---------------------------------------------------------------------------
# Failure injection
# ---------------------------------------------------------------------------
def _replay_setup():
    from repro.traffic.diurnal import synthesize_series
    from repro.traffic.replay import replay_series

    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    series = synthesize_series(topo, 8000.0, snapshots=4, interval=60.0, seed=1)
    timeline = replay_series(controller.class_builder, series)
    plan = controller.compute_placement(series.mean())
    controller.deploy(plan)
    return controller, timeline, plan


def test_failed_instance_drops_all_without_failover():
    controller, timeline, plan = _replay_setup()
    handler = controller.make_dynamic_handler(FailoverConfig(enabled=False))
    victim = plan.instance_refs()[0]
    handler.fail_instance(victim)
    result = handler.replay(timeline)
    assert result.mean_loss > 0  # traffic through the victim is lost


def test_failover_routes_around_failure():
    controller, timeline, plan = _replay_setup()
    baseline = controller.make_dynamic_handler(FailoverConfig(enabled=False))
    with_fo = controller.make_dynamic_handler(FailoverConfig(enabled=True))
    victim = plan.instance_refs()[0]
    baseline.fail_instance(victim)
    with_fo.fail_instance(victim)
    loss_without = baseline.replay(timeline).mean_loss
    loss_with = with_fo.replay(timeline).mean_loss
    assert loss_with < loss_without
    # A replacement instance was created for the victim.
    assert any(e.kind == "new-instance" for e in with_fo.events)


def test_recover_instance_clears_failure():
    controller, timeline, plan = _replay_setup()
    pristine = controller.make_dynamic_handler(FailoverConfig(enabled=False))
    recovered = controller.make_dynamic_handler(FailoverConfig(enabled=False))
    victim = plan.instance_refs()[0]
    recovered.fail_instance(victim)
    recovered.recover_instance(victim)
    # After recovery the loss matches a handler that never saw the fault
    # (any residue is ordinary traffic fluctuation, present in both).
    assert recovered.replay(timeline).loss == pristine.replay(timeline).loss
