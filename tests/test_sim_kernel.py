"""Unit tests for the simulator kernel: clock, processes, timers."""

import pytest

from repro.sim.kernel import Process, SimulationError, Simulator, Timer


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.schedule(0.5, lambda: seen.append(sim.now))
    fired = sim.run_all()
    assert fired == 2
    assert seen == [0.5, 1.5]
    assert sim.now == 1.5


def test_run_until_stops_and_pins_clock():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: seen.append("a"))
    sim.schedule(5.0, lambda: seen.append("b"))
    sim.run(until=2.0)
    assert seen == ["a"]
    assert sim.now == 2.0  # clock tiled exactly to the horizon
    sim.run(until=10.0)
    assert seen == ["a", "b"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run_all()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_schedule_during_run_executes():
    sim = Simulator()
    seen = []

    def chain():
        seen.append(sim.now)
        if len(seen) < 3:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run_all()
    assert seen == [1.0, 2.0, 3.0]


def test_max_events_bounds_run():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    fired = sim.run(max_events=10)
    assert fired == 10


def test_process_yields_delays():
    sim = Simulator()
    ticks = []

    def proc():
        for _ in range(3):
            yield 2.0
            ticks.append(sim.now)

    sim.process(proc())
    sim.run_all()
    assert ticks == [2.0, 4.0, 6.0]


def test_process_interrupt_stops_it():
    sim = Simulator()
    ticks = []

    def proc():
        while True:
            yield 1.0
            ticks.append(sim.now)

    p = sim.process(proc())
    sim.run(until=3.5)
    p.interrupt()
    assert not p.alive
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_process_negative_yield_raises():
    sim = Simulator()

    def proc():
        yield -1.0

    with pytest.raises(SimulationError):
        sim.process(proc())


def test_timer_fires_periodically():
    sim = Simulator()
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]


def test_timer_cancel():
    sim = Simulator()
    ticks = []
    timer = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=2.5)
    timer.cancel()
    assert not timer.active
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert timer.fire_count == 2


def test_timer_start_delay_override():
    sim = Simulator()
    ticks = []
    sim.every(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_timer_rejects_nonpositive_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timer(sim, 0.0, lambda: None)


def test_timer_cancel_inside_callback():
    sim = Simulator()
    ticks = []
    timer = sim.every(1.0, lambda: (ticks.append(sim.now), timer.cancel()))
    sim.run(until=5.0)
    assert ticks == [1.0]


def test_reset_clears_state():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_all()
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_fired == 0
