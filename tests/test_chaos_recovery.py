"""End-to-end chaos runs: detection, recovery, determinism, no-op identity."""

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosEngine,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    ProbeLoop,
    generate_schedule,
)
from repro.chaos.recovery import _QUARANTINE_PREFIX
from repro.core.controller import AppleController
from repro.sim.kernel import Simulator
from repro.topology.datasets import internet2
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.traffic.matrix import TrafficMatrix
from repro.vnf.chains import STANDARD_CHAINS

SEED = 5
HORIZON = 16.0

SMOKE_CONFIG = ChaosConfig(
    link_flaps=1,
    host_crashes=0,
    vnf_crashes=1,
    brownouts=0,
    window=(2.0, 6.0),
    flap_duration=(3.0, 5.0),
)


def _deployed(seed=SEED):
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    matrix = gravity_matrix(topo, 8000.0, seed=seed)
    sim = Simulator()
    deployment = controller.run(matrix, sim=sim)
    return topo, controller, sim, deployment


def _chaos_run(seed=SEED, config=SMOKE_CONFIG, until=HORIZON):
    topo, controller, sim, deployment = _deployed(seed)
    schedule = generate_schedule(
        topo,
        config,
        seed,
        instance_keys=sorted(deployment.instances),
        hosts_in_use=deployment.rules.hosts_in_use,
    )
    engine = ChaosEngine(sim, controller, schedule)
    return engine.run(until=until)


# ----------------------------------------------------------------------
# Smoke: the acceptance criteria at test scale
# ----------------------------------------------------------------------
def test_smoke_recovery_interference_free():
    result = _chaos_run()
    m = result.metrics

    assert result.faults_injected == SMOKE_CONFIG.total_faults()
    assert result.faults_detected == result.faults_injected
    assert result.reconvergences >= result.faults_injected

    # Every fault was repaired, and repairing took nonzero simulated time.
    assert m["mean_time_to_repair"] is not None
    assert m["mean_time_to_repair"] > 0
    assert m["max_time_to_repair"] >= m["mean_time_to_repair"]
    # Detection latency follows the heartbeat model (default 0.5 s x 2).
    assert 0 < m["mean_detection_latency"] <= 2.0

    # The paper's claim under churn: delivered traffic is never
    # mis-chained or re-routed off the registered path.
    assert m["policy_violation_seconds"] == 0
    assert all(c["verify_ok"] for c in m["convergences"])
    assert result.final_policy_violations == 0
    assert result.final_interference_violations == 0
    assert result.final_verify_ok

    # Faults do black-hole traffic until recovery converges.
    assert m["probes_dropped"] > 0
    assert m["downtime_seconds"] > 0


def test_same_seed_bit_identical_run():
    a = _chaos_run()
    b = _chaos_run()
    assert a.signature() == b.signature()
    assert a.schedule_signature == b.schedule_signature
    assert a.metrics == b.metrics
    assert a.network_stats == b.network_stats


def test_different_seed_differs():
    a = _chaos_run(seed=SEED)
    b = _chaos_run(seed=SEED + 1)
    assert a.schedule_signature != b.schedule_signature


# ----------------------------------------------------------------------
# S1 regression: an armed-but-empty chaos engine is a perfect no-op
# ----------------------------------------------------------------------
def test_empty_schedule_bit_identical_to_plain_run():
    until = 8.0

    # Plain run: probe loop only, no chaos machinery attached.
    _topo, controller, sim, deployment = _deployed()
    loop = ProbeLoop(sim, lambda: controller.deployment)
    loop.start()
    sim.run(until=until)
    loop.stop()
    plain_ticks = list(loop.ticks)
    plain_stats = deployment.network.stats_snapshot()

    # Same setup with the full engine armed on an empty schedule.
    _topo, controller, sim, deployment = _deployed()
    engine = ChaosEngine(sim, controller, FaultSchedule.empty(SEED))
    engine.start()
    sim.run(until=until)
    chaos_ticks = list(engine.probes.ticks)
    chaos_stats = deployment.network.stats_snapshot()

    assert chaos_ticks == plain_ticks
    assert chaos_stats == plain_stats
    assert engine.metrics.faults == {}
    assert engine.metrics.convergences == []
    assert engine.detector.detections == []


# ----------------------------------------------------------------------
# Stranded classes: quarantined, never delivered unprocessed
# ----------------------------------------------------------------------
def test_all_stranded_classes_are_quarantined_not_leaked():
    # A ring whose only APPLE host dies: every class is stranded, and the
    # interference-free answer is to black-hole their traffic at ingress
    # rather than deliver it unprocessed.
    topo = Topology(
        "ring",
        ["a", "b", "c", "d"],
        [Link("a", "b"), Link("b", "c"), Link("c", "d"), Link("d", "a")],
        hosts={"b": AppleHostSpec(cores=16)},
    )
    controller = AppleController(topo, hashed_assignment(STANDARD_CHAINS))
    nodes = list(topo.switches)
    demands = [[0.0] * len(nodes) for _ in nodes]
    demands[nodes.index("a")][nodes.index("c")] = 400.0
    matrix = TrafficMatrix(nodes, demands)
    sim = Simulator()
    deployment = controller.run(matrix, sim=sim)
    assert deployment.plan.classes, "setup must place at least one class"

    schedule = FaultSchedule(
        seed=0,
        events=(FaultEvent(time=2.0, kind=FaultKind.HOST_CRASH, target="b"),),
    )
    engine = ChaosEngine(sim, controller, schedule)
    result = engine.run(until=8.0)
    m = result.metrics

    # The convergence stranded every class and placed none.
    assert any(c["stranded"] > 0 and c["classes"] == 0 for c in m["convergences"])
    # Quarantine rules hold the line: traffic drops, nothing is delivered
    # unprocessed, so not a single policy-violation second accrues.
    assert m["policy_violation_seconds"] == 0
    ingress = deployment.network.switches["a"]
    assert any(
        e.name.startswith(_QUARANTINE_PREFIX) for e in ingress.table.entries()
    )
    # Post-crash probes of the stranded class black-hole.
    last_tick = m["ticks"][-1]
    assert last_tick[3] == last_tick[1]  # dropped == sent
    assert last_tick[4] == 0  # no policy violations


def test_vnf_crash_replacement_reuses_slot():
    topo, controller, sim, deployment = _deployed()
    victim_key = sorted(deployment.instances)[0]
    victim = deployment.instances[victim_key]

    schedule = FaultSchedule(
        seed=0,
        events=(FaultEvent(time=2.0, kind=FaultKind.VNF_CRASH, target=victim_key),),
    )
    engine = ChaosEngine(sim, controller, schedule)
    result = engine.run(until=8.0)

    assert not victim.running
    replacement = controller.deployment.instances[victim_key]
    assert replacement is not victim
    assert replacement.running
    assert replacement.switch == victim.switch
    assert result.final_verify_ok
    # Same structure, same surviving hosts: the re-solve warm-starts.
    assert any(c["warm_start"] for c in result.metrics["convergences"])
