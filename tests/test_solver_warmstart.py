"""Warm-start correctness: template reuse, in-place rewrites, fan-out.

The performance work must never change results: a warm re-solve (cached
:class:`PlacementTemplate`, rate-only coefficient rewrite, cached HiGHS
arrays) has to produce a plan *bit-identical* to a cold solve of the same
snapshot, the vectorized ``Model.compile`` has to emit exactly the matrices
of the straightforward per-constraint loop it replaced, and the process
fan-out has to return the same rows as the serial path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro.core.engine import EngineConfig, OptimizationEngine, PlacementError
from repro.experiments.harness import ExperimentResult, parallel_map
from repro.solver.lp import solve_lp
from repro.solver.model import CompiledModel, LinExpr, Model, Sense
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain

# ---------------------------------------------------------------------------
# Fixed placement structure: rates vary per example, structure never does.
# ---------------------------------------------------------------------------

LINE = ("s0", "s1", "s2", "s3")
CORES = {"s0": 64, "s1": 64, "s2": 64, "s3": 64}
STRUCTURE = [
    ("c0", LINE, ["firewall"]),
    ("c1", LINE, ["firewall", "ids"]),
    ("c2", LINE[1:], ["proxy"]),
    ("c3", LINE[:3], ["ids", "firewall"]),
]


def _classes(rates):
    return [
        TrafficClass(cid, path[0], path[-1], path, PolicyChain(chain), rate)
        for (cid, path, chain), rate in zip(STRUCTURE, rates)
    ]


#: Shared engine: its template cache persists across hypothesis examples,
#: so every example after the first exercises the warm path.
_WARM_ENGINE = OptimizationEngine(config=EngineConfig())


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=4000.0, allow_nan=False),
        min_size=len(STRUCTURE),
        max_size=len(STRUCTURE),
    )
)
@settings(max_examples=40, deadline=None)
def test_warm_resolve_bit_identical_to_cold(rates):
    classes = _classes(rates)
    try:
        cold_plan = OptimizationEngine(config=EngineConfig()).place(classes, CORES)
    except PlacementError:
        # The strategy can oversubscribe the four hosts (e.g. ~9.4 Gbps of
        # firewall demand); that is a legitimately infeasible snapshot, and
        # the property still holds: the warm path must agree it is
        # infeasible — and stay reusable for the next example.
        with pytest.raises(PlacementError):
            _WARM_ENGINE.place(classes, CORES)
        return
    warm_plan = _WARM_ENGINE.place(classes, CORES)
    # Bit-identical, not approximately equal: both paths must run the same
    # solver on the same matrices, so every float matches exactly.
    assert warm_plan.quantities == cold_plan.quantities
    assert warm_plan.distribution == cold_plan.distribution
    assert warm_plan.objective == cold_plan.objective
    assert warm_plan.lp_bound == cold_plan.lp_bound


def test_warm_start_flag_and_counters():
    engine = OptimizationEngine(config=EngineConfig())
    first = engine.place(_classes([100.0] * 4), CORES)
    second = engine.place(_classes([700.0, 50.0, 900.0, 10.0]), CORES)
    assert not first.warm_start and second.warm_start
    assert engine.cold_builds == 1 and engine.warm_solves == 1
    engine.clear_templates()
    third = engine.place(_classes([100.0] * 4), CORES)
    assert not third.warm_start
    assert engine.cold_builds == 2


def test_explicit_template_mismatch_raises():
    engine = OptimizationEngine(config=EngineConfig())
    template = engine.make_template(_classes([100.0] * 4), CORES)
    different = _classes([100.0] * 4)[:2]  # fewer classes → new structure
    with pytest.raises(PlacementError, match="template does not match"):
        engine.place(different, CORES, template=template)


def test_single_shot_template_rejected_after_first_solve():
    engine = OptimizationEngine(config=EngineConfig())
    template = engine.make_template(_classes([100.0] * 4), CORES)
    engine.place(_classes([100.0] * 4), CORES, template=template)
    template.reusable = False  # as if sparsity had been degenerate
    with pytest.raises(PlacementError, match="single-shot"):
        engine.place(_classes([200.0] * 4), CORES, template=template)


# ---------------------------------------------------------------------------
# Vectorized compile vs the reference per-constraint loop.
# ---------------------------------------------------------------------------


def _reference_compile(model):
    """The pre-vectorization compile: one dense row per constraint."""
    n = model.num_variables
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff
    ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
    ub_row_of, eq_row_of, row_sign = {}, {}, {}
    for ci, con in enumerate(model.constraints):
        row = np.zeros(n)
        for idx, coeff in con.expr.coeffs.items():
            row[idx] = coeff
        if con.sense is Sense.LE:
            ub_row_of[ci], row_sign[ci] = len(ub_rows), 1.0
            ub_rows.append(row)
            ub_rhs.append(-con.expr.constant)
        elif con.sense is Sense.GE:
            ub_row_of[ci], row_sign[ci] = len(ub_rows), -1.0
            ub_rows.append(-row)
            ub_rhs.append(con.expr.constant)
        else:
            eq_row_of[ci], row_sign[ci] = len(eq_rows), 1.0
            eq_rows.append(row)
            eq_rhs.append(-con.expr.constant)
    a_ub = sparse.csr_matrix(np.array(ub_rows)) if ub_rows else None
    a_eq = sparse.csr_matrix(np.array(eq_rows)) if eq_rows else None
    return CompiledModel(
        c,
        a_ub,
        np.array(ub_rhs) if ub_rows else None,
        a_eq,
        np.array(eq_rhs) if eq_rows else None,
        [(v.lb, v.ub) for v in model.variables],
        np.array([v.integer for v in model.variables], dtype=bool),
        ub_row_of,
        eq_row_of,
        row_sign,
    )


@st.composite
def random_models(draw):
    """A random small model with every constraint sense and stray zeros."""
    model = Model("prop")
    n = draw(st.integers(2, 6))
    xs = [model.add_var(f"x{i}", ub=draw(st.floats(1.0, 50.0))) for i in range(n)]
    model.minimize(
        LinExpr.total(
            (draw(st.floats(-3.0, 3.0)), x) for x in xs
        )
    )
    for _ in range(draw(st.integers(1, 8))):
        terms = [
            (draw(st.sampled_from([0.0, 1.0, -2.0, 0.5])), x)
            for x in xs
            if draw(st.booleans())
        ]
        expr = LinExpr.total(terms) if terms else LinExpr.of(xs[0])
        rhs = draw(st.floats(-10.0, 10.0))
        sense = draw(st.sampled_from(["le", "ge", "eq"]))
        if sense == "le":
            model.add_constraint(expr <= rhs)
        elif sense == "ge":
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr.eq(rhs))
    return model


@given(random_models())
@settings(max_examples=50, deadline=None)
def test_vectorized_compile_matches_reference(model):
    fast, ref = model.compile(), _reference_compile(model)
    np.testing.assert_array_equal(fast.c, ref.c)
    for mat_fast, mat_ref, rhs_fast, rhs_ref in (
        (fast.a_ub, ref.a_ub, fast.b_ub, ref.b_ub),
        (fast.a_eq, ref.a_eq, fast.b_eq, ref.b_eq),
    ):
        assert (mat_fast is None) == (mat_ref is None)
        if mat_fast is not None:
            np.testing.assert_array_equal(mat_fast.toarray(), mat_ref.toarray())
            np.testing.assert_array_equal(rhs_fast, rhs_ref)
    assert fast.bounds == ref.bounds
    np.testing.assert_array_equal(fast.integer_mask, ref.integer_mask)
    assert fast.ub_row_of == ref.ub_row_of
    assert fast.eq_row_of == ref.eq_row_of
    assert fast.row_sign == ref.row_sign


# ---------------------------------------------------------------------------
# In-place rewrites must stay visible through the cached HiGHS arrays.
# ---------------------------------------------------------------------------


def _two_var_model():
    model = Model("rewrite")
    x = model.add_var("x", ub=10.0)
    y = model.add_var("y", ub=10.0)
    model.minimize(-1.0 * x - 1.0 * y)
    model.add_constraint(1.0 * x + 1.0 * y <= 8.0)   # 0: rewritten below
    model.add_constraint(1.0 * x - 1.0 * y >= -6.0)  # 1: a GE row
    model.add_constraint((1.0 * x + 0.0).eq(3.0) if False else 1.0 * x <= 7.0)
    return model, x, y


def test_set_coefficient_updates_cached_highs_arrays():
    model, _x, _y = _two_var_model()
    cm = model.compile()
    cm.highs_arrays()  # populate the CSC cache first
    cm.set_coefficient(0, 1, 4.0)  # x + 4y <= 8
    fresh = model.compile()
    fresh.set_coefficient(0, 1, 4.0)
    res_cached, res_fresh = solve_lp(model, cm), solve_lp(model, fresh)
    assert res_cached.objective == res_fresh.objective
    np.testing.assert_array_equal(res_cached.solution, res_fresh.solution)


def test_set_rhs_updates_cached_highs_arrays():
    model, _x, _y = _two_var_model()
    cm = model.compile()
    cm.highs_arrays()
    cm.set_rhs(0, 4.0)   # LE row
    cm.set_rhs(1, -2.0)  # GE row: sign handled internally
    fresh = model.compile()
    fresh.set_rhs(0, 4.0)
    fresh.set_rhs(1, -2.0)
    res_cached, res_fresh = solve_lp(model, cm), solve_lp(model, fresh)
    assert res_cached.objective == res_fresh.objective
    np.testing.assert_array_equal(res_cached.solution, res_fresh.solution)


def test_set_ub_coefficients_bulk_scatter_syncs_csc():
    model, _x, _y = _two_var_model()
    cm = model.compile()
    h = cm.highs_arrays()
    positions = np.arange(cm.a_ub.nnz, dtype=np.intp)
    values = np.arange(1.0, cm.a_ub.nnz + 1.0)
    cm.set_ub_coefficients(positions, values)
    np.testing.assert_array_equal(cm.a_ub.data, values)
    # The CSC copy holds the same values, permuted by the position map.
    np.testing.assert_array_equal(h["data"][h["csr_to_csc"][positions]], values)


def test_unknown_coefficient_slot_raises():
    model = Model("sparsity")
    x = model.add_var("x", ub=5.0)
    y = model.add_var("y", ub=5.0)
    model.minimize(x + y)
    model.add_constraint(1.0 * x <= 3.0)  # y absent from the pattern
    cm = model.compile()
    with pytest.raises(KeyError, match="not in the compiled sparsity"):
        cm.set_coefficient(0, y.index, 2.0)


def test_solve_lp_bound_overrides_match_rebuilt_model():
    model, _x, _y = _two_var_model()
    cm = model.compile()
    extra_ub = np.array([2.0, np.nan])
    res = solve_lp(model, compiled=cm, extra_upper_bounds=extra_ub)

    tight = Model("tight")
    tx = tight.add_var("x", ub=2.0)
    ty = tight.add_var("y", ub=10.0)
    tight.minimize(-1.0 * tx - 1.0 * ty)
    tight.add_constraint(1.0 * tx + 1.0 * ty <= 8.0)
    tight.add_constraint(1.0 * tx - 1.0 * ty >= -6.0)
    tight.add_constraint(1.0 * tx <= 7.0)
    expected = solve_lp(tight)
    assert res.objective == pytest.approx(expected.objective)
    # Overrides must not corrupt the cached arrays for later solves.
    clean = solve_lp(model, compiled=cm)
    assert clean.objective == pytest.approx(-8.0)  # x + y <= 8 binds again


# ---------------------------------------------------------------------------
# Small satellites: dict independence, bound caching, bulk registration.
# ---------------------------------------------------------------------------


def test_compiled_models_do_not_share_row_maps():
    def build():
        model = Model("indep")
        x = model.add_var("x", ub=1.0)
        model.minimize(x)
        model.add_constraint(1.0 * x <= 1.0)
        return model.compile()

    first, second = build(), build()
    first.ub_row_of[99] = 0
    first.row_sign[99] = -1.0
    assert 99 not in second.ub_row_of
    assert 99 not in second.row_sign


def test_clamped_bounds_cached_and_inf_mapped():
    model = Model("bounds")
    model.add_var("x", lb=1.0)  # ub defaults to +inf
    model.add_var("y", ub=4.0)
    model.minimize(LinExpr.total([]) + 0.0)
    cm = model.compile()
    clamped = cm.clamped_bounds()
    assert clamped == [(1.0, None), (0.0, 4.0)]
    assert cm.clamped_bounds() is clamped  # computed once, reused


def test_add_constraints_bulk_and_name_mismatch():
    model = Model("bulk")
    x = model.add_var("x", ub=1.0)
    cons = [1.0 * x <= 1.0, 1.0 * x >= 0.1]
    model.add_constraints(cons, names=["lo", "hi"])
    assert [c.name for c in model.constraints] == ["lo", "hi"]
    with pytest.raises(ValueError, match="length mismatch"):
        model.add_constraints([1.0 * x <= 0.5], names=["a", "b"])


# ---------------------------------------------------------------------------
# Experiment fan-out plumbing.
# ---------------------------------------------------------------------------


def _square(k):
    return k * k


def test_parallel_map_matches_serial():
    items = [1, 2, 3, 4, 5]
    assert parallel_map(_square, items, jobs=1) == [1, 4, 9, 16, 25]
    assert parallel_map(_square, items, jobs=2) == [1, 4, 9, 16, 25]
    assert parallel_map(_square, [7], jobs=4) == [49]  # single item stays serial
    assert parallel_map(_square, [], jobs=4) == []


def test_experiment_result_format_includes_elapsed():
    result = ExperimentResult(
        experiment="t",
        description="d",
        paper_expectation="p",
        columns=["a"],
        rows=[[1]],
    )
    assert "[" not in result.format().splitlines()[-1]
    result.elapsed_seconds = 3.21
    assert result.format().rstrip().endswith("[3.2s]")
