"""Property-based tests (hypothesis) for the TCAM flow cache.

The cache must be a pure memoisation of the linear scan: for any rule set
and any lookup, the cached answer equals the uncached one, and no mutation
(install / remove_where / clear) may ever let a stale entry be served.
"""

from hypothesis import given, settings, strategies as st

from repro.dataplane.packet import Packet
from repro.dataplane.tcam import Action, ActionKind, TcamEntry, TcamTable

CLASS_IDS = ["c1", "c2", "c3", None]
HOST_TAGS = ["EMPTY", "h1", "h2", None]
ACTIONS = [
    Action(ActionKind.GOTO_NEXT_TABLE),
    Action(ActionKind.DROP),
    Action(ActionKind.FORWARD_TO_HOST),
]

#: Hash boundaries drawn from a mix of bucket-aligned values (multiples of
#: 2**-16 are cache-friendly) and arbitrary floats (which split buckets and
#: must force the cold path).
_ALIGNED = st.integers(0, 1 << 16).map(lambda k: k / (1 << 16))
_BOUNDARY = st.one_of(_ALIGNED, st.floats(0.0, 1.0, allow_nan=False))


@st.composite
def entries(draw):
    hash_range = None
    if draw(st.booleans()):
        lo = draw(_BOUNDARY)
        hi = draw(_BOUNDARY)
        if hi < lo:
            lo, hi = hi, lo
        if hi == lo:
            hi = min(1.0, lo + 1.0 / (1 << 16))
        hash_range = (lo, hi)
    return TcamEntry(
        priority=draw(st.integers(0, 5)),
        action=draw(st.sampled_from(ACTIONS)),
        host_tag_is=draw(st.sampled_from(HOST_TAGS)),
        class_id=draw(st.sampled_from(CLASS_IDS)),
        hash_range=hash_range,
    )


@st.composite
def lookups(draw):
    class_id = draw(st.sampled_from([c for c in CLASS_IDS if c] + ["c9"]))
    host_tag = draw(st.sampled_from(["h1", "h2", None]))
    h = draw(st.floats(0.0, 1.0, exclude_max=True, allow_nan=False))
    return class_id, host_tag, h


def _uncached(table, class_id, host_tag, h):
    tag = host_tag if host_tag is not None else "EMPTY"
    return table._scan_all(class_id, tag, h)


@given(st.lists(entries(), max_size=12), st.lists(lookups(), max_size=30))
@settings(max_examples=120, deadline=None)
def test_cached_lookup_equals_uncached(rule_set, queries):
    table = TcamTable()
    for e in rule_set:
        table.install(e)
    for class_id, host_tag, h in queries:
        expected = _uncached(table, class_id, host_tag, h)
        # Repeat so the second lookup is served from the cache when cacheable.
        assert table.match(class_id, host_tag, h) is expected
        assert table.match(class_id, host_tag, h) is expected


@given(
    st.lists(entries(), min_size=1, max_size=10),
    st.lists(entries(), max_size=6),
    st.lists(lookups(), min_size=1, max_size=15),
    st.integers(0, 5),
)
@settings(max_examples=80, deadline=None)
def test_mutations_never_serve_stale_entries(initial, later, queries, drop_prio):
    table = TcamTable()
    for e in initial:
        table.install(e)
    # Warm the cache, then mutate underneath it.
    for class_id, host_tag, h in queries:
        table.match(class_id, host_tag, h)

    for e in later:
        table.install(e)
        for class_id, host_tag, h in queries:
            assert table.match(class_id, host_tag, h) is _uncached(
                table, class_id, host_tag, h
            )

    table.remove_where(lambda e: e.priority == drop_prio)
    for class_id, host_tag, h in queries:
        assert table.match(class_id, host_tag, h) is _uncached(
            table, class_id, host_tag, h
        )

    table.clear()
    for class_id, host_tag, h in queries:
        assert table.match(class_id, host_tag, h) is None


@given(st.lists(entries(), max_size=12))
@settings(max_examples=60, deadline=None)
def test_incremental_entry_count_matches_recompute(rule_set):
    table = TcamTable()
    for e in rule_set:
        table.install(e)
        assert table.entry_count() == sum(
            x.hardware_entries for x in table.entries()
        )
    table.remove_where(lambda e: e.priority % 2 == 0)
    assert table.entry_count() == sum(
        x.hardware_entries for x in table.entries()
    )
    table.clear()
    assert table.entry_count() == 0


def test_boundary_bucket_never_cached():
    # 0.3 * 2**16 is not an integer, so the range boundary splits a bucket:
    # lookups on either side of the boundary within that bucket must differ.
    table = TcamTable()
    table.install(
        TcamEntry(
            priority=5,
            action=Action(ActionKind.DROP),
            class_id="c1",
            hash_range=(0.0, 0.3),
            name="low-half",
        )
    )
    table.install(
        TcamEntry(
            priority=4,
            action=Action(ActionKind.GOTO_NEXT_TABLE),
            class_id="c1",
            hash_range=(0.3, 1.0),
            name="high-half",
        )
    )
    bucket = int(0.3 * (1 << 16))
    just_below = (bucket + 0.1) / (1 << 16)
    just_above = (bucket + 0.9) / (1 << 16)
    assert just_below < 0.3 < just_above
    assert not table.bucket_is_cacheable(just_below)
    for _ in range(3):  # repeats must not poison a cache for the sibling
        assert table.match("c1", None, just_below).name == "low-half"
        assert table.match("c1", None, just_above).name == "high-half"


def test_priority_ties_keep_install_order():
    table = TcamTable()
    for i in range(4):
        table.install(
            TcamEntry(
                priority=7,
                action=Action(ActionKind.GOTO_NEXT_TABLE),
                name=f"e{i}",
            )
        )
    table.install(
        TcamEntry(priority=9, action=Action(ActionKind.DROP), name="top")
    )
    names = [e.name for e in table.entries()]
    assert names == ["top", "e0", "e1", "e2", "e3"]
    hit = table.lookup(
        Packet(class_id="c1", flow_hash=0.5, src="s1", dst="s2")
    )
    assert hit.name == "top"


def test_cache_disabled_reproduces_linear_scan():
    table = TcamTable()
    table.cache_enabled = False
    e = TcamEntry(
        priority=1, action=Action(ActionKind.DROP), class_id="c1"
    )
    table.install(e)
    assert table.match("c1", None, 0.25) is e
    assert table.cache_hits == 0
    assert table._cache == {}
