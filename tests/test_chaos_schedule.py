"""Fault-schedule generation: determinism, target pools, timing bounds."""

import networkx as nx
import pytest

from repro.chaos.schedule import (
    ChaosConfig,
    FaultKind,
    FaultSchedule,
    _flappable_links,
    generate_schedule,
)
from repro.topology.graph import Topology
from repro.topology.datasets import internet2

INSTANCE_KEYS = [
    "firewall[0]@SEAT",
    "firewall[1]@SEAT",
    "ids[0]@CHIN",
    "nat[0]@ATLA",
    "proxy[0]@NYCM",
]


def _schedule(seed=0, config=None, topo=None):
    return generate_schedule(
        topo or internet2(),
        config or ChaosConfig(),
        seed,
        instance_keys=INSTANCE_KEYS,
        hosts_in_use=["SEAT", "CHIN", "ATLA", "NYCM"],
    )


def test_same_seed_bit_identical_schedule():
    assert _schedule(7).signature() == _schedule(7).signature()


def test_different_seeds_differ():
    assert _schedule(1).signature() != _schedule(2).signature()


def test_counts_match_config():
    config = ChaosConfig(link_flaps=2, host_crashes=1, vnf_crashes=1, brownouts=1)
    schedule = _schedule(config=config)
    by_kind = {}
    for ev in schedule:
        by_kind[ev.kind] = by_kind.get(ev.kind, 0) + 1
    assert by_kind[FaultKind.LINK_FLAP] == 2
    assert by_kind[FaultKind.HOST_CRASH] == 1
    assert by_kind[FaultKind.VNF_CRASH] == 1
    assert by_kind[FaultKind.BROWNOUT] == 1
    assert len(schedule) == config.total_faults()


def test_no_bridge_ever_flapped():
    topo = internet2()
    bridges = {Topology.link_key(u, v) for u, v in nx.bridges(topo.graph)}
    for seed in range(10):
        schedule = generate_schedule(
            topo, ChaosConfig(link_flaps=3), seed, instance_keys=INSTANCE_KEYS
        )
        for ev in schedule:
            if ev.kind is FaultKind.LINK_FLAP:
                assert Topology.link_key(*ev.link_endpoints()) not in bridges


def test_flappable_links_excludes_bridges_on_a_line_graph():
    from repro.topology.graph import Link

    topo = Topology("line", ["a", "b", "c"], [Link("a", "b"), Link("b", "c")])
    assert _flappable_links(topo) == []  # every link is a bridge


def test_times_and_durations_inside_windows():
    config = ChaosConfig(window=(10.0, 20.0), flap_duration=(3.0, 4.0))
    for seed in range(5):
        for ev in _schedule(seed=seed, config=config):
            assert 10.0 <= ev.time <= 20.0
            if ev.kind is FaultKind.LINK_FLAP:
                assert 3.0 <= ev.duration <= 4.0
                assert ev.lift_time == pytest.approx(ev.time + ev.duration)
            if ev.kind is FaultKind.BROWNOUT:
                assert 0.2 <= ev.severity <= 0.6


def test_events_are_time_ordered():
    schedule = _schedule(seed=5)
    times = [ev.time for ev in schedule]
    assert times == sorted(times)


def test_vnf_and_brownout_targets_disjoint():
    config = ChaosConfig(vnf_crashes=2, brownouts=2)
    schedule = _schedule(config=config)
    crashed = {e.target for e in schedule if e.kind is FaultKind.VNF_CRASH}
    browned = {e.target for e in schedule if e.kind is FaultKind.BROWNOUT}
    assert not crashed & browned


def test_empty_pools_yield_empty_kinds():
    schedule = generate_schedule(
        internet2(), ChaosConfig(vnf_crashes=3, brownouts=2), 0, instance_keys=()
    )
    kinds = {e.kind for e in schedule}
    assert FaultKind.VNF_CRASH not in kinds
    assert FaultKind.BROWNOUT not in kinds


def test_empty_schedule():
    schedule = FaultSchedule.empty(9)
    assert len(schedule) == 0
    assert schedule.signature() == "[]"


def test_generation_does_not_touch_other_streams():
    """Chaos draws from its own substream: traffic synthesis is unaffected."""
    from repro.sim.rng import SeededRNG, derive

    rng = SeededRNG(derive(3, "traffic.mvr"))
    before = [rng.uniform() for _ in range(4)]
    _schedule(seed=3)
    rng2 = SeededRNG(derive(3, "traffic.mvr"))
    assert before == [rng2.uniform() for _ in range(4)]
