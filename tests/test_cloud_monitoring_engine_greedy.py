"""Tests for the resource monitor and the engine's compare_greedy path."""

import pytest

from repro.cloud.monitoring import ResourceMonitor
from repro.cloud.orchestrator import ResourceOrchestrator
from repro.core.engine import EngineConfig, OptimizationEngine
from repro.core.greedy import greedy_placement
from repro.sim.kernel import Simulator
from repro.topology.datasets import internet2
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.topology.routing import Router
from repro.traffic.classes import ClassBuilder, hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS
from repro.vnf.types import FIREWALL, NAT


# ---------------------------------------------------------------------------
# ResourceMonitor
# ---------------------------------------------------------------------------
def _orchestrated():
    sim = Simulator(seed=3)
    topo = Topology(
        "t", ["s1", "s2"], [Link("s1", "s2")],
        hosts={"s1": AppleHostSpec(cores=32)},
    )
    return sim, ResourceOrchestrator(sim, topo)


def test_monitor_polls_on_interval():
    sim, orch = _orchestrated()
    monitor = ResourceMonitor(sim, orch, interval=1.0)
    monitor.start(immediately=True)
    sim.run(until=5.5)
    monitor.stop()
    assert len(monitor.history) == 6  # t = 0..5
    assert monitor.latest.free_cores == {"s1": 32}


def test_monitor_tracks_launches():
    sim, orch = _orchestrated()
    seen = []
    monitor = ResourceMonitor(sim, orch, interval=1.0, on_snapshot=seen.append)
    monitor.start()
    orch.launch_instance(FIREWALL, "s1")
    orch.launch_instance(NAT, "s1")
    sim.run(until=10.0)
    monitor.stop()
    assert monitor.latest.free_cores["s1"] == 32 - 4 - 2
    assert monitor.latest.instance_count == 2
    assert monitor.min_free_cores() == 26
    assert seen == monitor.history
    assert monitor.report_for_engine() == {"s1": 26}


def test_monitor_history_bounded():
    sim, orch = _orchestrated()
    monitor = ResourceMonitor(sim, orch, interval=0.1, history_limit=10)
    monitor.start()
    sim.run(until=10.0)
    assert len(monitor.history) == 10


def test_monitor_validation():
    sim, orch = _orchestrated()
    with pytest.raises(ValueError):
        ResourceMonitor(sim, orch, interval=0.0)
    with pytest.raises(ValueError):
        ResourceMonitor(sim, orch, history_limit=0)
    fresh = ResourceMonitor(sim, orch)
    with pytest.raises(ValueError):
        fresh.min_free_cores()


# ---------------------------------------------------------------------------
# compare_greedy
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    topo = internet2()
    router = Router(topo)
    builder = ClassBuilder(
        router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    classes = builder.build(gravity_matrix(topo, 8000.0, seed=0))
    return classes, {s: 64 for s in topo.switches}


def test_compare_greedy_never_worse(workload):
    classes, cores = workload
    plain = OptimizationEngine(
        config=EngineConfig(compare_greedy=False)
    ).place(classes, cores)
    best = OptimizationEngine(
        config=EngineConfig(compare_greedy=True)
    ).place(classes, cores)
    assert best.total_instances() <= plain.total_instances()
    assert not best.validate(cores)


def test_compare_greedy_beats_or_ties_greedy(workload):
    classes, cores = workload
    greedy = greedy_placement(classes, cores)
    best = OptimizationEngine(
        config=EngineConfig(compare_greedy=True)
    ).place(classes, cores)
    # Consolidation may improve on raw greedy; never worse than it.
    assert best.total_instances() <= greedy.total_instances()


def test_greedy_headroom():
    from repro.traffic.classes import TrafficClass
    from repro.vnf.chains import PolicyChain

    cls = TrafficClass(
        "c", "a", "b", ("a", "b"), PolicyChain(["firewall"]), 600.0
    )
    tight = greedy_placement([cls], {"a": 64, "b": 64}, capacity_headroom=1.0)
    slack = greedy_placement([cls], {"a": 64, "b": 64}, capacity_headroom=0.5)
    assert tight.total_instances() == 1
    assert slack.total_instances() == 2  # 600 > 0.5 * 900
