"""Tests for baselines (ingress, greedy) and TCAM/core metrics."""

import pytest

from repro.core.baselines import (
    FRAMEWORK_COMPARISON,
    greedy_placement,
    ingress_placement,
)
from repro.core.engine import OptimizationEngine, PlacementError
from repro.core.metrics import (
    free_cores_after,
    hash_range_entries,
    tcam_reduction_ratio,
    tcam_usage_with_tagging,
    tcam_usage_without_tagging,
)
from repro.core.subclasses import assign_subclasses
from repro.topology.datasets import internet2
from repro.topology.routing import Router
from repro.traffic.classes import ClassBuilder, hashed_assignment, TrafficClass
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import PolicyChain, STANDARD_CHAINS
from repro.vnf.types import DEFAULT_CATALOG


def _cls(cid, src, dst, path, chain, rate):
    return TrafficClass(cid, src, dst, tuple(path), PolicyChain(chain), rate)


# ---------------------------------------------------------------------------
# Table I data
# ---------------------------------------------------------------------------
def test_framework_comparison_matches_table1():
    by_name = {f.name: f for f in FRAMEWORK_COMPARISON}
    assert by_name["APPLE"].policy_enforcement
    assert by_name["APPLE"].interference_free
    assert by_name["APPLE"].isolation
    assert not by_name["SIMPLE"].interference_free
    assert not by_name["CoMb"].isolation
    assert not by_name["PACE"].policy_enforcement
    assert len(FRAMEWORK_COMPARISON) == 8


# ---------------------------------------------------------------------------
# Ingress strawman
# ---------------------------------------------------------------------------
def test_ingress_dedicates_per_class():
    classes = [
        _cls("c1", "a", "c", ("a", "b", "c"), ["firewall"], 100.0),
        _cls("c2", "a", "c", ("a", "b", "c"), ["firewall"], 100.0),
    ]
    plan = ingress_placement(classes)
    # No multiplexing: one instance per class even though both fit in one.
    assert plan.quantity("a", "firewall") == 2
    apple = OptimizationEngine().place(classes, {"a": 64, "b": 64, "c": 64})
    assert apple.total_instances() < plan.total_instances()


def test_ingress_places_everything_at_src():
    classes = [_cls("c1", "a", "c", ("a", "b", "c"), ["nat", "ids"], 700.0)]
    plan = ingress_placement(classes)
    assert set(sw for sw, _ in plan.quantities) == {"a"}
    assert plan.quantity("a", "nat") == 1
    assert plan.quantity("a", "ids") == 2  # 700 / 600 → 2


# ---------------------------------------------------------------------------
# Greedy heuristic
# ---------------------------------------------------------------------------
def test_greedy_valid_and_order_preserving():
    classes = [
        _cls("c1", "a", "c", ("a", "b", "c"), ["nat", "firewall"], 500.0),
        _cls("c2", "a", "c", ("a", "b", "c"), ["firewall"], 400.0),
    ]
    cores = {"a": 64, "b": 64, "c": 64}
    plan = greedy_placement(classes, cores)
    assert not plan.validate(cores)


def test_greedy_respects_core_budget():
    classes = [_cls("c1", "a", "b", ("a", "b"), ["ids"], 100.0)]
    with pytest.raises(PlacementError):
        greedy_placement(classes, {"a": 4, "b": 4})  # ids needs 8


def test_greedy_and_engine_in_same_band():
    """Both heuristics sit above the LP bound and within ~30% of each other.

    Neither dominates universally: LP rounding wins when load fragments
    across classes; first-fit greedy can win at low utilisation where the
    LP's spatial spreading costs ceil dust.
    """
    topo = internet2()
    router = Router(topo)
    builder = ClassBuilder(router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0)
    classes = builder.build(gravity_matrix(topo, 8000.0, seed=0))[:50]
    cores = {s: 64 for s in topo.switches}
    greedy = greedy_placement(classes, cores)
    engine = OptimizationEngine().place(classes, cores)
    assert engine.total_instances() >= engine.lp_bound - 1e-6
    assert greedy.total_instances() >= engine.lp_bound - 1e-6
    assert engine.total_instances() <= 1.3 * greedy.total_instances()
    assert greedy.total_instances() <= 1.3 * engine.total_instances()


# ---------------------------------------------------------------------------
# TCAM metrics
# ---------------------------------------------------------------------------
def test_hash_range_entries_alignment():
    assert hash_range_entries(0.0, 0.5) == 1
    assert hash_range_entries(0.0, 1.0) == 1
    assert hash_range_entries(0.0, 0.3) > 1


@pytest.fixture
def small_deployment():
    classes = [
        _cls("c1", "a", "c", ("a", "b", "c"), ["firewall"], 400.0),
        _cls("c2", "c", "a", ("c", "b", "a"), ["nat"], 100.0),
    ]
    plan = OptimizationEngine().place(classes, {"a": 64, "b": 64, "c": 64})
    from repro.topology.graph import Link, Topology

    topo = Topology("line", ["a", "b", "c"], [Link("a", "b"), Link("b", "c")])
    return topo, plan, assign_subclasses(plan)


def test_tagging_reduces_tcam(small_deployment):
    topo, plan, sub_plan = small_deployment
    with_tag = sum(tcam_usage_with_tagging(topo, plan.classes, sub_plan).values())
    without = sum(
        tcam_usage_without_tagging(topo, plan.classes, sub_plan).values()
    )
    assert without > with_tag
    assert tcam_reduction_ratio(topo, plan.classes, sub_plan) > 1.0


def test_without_tagging_charges_every_path_switch(small_deployment):
    topo, plan, sub_plan = small_deployment
    usage = tcam_usage_without_tagging(topo, plan.classes, sub_plan)
    # Every switch on some class's path carries classification rules.
    assert all(usage.get(s, 0) > 0 for s in ("a", "b", "c"))


def test_with_tagging_ingress_only(small_deployment):
    topo, plan, sub_plan = small_deployment
    usage = tcam_usage_with_tagging(topo, plan.classes, sub_plan)
    hosts_in_use = {ref.switch for ref in sub_plan.instance_load}
    for sw, count in usage.items():
        if sw not in ("a", "c"):  # not an ingress of either class
            assert count <= 1 + (1 if sw in hosts_in_use else 0)


def test_free_cores_after():
    classes = [_cls("c1", "a", "c", ("a", "b", "c"), ["firewall"], 400.0)]
    cores = {"a": 64, "b": 64, "c": 64}
    plan = OptimizationEngine().place(classes, cores)
    free = free_cores_after(plan, cores)
    assert sum(free.values()) == 3 * 64 - plan.total_cores()
    assert all(v >= 0 for v in free.values())
