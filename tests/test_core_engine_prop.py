"""Property-based tests: random placement instances always satisfy Eq. 2-8."""

from hypothesis import given, settings, strategies as st

from repro.core.engine import EngineConfig, OptimizationEngine, PlacementError
from repro.core.subclasses import assign_subclasses
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG

SWITCHES = ["s0", "s1", "s2", "s3", "s4"]
NFS = DEFAULT_CATALOG.names


@st.composite
def instances(draw):
    """A random small placement instance: classes over a 5-switch line."""
    num_classes = draw(st.integers(1, 5))
    classes = []
    for k in range(num_classes):
        start = draw(st.integers(0, 2))
        end = draw(st.integers(start + 1, 4))
        path = tuple(SWITCHES[start : end + 1])
        chain_len = draw(st.integers(1, 3))
        chain = draw(
            st.permutations(NFS).map(lambda p: list(p[:chain_len]))
        )
        rate = draw(st.floats(min_value=1.0, max_value=2500.0))
        classes.append(
            TrafficClass(f"c{k}", path[0], path[-1], path, PolicyChain(chain), rate)
        )
    cores = {s: draw(st.sampled_from([0, 32, 64, 128])) for s in SWITCHES}
    return classes, cores


@given(instances())
@settings(max_examples=30, deadline=None)
def test_placement_always_valid_or_explicitly_infeasible(instance):
    classes, cores = instance
    engine = OptimizationEngine(config=EngineConfig())
    try:
        plan = engine.place(classes, cores)
    except PlacementError:
        return  # explicit infeasibility is an acceptable outcome
    problems = plan.validate(cores)
    assert problems == [], problems


@given(instances())
@settings(max_examples=30, deadline=None)
def test_objective_at_least_lp_bound(instance):
    classes, cores = instance
    engine = OptimizationEngine()
    try:
        plan = engine.place(classes, cores)
    except PlacementError:
        return
    assert plan.total_instances() >= plan.lp_bound - 1e-6


@given(instances())
@settings(max_examples=25, deadline=None)
def test_subclass_realisation_always_sound(instance):
    """Sub-classes partition each class and respect path order."""
    classes, cores = instance
    engine = OptimizationEngine()
    try:
        plan = engine.place(classes, cores)
    except PlacementError:
        return
    sub_plan = assign_subclasses(plan)
    for cls in plan.classes:
        subs = sub_plan.subclasses(cls.class_id)
        total = sum(s.weight for s in subs)
        assert abs(total - 1.0) < 1e-6
        pos = {sw: i for i, sw in enumerate(cls.path)}
        for sub in subs:
            assert len(sub.instance_seq) == cls.chain_length
            indices = [pos[ref.switch] for ref in sub.instance_seq]
            assert indices == sorted(indices)
            for ref, nf in zip(sub.instance_seq, cls.chain):
                assert ref.nf == nf


@given(instances())
@settings(max_examples=25, deadline=None)
def test_instance_loads_within_capacity(instance):
    """No instance is assigned more than its capacity by the realisation."""
    classes, cores = instance
    engine = OptimizationEngine()
    try:
        plan = engine.place(classes, cores)
    except PlacementError:
        return
    sub_plan = assign_subclasses(plan)
    for ref, load in sub_plan.instance_load.items():
        cap = DEFAULT_CATALOG.get(ref.nf).capacity_mbps
        assert load <= cap + 1e-3
