"""Tests for the multi-tenant intent orchestrator (repro.tenancy)."""

import pytest

from repro.core.controller import AppleController, UnknownClassError
from repro.experiments.harness import normalize_name
from repro.obs.metrics import MetricError, MetricsRegistry
from repro.sim.kernel import Simulator
from repro.tenancy import (
    CapacityArbiter,
    CreateChain,
    DeleteChain,
    IntentBus,
    IntentValidationError,
    ScaleChain,
    TenantOrchestrator,
    UpdateRates,
)
from repro.tenancy.intents import COMPLETED, FAILED, REJECTED
from repro.topology.datasets import internet2
from repro.topology.routing import Router
from repro.traffic.classes import TrafficClass, hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS, PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


# ----------------------------------------------------------------------
# Intent validation + bus
# ----------------------------------------------------------------------
def _bus():
    sim = Simulator(seed=0)
    bus = IntentBus(sim)
    seen = []
    bus.subscribe(seen.append)
    return sim, bus, seen


def test_intent_validation_rejects_malformed():
    cases = [
        CreateChain("", chain_id="c", src="a", dst="b",
                    chain=("firewall",), rate_mbps=10.0),
        CreateChain("t", chain_id="", src="a", dst="b",
                    chain=("firewall",), rate_mbps=10.0),
        CreateChain("t", chain_id="c", src="a", dst="a",
                    chain=("firewall",), rate_mbps=10.0),
        CreateChain("t", chain_id="c", src="a", dst="b",
                    chain=(), rate_mbps=10.0),
        CreateChain("t", chain_id="c", src="a", dst="b",
                    chain=("firewall",), rate_mbps=0.0),
        UpdateRates("t", rates=()),
        UpdateRates("t", rates=(("c", -5.0),)),
        ScaleChain("t", chain_id="c", factor=0.0),
        DeleteChain("t", chain_id=""),
    ]
    for intent in cases:
        with pytest.raises(IntentValidationError):
            intent.validate()


def test_bus_rejects_malformed_without_enqueuing():
    sim, bus, seen = _bus()
    with pytest.raises(IntentValidationError):
        bus.submit(ScaleChain("t", chain_id="", factor=2.0))
    sim.run()
    assert bus.records == [] and seen == []


def test_bus_delivers_in_time_then_submission_order():
    sim, bus, seen = _bus()
    a = bus.submit(DeleteChain("t1", chain_id="c"), delay=2.0)
    b = bus.submit(DeleteChain("t2", chain_id="c"), delay=1.0)
    c = bus.submit(DeleteChain("t3", chain_id="c"), delay=1.0)
    sim.run()
    assert seen == [b, c, a]
    assert [r.seq for r in bus.records] == [0, 1, 2]


def test_bus_allows_single_subscriber():
    sim = Simulator(seed=0)
    bus = IntentBus(sim)
    bus.subscribe(lambda r: None)
    with pytest.raises(RuntimeError):
        bus.subscribe(lambda r: None)


# ----------------------------------------------------------------------
# Capacity arbiter
# ----------------------------------------------------------------------
def _make_class(topo, router, class_id, rate, chain=("firewall",)):
    pops = sorted(topo.hosts)
    return TrafficClass(
        class_id=class_id,
        src=pops[0],
        dst=pops[-1],
        path=router.path(pops[0], pops[-1]),
        chain=PolicyChain(chain, DEFAULT_CATALOG),
        rate_mbps=rate,
    )


@pytest.fixture()
def arb_env():
    topo = internet2(default_host_cores=8)
    sim = Simulator(seed=0)
    arb = CapacityArbiter(
        sim,
        {s: spec.cores for s, spec in topo.hosts.items()},
        tcam_budget=64,
        catalog=DEFAULT_CATALOG,
        admission_timeout=5.0,
    )
    return sim, arb, topo, Router(topo)


def test_arbiter_grant_commit_settle_release(arb_env):
    sim, arb, topo, router = arb_env
    cls = _make_class(topo, router, "tA/c0", 100.0)
    status, grant = arb.request("tA", [cls], resume=lambda g: None)
    assert status == arb.GRANTED and grant.total_cores() > 0
    assert not arb.oversubscribed()

    # Commit trims the reservation to actual usage...
    host = max(grant.cores, key=grant.cores.get)
    assert arb.commit("tA", {host: 1}, tcam_entries=4)
    assert arb.inflight["tA"] == {host: 1}
    # ...and settle promotes it to the steady holding.
    arb.settle("tA")
    assert arb.steady["tA"] == {host: 1}
    assert "tA" not in arb.inflight
    assert arb.tcam_used["tA"] == 4
    assert not arb.oversubscribed()

    arb.release("tA")
    assert arb.free == arb.physical
    assert arb.tcam_free == arb.tcam_budget


def test_arbiter_queues_then_resumes_on_release(arb_env):
    sim, arb, topo, router = arb_env
    big = _make_class(topo, router, "tA/c0", 1500.0)  # fills the path head
    status, grant = arb.request("tA", [big], resume=lambda g: None)
    assert status == arb.GRANTED

    got = []
    small = _make_class(topo, router, "tB/c0", 200.0)
    status, _ = arb.request("tB", [small], resume=got.append)
    assert status == arb.QUEUED
    assert arb.queued_total == 1

    arb.release("tA")  # frees the pool; tB resumes as a sim event
    sim.run(until=1.0)
    assert len(got) == 1 and got[0] is not None
    assert got[0].tenant_id == "tB"


def test_arbiter_admission_timeout_rejects(arb_env):
    sim, arb, topo, router = arb_env
    big = _make_class(topo, router, "tA/c0", 1500.0)  # fills the path head
    assert arb.request("tA", [big], resume=lambda g: None)[0] == arb.GRANTED

    got = []
    small = _make_class(topo, router, "tB/c0", 200.0)
    assert arb.request("tB", [small], resume=got.append)[0] == arb.QUEUED
    sim.run(until=10.0)  # nothing releases; the 5 s timeout fires
    assert got == [None]
    assert arb.queue == []


def test_arbiter_rejects_what_can_never_fit(arb_env):
    sim, arb, topo, router = arb_env
    monster = _make_class(
        topo, router, "tA/c0", 100_000.0, chain=("firewall", "ids", "proxy")
    )
    status, grant = arb.request("tA", [monster], resume=lambda g: None)
    assert status == arb.REJECTED and grant is None


def test_arbiter_tcam_budget_enforced_at_commit(arb_env):
    sim, arb, topo, router = arb_env
    cls = _make_class(topo, router, "tA/c0", 100.0)
    status, grant = arb.request("tA", [cls], resume=lambda g: None)
    assert status == arb.GRANTED
    host = max(grant.cores, key=grant.cores.get)
    assert not arb.commit("tA", {host: 1}, tcam_entries=65)  # budget is 64
    arb.restore("tA")
    assert arb.free == arb.physical


def test_arbiter_need_is_independent_of_other_tenants(arb_env):
    """The reservation is a pure function of (classes, physical topology):
    what other tenants hold delays admission but never reshapes a grant."""
    sim, arb, topo, router = arb_env
    cls = _make_class(topo, router, "tB/c0", 150.0)
    baseline = arb._compute_need([cls])

    other = _make_class(topo, router, "tA/c0", 400.0)
    assert arb.request("tA", [other], resume=lambda g: None)[0] == arb.GRANTED
    assert arb._compute_need([cls]) == baseline


# ----------------------------------------------------------------------
# UnknownClassError (typed controller lookup failure)
# ----------------------------------------------------------------------
def test_send_packet_raises_typed_unknown_class():
    topo = internet2()
    controller = AppleController(topo, hashed_assignment(STANDARD_CHAINS))
    controller.run(gravity_matrix(topo, 4000.0, seed=0))
    with pytest.raises(UnknownClassError) as exc_info:
        controller.send_packet("ghost", 0.1)
    assert isinstance(exc_info.value, KeyError)  # stays catchable as before
    assert exc_info.value.class_id == "ghost"
    assert "ghost" in str(exc_info.value)


# ----------------------------------------------------------------------
# Orchestrator end to end
# ----------------------------------------------------------------------
def _orchestrate(intents, horizon=30.0, host_cores=64):
    topo = internet2(default_host_cores=host_cores)
    sim = Simulator(seed=0)
    orch = TenantOrchestrator(topo, sim, seed=0)
    orch.start()
    records = [orch.submit(intent, delay=delay) for delay, intent in intents]
    sim.run(until=horizon)
    orch.stop()
    return orch, records


def test_orchestrator_full_lifecycle():
    chain = tuple(STANDARD_CHAINS[0])
    orch, records = _orchestrate(
        [
            (0.0, CreateChain("tA", chain_id="web", src="STTL", dst="ATLA",
                              chain=chain, rate_mbps=200.0)),
            (0.5, CreateChain("tB", chain_id="db", src="CHIN", dst="HSTN",
                              chain=chain, rate_mbps=150.0)),
            (2.0, UpdateRates("tA", rates=(("web", 500.0),))),
            (4.0, ScaleChain("tB", chain_id="db", factor=2.0)),
            (8.0, DeleteChain("tB", chain_id="db")),
        ]
    )
    assert [r.status for r in records] == [COMPLETED] * 5
    assert orch.verify_ok == orch.convergences > 0
    assert orch.verify_failed == 0
    assert orch.cross_tenant_violation_seconds == 0
    assert orch.total_drift() == 0
    # tB tore down fully: arbiter holds nothing for it, tA still live.
    assert "tB" not in orch.arbiter.steady
    assert orch.workers["tA"].chains["web"].rate_mbps == 500.0
    assert orch.workers["tB"].chains == {}
    assert orch.active_tenants() == 1


def test_orchestrator_tenant_scoped_miss_fails_cleanly():
    chain = tuple(STANDARD_CHAINS[0])
    orch, records = _orchestrate(
        [
            (0.0, CreateChain("tA", chain_id="web", src="STTL", dst="ATLA",
                              chain=chain, rate_mbps=100.0)),
            (1.0, ScaleChain("tA", chain_id="ghost", factor=2.0)),
            (2.0, DeleteChain("tB", chain_id="web")),  # tA's chain, not tB's
        ]
    )
    create, scale, cross = records
    assert create.status == COMPLETED
    assert scale.status == FAILED
    assert "tenant-scoped miss" in scale.detail and "tA/ghost" in scale.detail
    assert cross.status == FAILED  # tenants cannot touch each other's chains
    assert "tB/web" in cross.detail
    assert orch.workers["tA"].chains["web"].rate_mbps == 100.0  # untouched


def test_orchestrator_duplicate_create_fails():
    chain = tuple(STANDARD_CHAINS[0])
    orch, records = _orchestrate(
        [
            (0.0, CreateChain("tA", chain_id="web", src="STTL", dst="ATLA",
                              chain=chain, rate_mbps=100.0)),
            (1.0, CreateChain("tA", chain_id="web", src="STTL", dst="ATLA",
                              chain=chain, rate_mbps=100.0)),
        ]
    )
    assert records[0].status == COMPLETED
    assert records[1].status == FAILED
    assert "already exists" in records[1].detail


def test_orchestrator_capacity_rejection_is_terminal():
    chain = ("firewall", "ids", "proxy")
    orch, records = _orchestrate(
        [
            (0.0, CreateChain("tA", chain_id="huge", src="STTL", dst="ATLA",
                              chain=chain, rate_mbps=1e6)),
        ],
        host_cores=4,
    )
    assert records[0].status == REJECTED
    assert orch.arbiter.rejected_total >= 1
    assert orch.cross_tenant_violation_seconds == 0


# ----------------------------------------------------------------------
# Satellites: metrics cardinality cap, CLI name normalization
# ----------------------------------------------------------------------
def test_metrics_registry_configurable_series_cap():
    registry = MetricsRegistry(max_series=3)
    metric = registry.counter("tenancy_test_total", "per-tenant", ["tenant"])
    for i in range(3):
        metric.labels(tenant=f"t{i}").inc()
    with pytest.raises(MetricError, match="cardinality limit"):
        metric.labels(tenant="t3").inc()
    # The cap can also be raised after construction (hot-loop escape hatch).
    registry.max_series = 5
    metric.labels(tenant="t3").inc()

    with pytest.raises(MetricError):
        MetricsRegistry(max_series=0)
    assert MetricsRegistry().max_series == 512


def test_cli_normalizes_hyphenated_experiment_names():
    assert normalize_name("multi-tenant") == "multi_tenant"
    assert normalize_name("multi_tenant") == "multi_tenant"
    from repro.experiments.cli import EXPERIMENTS

    assert "multi_tenant" in EXPERIMENTS
