"""Full-pipeline integration: the whole system on one GEANT scenario.

One test module exercising every layer together, the way a downstream
user would drive the library: traffic synthesis → classes → placement →
orchestrated rollout through the cloud facades → rule verification →
replay with fast failover → periodic re-optimization — asserting the
cross-layer consistency properties at each seam.
"""

import pytest

from repro.cloud.monitoring import ResourceMonitor
from repro.cloud.orchestrator import ResourceOrchestrator
from repro.core.controller import AppleController
from repro.core.dynamic import FailoverConfig
from repro.core.engine import EngineConfig
from repro.core.provisioning import OrchestatedProvisioner
from repro.core.rulegen import RuleGenerator
from repro.core.verify import verify_deployment
from repro.core.controller import Deployment
from repro.sim.kernel import Simulator
from repro.topology.datasets import geant
from repro.topology.linkload import link_loads
from repro.traffic.classes import hashed_assignment
from repro.traffic.diurnal import synthesize_series
from repro.traffic.replay import replay_series
from repro.vnf.chains import STANDARD_CHAINS


@pytest.fixture(scope="module")
def scenario():
    topo = geant()
    controller = AppleController(
        topo,
        hashed_assignment(STANDARD_CHAINS),
        min_rate_mbps=1.0,
        engine_config=EngineConfig(capacity_headroom=0.8),
    )
    series = synthesize_series(topo, 12_000.0, snapshots=24, interval=60.0, seed=9)
    return topo, controller, series


def test_full_pipeline(scenario):
    topo, controller, series = scenario
    sim = Simulator(seed=20)

    # 1. Plan from the mean matrix.
    plan = controller.compute_placement(series.mean())
    assert not plan.validate(
        controller.available_cores(),
        available_memory_gb=controller.available_memory_gb(),
    )

    # 2. Orchestrated rollout through the cloud substrate.
    orch = ResourceOrchestrator(sim, topo, spare_clickos=1)
    monitor = ResourceMonitor(sim, orch, interval=5.0)
    monitor.start()
    prov = OrchestatedProvisioner(sim, orch, RuleGenerator(controller.catalog))
    result = prov.provision(plan)
    sim.run(until=120.0)
    monitor.stop()
    assert result.complete
    # The monitor saw resources drain as VMs launched.
    assert monitor.min_free_cores() < monitor.history[0].total_free

    # 3. Verify the rolled-out deployment end to end.
    deployment = Deployment(
        plan=plan,
        subclass_plan=result.subclass_plan,
        rules=result.rules,
        network=result.network,
        instances=result.instances,
    )
    report = verify_deployment(deployment, topo)
    assert report.ok, report.summary()

    # 4. Interference freedom at the link level.
    before = link_loads(topo, controller.router, series.mean())
    after = link_loads(topo, controller.router, series.mean())
    assert before == after

    # 5. Replay with fast failover keeps loss low with few extras.
    controller.deployment = deployment
    timeline = replay_series(controller.class_builder, series)
    handler = controller.make_dynamic_handler(FailoverConfig(enabled=True))
    loss = handler.replay(timeline)
    assert loss.mean_loss < 0.02
    assert loss.mean_extra_cores < 64

    # 6. Periodic re-optimization for a doubled peak converges to a
    #    feasible, larger plan.
    peak_plan = controller.engine.place(
        controller.class_builder.build(series.peak()),
        controller.available_cores(),
    )
    assert peak_plan.total_instances() >= plan.total_instances()
    assert not peak_plan.validate(controller.available_cores())
