"""Tests for the orchestrated rollout (plan → cloud substrate → rules)."""

import pytest

from repro.cloud.orchestrator import ResourceOrchestrator
from repro.core.engine import OptimizationEngine
from repro.core.provisioning import OrchestatedProvisioner
from repro.core.rulegen import RuleGenerator
from repro.dataplane.packet import Packet
from repro.sim.kernel import Simulator
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


def _topo():
    return Topology(
        "line",
        ["a", "b", "c"],
        [Link("a", "b"), Link("b", "c")],
        hosts={
            "a": AppleHostSpec(cores=64),
            "b": AppleHostSpec(cores=64),
            "c": AppleHostSpec(cores=64),
        },
    )


def _plan():
    classes = [
        TrafficClass(
            "c1", "a", "c", ("a", "b", "c"),
            PolicyChain(["nat", "firewall"]), 400.0,
        ),
        TrafficClass(
            "c2", "a", "c", ("a", "b", "c"), PolicyChain(["ids"]), 300.0
        ),
    ]
    return OptimizationEngine().place(classes, {"a": 64, "b": 64, "c": 64})


def _provision(spares=0, fast=True):
    sim = Simulator(seed=1)
    topo = _topo()
    orch = ResourceOrchestrator(sim, topo, spare_clickos=spares)
    sim.run(until=0.5)  # spares boot
    prov = OrchestatedProvisioner(
        sim, orch, RuleGenerator(DEFAULT_CATALOG), use_fast_path=fast
    )
    plan = _plan()
    completions = []
    result = prov.provision(plan, on_complete=completions.append)
    return sim, orch, plan, result, completions


def test_rollout_completes_and_rules_follow_vms():
    sim, orch, plan, result, completions = _provision()
    assert not result.complete  # async: nothing ready yet
    sim.run(until=60.0)
    assert result.complete
    assert completions == [result]
    # Rules were installed only after the last VM was running.
    assert result.rules_installed_at >= result.instances_ready_at
    # The slow path dominates: full VMs (ids) need > 10 s.
    assert result.rollout_seconds > 10.0


def test_rollout_wires_functional_data_plane():
    sim, orch, plan, result, _ = _provision()
    sim.run(until=60.0)
    for cls in plan.classes:
        p = Packet(class_id=cls.class_id, flow_hash=0.5, src="a", dst="c")
        record = result.network.inject(p, now=sim.now)
        assert record.policy_satisfied
        vnfs = [v.split("[")[0] for v in p.vnfs_visited()]
        assert vnfs == list(cls.chain.names)


def test_rollout_consumes_host_cores():
    sim, orch, plan, result, _ = _provision()
    sim.run(until=60.0)
    used = plan.cores_by_switch()
    for switch, host in orch.hosts.items():
        assert host.allocated_cores == used.get(switch, 0)


def test_fast_path_accelerates_clickos_instances():
    sim_fast, orch_fast, plan, result_fast, _ = _provision(spares=8, fast=True)
    sim_fast.run(until=60.0)
    fast_latencies = [
        req.latency
        for req in orch_fast.launches
        if req.instance is not None and req.nf_type.clickos and req.fast
    ]
    assert fast_latencies and min(fast_latencies) <= 0.05  # 30 ms reconfigure


def test_empty_plan_rolls_out_immediately():
    sim = Simulator()
    orch = ResourceOrchestrator(sim, _topo())
    prov = OrchestatedProvisioner(sim, orch, RuleGenerator(DEFAULT_CATALOG))
    from repro.core.placement import PlacementPlan

    empty = PlacementPlan(
        quantities={}, distribution={}, classes=[],
        catalog=DEFAULT_CATALOG, objective=0.0,
    )
    result = prov.provision(empty)
    sim.run(until=1.0)
    assert result.complete
    assert result.rollout_seconds <= 0.1  # just the rule install
