"""Property-based tests for the core verifier (S3 of the chaos PR).

The three Table I properties, checked over randomly seeded deployments:

* **policy enforcement** — every delivered probe traverses exactly its
  class's policy chain, in order;
* **interference freedom** — no delivered probe is ever rerouted off its
  class's registered routing path;
* and both must *survive recovery*: after a fault and an incremental
  re-placement, the re-verified deployment still shows zero violations.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import ChaosEngine, FaultEvent, FaultKind, FaultSchedule
from repro.core.controller import AppleController
from repro.core.verify import verify_deployment
from repro.dataplane.packet import Packet
from repro.sim.kernel import Simulator
from repro.topology.datasets import internet2
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS

_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _deploy(seed: int, demand: float):
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    matrix = gravity_matrix(topo, demand, seed=seed)
    deployment = controller.run(matrix, sim=Simulator())
    return topo, controller, deployment


@settings(**_SETTINGS)
@given(seed=st.integers(0, 2**16), demand=st.sampled_from([4000.0, 8000.0]))
def test_seeded_deployments_verify_clean(seed, demand):
    topo, _controller, deployment = _deploy(seed, demand)
    report = verify_deployment(deployment, topo)
    assert report.ok, report.summary()
    assert report.probes_delivered == report.probes_sent
    assert report.violations == []


@settings(**_SETTINGS)
@given(seed=st.integers(0, 2**16), hash_bits=st.integers(1, 10))
def test_probe_chain_order_and_path(seed, hash_bits):
    """Direct restatement of the two properties on raw probes: for any
    sub-class hash point, the delivered packet's VNF trace equals the
    class chain and its switch trace equals the registered path."""
    topo, _controller, deployment = _deploy(seed, 6000.0)
    network = deployment.network
    h = (2 * hash_bits - 1) / (2 ** (1 + hash_bits.bit_length()))  # in (0,1)
    for cls in deployment.plan.classes[:20]:
        packet = Packet(
            class_id=cls.class_id, flow_hash=h % 1.0, src=cls.src, dst=cls.dst
        )
        record = network.inject(packet)
        assert record.delivered
        visited = [v.split("[")[0] for v in packet.vnfs_visited()]
        assert visited == list(cls.chain.names)
        assert tuple(packet.switches_visited()) == cls.path


@settings(**_SETTINGS)
@given(seed=st.integers(0, 2**12), victim=st.integers(0, 10**6))
def test_verify_still_clean_after_crash_and_recovery(seed, victim):
    """Interference freedom survives churn: kill an arbitrary VNF VM, let
    the chaos pipeline detect and re-place, and the re-verified deployment
    is as clean as the original."""
    topo, controller, deployment = _deploy(seed, 6000.0)
    sim = Simulator()
    # Rebind timers to a fresh simulator-independent run.
    keys = sorted(deployment.instances)
    target = keys[victim % len(keys)]
    schedule = FaultSchedule(
        seed=seed,
        events=(FaultEvent(time=1.0, kind=FaultKind.VNF_CRASH, target=target),),
    )
    engine = ChaosEngine(sim, controller, schedule)
    result = engine.run(until=4.0)
    assert result.faults_detected == 1
    assert all(c["verify_ok"] for c in result.metrics["convergences"])
    report = verify_deployment(controller.deployment, topo)
    assert report.ok, report.summary()
    assert not [v for v in report.violations if v.kind == "policy"]
    assert not [v for v in report.violations if v.kind == "interference"]
