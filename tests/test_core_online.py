"""Tests for the online placement path (Sec. IV future work)."""

import pytest

from repro.core.engine import OptimizationEngine
from repro.core.online import OnlinePlacementError, OnlinePlacer
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


def _cls(cid, rate, path=("a", "b", "c"), chain=("firewall",)):
    return TrafficClass(
        cid, path[0], path[-1], tuple(path), PolicyChain(list(chain)), rate
    )


CORES = {"a": 64, "b": 64, "c": 64}


def test_admit_launches_first_instance():
    placer = OnlinePlacer(CORES)
    decision = placer.admit(_cls("c1", 100.0))
    assert len(decision.new_instances) == 1
    assert placer.quantities[decision.new_instances[0]] == 1
    plan = placer.to_plan()
    assert not plan.validate(CORES)


def test_second_class_fills_spare_capacity():
    placer = OnlinePlacer(CORES)
    placer.admit(_cls("c1", 100.0))
    decision = placer.admit(_cls("c2", 100.0))
    assert decision.new_instances == ()  # rides the existing instance
    assert sum(placer.quantities.values()) == 1


def test_overflow_launches_additional_instance():
    placer = OnlinePlacer(CORES)
    placer.admit(_cls("c1", 800.0))
    decision = placer.admit(_cls("c2", 800.0))
    assert decision.new_instances  # 1600 > 900: second instance needed
    assert sum(placer.quantities.values()) == 2


def test_chain_order_respected():
    placer = OnlinePlacer(CORES)
    decision = placer.admit(_cls("c1", 100.0, chain=("nat", "firewall", "ids")))
    assert list(decision.positions) == sorted(decision.positions)
    plan = placer.to_plan()
    assert not plan.validate(CORES)


def test_admission_rejected_when_no_resources():
    placer = OnlinePlacer({"a": 4, "b": 4, "c": 4})
    with pytest.raises(OnlinePlacementError):
        placer.admit(_cls("c1", 10.0, chain=("ids",)))  # needs 8 cores


def test_duplicate_admission_rejected():
    placer = OnlinePlacer(CORES)
    placer.admit(_cls("c1", 10.0))
    with pytest.raises(OnlinePlacementError):
        placer.admit(_cls("c1", 10.0))


def test_release_frees_capacity_but_keeps_instances():
    placer = OnlinePlacer(CORES)
    placer.admit(_cls("c1", 800.0))
    placer.release("c1")
    assert placer.admitted_classes() == []
    assert sum(placer.quantities.values()) == 1  # instance stays warm
    # A new class reuses the warm instance.
    decision = placer.admit(_cls("c2", 800.0))
    assert decision.new_instances == ()
    with pytest.raises(KeyError):
        placer.release("ghost")


def test_seeded_from_global_plan():
    classes = [_cls("base", 500.0)]
    plan = OptimizationEngine().place(classes, CORES)
    placer = OnlinePlacer(CORES, base_plan=plan)
    # The base plan's instance has 400 Mbps spare: a 300 Mbps flow rides it.
    decision = placer.admit(_cls("new", 300.0))
    assert decision.new_instances == ()


def test_online_never_moves_existing_assignments():
    classes = [_cls("base", 500.0)]
    plan = OptimizationEngine().place(classes, CORES)
    placer = OnlinePlacer(CORES, base_plan=plan)
    before = dict(placer.quantities)
    placer.admit(_cls("new", 2000.0))
    for slot, q in before.items():
        assert placer.quantities[slot] >= q  # counts only ever grow


def test_headroom_respected():
    placer = OnlinePlacer(CORES, capacity_headroom=0.5)
    placer.admit(_cls("c1", 400.0))
    decision = placer.admit(_cls("c2", 400.0))
    # 800 total > 0.5 * 900 = 450 plannable: needs a second instance.
    assert decision.new_instances
    with pytest.raises(ValueError):
        OnlinePlacer(CORES, capacity_headroom=0.0)


def test_combined_steps_on_one_switch_checked():
    # Path of length 1: both chain steps must land on 'a'; together they
    # need 12 cores but only 8 exist.
    placer = OnlinePlacer({"a": 8})
    with pytest.raises(OnlinePlacementError):
        placer.admit(_cls("c1", 100.0, path=("a",), chain=("firewall", "ids")))
