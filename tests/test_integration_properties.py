"""End-to-end verification of APPLE's three properties (Table I).

These integration tests run the full pipeline — traffic matrix → classes →
Optimization Engine → sub-classes → Rule Generator → data plane — and then
verify, packet by packet, the properties the paper claims:

1. **Policy enforcement** — every delivered packet traversed its class's
   chain, in order, exactly once.
2. **Interference freedom** — every packet's physical-switch trace equals
   the routing path of its class, untouched by APPLE.
3. **Isolation** — every VNF instance is a distinct object with dedicated
   cores; host core budgets are never oversubscribed.
"""

import pytest

from repro.core.controller import AppleController
from repro.dataplane.packet import Packet
from repro.topology.datasets import geant, internet2, univ1
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS

HASHES = (0.02, 0.21, 0.48, 0.63, 0.87, 0.99)


def _deploy(topo, demand, seed=0, ecmp=False):
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0, ecmp=ecmp
    )
    deployment = controller.run(gravity_matrix(topo, demand, seed=seed))
    return controller, deployment


@pytest.fixture(scope="module", params=["internet2", "geant"])
def deployed(request):
    loaders = {"internet2": internet2, "geant": geant}
    topo = loaders[request.param]()
    return _deploy(topo, 8000.0)


def test_policy_enforcement(deployed):
    controller, deployment = deployed
    for cls in deployment.plan.classes:
        for h in HASHES:
            record = controller.send_packet(cls.class_id, h)
            assert record.delivered, f"{cls.class_id} hash {h} dropped"
            assert record.policy_satisfied
            vnf_types = [v.split("[")[0] for v in record.packet.vnfs_visited()]
            assert vnf_types == list(cls.chain.names), (
                f"{cls.class_id}: traversed {vnf_types}, "
                f"policy requires {list(cls.chain.names)}"
            )


def test_interference_freedom(deployed):
    controller, deployment = deployed
    for cls in deployment.plan.classes:
        for h in HASHES:
            record = controller.send_packet(cls.class_id, h)
            assert tuple(record.packet.switches_visited()) == cls.path, (
                f"{cls.class_id}: APPLE changed the forwarding path"
            )


def test_isolation(deployed):
    controller, deployment = deployed
    # Every logical slot materialised as a distinct instance object.
    instances = list(deployment.instances.values())
    assert len({id(i) for i in instances}) == len(instances)
    # Host core budgets never oversubscribed.
    cores_used = {}
    for inst in instances:
        cores_used[inst.switch] = cores_used.get(inst.switch, 0) + inst.nf_type.cores
    for switch, used in cores_used.items():
        assert used <= controller.topo.host_cores(switch)
    # And the plan-level validation agrees.
    assert not deployment.plan.validate(controller.available_cores())


def test_properties_hold_under_ecmp_datacenter():
    topo = univ1()
    controller, deployment = _deploy(topo, 8000.0, ecmp=True)
    for cls in deployment.plan.classes[:60]:
        record = controller.send_packet(cls.class_id, 0.5)
        assert record.delivered and record.policy_satisfied
        assert tuple(record.packet.switches_visited()) == cls.path


def test_no_packet_visits_instance_twice(deployed):
    """Sec. V-B's assumption, guaranteed by construction — verify anyway."""
    controller, deployment = deployed
    for cls in deployment.plan.classes[:80]:
        record = controller.send_packet(cls.class_id, 0.37)
        visited = record.packet.vnfs_visited()
        assert len(visited) == len(set(visited))


def test_subclass_hash_ranges_route_consistently(deployed):
    """Packets in the same sub-class traverse identical instance sequences."""
    controller, deployment = deployed
    for cls in deployment.plan.classes[:40]:
        for sub in deployment.subclass_plan.subclasses(cls.class_id):
            lo, hi = sub.hash_range
            mid = (lo + hi) / 2
            record = controller.send_packet(cls.class_id, mid)
            assert tuple(record.packet.vnfs_visited()) == tuple(
                ref.key for ref in sub.instance_seq
            )
