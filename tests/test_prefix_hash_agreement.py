"""Cross-validation: the two sub-class realisations agree (Sec. V-A).

Consistent hashing assigns a flow to the sub-class whose hash interval
contains it; the prefix method matches the flow's source address against
the sub-class's CIDR rules.  For suffix-based hashing (host bits of the
class block as the hash), both mechanisms must classify every address in
the block identically — up to the one-address rounding at fraction
boundaries.
"""

from hypothesis import given, settings, strategies as st

from repro.classify.rules import parse_prefix
from repro.classify.split import SubclassSplit
from repro.dataplane.flowhash import suffix_hash

BLOCK = "10.7.3.0/24"
BLOCK_LO, BLOCK_HI = parse_prefix(BLOCK)
BLOCK_SIZE = BLOCK_HI - BLOCK_LO + 1


def _prefix_member(split: SubclassSplit, sub: int, addr: int) -> bool:
    for prefix in split.prefixes(sub):
        lo, hi = parse_prefix(prefix)
        if lo <= addr <= hi:
            return True
    return False


@given(
    st.lists(st.floats(0.05, 5.0), min_size=1, max_size=6),
    st.integers(0, 255),
)
@settings(max_examples=120, deadline=None)
def test_hash_and_prefix_realisations_agree(weights, host_byte):
    split = SubclassSplit.from_weights(BLOCK, weights)
    addr = BLOCK_LO + host_byte
    h = suffix_hash({"src_ip": addr}, class_prefix_len=24)
    hash_sub = split.subclass_of_hash(h)

    prefix_subs = [
        i for i in range(split.num_subclasses) if _prefix_member(split, i, addr)
    ]
    # Every address belongs to exactly one sub-class under the prefix rules.
    assert len(prefix_subs) == 1
    # The two realisations agree except within one address of a boundary
    # (fraction_to_prefixes rounds interval edges to whole addresses).
    if prefix_subs[0] != hash_sub:
        lo, hi = split.hash_range(hash_sub)
        dist = min(abs(h - b) for b in (lo, hi))
        assert dist <= 1.5 / BLOCK_SIZE, (
            f"disagreement away from a boundary: hash->{hash_sub}, "
            f"prefix->{prefix_subs[0]} at h={h}"
        )


@given(st.lists(st.floats(0.05, 5.0), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_prefix_rules_partition_block(weights):
    """The union of all sub-class prefixes tiles the block exactly once."""
    split = SubclassSplit.from_weights(BLOCK, weights)
    coverage = [0] * BLOCK_SIZE
    for i in range(split.num_subclasses):
        for prefix in split.prefixes(i):
            lo, hi = parse_prefix(prefix)
            for a in range(lo, hi + 1):
                coverage[a - BLOCK_LO] += 1
    assert all(c == 1 for c in coverage)
