"""Property tests: tenant isolation under arbitrary intent interleavings.

Two properties the tenancy subsystem is built around:

* **Interleaving independence** — with ample capacity, each tenant's
  final deployment (blueprint, southbound state signature, placement
  quantities) is a function of *its own* intent sequence only.  Hypothesis
  draws cross-tenant interleavings (per-tenant FIFO order preserved — the
  bus guarantees that much) and every interleaving must end in the same
  per-tenant signatures as the canonical order.  This holds because the
  arbiter's need computation is a pure function of (classes, physical
  topology): contention can delay a grant but never reshape it.

* **Same-seed bit-identity** — one seed is one platform history; two
  full runs produce identical platform state signatures.
"""

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator
from repro.tenancy import (
    CreateChain,
    DeleteChain,
    ScaleChain,
    TenantOrchestrator,
    UpdateRates,
)
from repro.topology.datasets import internet2
from repro.vnf.chains import STANDARD_CHAINS

HORIZON = 40.0

#: Three independent tenants, two ops each (per-tenant order is fixed;
#: only the cross-tenant interleaving varies).
TENANT_OPS = {
    "tA": [
        CreateChain("tA", chain_id="c0", src="STTL", dst="ATLA",
                    chain=tuple(STANDARD_CHAINS[0]), rate_mbps=220.0),
        UpdateRates("tA", rates=(("c0", 540.0),)),
    ],
    "tB": [
        CreateChain("tB", chain_id="c0", src="CHIN", dst="HSTN",
                    chain=tuple(STANDARD_CHAINS[1 % len(STANDARD_CHAINS)]),
                    rate_mbps=150.0),
        ScaleChain("tB", chain_id="c0", factor=2.0),
    ],
    "tC": [
        CreateChain("tC", chain_id="c0", src="LOSA", dst="NYCM",
                    chain=tuple(STANDARD_CHAINS[0]), rate_mbps=300.0),
        DeleteChain("tC", chain_id="c0"),
    ],
}


def _run_interleaving(order):
    """One platform history submitting ops in the given tenant order."""
    topo = internet2(default_host_cores=64)  # ample: no admission queueing
    sim = Simulator(seed=0)
    orch = TenantOrchestrator(topo, sim, seed=0)
    orch.start()
    cursors = {t: 0 for t in TENANT_OPS}
    for slot, tenant in enumerate(order):
        intent = TENANT_OPS[tenant][cursors[tenant]]
        cursors[tenant] += 1
        orch.submit(intent, delay=0.5 * slot)
    sim.run(until=HORIZON)
    orch.stop()
    assert orch.cross_tenant_violation_seconds == 0
    assert orch.verify_failed == 0
    return {t: orch.workers[t].signature() for t in TENANT_OPS}


@lru_cache(maxsize=1)
def _canonical():
    return _run_interleaving(("tA", "tA", "tB", "tB", "tC", "tC"))


#: All interleavings of [tA, tA, tB, tB, tC, tC]: permutations of the
#: multiset; per-tenant order is restored by the cursor in
#: ``_run_interleaving`` (a tenant's first drawn slot is its first op).
interleavings = st.permutations(["tA", "tA", "tB", "tB", "tC", "tC"])


@given(order=interleavings)
@settings(max_examples=12, deadline=None)
def test_final_deployments_independent_of_interleaving(order):
    assert _run_interleaving(tuple(order)) == _canonical()


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=6, deadline=None)
def test_same_seed_platform_history_bit_identical(seed):
    def run():
        topo = internet2(default_host_cores=64)
        sim = Simulator(seed=seed)
        orch = TenantOrchestrator(topo, sim, seed=seed)
        orch.start()
        for slot, (tenant, ops) in enumerate(sorted(TENANT_OPS.items())):
            for i, intent in enumerate(ops):
                orch.submit(intent, delay=0.3 * slot + 1.7 * i)
        sim.run(until=HORIZON)
        orch.stop()
        return orch.state_signature()

    assert run() == run()
