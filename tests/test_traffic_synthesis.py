"""Tests for gravity-model and diurnal traffic synthesis."""

import numpy as np
import pytest

from repro.topology.datasets import internet2, univ1
from repro.traffic.diurnal import (
    aggregate_smoothing_ratio,
    DiurnalModel,
    synthesize_series,
)
from repro.traffic.gravity import gravity_matrix, node_weights


def test_gravity_total_normalised():
    topo = internet2()
    tm = gravity_matrix(topo, total_mbps=5000.0, seed=1)
    assert abs(tm.total() - 5000.0) < 1e-6


def test_gravity_deterministic_per_seed():
    topo = internet2()
    a = gravity_matrix(topo, 1000.0, seed=2)
    b = gravity_matrix(topo, 1000.0, seed=2)
    c = gravity_matrix(topo, 1000.0, seed=3)
    assert np.allclose(a.array, b.array)
    assert not np.allclose(a.array, c.array)


def test_gravity_zero_total():
    topo = internet2()
    tm = gravity_matrix(topo, 0.0)
    assert tm.total() == 0.0


def test_gravity_negative_total_rejected():
    with pytest.raises(ValueError):
        gravity_matrix(internet2(), -1.0)


def test_node_weights_degree_bias():
    topo = internet2()
    flat = node_weights(topo, seed=0, sigma=0.0, degree_bias=1.0)
    # With sigma=0 the weight is exactly the degree.
    assert flat["ATLA"] == topo.degree("ATLA")


def test_custom_weights_shape_demand():
    topo = univ1()
    weights = {s: (1.0 if s.startswith("edge") else 0.0) for s in topo.switches}
    tm = gravity_matrix(topo, 1000.0, weights=weights)
    for src, dst, rate in tm.pairs():
        assert src.startswith("edge") and dst.startswith("edge")


def test_series_shape_and_interval():
    topo = internet2()
    series = synthesize_series(topo, 1000.0, snapshots=10, interval=60.0, seed=0)
    assert len(series) == 10
    assert series.interval == 60.0
    assert series.times()[-1] == 540.0


def test_series_non_negative_and_varying():
    topo = internet2()
    series = synthesize_series(topo, 1000.0, snapshots=20, seed=0)
    stacked = np.stack([s.array for s in series])
    assert (stacked >= 0).all()
    assert stacked.std(axis=0).max() > 0  # actually time-varying


def test_diurnal_factor_daily_cycle():
    model = DiurnalModel(daily_amplitude=0.4, weekend_dip=0.0)
    trough = model.factor(0.0)  # phase -pi/2 at midnight
    peak = model.factor(43_200.0)  # midday
    assert peak > trough
    assert abs(model.factor(0.0) - model.factor(86_400.0)) < 1e-9  # periodic


def test_weekend_dip():
    model = DiurnalModel(weekend_dip=0.5)
    weekday = model.factor(2 * 86_400.0 + 3600)
    weekend = model.factor(5 * 86_400.0 + 3600)
    assert weekend < weekday


def test_pairs_whitelist_restricts_and_rescales():
    topo = internet2()
    pairs = [("ATLA", "CHIN"), ("NYCM", "LOSA")]
    series = synthesize_series(
        topo, 1000.0, snapshots=5, seed=0, pairs=pairs
    )
    mean = series.mean()
    active = [(s, d) for s, d, _ in mean.pairs(min_rate=1e-9)]
    assert set(active) <= set(pairs)
    # Base matrix rescaled to the requested total (snapshots fluctuate).
    assert 300 < mean.total() < 3000


def test_whitelist_of_zero_demand_rejected():
    topo = internet2()
    weights = {s: 0.0 for s in topo.switches}
    weights["ATLA"] = 1.0  # single node: all pairs zero
    with pytest.raises(ValueError):
        synthesize_series(
            topo, 100.0, snapshots=2, weights=weights, pairs=[("STTL", "NYCM")]
        )


def test_aggregation_smooths():
    topo = internet2()
    series = synthesize_series(topo, 5000.0, snapshots=60, seed=1)
    ratio = aggregate_smoothing_ratio(series, group_size=6)
    assert ratio < 1.0


def test_smoothing_needs_enough_demands():
    topo = internet2()
    series = synthesize_series(
        topo, 100.0, snapshots=5, seed=0, pairs=[("ATLA", "CHIN")]
    )
    with pytest.raises(ValueError):
        aggregate_smoothing_ratio(series, group_size=50)
