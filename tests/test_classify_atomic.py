"""Tests for atomic-predicate computation (the Sec. IV-A class machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.classify.atomic import compute_atomic_predicates
from repro.classify.fields import FieldSpace, HeaderField
from repro.classify.predicates import Cube, Predicate

SPACE = FieldSpace([HeaderField("x", 4), HeaderField("y", 4)])


def pred(**kw):
    return Predicate.of_cube(Cube.make(SPACE, kw))


def test_no_predicates_single_atom():
    ap = compute_atomic_predicates(SPACE, [])
    assert ap.num_atoms == 1
    assert ap.atoms[0].volume() == SPACE.total_volume()


def test_single_predicate_two_atoms():
    ap = compute_atomic_predicates(SPACE, [pred(x=(0, 7))])
    assert ap.num_atoms == 2
    assert ap.verify_partition()


def test_trivial_predicate_everything():
    ap = compute_atomic_predicates(SPACE, [Predicate.everything(SPACE)])
    assert ap.num_atoms == 1
    assert ap.labels[0] == frozenset({0})


def test_disjoint_predicates_three_atoms():
    ap = compute_atomic_predicates(SPACE, [pred(x=(0, 3)), pred(x=(8, 11))])
    assert ap.num_atoms == 3
    assert ap.verify_partition()


def test_overlapping_predicates_four_atoms():
    ap = compute_atomic_predicates(SPACE, [pred(x=(0, 7)), pred(x=(4, 11))])
    assert ap.num_atoms == 4  # only-A, A∩B, only-B, neither
    assert ap.verify_partition()


def test_labels_reconstruct_inputs():
    """Each input predicate equals the union of its labelled atoms."""
    inputs = [pred(x=(0, 7)), pred(y=(0, 7)), pred(x=(4, 11), y=(4, 11))]
    ap = compute_atomic_predicates(SPACE, inputs)
    for idx, original in enumerate(inputs):
        rebuilt = Predicate.nothing(SPACE)
        for atom in ap.atoms_of(idx):
            rebuilt = rebuilt.union(atom)
        assert rebuilt.equals(original)


def test_atom_of_header_and_equivalence_key():
    inputs = [pred(x=(0, 7)), pred(y=(0, 7))]
    ap = compute_atomic_predicates(SPACE, inputs)
    key_a = ap.equivalence_key({"x": 1, "y": 1})  # matches both
    key_b = ap.equivalence_key({"x": 1, "y": 9})  # matches only first
    key_c = ap.equivalence_key({"x": 2, "y": 2})  # same as key_a
    assert key_a == frozenset({0, 1})
    assert key_b == frozenset({0})
    assert key_a == key_c


def test_mismatched_space_rejected():
    other = FieldSpace([HeaderField("z", 4)])
    p = Predicate.of_cube(Cube.make(other, {"z": (0, 3)}))
    with pytest.raises(ValueError):
        compute_atomic_predicates(SPACE, [p])


@st.composite
def preds(draw):
    constraints = {}
    for name in ("x", "y"):
        if draw(st.booleans()):
            lo = draw(st.integers(0, 15))
            hi = draw(st.integers(lo, 15))
            constraints[name] = (lo, hi)
    return Predicate.of_cube(Cube.make(SPACE, constraints))


@given(st.lists(preds(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_atomic_predicates_always_partition(inputs):
    """Property: atoms are disjoint, cover the space, reconstruct inputs."""
    ap = compute_atomic_predicates(SPACE, inputs)
    assert ap.verify_partition()
    for idx, original in enumerate(inputs):
        rebuilt = Predicate.nothing(SPACE)
        for atom in ap.atoms_of(idx):
            rebuilt = rebuilt.union(atom)
        assert rebuilt.equals(original)


@given(st.lists(preds(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_atom_count_bounded(inputs):
    """At most 2^k atoms for k input predicates."""
    ap = compute_atomic_predicates(SPACE, inputs)
    assert ap.num_atoms <= 2 ** len(inputs)
