"""Tests for the data plane: packets, TCAM, tagging, switches, vSwitches."""

import pytest

from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import FIN, Packet
from repro.dataplane.switch import PhysicalSwitch, SwitchDecision, SwitchRuleSet
from repro.dataplane.tagging import TagAllocator, TagFieldSpec, TagSpaceExhausted
from repro.dataplane.tcam import Action, ActionKind, TcamEntry, TcamTable
from repro.dataplane.vswitch import VSwitch, VSwitchRule
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.vnf.instance import VNFInstance
from repro.vnf.types import FIREWALL, IDS, NFType


def _packet(class_id="c1", h=0.3, src="s1", dst="s3", **kw):
    return Packet(class_id=class_id, flow_hash=h, src=src, dst=dst, **kw)


# ---------------------------------------------------------------------------
# Packet
# ---------------------------------------------------------------------------
def test_packet_validation_and_trace():
    p = _packet()
    assert not p.tagged and not p.finished_processing
    p.visit("switch", "s1")
    p.visit("vnf", "fw[0]@s1")
    assert p.switches_visited() == ["s1"]
    assert p.vnfs_visited() == ["fw[0]@s1"]
    with pytest.raises(ValueError):
        _packet(h=1.0)
    with pytest.raises(ValueError):
        _packet(size_bytes=0)


def test_packet_fin_semantics():
    p = _packet()
    p.host_tag = FIN
    assert p.finished_processing


# ---------------------------------------------------------------------------
# TCAM
# ---------------------------------------------------------------------------
def test_tcam_priority_order():
    table = TcamTable()
    table.install(TcamEntry(priority=1, action=Action(ActionKind.GOTO_NEXT_TABLE), name="low"))
    table.install(TcamEntry(priority=9, action=Action(ActionKind.DROP), name="high"))
    entry = table.lookup(_packet())
    assert entry.name == "high"


def test_tcam_match_dimensions():
    e = TcamEntry(
        priority=1,
        action=Action(ActionKind.GOTO_NEXT_TABLE),
        host_tag_is="EMPTY",
        class_id="c1",
        hash_range=(0.0, 0.5),
    )
    assert e.matches(_packet(h=0.2))
    assert not e.matches(_packet(h=0.7))  # outside hash range
    assert not e.matches(_packet(class_id="c2", h=0.2))
    tagged = _packet(h=0.2)
    tagged.host_tag = "s5"
    assert not e.matches(tagged)  # host tag not empty


def test_tcam_hardware_expansion():
    aligned = TcamEntry(
        priority=1, action=Action(ActionKind.DROP), hash_range=(0.0, 0.5)
    )
    assert aligned.hardware_entries == 1
    unaligned = TcamEntry(
        priority=1, action=Action(ActionKind.DROP), hash_range=(0.0, 0.3)
    )
    assert unaligned.hardware_entries > 1
    plain = TcamEntry(priority=1, action=Action(ActionKind.DROP))
    assert plain.hardware_entries == 1


def test_tcam_counts_and_miss():
    table = TcamTable()
    table.install(
        TcamEntry(priority=1, action=Action(ActionKind.DROP), class_id="cX")
    )
    assert table.lookup(_packet()) is None
    assert table.miss_count == 1
    assert table.logical_entries == 1
    removed = table.remove_where(lambda e: e.action.kind is ActionKind.DROP)
    assert removed == 1 and table.logical_entries == 0


# ---------------------------------------------------------------------------
# Tagging
# ---------------------------------------------------------------------------
def test_tag_allocator_prefers_small_field():
    tags = TagAllocator()
    ids = tags.assign_host_ids([f"s{i}" for i in range(10)])
    assert tags.host_field.name == "ds"  # 11 values fit in 6 bits
    assert ids[FIN] == 0
    assert len(set(ids.values())) == 11


def test_tag_allocator_upgrades_to_vlan():
    tags = TagAllocator()
    tags.assign_host_ids([f"s{i}" for i in range(100)])  # > 64 needs VLAN
    assert tags.host_field.name == "vlan"


def test_tag_allocator_exhaustion():
    tags = TagAllocator(fields=[TagFieldSpec("tiny", 2)])
    with pytest.raises(TagSpaceExhausted):
        tags.assign_host_ids([f"s{i}" for i in range(10)])


def test_subclass_field_multiplexed_sizing():
    tags = TagAllocator()
    tags.assign_host_ids(["s1", "s2"])
    field = tags.reserve_subclass_ids(30)
    assert field.name == "vlan"  # ds already used for host IDs
    with pytest.raises(ValueError):
        tags.reserve_subclass_ids(0)


def test_unassigned_lookups_raise():
    tags = TagAllocator()
    with pytest.raises(ValueError):
        tags.host_field
    with pytest.raises(ValueError):
        tags.subclass_field
    tags.assign_host_ids(["s1"])
    with pytest.raises(KeyError):
        tags.host_id("s9")


# ---------------------------------------------------------------------------
# Physical switch (Table III semantics)
# ---------------------------------------------------------------------------
def _switch_with_rules():
    sw = PhysicalSwitch("s1", has_host=True)
    rules = SwitchRuleSet(
        switch="s1",
        host_match=True,
        classifications=[
            ("c1", (0.0, 0.5), 0, "s1"),  # first host local → divert
            ("c1", (0.5, 1.0), 1, "s2"),  # first host downstream → tag+pass
        ],
    )
    rules.apply(sw)
    return sw


def test_classification_local_host_diverts():
    sw = _switch_with_rules()
    p = _packet(h=0.2)
    assert sw.process(p) is SwitchDecision.TO_HOST
    assert p.subclass_tag == 0


def test_classification_remote_host_tags_and_forwards():
    sw = _switch_with_rules()
    p = _packet(h=0.8)
    assert sw.process(p) is SwitchDecision.FORWARD
    assert p.subclass_tag == 1
    assert p.host_tag == "s2"


def test_host_match_rule_diverts_tagged_packet():
    sw = _switch_with_rules()
    p = _packet(h=0.8)
    p.host_tag = "s1"
    p.subclass_tag = 1
    assert sw.process(p) is SwitchDecision.TO_HOST


def test_pass_by_for_other_traffic():
    sw = _switch_with_rules()
    p = _packet(class_id="unrelated", h=0.1)
    p.host_tag = FIN
    assert sw.process(p) is SwitchDecision.FORWARD


def test_empty_table_behaves_as_pass_by():
    sw = PhysicalSwitch("s9", has_host=False)
    assert sw.process(_packet()) is SwitchDecision.FORWARD


def test_host_match_requires_host():
    sw = PhysicalSwitch("s9", has_host=False)
    with pytest.raises(ValueError):
        sw.install_host_match()


def test_ruleset_switch_name_checked():
    sw = PhysicalSwitch("s1")
    with pytest.raises(ValueError):
        SwitchRuleSet(switch="s2").apply(sw)


def test_tcam_usage_counts_hardware_entries():
    sw = _switch_with_rules()
    # host-match 1 + two aligned classifications (1 each) + pass-by 1 = 4.
    assert sw.tcam_usage() == 4


# ---------------------------------------------------------------------------
# vSwitch
# ---------------------------------------------------------------------------
def _vswitch_with_chain():
    vsw = VSwitch("s1")
    fast = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=1e9)
    fw = VNFInstance("fw[0]@s1", fast, "s1")
    ids = VNFInstance("ids[0]@s1", fast, "s1")
    vsw.register_instance(fw)
    vsw.register_instance(ids)
    vsw.install_rule(
        "c1", 0, VSwitchRule(("fw[0]@s1", "ids[0]@s1"), exit_host_tag=FIN)
    )
    return vsw, fw, ids


def test_vswitch_walks_local_chain_and_tags_exit():
    vsw, fw, ids = _vswitch_with_chain()
    p = _packet()
    p.subclass_tag = 0
    out = vsw.process(p, now=0.0)
    assert out is p
    assert p.vnfs_visited() == ["fw[0]@s1", "ids[0]@s1"]
    assert p.host_tag == FIN


def test_vswitch_missing_rule_raises():
    vsw, *_ = _vswitch_with_chain()
    p = _packet(class_id="ghost")
    p.subclass_tag = 0
    with pytest.raises(KeyError):
        vsw.process(p, now=0.0)


def test_vswitch_drop_on_overloaded_instance():
    vsw = VSwitch("s1")
    tiny = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=10.0)
    inst = VNFInstance("m[0]@s1", tiny, "s1", window=1.0)
    vsw.register_instance(inst)
    vsw.install_rule("c1", 0, VSwitchRule(("m[0]@s1",), exit_host_tag=FIN))
    dropped = 0
    for k in range(50):
        p = _packet()
        p.subclass_tag = 0
        if vsw.process(p, now=0.01 * k) is None:
            dropped += 1
    assert dropped > 0
    assert vsw.packets_dropped == dropped


def test_vswitch_rejects_foreign_instance():
    vsw = VSwitch("s1")
    with pytest.raises(ValueError):
        vsw.register_instance(VNFInstance("fw", FIREWALL, "s2"))
    with pytest.raises(KeyError):
        vsw.install_rule("c1", 0, VSwitchRule(("ghost",), exit_host_tag=FIN))


def test_vswitch_deregister_drops_stale_rules():
    vsw, fw, ids = _vswitch_with_chain()
    vsw.deregister_instance("fw[0]@s1")
    assert vsw.rule_count == 0


# ---------------------------------------------------------------------------
# DataPlaneNetwork walking
# ---------------------------------------------------------------------------
def _line_network():
    topo = Topology(
        "line",
        ["s1", "s2", "s3"],
        [Link("s1", "s2"), Link("s2", "s3")],
        hosts={"s2": AppleHostSpec(cores=64)},
    )
    return DataPlaneNetwork(topo)


def test_network_walk_divert_and_deliver():
    net = _line_network()
    net.register_class_path("c1", ("s1", "s2", "s3"))
    fast = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=1e9)
    inst = VNFInstance("m[0]@s2", fast, "s2")
    vsw = net.vswitch_at("s2")
    vsw.register_instance(inst)
    vsw.install_rule("c1", 0, VSwitchRule(("m[0]@s2",), exit_host_tag=FIN))
    SwitchRuleSet(
        switch="s1", host_match=False, classifications=[("c1", (0.0, 1.0), 0, "s2")]
    ).apply(net.switches["s1"])
    SwitchRuleSet(switch="s2", host_match=True).apply(net.switches["s2"])
    SwitchRuleSet(switch="s3").apply(net.switches["s3"])

    record = net.inject(_packet())
    assert record.delivered and record.policy_satisfied
    assert record.packet.switches_visited() == ["s1", "s2", "s3"]
    assert record.packet.vnfs_visited() == ["m[0]@s2"]
    assert net.delivery_stats() == (1, 0, 0)


def test_network_rejects_unknown_class_or_mismatched_endpoints():
    net = _line_network()
    with pytest.raises(KeyError):
        net.inject(_packet())
    net.register_class_path("c1", ("s1", "s2", "s3"))
    with pytest.raises(ValueError):
        net.inject(_packet(src="s2", dst="s3"))
    with pytest.raises(KeyError):
        net.register_class_path("bad", ("s1", "zz"))


def test_network_vswitch_lookup_errors():
    net = _line_network()
    with pytest.raises(KeyError):
        net.vswitch_at("s1")  # no host there
