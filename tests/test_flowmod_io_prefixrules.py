"""Tests for flow-mod compilation, traffic-matrix I/O, and prefix rules."""

import numpy as np
import pytest

from repro.core.engine import OptimizationEngine
from repro.core.prefixrules import (
    assign_class_blocks,
    compile_prefix_rules,
    prefix_rule_counts,
)
from repro.core.rulegen import RuleGenerator
from repro.core.subclasses import assign_subclasses
from repro.classify.rules import parse_prefix
from repro.dataplane.flowmod import (
    compile_switch_rules,
    compile_vswitch_rules,
    FlowMod,
    render_all,
)
from repro.traffic.diurnal import synthesize_series
from repro.traffic.io import (
    load_matrix_json,
    load_series,
    save_matrix_json,
    save_series,
)
from repro.traffic.classes import TrafficClass
from repro.topology.datasets import internet2
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


@pytest.fixture(scope="module")
def generated():
    classes = [
        TrafficClass(
            "c1", "a", "c", ("a", "b", "c"),
            PolicyChain(["firewall", "ids"]), 700.0,
        ),
        TrafficClass(
            "c2", "a", "c", ("a", "b", "c"), PolicyChain(["firewall"]), 300.0
        ),
    ]
    plan = OptimizationEngine().place(classes, {"a": 64, "b": 64, "c": 64})
    sub_plan = assign_subclasses(plan)
    rules = RuleGenerator(DEFAULT_CATALOG).generate(plan.classes, sub_plan)
    return plan, sub_plan, rules


# ---------------------------------------------------------------------------
# FlowMods
# ---------------------------------------------------------------------------
def test_switch_flowmods_structure(generated):
    plan, sub_plan, rules = generated
    mods = compile_switch_rules(rules)
    ingress = mods["a"]
    classify = [m for m in ingress if "classify" in m.cookie]
    assert len(classify) == sum(
        len(sub_plan.subclasses(c.class_id)) for c in plan.classes
    )
    # Every switch's table ends in a pass-by with goto_table.
    for switch, flow_mods in mods.items():
        assert flow_mods[-1].actions == ("goto_table:1",)
    # Priorities reflect Table III ordering.
    for flow_mods in mods.values():
        priorities = [m.priority for m in flow_mods]
        assert priorities == sorted(priorities, reverse=True)


def test_vswitch_flowmods_reference_instances(generated):
    plan, sub_plan, rules = generated
    mods = compile_vswitch_rules(rules)
    for switch, flow_mods in mods.items():
        for fm in flow_mods:
            assert any(a.startswith("output:vm:") for a in fm.actions)
            assert fm.actions[-1] == "output:uplink"
            assert dict(fm.match)["in_port"] == "uplink"


def test_render_is_parsable_text(generated):
    _, _, rules = generated
    text = render_all(rules)
    assert "# switch a" in text
    assert "table=0,priority=" in text
    assert "goto_table:1" in text
    # One line per flow-mod plus headers.
    n_mods = sum(len(v) for v in compile_switch_rules(rules).values())
    n_vmods = sum(len(v) for v in compile_vswitch_rules(rules).values())
    headers = text.count("#")
    assert len(text.splitlines()) == n_mods + n_vmods + headers


def test_flowmod_render_format():
    fm = FlowMod(0, 300, (("host_id", "3"),), ("output:apple-host",))
    assert fm.render() == "table=0,priority=300,host_id=3,actions=output:apple-host"
    empty = FlowMod(1, 1, (), ())
    assert "any" in empty.render() and "drop" in empty.render()


# ---------------------------------------------------------------------------
# Traffic matrix I/O
# ---------------------------------------------------------------------------
def test_series_npz_roundtrip(tmp_path):
    topo = internet2()
    series = synthesize_series(topo, 2000.0, snapshots=5, interval=30.0, seed=4)
    path = tmp_path / "series.npz"
    save_series(series, path)
    loaded = load_series(path)
    assert loaded.nodes == series.nodes
    assert loaded.interval == series.interval
    assert len(loaded) == len(series)
    for a, b in zip(series, loaded):
        assert np.allclose(a.array, b.array)


def test_matrix_json_roundtrip(tmp_path):
    topo = internet2()
    series = synthesize_series(topo, 500.0, snapshots=1, seed=0)
    path = tmp_path / "tm.json"
    save_matrix_json(series[0], path)
    loaded = load_matrix_json(path)
    assert loaded.nodes == series[0].nodes
    assert np.allclose(loaded.array, series[0].array)


def test_load_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"something": 1}')
    with pytest.raises(ValueError):
        load_matrix_json(bad)
    badnpz = tmp_path / "bad.npz"
    np.savez(badnpz, nodes=np.array(["a"], dtype=object))
    with pytest.raises(ValueError):
        load_series(badnpz)


# ---------------------------------------------------------------------------
# Prefix realisation
# ---------------------------------------------------------------------------
def test_prefix_rules_cover_each_class_block(generated):
    plan, sub_plan, _ = generated
    blocks = assign_class_blocks(sub_plan)
    compiled = compile_prefix_rules(sub_plan, blocks)
    for class_id, rules in compiled.items():
        lo, hi = parse_prefix(blocks[class_id])
        covered = 0
        for rule in rules:
            plo, phi = parse_prefix(rule.prefix)
            covered += phi - plo + 1
        assert covered == hi - lo + 1  # exact tiling of the class block


def test_prefix_rule_inflation_reported(generated):
    _, sub_plan, _ = generated
    blocks = assign_class_blocks(sub_plan)
    subclasses, rules = prefix_rule_counts(sub_plan, blocks)
    assert rules >= subclasses


def test_missing_block_raises(generated):
    _, sub_plan, _ = generated
    with pytest.raises(KeyError):
        compile_prefix_rules(sub_plan, {})


def test_assign_class_blocks_disjoint(generated):
    _, sub_plan, _ = generated
    blocks = assign_class_blocks(sub_plan)
    ranges = sorted(parse_prefix(b) for b in blocks.values())
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 < lo2  # no overlap
