"""Tests for seeded randomness and child-stream derivation."""

from repro.sim.rng import SeededRNG


def test_same_seed_same_sequence():
    a = SeededRNG(42)
    b = SeededRNG(42)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_differ():
    a = SeededRNG(1)
    b = SeededRNG(2)
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_child_streams_deterministic_and_label_keyed():
    a = SeededRNG(7).child("tcp")
    b = SeededRNG(7).child("tcp")
    c = SeededRNG(7).child("udp")
    seq_a = [a.uniform() for _ in range(5)]
    seq_b = [b.uniform() for _ in range(5)]
    seq_c = [c.uniform() for _ in range(5)]
    assert seq_a == seq_b
    assert seq_a != seq_c


def test_child_independent_of_creation_order():
    parent1 = SeededRNG(9)
    x = parent1.child("x")
    y = parent1.child("y")
    parent2 = SeededRNG(9)
    y2 = parent2.child("y")
    x2 = parent2.child("x")
    assert [x.uniform() for _ in range(3)] == [x2.uniform() for _ in range(3)]
    assert [y.uniform() for _ in range(3)] == [y2.uniform() for _ in range(3)]


def test_integer_bounds():
    rng = SeededRNG(0)
    values = [rng.integer(3, 7) for _ in range(200)]
    assert all(3 <= v < 7 for v in values)
    assert set(values) == {3, 4, 5, 6}


def test_exponential_mean_roughly_right():
    rng = SeededRNG(0)
    n = 5000
    mean = sum(rng.exponential(2.0) for _ in range(n)) / n
    assert 1.8 < mean < 2.2


def test_choice_scalar_and_list():
    rng = SeededRNG(0)
    items = ["a", "b", "c"]
    assert rng.choice(items) in items
    picked = rng.choice(items, size=10)
    assert len(picked) == 10
    assert all(p in items for p in picked)


def test_choice_without_replacement_unique():
    rng = SeededRNG(0)
    picked = rng.choice(list(range(10)), size=10, replace=False)
    assert sorted(picked) == list(range(10))


def test_shuffle_permutes_in_place():
    rng = SeededRNG(3)
    items = list(range(20))
    rng.shuffle(items)
    assert sorted(items) == list(range(20))


def test_array_shape_and_range():
    rng = SeededRNG(0)
    arr = rng.array((4, 5), low=2.0, high=3.0)
    assert arr.shape == (4, 5)
    assert ((arr >= 2.0) & (arr < 3.0)).all()


def test_derive_is_stable_and_label_keyed():
    from repro.sim.rng import derive

    assert derive(42, "chaos.schedule") == derive(42, "chaos.schedule")
    assert derive(42, "chaos.schedule") != derive(42, "traffic.mvr")
    assert derive(42, "chaos.schedule") != derive(43, "chaos.schedule")
    # Seeds must stay in numpy's legal range.
    for seed in (0, 1, 2**31 - 1, 123456789):
        assert 0 <= derive(seed, "anything") < 2**31


def test_child_uses_derive():
    from repro.sim.rng import derive

    a = SeededRNG(7).child("tcp")
    b = SeededRNG(derive(7, "tcp"))
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]
