"""Tests for packet sources and the rate meter."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.sources import CBRSource, OnOffSource, PoissonSource, RateMeter


def _sink():
    received = []
    return received, lambda size, now: received.append((size, now))


def test_cbr_emits_at_configured_rate():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=100.0, packet_size=500)
    src.start()
    sim.run(until=1.0)
    # One packet at t=0 then every 10 ms.
    assert 99 <= len(received) <= 101
    assert all(size == 500 for size, _ in received)
    assert src.bytes_sent == src.packets_sent * 500


def test_cbr_set_rate_takes_effect():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=10.0)
    src.start()
    sim.run(until=1.0)
    before = len(received)
    src.set_rate(1000.0)
    sim.run(until=2.0)
    after = len(received) - before
    assert after > before * 10


def test_cbr_stop_and_restart():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=100.0)
    src.start()
    sim.run(until=0.5)
    src.stop()
    assert not src.running
    mid = len(received)
    sim.run(until=1.0)
    assert len(received) == mid
    src.start()
    sim.run(until=1.5)
    assert len(received) > mid


def test_cbr_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(SimulationError):
        CBRSource(sim, lambda s, t: None, rate_pps=0.0)
    with pytest.raises(SimulationError):
        CBRSource(sim, lambda s, t: None, rate_pps=10.0, packet_size=0)
    src = CBRSource(sim, lambda s, t: None, rate_pps=10.0)
    with pytest.raises(SimulationError):
        src.set_rate(-1.0)


def test_poisson_mean_rate():
    sim = Simulator(seed=1)
    received, consume = _sink()
    src = PoissonSource(sim, consume, rate_pps=500.0)
    src.start()
    sim.run(until=4.0)
    rate = len(received) / 4.0
    assert 450 <= rate <= 550


def test_onoff_is_bursty_but_bounded():
    sim = Simulator(seed=2)
    received, consume = _sink()
    src = OnOffSource(sim, consume, rate_pps=1000.0, mean_on=0.5, mean_off=0.5)
    src.start()
    sim.run(until=10.0)
    # Duty cycle ~50%: well below the full-rate count, well above zero.
    assert 1000 < len(received) < 9000


def test_rate_meter_tracks_rate():
    sim = Simulator()
    meter = RateMeter(sim, window=0.5)
    src = CBRSource(sim, meter.consume, rate_pps=200.0)
    src.start()
    sim.run(until=2.0)
    assert 180 <= meter.rate_pps() <= 220
    src.stop()
    sim.run(until=3.0)
    assert meter.rate_pps() == 0.0  # window drained


def test_rate_meter_forwards_downstream():
    sim = Simulator()
    received, consume = _sink()
    meter = RateMeter(sim, window=1.0, downstream=consume)
    meter.consume(100, 0.0)
    assert received == [(100, 0.0)]
    assert meter.total_packets == 1
