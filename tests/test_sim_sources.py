"""Tests for packet sources and the rate meter."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.sources import (
    BatchedCBRMux,
    CBRSource,
    OnOffSource,
    PoissonSource,
    RateMeter,
)


def _sink():
    received = []
    return received, lambda size, now: received.append((size, now))


def test_cbr_emits_at_configured_rate():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=100.0, packet_size=500)
    src.start()
    sim.run(until=1.0)
    # One packet at t=0 then every 10 ms.
    assert 99 <= len(received) <= 101
    assert all(size == 500 for size, _ in received)
    assert src.bytes_sent == src.packets_sent * 500


def test_cbr_set_rate_takes_effect():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=10.0)
    src.start()
    sim.run(until=1.0)
    before = len(received)
    src.set_rate(1000.0)
    sim.run(until=2.0)
    after = len(received) - before
    assert after > before * 10


def test_cbr_stop_and_restart():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=100.0)
    src.start()
    sim.run(until=0.5)
    src.stop()
    assert not src.running
    mid = len(received)
    sim.run(until=1.0)
    assert len(received) == mid
    src.start()
    sim.run(until=1.5)
    assert len(received) > mid


def test_cbr_rejects_bad_params():
    sim = Simulator()
    with pytest.raises(SimulationError):
        CBRSource(sim, lambda s, t: None, rate_pps=0.0)
    with pytest.raises(SimulationError):
        CBRSource(sim, lambda s, t: None, rate_pps=10.0, packet_size=0)
    src = CBRSource(sim, lambda s, t: None, rate_pps=10.0)
    with pytest.raises(SimulationError):
        src.set_rate(-1.0)


def test_poisson_mean_rate():
    sim = Simulator(seed=1)
    received, consume = _sink()
    src = PoissonSource(sim, consume, rate_pps=500.0)
    src.start()
    sim.run(until=4.0)
    rate = len(received) / 4.0
    assert 450 <= rate <= 550


def test_onoff_is_bursty_but_bounded():
    sim = Simulator(seed=2)
    received, consume = _sink()
    src = OnOffSource(sim, consume, rate_pps=1000.0, mean_on=0.5, mean_off=0.5)
    src.start()
    sim.run(until=10.0)
    # Duty cycle ~50%: well below the full-rate count, well above zero.
    assert 1000 < len(received) < 9000


def test_rate_meter_tracks_rate():
    sim = Simulator()
    meter = RateMeter(sim, window=0.5)
    src = CBRSource(sim, meter.consume, rate_pps=200.0)
    src.start()
    sim.run(until=2.0)
    assert 180 <= meter.rate_pps() <= 220
    src.stop()
    sim.run(until=3.0)
    assert meter.rate_pps() == 0.0  # window drained


def test_cbr_chunked_timestamps_identical_to_scalar():
    def run(chunk, horizon):
        sim = Simulator()
        received, consume = _sink()
        src = CBRSource(
            sim, consume, rate_pps=317.0, chunk=chunk, horizon=horizon
        )
        src.start()
        sim.run(until=1.0)
        src.stop()
        return received

    scalar = run(1, None)
    for chunk in (7, 64, 1000):
        assert run(chunk, 1.0) == scalar  # count, order, every float


def test_cbr_chunked_batch_consumer_and_horizon():
    sim = Simulator()
    batches = []
    src = CBRSource(
        sim,
        lambda s, t: None,
        rate_pps=100.0,
        chunk=16,
        batch_consumer=batches.append,
        horizon=0.25,
    )
    src.start()
    sim.run(until=1.0)
    ts = [t for b in batches for t in b]
    # 0, 0.01, ... up to the horizon (the 26th accumulated float lands just
    # past 0.25); the final partial chunk still fires.
    assert len(ts) == 25
    assert ts == sorted(ts) and ts[-1] <= 0.25
    assert src.packets_sent == 25
    assert not src.running  # horizon exhausted


def test_cbr_chunked_stop_cancels_pending_chunk():
    sim = Simulator()
    received, consume = _sink()
    src = CBRSource(sim, consume, rate_pps=100.0, chunk=32, horizon=10.0)
    src.start()
    sim.run(until=0.095)
    src.stop()
    count = len(received)
    sim.run(until=2.0)
    assert len(received) == count  # the armed chunk never fires


def test_mux_matches_per_stream_scalar_sources():
    starts = {"a": 0.003, "b": 0.0007, "c": 0.011}
    rates = {"a": 211.0, "b": 97.0, "c": 311.0}

    sim = Simulator()
    scalar = []
    sources = []
    for key in starts:
        def consume(size, now, key=key):
            scalar.append((key, now))
        src = CBRSource(sim, consume, rates[key], name=key)
        sim.schedule(starts[key], src.start)
        sources.append(src)
    sim.run(until=1.0)
    for src in sources:
        src.stop()

    for chunk in (64, 5000):
        sim = Simulator()
        merged = []
        mux = BatchedCBRMux(sim, merged.extend, chunk=chunk, horizon=1.0)
        for key in starts:
            mux.add_stream(key, rates[key], starts[key])
        mux.start()
        sim.run(until=1.0)
        mux.stop()
        assert merged == scalar  # keys, interleaving, every timestamp float

    # Heap mode (no horizon): a batch straddling the run boundary fires
    # late, so run past the boundary and compare the pre-boundary prefix.
    sim = Simulator()
    merged = []
    mux = BatchedCBRMux(sim, merged.extend, chunk=64)
    for key in starts:
        mux.add_stream(key, rates[key], starts[key])
    mux.start()
    sim.run(until=1.5)
    mux.stop()
    assert [p for p in merged if p[1] <= 1.0] == scalar


def test_mux_rejects_bad_usage():
    sim = Simulator()
    mux = BatchedCBRMux(sim, lambda b: None, chunk=4, horizon=1.0)
    with pytest.raises(SimulationError):
        mux.add_stream("x", 0.0, 0.0)
    mux.add_stream("x", 10.0, 0.0)
    mux.start()
    with pytest.raises(SimulationError):
        mux.add_stream("late", 10.0, 0.0)
    with pytest.raises(SimulationError):
        BatchedCBRMux(sim, lambda b: None, chunk=0)


def test_mux_stop_cancels_pending_batch():
    sim = Simulator()
    merged = []
    mux = BatchedCBRMux(sim, merged.extend, chunk=50, horizon=10.0)
    mux.add_stream("a", 100.0, 0.0)
    mux.start()
    sim.run(until=0.2)
    mux.stop()
    count = len(merged)
    sim.run(until=5.0)
    assert len(merged) == count


def test_rate_meter_forwards_downstream():
    sim = Simulator()
    received, consume = _sink()
    meter = RateMeter(sim, window=1.0, downstream=consume)
    meter.consume(100, 0.0)
    assert received == [(100, 0.0)]
    assert meter.total_packets == 1
