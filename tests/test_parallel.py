"""The shared fan-out module: job resolution, spec units, and the tuner.

``repro.parallel`` is the one code path every fan-out goes through
(``--jobs``, ``--shards``, the replay bench), so its contract is pinned
here: validation errors agree everywhere, spec work units behave exactly
like calling the target, and the auto tuner never fans out when a pool
cannot pay for itself.
"""

import pytest

from repro.parallel import (
    MAX_AUTO_WORKERS,
    FnSpec,
    auto_shards,
    cpu_count,
    fork_available,
    in_worker,
    parallel_map,
    resolve_jobs,
)


# ----------------------------------------------------------------------
# resolve_jobs
# ----------------------------------------------------------------------
def test_resolve_jobs_accepts_auto_and_ints():
    assert resolve_jobs("auto") == "auto"
    assert resolve_jobs(" AUTO ") == "auto"
    assert resolve_jobs(1) == 1
    assert resolve_jobs("4") == 4


@pytest.mark.parametrize("bad", [0, -1, "0", "many", "1.5", ""])
def test_resolve_jobs_rejects_garbage(bad):
    with pytest.raises(ValueError):
        resolve_jobs(bad)


# ----------------------------------------------------------------------
# FnSpec
# ----------------------------------------------------------------------
def _double(x, offset=0):
    return 2 * x + offset


def test_fnspec_calls_like_the_target():
    spec = FnSpec.of(_double)
    assert spec(21) == _double(21)
    with_kw = FnSpec.of(_double, offset=5)
    assert with_kw(10) == 25
    assert with_kw.target == f"{__name__}:_double"


def test_fnspec_rejects_closures():
    def local(x):
        return x

    with pytest.raises(ValueError, match="module-level"):
        FnSpec.of(local)


def test_fnspec_is_hashable_and_resolve_caches():
    a = FnSpec.of(_double, offset=1)
    b = FnSpec.of(_double, offset=1)
    assert a == b and hash(a) == hash(b)
    assert a.resolve() is b.resolve()


# ----------------------------------------------------------------------
# parallel_map
# ----------------------------------------------------------------------
def test_parallel_map_serial_preserves_order():
    items = list(range(20))
    assert parallel_map(_double, items, jobs=1) == [2 * x for x in items]
    assert parallel_map(_double, [], jobs=4) == []
    assert parallel_map(_double, [7], jobs=4) == [14]


def test_parallel_map_auto_short_work_stays_serial():
    # 20 near-instant units can never clear MIN_FANOUT_SECONDS, so auto
    # must stay serial on any host (and always does on a 1-core host).
    items = list(range(20))
    assert parallel_map(_double, items, jobs="auto") == [2 * x for x in items]


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_parallel_map_pool_matches_serial():
    items = list(range(12))
    expected = [_double(x, offset=3) for x in items]
    spec = FnSpec.of(_double, offset=3)
    assert parallel_map(spec, items, jobs=2) == expected


def test_parallel_map_validates_jobs():
    with pytest.raises(ValueError):
        parallel_map(_double, [1, 2, 3], jobs=0)


def test_in_worker_is_false_in_the_main_process():
    assert not in_worker()


# ----------------------------------------------------------------------
# auto_shards
# ----------------------------------------------------------------------
def test_auto_shards_bounds():
    assert auto_shards(components=1) == 1
    assert auto_shards(components=1000, requested="auto") == min(
        cpu_count(), MAX_AUTO_WORKERS
    )
    assert auto_shards(components=2, requested=8) == 2
    assert auto_shards(components=None, requested=3) == 3
    assert auto_shards(components=0, requested=8) == 1
    with pytest.raises(ValueError):
        auto_shards(components=4, requested=-2)


# ----------------------------------------------------------------------
# Columnar source helpers (shared by the sharded replay path)
# ----------------------------------------------------------------------
def test_cycling_hashes_match_scalar_counter():
    from repro.dataplane.flowhash import cycling_hashes

    got = cycling_hashes(500)
    expected = [(k * 0.137) % 1.0 for k in range(1, 501)]
    assert got.tolist() == expected  # bit-identical, not approximately


def test_merge_cbr_timeline_matches_heap_order():
    import heapq

    from repro.sim.sources import merge_cbr_timeline

    streams = [("a", 0.003, 0.01), ("b", 0.0007, 0.025), ("c", 0.009, 0.01)]
    horizon = 1.0
    # Reference: the event-heap left fold the scalar mux performs.
    heap = [(start, i, key, gap) for i, (key, start, gap) in enumerate(streams)]
    heapq.heapify(heap)
    expected = []
    while heap:
        t, order, key, gap = heapq.heappop(heap)
        if t > horizon:
            continue
        expected.append((key, t))
        heapq.heappush(heap, (t + gap, order, key, gap))
    keys, kidx, ts = merge_cbr_timeline(streams, horizon)
    got = [(keys[i], t) for i, t in zip(kidx.tolist(), ts.tolist())]
    assert got == expected  # same floats, same tie order
