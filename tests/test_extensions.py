"""Tests for the Sec. X / discussion extensions.

Covers: flow hashing from concrete headers, global sub-class IDs for
header-modifying chains, cross-product TCAM accounting, and the memory
dimension of the resource vector.
"""

import pytest

from repro.core.engine import OptimizationEngine, PlacementError
from repro.core.metrics import (
    cross_product_penalty,
    tcam_usage_cross_product,
    tcam_usage_with_tagging,
)
from repro.core.rulegen import RuleGenerator
from repro.core.subclasses import assign_subclasses
from repro.dataplane.flowhash import flow_hash, hash_spread, suffix_hash
from repro.dataplane.tagging import TagAllocator, TagSpaceExhausted
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG, NAT


def _cls(cid, rate, chain, path=("a", "b", "c")):
    return TrafficClass(
        cid, path[0], path[-1], tuple(path), PolicyChain(list(chain)), rate
    )


# ---------------------------------------------------------------------------
# Flow hashing
# ---------------------------------------------------------------------------
def test_flow_hash_deterministic_and_bounded():
    h = {"src_ip": 167837953, "dst_ip": 167838209, "proto": 6, "dst_port": 80}
    a = flow_hash(h)
    assert a == flow_hash(dict(reversed(list(h.items()))))  # order-insensitive
    assert 0.0 <= a < 1.0


def test_flow_hash_roughly_uniform():
    headers = [
        {"src_ip": s, "dst_ip": 42, "src_port": p}
        for s in range(100)
        for p in range(20)
    ]
    counts = hash_spread(headers, buckets=10)
    assert min(counts) > 0.5 * (sum(counts) / 10)
    assert max(counts) < 1.5 * (sum(counts) / 10)


def test_suffix_hash_matches_prefix_split():
    # 10.1.1.128 has suffix 128/256 = 0.5 within its /24 — the paper's
    # <10.1.1.128/25> sub-class is exactly suffix_hash in [0.5, 1).
    assert suffix_hash({"src_ip": (10 << 24) | (1 << 16) | (1 << 8) | 128}, 24) == 0.5
    assert suffix_hash({"src_ip": (10 << 24) | 255}, 24) > 0.99
    assert suffix_hash({"src_ip": 1234}, 32) == 0.0
    with pytest.raises(ValueError):
        suffix_hash({}, 40)


# ---------------------------------------------------------------------------
# Global sub-class IDs (header-modifying NFs, Sec. X)
# ---------------------------------------------------------------------------
def test_nat_modifies_headers_in_catalog():
    assert NAT.modifies_headers
    assert not DEFAULT_CATALOG.get("firewall").modifies_headers


def test_global_subclass_reservation():
    tags = TagAllocator()
    tags.assign_host_ids(["s1", "s2"])
    tags.reserve_global_subclass_ids(500)
    assert tags.global_subclass_ids
    assert tags.subclass_field.capacity >= 500
    with pytest.raises(ValueError):
        tags.reserve_global_subclass_ids(0)


def _rules_for(chain):
    cls = _cls("c1", 100.0, chain)
    plan = OptimizationEngine().place(cls and [cls], {"a": 64, "b": 64, "c": 64})
    sub_plan = assign_subclasses(plan)
    gen = RuleGenerator(DEFAULT_CATALOG)
    return gen.generate(plan.classes, sub_plan)


def test_nat_mid_chain_forces_global_ids():
    rules = _rules_for(["nat", "firewall"])  # NAT before the end
    assert rules.tag_allocator.global_subclass_ids


def test_nat_last_keeps_multiplexed_ids():
    rules = _rules_for(["firewall", "nat"])  # NAT is the final NF: the
    # rewritten header never needs re-classification downstream.
    assert not rules.tag_allocator.global_subclass_ids


def test_chain_without_modifier_keeps_multiplexed_ids():
    rules = _rules_for(["firewall", "ids"])
    assert not rules.tag_allocator.global_subclass_ids


# ---------------------------------------------------------------------------
# Cross-product TCAM (switches without pipelining)
# ---------------------------------------------------------------------------
@pytest.fixture
def small_deploy():
    topo = Topology("line", ["a", "b", "c"], [Link("a", "b"), Link("b", "c")])
    cls = _cls("c1", 400.0, ["firewall"])
    plan = OptimizationEngine().place([cls], {"a": 64, "b": 64, "c": 64})
    return topo, plan, assign_subclasses(plan)


def test_cross_product_multiplies_usage(small_deploy):
    topo, plan, sub_plan = small_deploy
    pipelined = tcam_usage_with_tagging(topo, plan.classes, sub_plan)
    crossed = tcam_usage_cross_product(
        topo, plan.classes, sub_plan, other_app_rules=16
    )
    for sw in topo.switches:
        assert crossed[sw] == (pipelined.get(sw, 0) + 1) * 16
    with pytest.raises(ValueError):
        tcam_usage_cross_product(topo, plan.classes, sub_plan, other_app_rules=0)


def test_cross_product_penalty_grows_with_rule_count():
    """Negligible for a single class, large for a realistic rule load."""
    from repro.topology.datasets import internet2
    from repro.topology.routing import Router
    from repro.traffic.classes import ClassBuilder, hashed_assignment
    from repro.traffic.gravity import gravity_matrix
    from repro.vnf.chains import STANDARD_CHAINS

    topo = internet2()
    router = Router(topo)
    builder = ClassBuilder(
        router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    classes = builder.build(gravity_matrix(topo, 8000.0, seed=0))
    plan = OptimizationEngine().place(classes, {s: 64 for s in topo.switches})
    sub_plan = assign_subclasses(plan)
    penalty = cross_product_penalty(topo, plan.classes, sub_plan)
    assert penalty > 2.0  # the Sec. V-B "consumption would increase" claim


# ---------------------------------------------------------------------------
# Memory resource dimension
# ---------------------------------------------------------------------------
def test_memory_constraint_blocks_placement():
    cls = _cls("c1", 100.0, ["ids"])  # ids: 8 GB per instance
    cores = {"a": 64, "b": 64, "c": 64}
    engine = OptimizationEngine()
    ok = engine.place([cls], cores, available_memory_gb={"a": 8, "b": 8, "c": 8})
    assert ok.total_instances() == 1
    with pytest.raises(PlacementError):
        engine.place([cls], cores, available_memory_gb={"a": 4, "b": 4, "c": 4})


def test_memory_steers_placement_to_roomy_switch():
    cls = _cls("c1", 100.0, ["ids"])
    cores = {"a": 64, "b": 64, "c": 64}
    plan = OptimizationEngine().place(
        [cls], cores, available_memory_gb={"a": 0.5, "b": 64.0, "c": 0.5}
    )
    assert plan.quantity("b", "ids") == 1
    assert not plan.validate(
        cores, available_memory_gb={"a": 0.5, "b": 64.0, "c": 0.5}
    )


def test_validate_reports_memory_violations():
    cls = _cls("c1", 100.0, ["ids"])
    plan = OptimizationEngine().place([cls], {"a": 64, "b": 64, "c": 64})
    problems = plan.validate(
        {"a": 64, "b": 64, "c": 64}, available_memory_gb={"a": 0, "b": 0, "c": 0}
    )
    assert any("GB placed" in p for p in problems)


def test_host_spec_resource_vector():
    spec = AppleHostSpec(cores=64, memory_gb=128.0)
    assert spec.resource_vector() == (64.0, 128.0)
    assert DEFAULT_CATALOG.get("ids").resource_vector() == (8.0, 8.0)
