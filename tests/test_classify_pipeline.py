"""Tests for the rules → atomic predicates → classes pipeline."""

import pytest

from repro.classify.pipeline import (
    classes_from_rules,
    PolicyRule,
    PolicyRuleTable,
)
from repro.classify.rules import MatchRule
from repro.core.engine import OptimizationEngine
from repro.topology.datasets import internet2
from repro.topology.routing import Router
from repro.vnf.chains import PolicyChain

HTTP = PolicyChain(["firewall", "ids", "proxy"])
DORM = PolicyChain(["nat", "firewall"])
DEFAULT = PolicyChain(["firewall"])


@pytest.fixture
def table():
    return PolicyRuleTable(
        [
            PolicyRule(MatchRule(proto="tcp", dst_port=(80, 80)), HTTP),
            PolicyRule(MatchRule(src="10.20.0.0/16"), DORM),
            PolicyRule(MatchRule(), DEFAULT),
        ]
    )


def test_first_match_wins(table):
    # HTTP from the dorm prefix: rule 0 beats rule 1.
    header = {"src_ip": (10 << 24) | (20 << 16) | 5, "proto": 6, "dst_port": 80}
    assert table.chain_for_header(header) == HTTP
    # Non-HTTP from the dorm: rule 1.
    header2 = {"src_ip": (10 << 24) | (20 << 16) | 5, "proto": 6, "dst_port": 22}
    assert table.chain_for_header(header2) == DORM
    # Anything else: the catch-all.
    assert table.chain_for_header({"src_ip": 1, "proto": 17}) == DEFAULT


def test_atom_shares_partition_unit(table):
    shares = table.atom_traffic_shares()
    assert abs(sum(s for _, s in shares) - 1.0) < 1e-12
    assert all(s > 0 for _, s in shares)


def test_classes_from_rules_build_and_place(table):
    topo = internet2()
    router = Router(topo)
    demands = [("ATLA", "CHIN", 900.0), ("NYCM", "LOSA", 450.0)]
    classes = classes_from_rules(table, router, demands, min_share=1e-9)
    assert classes
    for cls in classes:
        assert cls.path == router.path(cls.src, cls.dst)
        assert cls.chain in (HTTP, DORM, DEFAULT)
    # Rates per demand decompose the original rate.
    for src, dst, rate in demands:
        total = sum(
            c.rate_mbps for c in classes if c.src == src and c.dst == dst
        )
        assert total == pytest.approx(rate, rel=1e-6)
    # The classes are placeable end to end.
    plan = OptimizationEngine().place(classes, {s: 64 for s in topo.switches})
    assert not plan.validate({s: 64 for s in topo.switches})


def test_catch_all_dominates_shares(table):
    """The default rule covers almost all header space volume."""
    shares = dict()
    for atom_idx, share in table.atom_traffic_shares():
        chain = table.chain_for_atom(atom_idx)
        shares[chain] = shares.get(chain, 0.0) + share
    assert shares[DEFAULT] > 0.9
    assert shares[HTTP] > 0
    assert shares[DORM] > 0


def test_chainless_headers_get_no_class():
    table = PolicyRuleTable(
        [PolicyRule(MatchRule(proto="tcp", dst_port=(80, 80)), HTTP)]
    )
    topo = internet2()
    router = Router(topo)
    classes = classes_from_rules(
        table, router, [("ATLA", "CHIN", 100.0)], min_share=0.0
    )
    # Only the HTTP sliver gets a class; unmatched space needs no VNFs.
    assert all(c.chain == HTTP for c in classes)
    assert sum(c.rate_mbps for c in classes) < 100.0


def test_self_and_zero_demands_skipped(table):
    topo = internet2()
    router = Router(topo)
    classes = classes_from_rules(
        table, router, [("ATLA", "ATLA", 50.0), ("ATLA", "CHIN", 0.0)]
    )
    assert classes == []
