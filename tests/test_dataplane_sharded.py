"""Sharded-walk equivalence: the sharded data plane mirrors scalar inject.

The shard layer is only an optimisation: per-packet outcomes, the delivery
ledger, and every switch/vSwitch/instance counter must be bit-identical to
driving the same packet sequence through the scalar walker — across shard
counts, overload drops, mid-run chaos invalidation, and the process-pool
execution mode.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import FIN, Packet
from repro.dataplane.sharded import CounterDelta, ShardedDataPlane, build_partition
from repro.dataplane.switch import SwitchRuleSet
from repro.dataplane.vswitch import VSwitchRule
from repro.experiments import packet_replay
from repro.parallel import fork_available
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.vnf.instance import VNFInstance
from repro.vnf.types import NFType


# ----------------------------------------------------------------------
# Network builder
# ----------------------------------------------------------------------
def _network(class_specs):
    """s1 — s2(host) — s3 with one class per spec.

    Each spec is ``(split, capacity_pps)``: ``split`` is ``None`` for a
    single full-range instance, or a hash boundary in (0, 1) giving the
    class two sub-class instances (so the partitioner sees real hash
    intervals and boundary buckets).
    """
    topo = Topology(
        "line",
        ["s1", "s2", "s3"],
        [Link("s1", "s2"), Link("s2", "s3")],
        hosts={"s2": AppleHostSpec(cores=64)},
    )
    net = DataPlaneNetwork(topo)
    vsw = net.vswitch_at("s2")
    classifications = []
    instances = []
    for k, (split, capacity_pps) in enumerate(class_specs):
        cid = f"c{k}"
        net.register_class_path(cid, ("s1", "s2", "s3"))
        nf = NFType(
            "m", cores=1, capacity_mbps=1e9, clickos=True,
            capacity_pps=capacity_pps,
        )
        ranges = (
            [((0.0, 1.0), 0)]
            if split is None
            else [((0.0, split), 0), ((split, 1.0), 1)]
        )
        for rng, tag in ranges:
            inst = VNFInstance(f"m{tag}-{cid}@s2", nf, "s2", window=0.1)
            vsw.register_instance(inst)
            vsw.install_rule(cid, tag, VSwitchRule((inst.instance_id,),
                                                   exit_host_tag=FIN))
            classifications.append((cid, rng, tag, "s2"))
            instances.append(inst)
    SwitchRuleSet(
        switch="s1", host_match=False, classifications=classifications
    ).apply(net.switches["s1"])
    SwitchRuleSet(switch="s2", host_match=True).apply(net.switches["s2"])
    SwitchRuleSet(switch="s3").apply(net.switches["s3"])
    return net, instances


def _items(n_classes, n=240, rate=100.0):
    """Per-class CBR arrivals with cycling hashes, merged in time order."""
    items = []
    for k in range(n_classes):
        items += [
            (f"c{k}", (j * 0.137) % 1.0, j / rate) for j in range(1, n + 1)
        ]
    items.sort(key=lambda x: (x[2], x[0]))
    return items


def _apply_fault(net, fault):
    """Apply one chaos event; resolves the target instance from ``net``
    so it can be broadcast to process-mode replicas (see
    ``ShardedDataPlane.apply``)."""
    instances = list(net.vswitches["s2"]._instances.values())
    kind, idx = fault
    inst = instances[idx % len(instances)]
    if kind == "invalidate":
        net.invalidate_plans()
    elif kind == "degrade":
        inst.degrade(0.5)
        net.invalidate_plans()
    elif kind == "restore":
        inst.restore_full()
        net.invalidate_plans()
    elif kind == "stop":
        inst.shutdown()
    elif kind == "restart":
        inst.running = True


def _state(net, instances, recent=True):
    """Every observable counter; ``recent`` adds the instances' transient
    sliding windows (worker-local in process mode, so excluded there)."""
    net.flush_counters()
    return {
        "stats": net.delivery_stats(),
        "seen": {s: sw.packets_seen for s, sw in net.switches.items()},
        "lookups": {
            s: (sw.table.lookup_count, sw.table.miss_count)
            for s, sw in net.switches.items()
        },
        "vsw": (net.vswitches["s2"].packets_in,
                net.vswitches["s2"].packets_dropped),
        "inst": [
            (i.stats.packets_in, i.stats.packets_processed,
             i.stats.packets_dropped, i.stats.bytes_processed)
            + ((tuple(i._recent),) if recent else ())
            for i in instances
        ],
    }


def _run_scalar(class_specs, chunks, faults):
    net, instances = _network(class_specs)
    outcomes = []
    for ci, chunk in enumerate(chunks):
        for fault in faults.get(ci, ()):
            _apply_fault(net, fault)
        for cid, h, t in chunk:
            r = net.inject(
                Packet(class_id=cid, flow_hash=h, src="s1", dst="s3"), now=t
            )
            outcomes.append((r.delivered, r.dropped_at))
    return outcomes, _state(net, instances)


def _run_sharded(class_specs, chunks, faults, shards, processes=False):
    net, instances = _network(class_specs)
    outcomes = []
    with ShardedDataPlane(net, shards=shards, processes=processes) as sh:
        for ci, chunk in enumerate(chunks):
            for fault in faults.get(ci, ()):
                if processes:
                    sh.apply(_apply_fault, fault)
                else:
                    _apply_fault(net, fault)
            outcomes.extend(sh.inject_stream(chunk, collect=True))
        sh.flush_counters()
    return outcomes, _state(net, instances)


# ----------------------------------------------------------------------
# Property test: randomized nets, shard counts, and fault schedules
# ----------------------------------------------------------------------
@st.composite
def scenario(draw):
    n_classes = draw(st.integers(1, 3))
    specs = [
        (
            draw(st.sampled_from([None, 0.25, 0.5, 0.69])),
            draw(st.sampled_from([25.0, 40.0, 1e9])),
        )
        for _ in range(n_classes)
    ]
    items = _items(n_classes, n=draw(st.integers(60, 240)))
    n_chunks = draw(st.integers(1, 3))
    step = max(1, len(items) // n_chunks)
    chunks = [items[i : i + step] for i in range(0, len(items), step)]
    faults = {}
    for _ in range(draw(st.integers(0, 3))):
        at = draw(st.integers(1, len(chunks)))
        kind = draw(st.sampled_from(
            ["invalidate", "degrade", "restore", "stop", "restart"]
        ))
        faults.setdefault(at, []).append((kind, draw(st.integers(0, 5))))
    shards = draw(st.sampled_from([2, 3, 4, 8, "auto"]))
    return specs, chunks, faults, shards


@settings(max_examples=40, deadline=None)
@given(scenario())
def test_sharded_matches_scalar_with_chaos(scn):
    specs, chunks, faults, shards = scn
    expected_out, expected_state = _run_scalar(specs, chunks, faults)
    got_out, got_state = _run_sharded(specs, chunks, faults, shards)
    assert got_out == expected_out
    assert got_state == expected_state


# ----------------------------------------------------------------------
# Deterministic corners
# ----------------------------------------------------------------------
def test_sharded_overload_drops_bit_identical():
    specs = [(0.5, 40.0), (None, 40.0)]
    chunks = [_items(2, n=300)]
    expected_out, expected_state = _run_scalar(specs, chunks, {})
    assert expected_state["stats"][1] > 0, "setup must actually drop packets"
    for shards in (1, 2, 4):
        got_out, got_state = _run_sharded(specs, chunks, {}, shards)
        assert got_out == expected_out
        assert got_state == expected_state


def test_partition_is_shared_nothing_and_sticky():
    net, instances = _network([(0.5, 40.0), (None, 40.0), (0.25, 1e9)])
    part = build_partition(net, shards=2)
    assert part.nshards == 2
    assert part.n_components >= 3  # no class shares an instance
    # Instances land wholly in one shard: shared-nothing by construction.
    by_inst = dict(part.instance_shards)
    assert len(by_inst) == len(instances)
    # A rebuild with the previous assignment keeps instances where they were.
    net.invalidate_plans()
    part2 = build_partition(net, shards=2, sticky=by_inst)
    assert dict(part2.instance_shards) == by_inst


def test_counter_delta_merge_commutes_and_associates():
    a = CounterDelta(
        ledger=(5, 1, 0),
        switches={"s1": (5, 5, 0, 2)},
        vswitches={"s2": (4, 1)},
        instances={("s2", "m0"): (4, 3, 1, 4500)},
    )
    b = CounterDelta(
        ledger=(2, 0, 1),
        switches={"s1": (2, 2, 1, 0), "s3": (2, 2, 0, 0)},
        instances={("s2", "m0"): (1, 1, 0, 1500),
                   ("s2", "m1"): (7, 7, 0, 10500)},
    )
    c = CounterDelta(ledger=(0, 3, 0), vswitches={"s2": (0, 3)})
    x = a.merge(b).merge(c)
    y = c.merge(b.merge(a))
    z = b.merge(c).merge(a)
    for other in (y, z):
        assert x.ledger == other.ledger
        assert x.switches == other.switches
        assert x.vswitches == other.vswitches
        assert x.instances == other.instances
    # merge then apply equals applying each delta in any order
    net, _ = _network([(None, 40.0)])
    x.apply_to(net)
    assert net.delivery_stats() == (7, 4, 1)


def test_counter_delta_capture_subtract_roundtrip():
    specs = [(None, 40.0)]
    net, instances = _network(specs)
    base = CounterDelta.capture(net)
    for cid, h, t in _items(1, n=120):
        net.inject(Packet(class_id=cid, flow_hash=h, src="s1", dst="s3"),
                   now=t)
    delta = CounterDelta.capture(net).subtract(base)
    fresh, fresh_inst = _network(specs)
    delta.apply_to(fresh)
    assert fresh.delivery_stats() == net.delivery_stats()
    assert fresh_inst[0].stats.packets_in == instances[0].stats.packets_in


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_sharded_process_mode_bit_identical():
    specs = [(None, 40.0), (None, 40.0)]
    items = _items(2, n=300)
    ref_net, ref_instances = _network(specs)
    expected_out = []
    for cid, h, t in items:
        r = ref_net.inject(
            Packet(class_id=cid, flow_hash=h, src="s1", dst="s3"), now=t
        )
        expected_out.append((r.delivered, r.dropped_at))
    expected_state = _state(ref_net, ref_instances, recent=False)

    net, instances = _network(specs)
    with ShardedDataPlane(net, shards=2, processes=True) as sh:
        part = sh._ensure_partition()
        assert sh._use_processes(part), "process mode must engage"
        out = sh.inject_stream(items, collect=True)
        assert out == expected_out
        # Persistent workers: a second wave accumulates, a broadcast reset
        # restores a replayable state everywhere.
        sh.inject_stream([(c, h, t + 10.0) for c, h, t in items])
        sh.reset_runtime_state()
        out2 = sh.inject_stream(items, collect=True)
        sh.flush_counters()
    assert out2 == expected_out
    assert _state(net, instances, recent=False) == expected_state


def test_packet_replay_sharded_is_bit_identical():
    scalar = packet_replay.run(quick=True)
    for shards in (2, "auto"):
        sharded = packet_replay.run(quick=True, shards=shards)
        assert sharded.rows == scalar.rows


def test_packet_replay_sharded_matches_scalar_under_overload():
    scalar = packet_replay.run(quick=True, overload_factor=1.6)
    sharded = packet_replay.run(quick=True, overload_factor=1.6, shards=4)
    assert sharded.rows == scalar.rows
    dropped = dict((r[0], r[1]) for r in scalar.rows)["dropped"]
    assert dropped > 0
