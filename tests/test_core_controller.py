"""Tests for the AppleController façade."""

import pytest

from repro.core.controller import AppleController
from repro.core.dynamic import FailoverConfig
from repro.topology.datasets import internet2
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.vnf.chains import STANDARD_CHAINS


@pytest.fixture(scope="module")
def controller_and_matrix():
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    matrix = gravity_matrix(topo, 8000.0, seed=0)
    return controller, matrix


def test_available_cores_reflect_topology(controller_and_matrix):
    controller, _ = controller_and_matrix
    cores = controller.available_cores()
    assert set(cores) == set(controller.topo.switches)
    assert all(v == 64 for v in cores.values())


def test_run_builds_full_deployment(controller_and_matrix):
    controller, matrix = controller_and_matrix
    deployment = controller.run(matrix)
    assert deployment.plan.total_instances() > 0
    assert deployment.subclass_plan.total_subclasses() >= len(deployment.plan.classes)
    assert deployment.network.total_tcam_usage() > 0
    assert deployment.instances


def test_send_packet_roundtrip(controller_and_matrix):
    controller, matrix = controller_and_matrix
    controller.run(matrix)
    cls = controller.deployment.plan.classes[0]
    record = controller.send_packet(cls.class_id, 0.42)
    assert record.delivered and record.policy_satisfied
    with pytest.raises(KeyError):
        controller.send_packet("ghost", 0.1)


def test_compute_placement_requires_classes():
    topo = internet2()
    fresh = AppleController(topo, hashed_assignment(STANDARD_CHAINS))
    with pytest.raises(ValueError):
        fresh.compute_placement()


def test_send_packet_requires_deployment():
    topo = internet2()
    fresh = AppleController(topo, hashed_assignment(STANDARD_CHAINS))
    with pytest.raises(RuntimeError):
        fresh.send_packet("x", 0.5)
    with pytest.raises(RuntimeError):
        fresh.make_dynamic_handler()


def test_make_dynamic_handler_bound_to_deployment(controller_and_matrix):
    controller, matrix = controller_and_matrix
    controller.run(matrix)
    handler = controller.make_dynamic_handler(FailoverConfig(enabled=True))
    free_total = sum(handler.free_cores.values())
    assert free_total == sum(controller.available_cores().values()) - (
        controller.deployment.plan.total_cores()
    )
