"""Unit tests for the event queue primitives."""

import pytest

from repro.sim.events import Event, EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while q:
        q.pop().fire()
    assert fired == ["a", "b", "c"]


def test_equal_time_events_fire_in_scheduling_order():
    q = EventQueue()
    fired = []
    for label in "abcde":
        q.push(1.0, fired.append, (label,))
    while q:
        q.pop().fire()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_sequence():
    q = EventQueue()
    fired = []
    q.push(1.0, fired.append, ("low",), priority=5)
    q.push(1.0, fired.append, ("high",), priority=-5)
    while q:
        q.pop().fire()
    assert fired == ["high", "low"]


def test_cancelled_event_does_not_fire():
    q = EventQueue()
    fired = []
    ev = q.push(1.0, fired.append, ("x",))
    ev.cancel()
    assert ev.cancelled
    while q:
        q.pop().fire()
    assert fired == []


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    ev1.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.peek_time()
    ev = q.push(1.0, lambda: None)
    ev.cancel()
    with pytest.raises(IndexError):
        q.peek_time()


def test_clear_drops_everything():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert not q


def test_event_args_passed_through():
    q = EventQueue()
    got = []
    q.push(1.0, lambda a, b: got.append((a, b)), (1, "two"))
    q.pop().fire()
    assert got == [(1, "two")]
