"""Docs-coverage: benchmark trajectories match the documentation.

Every ``BENCH_*.json`` trajectory at the repo root must have a row in
EXPERIMENTS.md's "Benchmark trajectories" table naming the benchmark
module that records it — and the doc must not list trajectories (or
recording modules) that no longer exist.  Mirrors the metric-catalog
coverage test in ``tests/test_obs_docs.py``.
"""

import re
from pathlib import Path

ROOT = Path(__file__).parent.parent
DOC = ROOT / "EXPERIMENTS.md"

ROW_RE = re.compile(
    r"^\| `(?P<file>BENCH_[a-z0-9_]+\.json)` \| "
    r"`(?P<module>benchmarks/bench_[a-z0-9_]+\.py)` \|"
)


def _documented_rows():
    rows = {}
    for line in DOC.read_text().splitlines():
        m = ROW_RE.match(line)
        if m:
            rows[m.group("file")] = m.group("module")
    return rows


def test_doc_has_trajectory_table():
    assert DOC.exists(), "EXPERIMENTS.md missing"
    assert "## Benchmark trajectories" in DOC.read_text()
    assert len(_documented_rows()) >= 7


def test_every_trajectory_is_documented():
    documented = _documented_rows()
    on_disk = sorted(p.name for p in ROOT.glob("BENCH_*.json"))
    missing = [f for f in on_disk if f not in documented]
    assert not missing, (
        f"BENCH trajectories at the repo root but absent from "
        f"EXPERIMENTS.md's 'Benchmark trajectories' table: {missing}"
    )


def test_no_stale_documented_trajectories():
    documented = _documented_rows()
    on_disk = {p.name for p in ROOT.glob("BENCH_*.json")}
    stale = [f for f in documented if f not in on_disk]
    assert not stale, (
        f"trajectories documented in EXPERIMENTS.md but missing from the "
        f"repo root: {stale}"
    )


def test_documented_recorders_exist():
    for traj, module in _documented_rows().items():
        path = ROOT / module
        assert path.exists(), (
            f"EXPERIMENTS.md says {traj} is recorded by {module}, which "
            "does not exist"
        )
        # The recorder really writes that trajectory (via its conftest
        # fixture, named record_bench[_<suffix>]).
        suffix = traj[len("BENCH_") : -len(".json")]
        fixture = "record_bench" if suffix == "engine" else f"record_bench_{suffix}"
        assert fixture in path.read_text(), (
            f"{module} does not use the {fixture} fixture for {traj}"
        )
