"""Tests for the flow-level TCP model."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.tcp import PathOutage, run_transfer_batch, TcpTransfer


def _run_one(size=1_000_000, **kwargs):
    sim = Simulator(seed=0)
    xfer = TcpTransfer(sim, size, **kwargs)
    xfer.start()
    sim.run_all()
    assert xfer.result is not None
    return xfer.result


def test_transfer_completes_and_accounts_bytes():
    result = _run_one(size=2_000_000)
    assert result.bytes_total == 2_000_000
    assert result.duration > 0
    assert result.goodput_bps > 0


def test_larger_files_take_longer():
    small = _run_one(size=1_000_000)
    big = _run_one(size=50_000_000)
    assert big.duration > small.duration


def test_bottleneck_limits_goodput():
    fast = _run_one(size=20_000_000, bottleneck_bps=1e9)
    slow = _run_one(size=20_000_000, bottleneck_bps=1e8)
    assert slow.duration > fast.duration
    # Goodput cannot exceed the bottleneck.
    assert slow.goodput_bps <= 1e8 * 1.01


def test_random_loss_slows_transfer():
    clean = _run_one(size=20_000_000, loss_prob=0.0)
    lossy = _run_one(size=20_000_000, loss_prob=0.2)
    assert lossy.duration > clean.duration
    assert lossy.losses > 0


def test_outage_adds_blackout_and_timeouts():
    sim = Simulator(seed=0)
    outage = PathOutage(start=0.2, duration=3.0)
    xfer = TcpTransfer(
        sim, 20_000_000, path_up=outage.predicate(sim), name="outage"
    )
    xfer.start()
    sim.run_all()
    assert xfer.result.timeouts > 0
    baseline = _run_one(size=20_000_000)
    assert xfer.result.duration > baseline.duration + 3.0


def test_zero_duration_outage_is_noop():
    base = _run_one(size=20_000_000)
    durations = run_transfer_batch(20_000_000, 3, outage=(1.0, 0.0), loss_prob=0.0)
    for d in durations:
        assert abs(d - base.duration) < 1.0


def test_batch_is_deterministic_per_seed():
    a = run_transfer_batch(5_000_000, 4, seed=11)
    b = run_transfer_batch(5_000_000, 4, seed=11)
    assert a == b


def test_invalid_params_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        TcpTransfer(sim, 0)
    with pytest.raises(SimulationError):
        TcpTransfer(sim, 100, rtt=0.0)
    with pytest.raises(SimulationError):
        TcpTransfer(sim, 100, loss_prob=1.0)


def test_double_start_rejected():
    sim = Simulator()
    xfer = TcpTransfer(sim, 1000)
    xfer.start()
    with pytest.raises(SimulationError):
        xfer.start()


def test_on_complete_callback():
    sim = Simulator()
    done = []
    xfer = TcpTransfer(sim, 1_000_000, on_complete=done.append)
    xfer.start()
    sim.run_all()
    assert done and done[0] is xfer.result
