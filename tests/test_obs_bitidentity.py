"""The observability layer's core guarantee: tracing changes nothing.

Telemetry only *reads* ground truth — it never draws RNG, schedules
events, or mutates simulated state — so a run with metrics + tracing
enabled must produce bit-identical results to the same run with the
layer disabled.  These tests enforce that end to end on the two
experiments the acceptance criteria name.
"""

import pytest

from repro import obs
from repro.experiments import failure_recovery, fig12


@pytest.fixture
def obs_off_after():
    """Leave the process-wide obs state exactly as tier-1 expects it."""
    yield
    obs.disable()
    obs.reset()


def _rows(result):
    return [list(r) for r in result.rows]


def test_failure_recovery_bit_identical_with_tracing(obs_off_after):
    obs.disable()
    obs.reset()
    baseline = failure_recovery.run(
        topologies=("internet2",), seed=7, quick=True
    )

    obs.enable(trace=True)
    traced = failure_recovery.run(
        topologies=("internet2",), seed=7, quick=True
    )

    assert _rows(traced) == _rows(baseline)
    assert traced.columns == baseline.columns
    # And the run actually was observed (not vacuous).
    snap = obs.REGISTRY.snapshot()
    assert snap["chaos_faults_injected_total"]["series"]
    assert len(obs.TRACER) > 0


def test_fig12_bit_identical_with_tracing(obs_off_after):
    obs.disable()
    obs.reset()
    baseline = fig12.run(topologies=("internet2",), snapshots=12)

    obs.enable(trace=True)
    traced = fig12.run(topologies=("internet2",), snapshots=12)

    assert _rows(traced) == _rows(baseline)


def test_metrics_collection_is_read_only(obs_off_after):
    """Collecting a snapshot mid-run must not change subsequent results."""
    obs.enable()
    first = failure_recovery.run(topologies=("internet2",), seed=3, quick=True)
    mid_snapshot = obs.REGISTRY.snapshot()
    assert mid_snapshot  # non-empty

    obs.reset()
    second = failure_recovery.run(topologies=("internet2",), seed=3, quick=True)
    assert _rows(first) == _rows(second)
