"""Tests for placement-plan types and sub-class assignment."""

import pytest

from repro.core.placement import InstanceRef, PlacementPlan
from repro.core.subclasses import (
    assign_subclasses,
    SubclassAssignmentError,
    SubclassPlan,
)
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG


def _cls(cid, rate, path=("a", "b", "c"), chain=("firewall",)):
    return TrafficClass(cid, path[0], path[-1], tuple(path), PolicyChain(list(chain)), rate)


def _plan(quantities, distribution, classes):
    return PlacementPlan(
        quantities=dict(quantities),
        distribution=dict(distribution),
        classes=list(classes),
        catalog=DEFAULT_CATALOG,
        objective=float(sum(quantities.values())),
    )


# ---------------------------------------------------------------------------
# PlacementPlan accounting
# ---------------------------------------------------------------------------
def test_plan_core_accounting():
    plan = _plan(
        {("b", "firewall"): 2, ("b", "ids"): 1},
        {("c1", 1, 0): 1.0},
        [_cls("c1", 100.0)],
    )
    assert plan.total_instances() == 3
    assert plan.total_cores() == 2 * 4 + 8
    assert plan.cores_by_switch() == {"b": 16}
    assert len(plan.instance_refs()) == 3
    assert plan.quantity("b", "firewall") == 2
    assert plan.quantity("z", "nat") == 0


def test_plan_load_by_slot():
    plan = _plan(
        {("a", "firewall"): 1, ("b", "firewall"): 1},
        {("c1", 0, 0): 0.25, ("c1", 1, 0): 0.75},
        [_cls("c1", 400.0)],
    )
    loads = plan.load_by_slot()
    assert loads[("a", "firewall")] == pytest.approx(100.0)
    assert loads[("b", "firewall")] == pytest.approx(300.0)


def test_validate_catches_incomplete_processing():
    plan = _plan(
        {("b", "firewall"): 1}, {("c1", 1, 0): 0.6}, [_cls("c1", 100.0)]
    )
    problems = plan.validate({"a": 64, "b": 64, "c": 64})
    assert any("processes" in p for p in problems)


def test_validate_catches_order_violation():
    cls = _cls("c1", 100.0, chain=("nat", "firewall"))
    plan = _plan(
        {("a", "firewall"): 1, ("c", "nat"): 1},
        # firewall (step 1) fully at position 0 but nat (step 0) at position 2.
        {("c1", 2, 0): 1.0, ("c1", 0, 1): 1.0},
        [cls],
    )
    problems = plan.validate({"a": 64, "b": 64, "c": 64})
    assert any("order violated" in p for p in problems)


def test_validate_catches_capacity_violation():
    plan = _plan(
        {("b", "firewall"): 1}, {("c1", 1, 0): 1.0}, [_cls("c1", 2000.0)]
    )
    problems = plan.validate({"a": 64, "b": 64, "c": 64})
    assert any("capacity exceeded" in p for p in problems)


def test_validate_catches_resource_violation():
    plan = _plan(
        {("b", "ids"): 2}, {("c1", 1, 0): 1.0}, [_cls("c1", 100.0, chain=("ids",))]
    )
    problems = plan.validate({"b": 8})  # 16 cores needed, 8 available
    assert any("cores placed" in p for p in problems)


def test_instance_ref_key_roundtrip():
    ref = InstanceRef("SNVA", "firewall", 3)
    assert ref.key == "firewall[3]@SNVA"
    assert ref.key.rsplit("@", 1)[1] == "SNVA"
    assert ref.key.split("[", 1)[0] == "firewall"


# ---------------------------------------------------------------------------
# Sub-class assignment
# ---------------------------------------------------------------------------
def test_split_class_gets_multiple_subclasses():
    cls = _cls("c1", 400.0)
    plan = _plan(
        {("a", "firewall"): 1, ("b", "firewall"): 1},
        {("c1", 0, 0): 0.5, ("c1", 1, 0): 0.5},
        [cls],
    )
    sub_plan = assign_subclasses(plan)
    subs = sub_plan.subclasses("c1")
    assert len(subs) == 2
    assert {s.switches()[0] for s in subs} == {"a", "b"}
    assert sum(s.weight for s in subs) == pytest.approx(1.0)
    # Hash lookup agrees with ranges.
    assert sub_plan.subclass_for_hash("c1", 0.25) is subs[0]
    assert sub_plan.subclass_for_hash("c1", 0.75) is subs[1]


def test_multi_instance_slot_balances_load():
    cls = _cls("c1", 1600.0)
    plan = _plan(
        {("b", "firewall"): 2},
        {("c1", 1, 0): 1.0},
        [cls],
    )
    sub_plan = assign_subclasses(plan)
    loads = list(sub_plan.instance_load.values())
    assert len(loads) == 2
    assert all(l == pytest.approx(800.0) for l in loads)


def test_monotone_coupling_produces_ordered_sequences():
    cls = _cls("c1", 800.0, chain=("nat", "firewall"))
    plan = _plan(
        {("a", "nat"): 1, ("b", "nat"): 1, ("b", "firewall"): 1, ("c", "firewall"): 1},
        {
            ("c1", 0, 0): 0.5,
            ("c1", 1, 0): 0.5,
            ("c1", 1, 1): 0.5,
            ("c1", 2, 1): 0.5,
        },
        [cls],
    )
    sub_plan = assign_subclasses(plan)
    pos = {sw: i for i, sw in enumerate(cls.path)}
    for sub in sub_plan.subclasses("c1"):
        indices = [pos[sw] for sw in sub.switches()]
        assert indices == sorted(indices)


def test_missing_instance_for_distribution_raises():
    cls = _cls("c1", 100.0)
    plan = _plan({}, {("c1", 1, 0): 1.0}, [cls])
    with pytest.raises(SubclassAssignmentError):
        assign_subclasses(plan)


def test_max_subclasses_and_totals():
    cls1 = _cls("c1", 400.0)
    cls2 = _cls("c2", 100.0)
    plan = _plan(
        {("a", "firewall"): 1, ("b", "firewall"): 1},
        {("c1", 0, 0): 0.5, ("c1", 1, 0): 0.5, ("c2", 0, 0): 1.0},
        [cls1, cls2],
    )
    sub_plan = assign_subclasses(plan)
    assert sub_plan.max_subclasses_per_class() == 2
    assert sub_plan.total_subclasses() == 3
    with pytest.raises(KeyError):
        sub_plan.subclasses("ghost")
