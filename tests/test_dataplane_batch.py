"""Batched-walk equivalence: ``inject_batch`` must mirror scalar ``inject``.

The batched fast path is only an optimisation: per-packet outcomes, the
delivery ledger, and every switch/vSwitch/instance counter must be
bit-identical to driving the same packet sequence through the scalar
walker — including drops under overload and across batch sizes.
"""

import pytest

from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import FIN, Packet
from repro.dataplane.switch import SwitchRuleSet
from repro.dataplane.vswitch import VSwitchRule
from repro.experiments import packet_replay
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.vnf.instance import VNFInstance
from repro.vnf.types import NFType


def _line_network(capacity_pps=40.0):
    """s1 — s2(host) — s3 with one monitor instance diverting class c1.

    The default capacity is small enough that a steady 100 pps stream
    overloads the sliding-window admission and drops packets.
    """
    topo = Topology(
        "line",
        ["s1", "s2", "s3"],
        [Link("s1", "s2"), Link("s2", "s3")],
        hosts={"s2": AppleHostSpec(cores=64)},
    )
    net = DataPlaneNetwork(topo)
    net.register_class_path("c1", ("s1", "s2", "s3"))
    nf = NFType("m", cores=1, capacity_mbps=1e9, clickos=True, capacity_pps=capacity_pps)
    inst = VNFInstance("m[0]@s2", nf, "s2", window=0.1)
    vsw = net.vswitch_at("s2")
    vsw.register_instance(inst)
    vsw.install_rule("c1", 0, VSwitchRule(("m[0]@s2",), exit_host_tag=FIN))
    SwitchRuleSet(
        switch="s1", host_match=False, classifications=[("c1", (0.0, 1.0), 0, "s2")]
    ).apply(net.switches["s1"])
    SwitchRuleSet(switch="s2", host_match=True).apply(net.switches["s2"])
    SwitchRuleSet(switch="s3").apply(net.switches["s3"])
    return net, inst


def _arrivals(n=300, rate=100.0):
    """A steady CBR arrival sequence with cycling flow hashes."""
    return [((k * 0.137) % 1.0, k / rate) for k in range(1, n + 1)]


def _counters(net, inst):
    return {
        "stats": net.delivery_stats(),
        "seen": {s: sw.packets_seen for s, sw in net.switches.items()},
        "lookups": {
            s: (sw.table.lookup_count, sw.table.miss_count)
            for s, sw in net.switches.items()
        },
        "vsw": (net.vswitches["s2"].packets_in, net.vswitches["s2"].packets_dropped),
        "inst": (
            inst.stats.packets_in,
            inst.stats.packets_processed,
            inst.stats.packets_dropped,
            inst.stats.bytes_processed,
        ),
    }


def test_batch_matches_scalar_with_overload_drops():
    arrivals = _arrivals()

    scalar_net, scalar_inst = _line_network()
    scalar_outcomes = []
    for h, t in arrivals:
        r = scalar_net.inject(
            Packet(class_id="c1", flow_hash=h, src="s1", dst="s3"), now=t
        )
        scalar_outcomes.append((r.delivered, r.dropped_at))
    expected = _counters(scalar_net, scalar_inst)
    assert expected["stats"][1] > 0, "setup must actually drop packets"

    for batch in (1, 16, 300):
        net, inst = _line_network()
        outcomes = []
        for i in range(0, len(arrivals), batch):
            chunk = arrivals[i : i + batch]
            outcomes.extend(
                net.inject_batch(
                    "c1", [h for h, _ in chunk], now=[t for _, t in chunk]
                )
            )
        net.flush_counters()
        assert outcomes == scalar_outcomes
        assert _counters(net, inst) == expected


def test_batch_single_timestamp_and_rule_change_invalidation():
    net, inst = _line_network(capacity_pps=1e9)
    outcomes = net.inject_batch("c1", [0.1, 0.6, 0.9], now=0.0)
    assert outcomes == [(True, None)] * 3
    assert net.delivery_stats() == (3, 0, 0)

    # Mutating any rule must invalidate cached plans: drop c1 at s1.
    from repro.dataplane.tcam import Action, ActionKind, TcamEntry

    net.switches["s1"].table.install(
        TcamEntry(priority=999, action=Action(ActionKind.DROP), class_id="c1")
    )
    outcomes = net.inject_batch("c1", [0.1, 0.6, 0.9], now=1.0)
    assert outcomes == [(False, "s1")] * 3
    assert net.delivery_stats() == (3, 3, 0)


@pytest.mark.parametrize("batch", [16, 256])
def test_packet_replay_batched_is_bit_identical(batch):
    scalar = packet_replay.run(quick=True)
    batched = packet_replay.run(quick=True, batch=batch)
    assert batched.rows == scalar.rows


def test_packet_replay_batch_one_takes_scalar_path():
    scalar = packet_replay.run(quick=True)
    also_scalar = packet_replay.run(quick=True, batch=1)
    assert also_scalar.rows == scalar.rows


def test_packet_replay_batched_matches_scalar_under_overload():
    scalar = packet_replay.run(quick=True, overload_factor=1.6)
    batched = packet_replay.run(quick=True, overload_factor=1.6, batch=64)
    assert batched.rows == scalar.rows
    dropped = dict((r[0], r[1]) for r in scalar.rows)["dropped"]
    assert dropped > 0
