"""Additional kernel/cloud edge-case tests."""

import pytest

from repro.cloud.opendaylight import OpenDaylight
from repro.cloud.openstack import OpenStack
from repro.cloud.hypervisor import XenHypervisor
from repro.sim.kernel import drain, SimulationError, Simulator


def test_drain_runs_chunks_in_order():
    sim = Simulator()
    seen = []
    for t in (0.5, 1.5, 2.5):
        sim.schedule(t, lambda t=t: seen.append(t))
    drain(sim, [1.0, 2.0, 3.0])
    assert seen == [0.5, 1.5, 2.5]
    assert sim.now == 3.0


def test_process_exception_propagates():
    sim = Simulator()

    def bad():
        yield 1.0
        raise RuntimeError("boom")

    sim.process(bad())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run_all()


def test_event_ordering_with_zero_delay():
    sim = Simulator()
    seen = []
    sim.schedule(0.0, lambda: seen.append("a"))
    sim.schedule(0.0, lambda: seen.append("b"))
    sim.run_all()
    assert seen == ["a", "b"]


def test_odl_port_info_fields():
    sim = Simulator()
    odl = OpenDaylight(sim)
    got = []
    odl.prepare_networking("ovs-s1", got.append)
    sim.run_all()
    info = got[0]
    assert info.vswitch == "ovs-s1"
    assert info.port_id.startswith("ovs-s1-port")
    assert len(info.mac.split(":")) == 6
    assert info.prepared_at == pytest.approx(2.3, abs=0.01)


def test_odl_ports_unique():
    sim = Simulator()
    odl = OpenDaylight(sim)
    got = []
    for _ in range(5):
        odl.prepare_networking("ovs-s1", got.append)
    sim.run_all()
    ids = [p.port_id for p in got]
    macs = [p.mac for p in got]
    assert len(set(ids)) == 5
    assert len(set(macs)) == 5


def test_openstack_jitter_validation():
    sim = Simulator()
    odl = OpenDaylight(sim)
    hyp = XenHypervisor(sim)
    with pytest.raises(ValueError):
        OpenStack(sim, odl, hyp, jitter=1.5)


def test_openstack_timeline_steps_ordered():
    sim = Simulator(seed=7)
    odl = OpenDaylight(sim)
    stack = OpenStack(sim, odl, XenHypervisor(sim))
    out = []
    stack.boot_vm(1, True, "ovs", lambda vm, tl: out.append(tl))
    sim.run_all()
    tl = out[0]
    assert tl.steps[0] == "nova-admitted"
    assert tl.steps[-1] == "running"
    assert tl.requested_at <= tl.network_ready_at <= tl.vm_defined_at <= tl.running_at
