"""Tests for the trace ring buffer and Chrome trace export."""

import json
from pathlib import Path

from repro import perf
from repro.obs.trace import (
    SIM_TRACK,
    WALL_TRACK,
    Tracer,
    traced_perf_span,
    validate_trace,
)

GOLDEN = Path(__file__).parent / "data" / "trace_golden.json"


def _sim_events(tracer):
    return [e for e in tracer.to_chrome()["traceEvents"] if e.get("ph") != "M"]


def make_deterministic_trace() -> Tracer:
    """The fixed event sequence the golden file snapshots."""
    t = Tracer()
    t.enabled = True
    t.instant("detect:vnf-crash", 1.25, cat="chaos.detect", args={"target": "ids[0]@s3"})
    t.complete("fault:link-flap", 2.0, 0.75, cat="chaos.fault",
               args={"target": "s1-s2"})
    t.counter("probe.violations", 2.5, {"dropped": 3, "policy": 0}, cat="chaos.probe")
    return t


def test_disabled_tracer_records_nothing():
    t = Tracer()
    t.instant("x", 1.0)
    t.complete("y", 1.0, 0.5)
    t.counter("z", 1.0, {"v": 1})
    assert len(t) == 0


def test_sim_events_land_on_sim_track():
    t = make_deterministic_trace()
    for ev in _sim_events(t):
        assert ev["tid"] == SIM_TRACK
    # Timestamps are microseconds.
    inst = _sim_events(t)[0]
    assert inst["ts"] == 1.25e6


def test_ring_buffer_drops_oldest():
    t = Tracer(capacity=3)
    t.enabled = True
    for i in range(5):
        t.instant(f"e{i}", float(i))
    assert len(t) == 3
    assert t.dropped == 2
    names = [e["name"] for e in _sim_events(t)]
    assert names == ["e2", "e3", "e4"]
    assert t.to_chrome()["otherData"]["dropped_events"] == 2


def test_wall_span_uses_wall_track():
    t = Tracer()
    t.enabled = True
    with t.wall_span("solve", cat="solver"):
        pass
    (ev,) = _sim_events(t)
    assert ev["tid"] == WALL_TRACK
    assert ev["ph"] == "X"
    assert ev["dur"] >= 0


def test_traced_perf_span_feeds_both_registries():
    t = Tracer()
    t.enabled = True
    before = perf.REGISTRY.stats("obs.test.span").count
    with traced_perf_span(t, "obs.test.span", cat="test"):
        pass
    assert perf.REGISTRY.stats("obs.test.span").count == before + 1
    assert len(t) == 1


def test_traced_perf_span_without_tracing_still_feeds_perf():
    t = Tracer()  # disabled
    before = perf.REGISTRY.stats("obs.test.span2").count
    with traced_perf_span(t, "obs.test.span2"):
        pass
    assert perf.REGISTRY.stats("obs.test.span2").count == before + 1
    assert len(t) == 0


def test_to_chrome_validates_and_names_threads():
    t = make_deterministic_trace()
    obj = t.to_chrome(metadata={"seed": 7})
    assert validate_trace(obj) == []
    meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in meta} == {"simulation", "wall-clock"}
    assert obj["otherData"]["seed"] == 7
    assert obj["otherData"]["generator"] == "repro.obs"


def test_validate_trace_catches_malformed_events():
    assert validate_trace([]) == ["trace must be a JSON object"]
    assert validate_trace({}) == ["traceEvents must be a list"]
    errors = validate_trace(
        {"traceEvents": [{"ph": "Q"}, {"ph": "X", "name": "a", "ts": 0,
                                       "pid": 1, "tid": 1}]}
    )
    assert any("bad phase" in e for e in errors)
    assert any("missing dur" in e for e in errors)


def test_write_round_trips(tmp_path):
    t = make_deterministic_trace()
    out = tmp_path / "trace.json"
    t.write(out)
    obj = json.loads(out.read_text())
    assert validate_trace(obj) == []
    assert len(obj["traceEvents"]) == len(t) + 2  # + thread metadata


def test_golden_file_simulation_track():
    """The deterministic event sequence renders byte-identically.

    The golden file pins the export format (field names, µs timestamps,
    track layout).  Regenerate deliberately with::

        PYTHONPATH=src python tests/test_obs_trace.py --regen
    """
    t = make_deterministic_trace()
    rendered = json.dumps(t.to_chrome(), indent=2, sort_keys=True) + "\n"
    assert GOLDEN.exists(), "golden file missing — run --regen"
    assert rendered == GOLDEN.read_text()


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        t = make_deterministic_trace()
        GOLDEN.write_text(
            json.dumps(t.to_chrome(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {GOLDEN}")
