"""Tests for traffic classes, policy assignment, and replay."""

import numpy as np
import pytest

from repro.topology.datasets import internet2
from repro.topology.routing import Router
from repro.traffic.classes import (
    ClassBuilder,
    hashed_assignment,
    TrafficClass,
    uniform_assignment,
)
from repro.traffic.diurnal import synthesize_series
from repro.traffic.gravity import gravity_matrix
from repro.traffic.replay import replay_series
from repro.vnf.chains import PolicyChain, STANDARD_CHAINS


@pytest.fixture
def router():
    return Router(internet2())


def _chain(*names):
    return PolicyChain(list(names))


# ---------------------------------------------------------------------------
# TrafficClass
# ---------------------------------------------------------------------------
def test_class_indices_match_paper_functions():
    cls = TrafficClass(
        "c1", "a", "c", ("a", "b", "c"), _chain("firewall", "ids"), 10.0
    )
    assert cls.path_length == 3  # |P_h|
    assert cls.chain_length == 2  # |C_h|
    assert cls.switch_index("b") == 1  # i(P,h,v)
    assert cls.nf_index("ids") == 1  # i(C,h,n)


def test_class_validation():
    with pytest.raises(ValueError):
        TrafficClass("c", "a", "c", ("b", "c"), _chain("nat"), 1.0)  # src mismatch
    with pytest.raises(ValueError):
        TrafficClass("c", "a", "b", ("a", "b"), _chain("nat"), -1.0)
    with pytest.raises(ValueError):
        TrafficClass("c", "a", "b", ("a", "b"), _chain("nat"), 1.0, share=0.0)


def test_with_rate_preserves_structure():
    cls = TrafficClass("c", "a", "b", ("a", "b"), _chain("nat"), 1.0)
    clone = cls.with_rate(9.0)
    assert clone.rate_mbps == 9.0
    assert clone.path == cls.path and clone.chain == cls.chain


# ---------------------------------------------------------------------------
# ClassBuilder
# ---------------------------------------------------------------------------
def test_builder_one_class_per_pair_chain(router):
    tm = gravity_matrix(internet2(), 1000.0, seed=0)
    builder = ClassBuilder(router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=0.1)
    classes = builder.build(tm)
    assert classes
    ids = [c.class_id for c in classes]
    assert len(ids) == len(set(ids))
    for c in classes:
        assert c.path == router.path(c.src, c.dst)
        assert c.chain in STANDARD_CHAINS


def test_builder_min_rate_filters(router):
    tm = gravity_matrix(internet2(), 1000.0, seed=0)
    all_classes = ClassBuilder(router, hashed_assignment(STANDARD_CHAINS)).build(tm)
    filtered = ClassBuilder(
        router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=10.0
    ).build(tm)
    assert len(filtered) < len(all_classes)
    assert all(c.rate_mbps > 10.0 for c in filtered)


def test_uniform_assignment_splits_shares(router):
    chains = [STANDARD_CHAINS[0], STANDARD_CHAINS[1]]
    tm = gravity_matrix(internet2(), 1000.0, seed=0)
    classes = ClassBuilder(router, uniform_assignment(chains), min_rate_mbps=1.0).build(tm)
    by_pair = {}
    for c in classes:
        by_pair.setdefault((c.src, c.dst), []).append(c)
    for pair, group in by_pair.items():
        assert len(group) == 2
        assert abs(sum(g.share for g in group) - 1.0) < 1e-9


def test_bad_shares_rejected(router):
    def broken(src, dst):
        return [(STANDARD_CHAINS[0], 0.7)]  # does not sum to 1

    tm = gravity_matrix(internet2(), 1000.0, seed=0)
    with pytest.raises(ValueError):
        ClassBuilder(router, broken, min_rate_mbps=1.0).build(tm)


def test_hashed_assignment_is_deterministic():
    assign = hashed_assignment(STANDARD_CHAINS)
    first = assign("ATLA", "CHIN")
    again = assign("ATLA", "CHIN")
    assert first == again


def test_rebuild_rates(router):
    tm1 = gravity_matrix(internet2(), 1000.0, seed=0)
    tm2 = tm1.scaled(2.0)
    builder = ClassBuilder(router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0)
    classes = builder.build(tm1)
    rescaled = builder.rebuild_rates(classes, tm2)
    for old, new in zip(classes, rescaled):
        assert abs(new.rate_mbps - 2 * old.rate_mbps) < 1e-9


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------
def test_replay_timeline_consistency(router):
    topo = internet2()
    series = synthesize_series(topo, 2000.0, snapshots=6, seed=0)
    builder = ClassBuilder(router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0)
    timeline = replay_series(builder, series)
    assert timeline.num_snapshots == 6
    assert timeline.rates.shape == (6, len(timeline.classes))
    # Snapshot classes carry the snapshot's rates.
    snap2 = timeline.snapshot_classes(2)
    for j, c in enumerate(snap2):
        assert c.rate_mbps == pytest.approx(float(timeline.rates[2, j]))
    # Per-class series lookup.
    cid = timeline.classes[0].class_id
    assert np.allclose(timeline.class_rate_series(cid), timeline.rates[:, 0])
    with pytest.raises(KeyError):
        timeline.class_rate_series("nope")


def test_replay_iterates_in_order(router):
    topo = internet2()
    series = synthesize_series(topo, 2000.0, snapshots=4, interval=30.0, seed=0)
    builder = ClassBuilder(router, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0)
    timeline = replay_series(builder, series)
    times = [t for t, _ in timeline.iter_snapshots()]
    assert times == [0.0, 30.0, 60.0, 90.0]
