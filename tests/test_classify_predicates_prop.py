"""Property-based tests (hypothesis) for the predicate algebra.

The algebra's disjoint-cube invariant makes volume exact; these properties
pin the Boolean-algebra laws the atomic-predicate computation relies on.
"""

from hypothesis import given, settings, strategies as st

from repro.classify.fields import FieldSpace, HeaderField
from repro.classify.predicates import Cube, Predicate

SPACE = FieldSpace([HeaderField("x", 5), HeaderField("y", 5)])
TOTAL = SPACE.total_volume()


@st.composite
def cubes(draw):
    constraints = {}
    for name in ("x", "y"):
        if draw(st.booleans()):
            lo = draw(st.integers(0, 31))
            hi = draw(st.integers(lo, 31))
            constraints[name] = (lo, hi)
    return Cube.make(SPACE, constraints)


@st.composite
def predicates(draw):
    n = draw(st.integers(0, 3))
    p = Predicate.nothing(SPACE)
    for _ in range(n):
        p = p.union(Predicate.of_cube(draw(cubes())))
    return p


@given(predicates())
@settings(max_examples=60, deadline=None)
def test_complement_involution(p):
    assert p.complement().complement().equals(p)


@given(predicates())
@settings(max_examples=60, deadline=None)
def test_complement_volume(p):
    assert p.volume() + p.complement().volume() == TOTAL


@given(predicates(), predicates())
@settings(max_examples=60, deadline=None)
def test_inclusion_exclusion(a, b):
    assert a.union(b).volume() == a.volume() + b.volume() - a.intersect(b).volume()


@given(predicates(), predicates())
@settings(max_examples=60, deadline=None)
def test_subtract_is_intersection_with_complement(a, b):
    assert a.subtract(b).equals(a.intersect(b.complement()))


@given(predicates(), predicates())
@settings(max_examples=60, deadline=None)
def test_de_morgan(a, b):
    lhs = a.union(b).complement()
    rhs = a.complement().intersect(b.complement())
    assert lhs.equals(rhs)


@given(predicates(), predicates())
@settings(max_examples=60, deadline=None)
def test_intersection_commutes(a, b):
    assert a.intersect(b).equals(b.intersect(a))


@given(predicates())
@settings(max_examples=60, deadline=None)
def test_union_with_self_idempotent(p):
    assert p.union(p).equals(p)
    assert p.union(p).volume() == p.volume()


@given(predicates(), st.integers(0, 31), st.integers(0, 31))
@settings(max_examples=60, deadline=None)
def test_membership_consistent_with_complement(p, x, y):
    header = {"x": x, "y": y}
    assert p.contains(header) != p.complement().contains(header)


@given(predicates())
@settings(max_examples=60, deadline=None)
def test_internal_cubes_disjoint(p):
    """The core representation invariant: cubes never overlap."""
    for i in range(len(p.cubes)):
        for j in range(i + 1, len(p.cubes)):
            assert p.cubes[i].intersect(p.cubes[j]) is None
