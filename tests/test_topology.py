"""Tests for the topology model, routing, datasets, and generators."""

import networkx as nx
import pytest

from repro.topology.datasets import as3679, geant, internet2, load_topology, univ1
from repro.topology.generators import (
    AS3679_LINK_NODE_RATIO,
    fat_tree,
    isp_like,
    jellyfish,
    scaled_wan,
    two_tier_datacenter,
)
from repro.topology.graph import AppleHostSpec, Link, Topology
from repro.topology.routing import (
    all_shortest_paths,
    ecmp_paths,
    path_links,
    Router,
    shortest_path,
)


# ---------------------------------------------------------------------------
# Topology model
# ---------------------------------------------------------------------------
def _triangle():
    return Topology(
        "tri", ["a", "b", "c"], [Link("a", "b"), Link("b", "c"), Link("a", "c")]
    )


def test_topology_counts_and_neighbors():
    topo = _triangle()
    assert topo.num_switches == 3
    assert topo.num_links == 3
    assert sorted(topo.neighbors("a")) == ["b", "c"]
    assert topo.degree("a") == 2
    assert topo.is_connected()


def test_topology_rejects_bad_links():
    with pytest.raises(ValueError):
        Topology("x", ["a"], [Link("a", "b")])  # unknown switch
    with pytest.raises(ValueError):
        Topology("x", ["a", "b"], [Link("a", "a")])  # self loop
    with pytest.raises(ValueError):
        Topology("x", ["a", "b"], [Link("a", "b"), Link("b", "a")])  # duplicate


def test_default_hosts_everywhere():
    topo = _triangle()
    assert set(topo.hosts) == {"a", "b", "c"}
    assert topo.host_cores("a") == 64


def test_restrict_hosts():
    topo = _triangle()
    topo.restrict_hosts(["a"], cores=32)
    assert topo.host_cores("a") == 32
    assert topo.host_cores("b") == 0
    with pytest.raises(ValueError):
        topo.restrict_hosts(["zz"])


def test_explicit_host_map_validated():
    with pytest.raises(ValueError):
        Topology(
            "x", ["a", "b"], [Link("a", "b")], hosts={"zz": AppleHostSpec()}
        )


def test_switch_index_stable():
    topo = _triangle()
    idx = topo.switch_index()
    assert [idx[s] for s in topo.switches] == [0, 1, 2]


def test_iter_switch_pairs_excludes_self():
    topo = _triangle()
    pairs = list(topo.iter_switch_pairs())
    assert len(pairs) == 6
    assert all(a != b for a, b in pairs)


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------
def _square():
    # a-b-d and a-c-d: two equal-cost paths a->d.
    return Topology(
        "sq",
        ["a", "b", "c", "d"],
        [Link("a", "b"), Link("b", "d"), Link("a", "c"), Link("c", "d")],
    )


def test_shortest_path_deterministic_tie_break():
    topo = _square()
    assert shortest_path(topo, "a", "d") == ("a", "b", "d")  # lexicographic


def test_all_shortest_paths():
    topo = _square()
    paths = all_shortest_paths(topo, "a", "d")
    assert paths == [("a", "b", "d"), ("a", "c", "d")]


def test_ecmp_paths_truncation():
    topo = _square()
    assert len(ecmp_paths(topo, "a", "d", max_paths=1)) == 1


def test_router_caching_and_modes():
    topo = _square()
    single = Router(topo, ecmp=False)
    multi = Router(topo, ecmp=True)
    assert len(single.paths("a", "d")) == 1
    assert len(multi.paths("a", "d")) == 2
    assert single.path("a", "d") == multi.path("a", "d")
    assert single.path_length("a", "d") == 2
    # Cache returns the same object.
    assert single.paths("a", "d") is single.paths("a", "d")
    single.clear_cache()
    assert single.paths("a", "d") == [("a", "b", "d")]


def test_router_self_pair():
    topo = _square()
    router = Router(topo)
    assert router.path("a", "a") == ("a",)


def test_path_links():
    assert path_links(("a", "b", "c")) == [("a", "b"), ("b", "c")]
    assert path_links(("a",)) == []


def test_weighted_shortest_path():
    topo = Topology(
        "w",
        ["a", "b", "c"],
        [Link("a", "b", weight=10.0), Link("a", "c", weight=1.0), Link("c", "b", weight=1.0)],
    )
    assert shortest_path(topo, "a", "b") == ("a", "c", "b")


# ---------------------------------------------------------------------------
# Datasets (the paper's Sec. IX-A footprints)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "loader,nodes,links",
    [(internet2, 12, 15), (geant, 23, 37), (univ1, 23, 43), (as3679, 79, 147)],
)
def test_dataset_footprints(loader, nodes, links):
    topo = loader()
    assert topo.num_switches == nodes
    assert topo.num_links == links
    assert topo.is_connected()
    assert all(spec.cores == 64 for spec in topo.hosts.values())


def test_load_topology_by_name():
    assert load_topology("internet2").name == "internet2"
    with pytest.raises(KeyError):
        load_topology("nonexistent")


def test_univ1_two_tier_structure():
    topo = univ1()
    cores = [s for s in topo.switches if s.startswith("core")]
    edges = [s for s in topo.switches if s.startswith("edge")]
    assert len(cores) == 2 and len(edges) == 21
    for e in edges:
        assert set(topo.neighbors(e)) == set(cores)


def test_as3679_deterministic():
    a, b = as3679(), as3679()
    assert set(a.graph.edges) == set(b.graph.edges)


def test_as3679_heavy_tailed_degrees():
    topo = as3679()
    degrees = sorted((topo.degree(s) for s in topo.switches), reverse=True)
    assert degrees[0] >= 3 * degrees[len(degrees) // 2]


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------
def test_two_tier_counts():
    topo = two_tier_datacenter(num_core=3, num_edge=5)
    assert topo.num_switches == 8
    assert topo.num_links == 3 * 5 + 3  # bipartite mesh + core ring


def test_two_tier_rejects_empty_layers():
    with pytest.raises(ValueError):
        two_tier_datacenter(num_core=0, num_edge=5)


def test_isp_like_exact_counts_and_connected():
    topo = isp_like(num_nodes=30, num_links=50, seed=4)
    assert topo.num_switches == 30
    assert topo.num_links == 50
    assert topo.is_connected()
    # same seed -> identical topology; different seed -> different wiring
    again = isp_like(num_nodes=30, num_links=50, seed=4)
    assert {(l.u, l.v) for l in topo.links} == {(l.u, l.v) for l in again.links}
    other = isp_like(num_nodes=30, num_links=50, seed=5)
    assert {(l.u, l.v) for l in topo.links} != {(l.u, l.v) for l in other.links}


def test_isp_like_bounds_checked():
    with pytest.raises(ValueError):
        isp_like(num_nodes=10, num_links=8)  # below spanning tree
    with pytest.raises(ValueError):
        isp_like(num_nodes=5, num_links=11)  # above complete graph


# ---------------------------------------------------------------------------
# Hyperscale generators (fat-tree / Jellyfish / scaled WAN)
# ---------------------------------------------------------------------------
def _edge_set(topo):
    return {frozenset((l.u, l.v)) for l in topo.links}


def test_two_tier_single_core_has_no_core_links():
    topo = two_tier_datacenter(num_core=1, num_edge=6)
    assert topo.num_switches == 7
    assert topo.num_links == 6  # bipartite mesh only
    assert topo.is_connected()


def test_fat_tree_structure():
    topo = fat_tree(k=4)
    assert topo.num_switches == 20  # 5k²/4
    assert topo.num_links == 32  # k³/2
    cores = [s for s in topo.switches if s.startswith("core")]
    edges = [s for s in topo.switches if "-edge" in s]
    aggs = [s for s in topo.switches if "-agg" in s]
    assert len(cores) == 4 and len(aggs) == 8 and len(edges) == 8
    # cores and aggs use all k ports switch-side; edge switches spend
    # k/2 ports on servers, leaving k/2 uplinks
    assert all(topo.degree(s) == 4 for s in cores + aggs)
    assert all(topo.degree(e) == 2 for e in edges)
    # APPLE hosts hang off the edge layer only
    assert all(topo.host_cores(s) == 0 or s in edges for s in topo.switches)
    assert all(topo.host_cores(e) == 64 for e in edges)
    assert topo.is_connected()


def test_fat_tree_scales_and_is_deterministic():
    topo = fat_tree(k=20)
    assert topo.num_switches == 500  # the hyperscale flagship size
    assert topo.num_links == 4000
    again = fat_tree(k=20)
    assert topo.switches == again.switches
    assert _edge_set(topo) == _edge_set(again)
    with pytest.raises(ValueError):
        fat_tree(k=5)  # odd arity
    with pytest.raises(ValueError):
        fat_tree(k=0)


def test_jellyfish_regular_connected_deterministic():
    topo = jellyfish(30, degree=4, seed=7)
    assert topo.num_switches == 30
    # the splice endgame may strand a port or two; near-regular is the
    # Jellyfish guarantee, exact regularity is not
    assert topo.num_links >= 30 * 4 // 2 - 2
    degrees = [topo.degree(s) for s in topo.switches]
    assert max(degrees) <= 4 and min(degrees) >= 2
    assert sum(1 for d in degrees if d == 4) >= 28
    assert topo.is_connected()
    assert _edge_set(topo) == _edge_set(jellyfish(30, degree=4, seed=7))
    assert _edge_set(topo) != _edge_set(jellyfish(30, degree=4, seed=8))
    # every switch carries an APPLE host (servers spread over the fabric)
    assert all(topo.host_cores(s) == 64 for s in topo.switches)


def test_jellyfish_validates_parameters():
    with pytest.raises(ValueError):
        jellyfish(2, degree=2)
    with pytest.raises(ValueError):
        jellyfish(10, degree=1)
    with pytest.raises(ValueError):
        jellyfish(5, degree=3)  # odd degree sum


def test_scaled_wan_keeps_rocketfuel_sparsity():
    topo = scaled_wan(500, seed=3)
    assert topo.num_switches == 500
    assert topo.num_links == round(500 * AS3679_LINK_NODE_RATIO)
    assert topo.is_connected()
    assert _edge_set(topo) == _edge_set(scaled_wan(500, seed=3))
    assert _edge_set(topo) != _edge_set(scaled_wan(500, seed=4))
