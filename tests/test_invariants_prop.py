"""System-level property tests: online placer and dynamic-handler invariants.

These drive the stateful components with random inputs and assert the
invariants the rest of the system depends on:

* the online placer's state always describes a valid placement;
* the dynamic handler conserves cores and keeps every class's sub-class
  weights a partition of unity, no matter how rates fluctuate.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dynamic import DynamicHandler, FailoverConfig
from repro.core.engine import OptimizationEngine
from repro.core.online import OnlinePlacementError, OnlinePlacer
from repro.core.subclasses import assign_subclasses
from repro.traffic.classes import TrafficClass
from repro.traffic.replay import ClassRateTimeline
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG

SWITCHES = ("s0", "s1", "s2", "s3")
NFS = DEFAULT_CATALOG.names
CORES = {s: 64 for s in SWITCHES}


@st.composite
def random_classes(draw, prefix="c", max_classes=5):
    n = draw(st.integers(1, max_classes))
    out = []
    for k in range(n):
        start = draw(st.integers(0, 2))
        end = draw(st.integers(start + 1, 3))
        path = SWITCHES[start : end + 1]
        chain_len = draw(st.integers(1, 2))
        chain = draw(st.permutations(NFS).map(lambda p: list(p[:chain_len])))
        rate = draw(st.floats(5.0, 1200.0))
        out.append(
            TrafficClass(
                f"{prefix}{k}", path[0], path[-1], tuple(path),
                PolicyChain(chain), rate,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Online placer
# ---------------------------------------------------------------------------
@given(random_classes())
@settings(max_examples=40, deadline=None)
def test_online_state_always_valid(classes):
    placer = OnlinePlacer(CORES)
    admitted = []
    for cls in classes:
        try:
            placer.admit(cls)
            admitted.append(cls)
        except OnlinePlacementError:
            continue
        # Invariants after every admission:
        plan = placer.to_plan()
        assert plan.validate(CORES) == []
        for slot, load in placer.loads.items():
            cap = DEFAULT_CATALOG.get(slot[1]).capacity_mbps
            assert load <= cap * placer.quantities.get(slot, 0) + 1e-6
        for sw in SWITCHES:
            assert placer.free_cores(sw) >= 0


@given(random_classes(), st.data())
@settings(max_examples=30, deadline=None)
def test_online_release_restores_loads(classes, data):
    placer = OnlinePlacer(CORES)
    admitted = []
    for cls in classes:
        try:
            placer.admit(cls)
            admitted.append(cls.class_id)
        except OnlinePlacementError:
            pass
    if not admitted:
        return
    victim = data.draw(st.sampled_from(admitted))
    before = sum(placer.loads.values())
    placer.release(victim)
    after = sum(placer.loads.values())
    assert after <= before
    assert victim not in placer.admitted_classes()


# ---------------------------------------------------------------------------
# Dynamic handler
# ---------------------------------------------------------------------------
def _handler_for(classes, enabled=True):
    plan = OptimizationEngine().place(classes, CORES)
    sub_plan = assign_subclasses(plan)
    used = plan.cores_by_switch()
    free = {s: CORES[s] - used.get(s, 0) for s in SWITCHES}
    return DynamicHandler(
        plan, sub_plan, DEFAULT_CATALOG, free,
        config=FailoverConfig(enabled=enabled),
    ), plan


@given(
    random_classes(max_classes=3),
    st.lists(st.floats(0.1, 4.0), min_size=2, max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_handler_conserves_cores_and_weights(classes, multipliers):
    from repro.core.engine import PlacementError

    try:
        handler, plan = _handler_for(classes)
    except PlacementError:
        return
    free0 = sum(handler.free_cores.values())
    base_rates = {c.class_id: c.rate_mbps for c in plan.classes}
    times = [60.0 * k for k in range(len(multipliers))]
    rates = np.array(
        [[base_rates[c.class_id] * m for c in plan.classes] for m in multipliers]
    )
    timeline = ClassRateTimeline(list(plan.classes), times, rates)
    result = handler.replay(timeline)

    # Core conservation: free + held-by-extras is constant.
    assert sum(handler.free_cores.values()) + handler._extra_core_count() == free0
    assert all(v >= 0 for v in handler.free_cores.values())
    # Weight partition: every class's sub-class weights sum to 1.
    for cid, subs in handler._state.items():
        total = sum(st_.weight for st_ in subs)
        assert abs(total - 1.0) < 1e-6, f"{cid}: weights sum to {total}"
    # Loss is a ratio.
    assert all(0.0 <= l <= 1.0 for l in result.loss)


@given(random_classes(max_classes=2))
@settings(max_examples=20, deadline=None)
def test_failover_never_hurts(classes):
    from repro.core.engine import PlacementError

    try:
        handler_on, plan = _handler_for(classes, enabled=True)
        handler_off, _ = _handler_for(classes, enabled=False)
    except PlacementError:
        return
    base_rates = {c.class_id: c.rate_mbps for c in plan.classes}
    times = [60.0 * k for k in range(4)]
    rates = np.array(
        [[base_rates[c.class_id] * m for c in plan.classes]
         for m in (1.0, 2.5, 2.5, 0.8)]
    )
    timeline = ClassRateTimeline(list(plan.classes), times, rates)
    loss_on = handler_on.replay(timeline).mean_loss
    loss_off = handler_off.replay(timeline).mean_loss
    assert loss_on <= loss_off + 1e-9
