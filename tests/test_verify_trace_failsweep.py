"""Tests for the deployment verifier, flow traces, and failure sweep."""

import pytest

from repro.core.controller import AppleController
from repro.core.verify import verify_deployment
from repro.experiments import failure_sweep
from repro.topology.datasets import internet2
from repro.topology.routing import Router
from repro.traffic.classes import hashed_assignment
from repro.traffic.gravity import gravity_matrix
from repro.traffic.trace import (
    active_flows,
    aggregate_to_classes,
    generate_flows,
)
from repro.vnf.chains import STANDARD_CHAINS


# ---------------------------------------------------------------------------
# Deployment verifier
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def deployed():
    topo = internet2()
    controller = AppleController(
        topo, hashed_assignment(STANDARD_CHAINS), min_rate_mbps=1.0
    )
    controller.run(gravity_matrix(topo, 8000.0, seed=0))
    return topo, controller


def test_verifier_passes_clean_deployment(deployed):
    topo, controller = deployed
    report = verify_deployment(controller.deployment, topo)
    assert report.ok, report.summary()
    assert report.probes_sent > 0
    assert report.probes_delivered == report.probes_sent
    assert "OK" in report.summary()


def test_verifier_catches_sabotaged_rules(deployed):
    topo, controller = deployed
    deployment = controller.deployment
    # Sabotage: clear one vSwitch's rules so its packets blackhole loudly.
    victim = next(iter(deployment.rules.vswitch_rules))
    vsw = deployment.network.vswitches[victim]
    saved = dict(vsw._rules)
    vsw._rules = {
        k: r for k, r in saved.items() if k[1] != sorted(saved)[0][1]
    }
    try:
        with pytest.raises(KeyError):
            # The walker surfaces missing rules as loud KeyErrors — a
            # rule-generation bug, not silent packet loss.
            verify_deployment(deployment, topo)
    finally:
        vsw._rules = saved


def test_verifier_flags_core_oversubscription(deployed):
    topo, controller = deployed
    deployment = controller.deployment
    shrunk = internet2(default_host_cores=1)  # absurd budget
    report = verify_deployment(deployment, shrunk)
    assert not report.ok
    assert report.by_kind().get("isolation", 0) > 0


# ---------------------------------------------------------------------------
# Flow traces
# ---------------------------------------------------------------------------
def test_generate_flows_matches_matrix_rate():
    topo = internet2()
    matrix = gravity_matrix(topo, 5000.0, seed=1)
    flows = generate_flows(matrix, duration=200.0, seed=1)
    assert flows
    # Average carried rate across the horizon tracks the matrix total.
    carried = sum(f.rate_mbps * f.duration for f in flows) / 200.0
    assert 0.5 * matrix.total() < carried < 2.0 * matrix.total()
    assert flows == sorted(flows, key=lambda f: f.start)


def test_aggregation_collapses_flows():
    topo = internet2()
    router = Router(topo)
    matrix = gravity_matrix(topo, 5000.0, seed=1)
    flows = generate_flows(matrix, duration=200.0, seed=1)
    classes, live = aggregate_to_classes(
        flows, router, hashed_assignment(STANDARD_CHAINS), at=100.0
    )
    assert live > len(classes)  # the Sec. IV-A input-size reduction
    total_class_rate = sum(c.rate_mbps for c in classes)
    total_flow_rate = sum(f.rate_mbps for f in active_flows(flows, 100.0))
    assert total_class_rate == pytest.approx(total_flow_rate, rel=1e-9)


def test_generate_flows_validation():
    topo = internet2()
    matrix = gravity_matrix(topo, 100.0, seed=0)
    with pytest.raises(ValueError):
        generate_flows(matrix, duration=0.0)


# ---------------------------------------------------------------------------
# Failure sweep
# ---------------------------------------------------------------------------
def test_failure_sweep_quick():
    result = failure_sweep.run(quick=True)
    rows = {r[0]: r for r in result.rows}
    assert 0 in rows and 2 in rows
    # Failover strictly improves once something has failed.
    assert rows[2][2] < rows[2][1]
    # Loss grows with failures when failover is off.
    assert rows[2][1] > rows[0][1]
