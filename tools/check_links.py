#!/usr/bin/env python
"""Check relative Markdown links (and their anchors) across the repo.

Scans ``*.md`` at the repo root and everything under ``docs/``.  For each
``[text](target)`` link with a relative target it verifies the target
file exists, and — when the link carries a ``#anchor`` — that the target
contains a heading whose GitHub-style slug matches.  External links
(``http://``, ``https://``, ``mailto:``) are not fetched.

Usage::

    python tools/check_links.py            # exit 0 clean, 1 with broken links
    python tools/check_links.py --verbose  # also list every checked link
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — excluding images' leading "!" is unnecessary: image
#: targets are checked the same way.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def md_files() -> List[Path]:
    files = sorted(ROOT.glob("*.md"))
    docs = ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def extract_links(path: Path) -> List[str]:
    links = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        links.extend(LINK_RE.findall(line))
    return links


def check_file(path: Path) -> List[Tuple[str, str]]:
    """(link, problem) pairs for one Markdown file."""
    problems = []
    for link in extract_links(path):
        if link.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = link.partition("#")
        if target:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append((link, "target does not exist"))
                continue
        else:
            resolved = path  # pure in-page anchor
        if anchor:
            if resolved.suffix != ".md" or not resolved.is_file():
                continue  # anchors into non-markdown targets: not checked
            if anchor.lower() not in heading_slugs(resolved):
                problems.append((link, f"no heading for anchor #{anchor}"))
    return problems


def main(argv: List[str] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    verbose = "--verbose" in args
    broken = 0
    for path in md_files():
        problems = check_file(path)
        rel = path.relative_to(ROOT)
        if verbose and not problems:
            print(f"ok   {rel}")
        for link, why in problems:
            broken += 1
            print(f"FAIL {rel}: ({link}) — {why}")
    if broken:
        print(f"{broken} broken link(s)")
        return 1
    print(f"checked {len(md_files())} markdown files, all links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
