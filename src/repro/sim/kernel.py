"""The discrete-event simulator: clock, scheduler, processes and timers.

The kernel is intentionally small (a few hundred lines) but supports the
three styles of simulation code used across the repository:

* plain callbacks (``sim.schedule(delay, fn, args)``),
* generator *processes* that ``yield`` delays, in the style of SimPy, and
* periodic :class:`Timer` objects (used e.g. by the Dynamic Handler to poll
  Open vSwitch packet counters every interval).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional, Tuple

from repro.obs import state as _obs
from repro.sim.events import Event, EventQueue
from repro.sim.rng import SeededRNG


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. negative delays)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: seed for the simulator-owned RNG handed to stochastic
            components (packet sources, traffic noise).

    Attributes:
        now: current simulation time in seconds.
        rng: a :class:`~repro.sim.rng.SeededRNG` owned by this simulator.
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = SeededRNG(seed)
        self._queue = EventQueue()
        self._running = False
        self._fired = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(self.now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time!r}, already at {self.now!r}"
            )
        return self._queue.push(time, callback, args, priority)

    # ------------------------------------------------------------------
    # Processes and timers
    # ------------------------------------------------------------------
    def process(self, generator: Generator[float, None, None]) -> "Process":
        """Start a generator-based process.

        The generator yields non-negative floats interpreted as delays;
        the process resumes after each delay until the generator returns.
        """
        proc = Process(self, generator)
        proc._step()
        return proc

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        start_delay: Optional[float] = None,
    ) -> "Timer":
        """Run ``callback`` periodically; returns a cancellable :class:`Timer`."""
        timer = Timer(self, interval, callback, args)
        timer.start(start_delay if start_delay is not None else interval)
        return timer

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When stopped by ``until``, the clock is advanced exactly to
        ``until`` so back-to-back ``run`` calls tile the timeline.
        """
        fired = 0
        self._running = True
        try:
            while self._queue:
                try:
                    next_time = self._queue.peek_time()
                except IndexError:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                if event.cancelled:
                    continue
                self.now = event.time
                event.fire()
                fired += 1
                self._fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        if _obs.REGISTRY.enabled:
            _obs.metric("sim_events_fired_total").set_total(self._fired)
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        return self.run(until=None, max_events=max_events)

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled shells)."""
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total number of events fired over the simulator's lifetime."""
        return self._fired

    def reset(self) -> None:
        """Drop pending events and rewind the clock to zero."""
        self._queue.clear()
        self.now = 0.0
        self._fired = 0


class Process:
    """A generator-based cooperative process.

    The wrapped generator yields delays (floats).  ``Process`` schedules its
    own continuation after each yield.  Exceptions raised by the generator
    propagate out of the event that resumed it, which fails tests loudly
    instead of being swallowed.
    """

    def __init__(self, sim: Simulator, generator: Generator[float, None, None]) -> None:
        self._sim = sim
        self._gen = generator
        self._alive = True
        self._next_event: Optional[Event] = None

    @property
    def alive(self) -> bool:
        """Whether the generator has not yet finished or been interrupted."""
        return self._alive

    def interrupt(self) -> None:
        """Stop the process; its pending wakeup is cancelled."""
        self._alive = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None
        self._gen.close()

    def _step(self) -> None:
        if not self._alive:
            return
        try:
            delay = next(self._gen)
        except StopIteration:
            self._alive = False
            self._next_event = None
            return
        if delay < 0:
            raise SimulationError(f"process yielded negative delay {delay!r}")
        self._next_event = self._sim.schedule(delay, self._step)


class Timer:
    """A periodic timer built on the event queue.

    Used by polling components (overload detection polls vSwitch counters,
    the Optimization Engine re-runs each period).  Cancelling is O(1).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval!r}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._event: Optional[Event] = None
        self._active = False
        self.fire_count = 0

    @property
    def active(self) -> bool:
        """Whether the timer will fire again."""
        return self._active

    def start(self, first_delay: Optional[float] = None) -> None:
        """Arm the timer; first firing after ``first_delay`` (default: interval)."""
        self._active = True
        delay = self.interval if first_delay is None else first_delay
        self._event = self._sim.schedule(delay, self._tick)

    def cancel(self) -> None:
        """Disarm the timer."""
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._active:
            return
        self.fire_count += 1
        self._callback(*self._args)
        if self._active:
            self._event = self._sim.schedule(self.interval, self._tick)


def drain(sim: Simulator, chunks: Iterable[float]) -> None:
    """Run the simulator through consecutive time chunks (test helper)."""
    for horizon in chunks:
        sim.run(until=horizon)
