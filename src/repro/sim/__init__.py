"""Discrete-event simulation kernel used by every APPLE substrate.

The original APPLE prototype runs on a physical testbed (OpenStack + Xen +
Open vSwitch).  This package provides the timing substrate that stands in for
that testbed: a deterministic event queue, generator-based processes,
periodic timers, packet sources (CBR / Poisson / on-off) and a flow-level TCP
transfer model used by the Fig. 8 experiment.

Typical usage::

    from repro.sim import Simulator

    sim = Simulator(seed=7)
    sim.schedule(1.0, lambda: print("one second in"))
    sim.run(until=10.0)
"""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Process, Simulator, Timer
from repro.sim.rng import SeededRNG
from repro.sim.sources import CBRSource, OnOffSource, PoissonSource
from repro.sim.tcp import TcpTransfer, TcpTransferResult

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "Simulator",
    "Timer",
    "SeededRNG",
    "CBRSource",
    "PoissonSource",
    "OnOffSource",
    "TcpTransfer",
    "TcpTransferResult",
]
