"""Flow-level TCP transfer model (the Netcat/Iperf stand-in for Fig. 8).

Sec. VIII-C/D of the paper transfer a 20 MB file over TCP while a failover
happens (or not) and show the CDF of transfer completion times.  What that
experiment actually measures is: does the data path go dark while a ClickOS
VM boots?  This module models TCP at per-RTT-round granularity — slow start,
congestion avoidance, fast recovery on loss, RTO on blackout — which is
enough to expose exactly that effect while staying cheap to simulate.

The model runs on the shared :class:`~repro.sim.kernel.Simulator` so outages
created by the cloud substrate (rule installs, VM boots) line up on the same
clock as the transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.sim.kernel import SimulationError, Simulator


@dataclass
class TcpTransferResult:
    """Outcome of a completed transfer."""

    bytes_total: int
    start_time: float
    finish_time: float
    rounds: int
    losses: int
    timeouts: int

    @property
    def duration(self) -> float:
        """Seconds from start to completion."""
        return self.finish_time - self.start_time

    @property
    def goodput_bps(self) -> float:
        """Application-level goodput in bits/second."""
        if self.duration <= 0:
            return float("inf")
        return self.bytes_total * 8.0 / self.duration


class TcpTransfer:
    """A single TCP file transfer over a (possibly failing) path.

    Args:
        sim: shared simulator.
        size_bytes: file size (the paper uses 20 MB).
        bottleneck_bps: path bottleneck in bits/second.
        rtt: base round-trip time in seconds.
        mss: maximum segment size in bytes.
        loss_prob: independent per-round random loss probability, giving the
            "statistical fluctuation" visible in the paper's CDFs.
        path_up: predicate ``() -> bool``; while it returns False the path is
            dark (all segments lost, sender backs off with RTO doubling).
        on_complete: callback invoked with the :class:`TcpTransferResult`.
    """

    INITIAL_CWND = 10  # segments, per RFC 6928
    INITIAL_SSTHRESH = 64  # segments
    MIN_RTO = 0.2
    MAX_RTO = 60.0

    def __init__(
        self,
        sim: Simulator,
        size_bytes: int,
        bottleneck_bps: float = 1e9,
        rtt: float = 0.01,
        mss: int = 1460,
        loss_prob: float = 0.0,
        path_up: Optional[Callable[[], bool]] = None,
        on_complete: Optional[Callable[["TcpTransferResult"], None]] = None,
        name: str = "tcp",
    ) -> None:
        if size_bytes <= 0:
            raise SimulationError("size_bytes must be positive")
        if bottleneck_bps <= 0 or rtt <= 0 or mss <= 0:
            raise SimulationError("bottleneck_bps, rtt, mss must be positive")
        if not 0.0 <= loss_prob < 1.0:
            raise SimulationError("loss_prob must be in [0, 1)")
        self.sim = sim
        self.size_bytes = int(size_bytes)
        self.bottleneck_bps = float(bottleneck_bps)
        self.rtt = float(rtt)
        self.mss = int(mss)
        self.loss_prob = float(loss_prob)
        self.path_up = path_up if path_up is not None else (lambda: True)
        self.on_complete = on_complete
        self.name = name
        self._rng = sim.rng.child(f"tcp:{name}")

        self.bytes_acked = 0
        self.result: Optional[TcpTransferResult] = None
        self._cwnd = float(self.INITIAL_CWND)
        self._ssthresh = float(self.INITIAL_SSTHRESH)
        self._rto = max(self.MIN_RTO, 2 * self.rtt)
        self._rounds = 0
        self._losses = 0
        self._timeouts = 0
        self._start: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the transfer at the current simulation time."""
        if self._start is not None:
            raise SimulationError(f"transfer {self.name!r} already started")
        self._start = self.sim.now
        self.sim.process(self._run())

    @property
    def done(self) -> bool:
        return self.result is not None

    # ------------------------------------------------------------------
    def _run(self):
        """Per-RTT-round congestion control loop."""
        max_cwnd_segments = self.bottleneck_bps * self.rtt / (8.0 * self.mss)
        while self.bytes_acked < self.size_bytes:
            self._rounds += 1
            if not self.path_up():
                # Blackout: the window is lost, sender waits an RTO and
                # retries from slow start (classic timeout behaviour).
                self._timeouts += 1
                self._ssthresh = max(2.0, self._cwnd / 2.0)
                self._cwnd = 1.0
                rto = self._rto
                self._rto = min(self.MAX_RTO, self._rto * 2.0)
                yield rto
                continue
            self._rto = max(self.MIN_RTO, 2 * self.rtt)

            effective = min(self._cwnd, max_cwnd_segments)
            sendable = min(
                int(effective) * self.mss, self.size_bytes - self.bytes_acked
            )
            round_time = max(self.rtt, sendable * 8.0 / self.bottleneck_bps)

            if self.loss_prob and self._rng.uniform() < self.loss_prob:
                # Fast retransmit/recovery: deliver half the round, halve cwnd.
                self._losses += 1
                self.bytes_acked += sendable // 2
                self._ssthresh = max(2.0, effective / 2.0)
                self._cwnd = self._ssthresh
                yield round_time + self.rtt
                continue

            self.bytes_acked += sendable
            if self._cwnd < self._ssthresh:
                self._cwnd = min(self._cwnd * 2.0, self._ssthresh)
            else:
                self._cwnd += 1.0
            yield round_time

        assert self._start is not None
        self.result = TcpTransferResult(
            bytes_total=self.size_bytes,
            start_time=self._start,
            finish_time=self.sim.now,
            rounds=self._rounds,
            losses=self._losses,
            timeouts=self._timeouts,
        )
        if self.on_complete is not None:
            self.on_complete(self.result)


@dataclass
class PathOutage:
    """A path blackout window, composable into a ``path_up`` predicate."""

    start: float
    duration: float

    def predicate(self, sim: Simulator) -> Callable[[], bool]:
        """Return a ``path_up`` callable bound to ``sim``'s clock."""

        def up() -> bool:
            return not (self.start <= sim.now < self.start + self.duration)

        return up


def run_transfer_batch(
    size_bytes: int,
    runs: int,
    outage: Optional[Tuple[float, float]] = None,
    bottleneck_bps: float = 1e9,
    rtt: float = 0.01,
    loss_prob: float = 0.002,
    seed: int = 0,
) -> List[float]:
    """Run ``runs`` independent transfers and return their durations.

    This is the Fig. 8 batch driver: each run is a fresh simulator (fresh
    TCP state) with an optional ``(start, duration)`` blackout — e.g.
    ``(1.0, 4.2)`` for a failover that flips rules before the ClickOS VM has
    booted, or ``(1.0, 0.0)`` for the wait-5-seconds / reconfigure variants
    where the data path never goes dark.
    """
    durations: List[float] = []
    for i in range(runs):
        sim = Simulator(seed=seed + i)
        if outage is not None and outage[1] > 0:
            path_up = PathOutage(outage[0], outage[1]).predicate(sim)
        else:
            path_up = None
        xfer = TcpTransfer(
            sim,
            size_bytes,
            bottleneck_bps=bottleneck_bps,
            rtt=rtt,
            loss_prob=loss_prob,
            path_up=path_up,
            name=f"batch{i}",
        )
        xfer.start()
        sim.run_all()
        assert xfer.result is not None
        durations.append(xfer.result.duration)
    return durations
