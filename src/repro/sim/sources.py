"""Packet sources standing in for pktgen / Iperf / namespace senders.

The paper's prototype experiments (Sec. VIII) drive the system with pktgen
(1500-byte UDP at configurable Kpps) and Iperf.  These sources reproduce that
role on the discrete-event kernel: each source emits packet events at a
configured rate into a ``consume(packet_size_bytes, now)`` callback —
typically a VNF instance, a data-plane port, or a plain recording sink.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import Process, SimulationError, Simulator

Consumer = Callable[[int, float], None]


class _BaseSource:
    """Shared machinery: start/stop, emitted-packet accounting, rate changes."""

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        packet_size: int = 1500,
        name: str = "source",
    ) -> None:
        if packet_size <= 0:
            raise SimulationError(f"packet_size must be positive, got {packet_size}")
        self.sim = sim
        self.consumer = consumer
        self.packet_size = packet_size
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._proc: Optional[Process] = None

    def start(self) -> None:
        """Begin emitting packets."""
        if self._proc is not None and self._proc.alive:
            return
        self._proc = self.sim.process(self._emit())

    def stop(self) -> None:
        """Stop emitting packets."""
        if self._proc is not None:
            self._proc.interrupt()
            self._proc = None

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.alive

    def _send_one(self) -> None:
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self.consumer(self.packet_size, self.sim.now)

    def _emit(self):  # pragma: no cover - overridden
        raise NotImplementedError


class CBRSource(_BaseSource):
    """Constant-bit-rate source (the pktgen stand-in).

    Args:
        rate_pps: packets per second.  May be changed while running via
            :meth:`set_rate`, which is how Fig. 9's 1 → 10 → 1 Kpps rate
            steps are produced.
    """

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        rate_pps: float,
        packet_size: int = 1500,
        name: str = "cbr",
    ) -> None:
        super().__init__(sim, consumer, packet_size, name)
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = float(rate_pps)

    def set_rate(self, rate_pps: float) -> None:
        """Change the emission rate; takes effect from the next packet."""
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = float(rate_pps)

    def _emit(self):
        while True:
            self._send_one()
            yield 1.0 / self.rate_pps


class PoissonSource(_BaseSource):
    """Poisson arrivals with a given mean rate (memoryless gaps)."""

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        rate_pps: float,
        packet_size: int = 1500,
        name: str = "poisson",
    ) -> None:
        super().__init__(sim, consumer, packet_size, name)
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = float(rate_pps)
        self._rng = sim.rng.child(f"poisson:{name}")

    def _emit(self):
        while True:
            yield self._rng.exponential(1.0 / self.rate_pps)
            self._send_one()


class OnOffSource(_BaseSource):
    """Bursty on/off source: CBR during ON, silent during OFF.

    ON/OFF durations are exponential.  Used to mimic the "fiercely changed
    traffic" the fast-failover evaluation (Fig. 12) stresses.
    """

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        rate_pps: float,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        packet_size: int = 1500,
        name: str = "onoff",
    ) -> None:
        super().__init__(sim, consumer, packet_size, name)
        if rate_pps <= 0 or mean_on <= 0 or mean_off <= 0:
            raise SimulationError("rate_pps, mean_on, mean_off must be positive")
        self.rate_pps = float(rate_pps)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self._rng = sim.rng.child(f"onoff:{name}")

    def _emit(self):
        gap = 1.0 / self.rate_pps
        while True:
            on_end = self.sim.now + self._rng.exponential(self.mean_on)
            while self.sim.now < on_end:
                self._send_one()
                yield gap
            yield self._rng.exponential(self.mean_off)


class RateMeter:
    """Sliding-window packet-rate estimator.

    Counts packets via :meth:`consume` (so it can sit between a source and a
    downstream consumer) and reports the rate over the last ``window``
    seconds — the same quantity the Dynamic Handler derives from Open
    vSwitch per-port counters.
    """

    def __init__(self, sim: Simulator, window: float = 0.5, downstream: Optional[Consumer] = None) -> None:
        if window <= 0:
            raise SimulationError(f"window must be positive, got {window}")
        self.sim = sim
        self.window = window
        self.downstream = downstream
        self._stamps: list = []
        self.total_packets = 0

    def consume(self, packet_size: int, now: float) -> None:
        """Record a packet and forward it downstream if configured."""
        self.total_packets += 1
        self._stamps.append(now)
        self._trim(now)
        if self.downstream is not None:
            self.downstream(packet_size, now)

    def rate_pps(self) -> float:
        """Packet rate over the last window, in packets/second."""
        self._trim(self.sim.now)
        return len(self._stamps) / self.window

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        stamps = self._stamps
        i = 0
        while i < len(stamps) and stamps[i] < cutoff:
            i += 1
        if i:
            del stamps[:i]
