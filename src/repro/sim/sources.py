"""Packet sources standing in for pktgen / Iperf / namespace senders.

The paper's prototype experiments (Sec. VIII) drive the system with pktgen
(1500-byte UDP at configurable Kpps) and Iperf.  These sources reproduce that
role on the discrete-event kernel: each source emits packet events at a
configured rate into a ``consume(packet_size_bytes, now)`` callback —
typically a VNF instance, a data-plane port, or a plain recording sink.
"""

from __future__ import annotations

from heapq import heapify, heapreplace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.kernel import Process, SimulationError, Simulator

Consumer = Callable[[int, float], None]
#: Batched consumers receive the per-packet timestamps of one chunk.
BatchConsumer = Callable[[List[float]], None]
#: Mux consumers receive one chunk of (stream_key, timestamp) pairs.
MuxConsumer = Callable[[List[Tuple[str, float]]], None]


def merge_cbr_timeline(
    streams: Sequence[Tuple[str, float, float]], horizon: float
):
    """Merge finite CBR streams into one globally time-ordered timeline.

    ``streams`` is a sequence of ``(key, start, gap)`` triples in
    registration order.  Per stream, ``numpy.cumsum`` over
    ``[start, gap, gap, ...]`` accumulates strictly sequentially in
    float64 — the same left fold the event-per-packet :class:`CBRSource`
    performs through the simulator clock — so every timestamp is
    bit-identical to the incremental version.  Cross-stream order comes
    from a stable sort on the timestamps; exact float ties keep stream
    registration order.

    Returns ``(keys, key_idx, ts)``: the stream keys in registration
    order, an int64 array indexing into ``keys`` per packet, and the
    float64 timestamp array, both sorted in global arrival order.  Both
    the :class:`BatchedCBRMux` (which re-zips them into event batches)
    and the sharded replay path (which keeps the columns as-is for the
    columnar walker) build their timelines here, which is what makes
    their packet sequences bit-identical.
    """
    import numpy as np

    keys: List[str] = []
    ts_parts: List = []
    idx_parts: List = []
    for key, start, gap in streams:
        ki = len(keys)
        keys.append(key)
        if start > horizon:
            continue
        count = int((horizon - start) / gap) + 2  # margin; trimmed below
        arr = np.empty(count)
        arr[0] = start
        arr[1:] = gap
        np.cumsum(arr, out=arr)
        arr = arr[arr <= horizon]
        ts_parts.append(arr)
        idx_parts.append(np.full(len(arr), ki, dtype=np.int64))
    if not ts_parts:
        return keys, np.empty(0, dtype=np.int64), np.empty(0)
    ts = np.concatenate(ts_parts)
    kidx = np.concatenate(idx_parts)
    order = np.argsort(ts, kind="stable")
    return keys, kidx[order], ts[order]


class _BaseSource:
    """Shared machinery: start/stop, emitted-packet accounting, rate changes."""

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        packet_size: int = 1500,
        name: str = "source",
    ) -> None:
        if packet_size <= 0:
            raise SimulationError(f"packet_size must be positive, got {packet_size}")
        self.sim = sim
        self.consumer = consumer
        self.packet_size = packet_size
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._proc: Optional[Process] = None

    def start(self) -> None:
        """Begin emitting packets."""
        if self._proc is not None and self._proc.alive:
            return
        self._proc = self.sim.process(self._emit())

    def stop(self) -> None:
        """Stop emitting packets."""
        if self._proc is not None:
            self._proc.interrupt()
            self._proc = None

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.alive

    def _send_one(self) -> None:
        self.packets_sent += 1
        self.bytes_sent += self.packet_size
        self.consumer(self.packet_size, self.sim.now)

    def _emit(self):  # pragma: no cover - overridden
        raise NotImplementedError


class CBRSource(_BaseSource):
    """Constant-bit-rate source (the pktgen stand-in).

    Args:
        rate_pps: packets per second.  May be changed while running via
            :meth:`set_rate`, which is how Fig. 9's 1 → 10 → 1 Kpps rate
            steps are produced.
        chunk: packets per simulator event.  The default of 1 emits one
            event per packet (the original behaviour, byte for byte).
            With ``chunk=K`` the source fires one event per K packets and
            hands each packet its exact nominal timestamp, so the packets
            a consumer sees — count, order, and every timestamp float —
            are identical to the K=1 stream; only the number of simulator
            events changes.  Rate changes then take effect from the next
            *chunk* rather than the next packet.
        batch_consumer: with chunking, receive each chunk's timestamp list
            in one call instead of per-packet ``consumer`` calls.
        horizon: stop emitting after this absolute time.  Chunked streams
            need the cutoff up front: a chunk is scheduled at its *last*
            packet's time, so without a horizon a chunk straddling the
            ``sim.run(until=...)`` boundary would either fire late or not
            at all, while the scalar stream delivers its pre-boundary part.
    """

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        rate_pps: float,
        packet_size: int = 1500,
        name: str = "cbr",
        chunk: int = 1,
        batch_consumer: Optional[BatchConsumer] = None,
        horizon: Optional[float] = None,
    ) -> None:
        super().__init__(sim, consumer, packet_size, name)
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        self.rate_pps = float(rate_pps)
        self.chunk = int(chunk)
        self.batch_consumer = batch_consumer
        self.horizon = horizon
        self._chunk_active = False
        self._next_t: Optional[float] = None
        self._pending = None  # the armed chunk event, cancellable by stop()

    def set_rate(self, rate_pps: float) -> None:
        """Change the emission rate; takes effect from the next packet."""
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = float(rate_pps)

    def _emit(self):
        while True:
            self._send_one()
            yield 1.0 / self.rate_pps

    # -- chunked mode --------------------------------------------------
    def start(self) -> None:
        if self.chunk == 1 and self.batch_consumer is None and self.horizon is None:
            super().start()
            return
        if self._chunk_active:
            return
        self._chunk_active = True
        self._next_t = self.sim.now  # first packet fires at start time
        self._schedule_chunk()

    def stop(self) -> None:
        self._chunk_active = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        super().stop()

    @property
    def running(self) -> bool:
        return self._chunk_active or super().running

    def _schedule_chunk(self) -> None:
        """Compute the next chunk's timestamps and arm one event for it.

        Timestamps accumulate by repeated addition (``t += gap``), the
        same left-fold the event-per-packet stream performs via the
        simulator clock, so the floats agree bit for bit.
        """
        if not self._chunk_active:
            return
        gap = 1.0 / self.rate_pps
        t = self._next_t
        horizon = self.horizon
        ts: List[float] = []
        while len(ts) < self.chunk:
            if horizon is not None and t > horizon:
                break
            ts.append(t)
            t = t + gap
        self._next_t = t
        if not ts:
            self._chunk_active = False  # horizon exhausted
            return
        self._pending = self.sim.schedule_at(ts[-1], self._fire_chunk, (ts,))

    def _fire_chunk(self, ts: List[float]) -> None:
        self._pending = None
        self.packets_sent += len(ts)
        self.bytes_sent += len(ts) * self.packet_size
        if self.batch_consumer is not None:
            self.batch_consumer(ts)
        else:
            consumer = self.consumer
            size = self.packet_size
            for t in ts:
                consumer(size, t)
        self._schedule_chunk()


class BatchedCBRMux:
    """Many CBR streams merged into one batched, globally time-ordered feed.

    Chunking each stream separately preserves per-stream timestamps but not
    the *interleaving* across streams — and when streams share stateful
    consumers (VNF instances with sliding admission windows), processing
    order is observable.  The mux instead merges all streams by timestamp
    and emits one simulator event per ``chunk`` packets of the *global*
    arrival sequence, so a shared consumer sees exactly the packets, order
    and timestamps of one event-per-packet ``CBRSource`` per stream.

    Per-stream timestamps accumulate by repeated addition from the start
    phase, the same float left-fold ``CBRSource`` performs through the
    simulator clock.  Events are scheduled with ``schedule_at`` at each
    batch's last timestamp, so no drift accumulates.  Streams whose next
    packet would land past ``horizon`` are retired; the final partial
    batch still fires.

    Args:
        batch_consumer: called with each batch, a list of
            ``(stream_key, timestamp)`` pairs in global time order.
        chunk: packets per simulator event.
        horizon: absolute emission cutoff (inclusive), normally the
            ``sim.run(until=...)`` bound.
    """

    def __init__(
        self,
        sim: Simulator,
        batch_consumer: MuxConsumer,
        chunk: int = 256,
        horizon: Optional[float] = None,
        name: str = "cbr-mux",
    ) -> None:
        if chunk < 1:
            raise SimulationError(f"chunk must be >= 1, got {chunk}")
        self.sim = sim
        self.batch_consumer = batch_consumer
        self.chunk = int(chunk)
        self.horizon = horizon
        self.name = name
        self.packets_sent = 0
        self._heap: List[list] = []  # [next_t, order, key, gap]
        self._started = False
        self._active = False
        self._pending = None
        # With a horizon the whole merged timeline is finite: it is
        # precomputed at start() and served by slicing.
        self._timeline: Optional[List[Tuple[str, float]]] = None
        self._cursor = 0

    def add_stream(self, key: str, rate_pps: float, start: float) -> None:
        """Register one CBR stream (first packet exactly at ``start``)."""
        if self._started:
            raise SimulationError("add_stream after start()")
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        self._heap.append([start, len(self._heap), key, 1.0 / rate_pps])

    def start(self) -> None:
        """Arm the first batch event."""
        if self._started:
            return
        self._started = True
        self._active = True
        if self.horizon is not None:
            self._timeline = self._build_timeline()
        else:
            heapify(self._heap)
        self._schedule_batch()

    def _build_timeline(self) -> List[Tuple[str, float]]:
        """Merge every stream's finite timestamp sequence up front.

        Delegates to :func:`merge_cbr_timeline` (shared with the sharded
        replay path, keeping the two bit-identical) and re-zips the
        columns into the ``(key, timestamp)`` batches the event loop
        serves.
        """
        keys, kidx, ts = merge_cbr_timeline(
            [(key, start, gap) for start, _order, key, gap in self._heap],
            self.horizon,
        )
        return [(keys[i], t) for i, t in zip(kidx.tolist(), ts.tolist())]

    def stop(self) -> None:
        self._active = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_batch(self) -> None:
        if not self._active:
            return
        if self._timeline is not None:
            batch = self._timeline[self._cursor : self._cursor + self.chunk]
            self._cursor += len(batch)
        else:
            heap = self._heap
            batch = []
            while heap and len(batch) < self.chunk:
                head = heap[0]
                t = head[0]
                batch.append((head[2], t))
                head[0] = t + head[3]
                heapreplace(heap, head)
        if not batch:
            self._active = False
            return
        self._pending = self.sim.schedule_at(batch[-1][1], self._fire, (batch,))

    def _fire(self, batch: List[Tuple[str, float]]) -> None:
        self._pending = None
        self.packets_sent += len(batch)
        self.batch_consumer(batch)
        self._schedule_batch()


class PoissonSource(_BaseSource):
    """Poisson arrivals with a given mean rate (memoryless gaps)."""

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        rate_pps: float,
        packet_size: int = 1500,
        name: str = "poisson",
    ) -> None:
        super().__init__(sim, consumer, packet_size, name)
        if rate_pps <= 0:
            raise SimulationError(f"rate_pps must be positive, got {rate_pps}")
        self.rate_pps = float(rate_pps)
        self._rng = sim.rng.child(f"poisson:{name}")

    def _emit(self):
        while True:
            yield self._rng.exponential(1.0 / self.rate_pps)
            self._send_one()


class OnOffSource(_BaseSource):
    """Bursty on/off source: CBR during ON, silent during OFF.

    ON/OFF durations are exponential.  Used to mimic the "fiercely changed
    traffic" the fast-failover evaluation (Fig. 12) stresses.
    """

    def __init__(
        self,
        sim: Simulator,
        consumer: Consumer,
        rate_pps: float,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        packet_size: int = 1500,
        name: str = "onoff",
    ) -> None:
        super().__init__(sim, consumer, packet_size, name)
        if rate_pps <= 0 or mean_on <= 0 or mean_off <= 0:
            raise SimulationError("rate_pps, mean_on, mean_off must be positive")
        self.rate_pps = float(rate_pps)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self._rng = sim.rng.child(f"onoff:{name}")

    def _emit(self):
        gap = 1.0 / self.rate_pps
        while True:
            on_end = self.sim.now + self._rng.exponential(self.mean_on)
            while self.sim.now < on_end:
                self._send_one()
                yield gap
            yield self._rng.exponential(self.mean_off)


class RateMeter:
    """Sliding-window packet-rate estimator.

    Counts packets via :meth:`consume` (so it can sit between a source and a
    downstream consumer) and reports the rate over the last ``window``
    seconds — the same quantity the Dynamic Handler derives from Open
    vSwitch per-port counters.
    """

    def __init__(self, sim: Simulator, window: float = 0.5, downstream: Optional[Consumer] = None) -> None:
        if window <= 0:
            raise SimulationError(f"window must be positive, got {window}")
        self.sim = sim
        self.window = window
        self.downstream = downstream
        self._stamps: list = []
        self.total_packets = 0

    def consume(self, packet_size: int, now: float) -> None:
        """Record a packet and forward it downstream if configured."""
        self.total_packets += 1
        self._stamps.append(now)
        self._trim(now)
        if self.downstream is not None:
            self.downstream(packet_size, now)

    def rate_pps(self) -> float:
        """Packet rate over the last window, in packets/second."""
        self._trim(self.sim.now)
        return len(self._stamps) / self.window

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        stamps = self._stamps
        i = 0
        while i < len(stamps) and stamps[i] < cutoff:
            i += 1
        if i:
            del stamps[:i]
