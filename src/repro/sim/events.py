"""Event primitives for the discrete-event kernel.

Events are ordered by ``(time, priority, seq)``.  The sequence number makes
ordering total and deterministic: two events scheduled for the same instant
fire in scheduling order, which keeps every experiment reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time at which the event fires.
        priority: tie-breaker; lower fires first at equal time.
        seq: global scheduling sequence number (total order).
        callback: callable invoked when the event fires.  ``None`` after
            cancellation.
        args: positional arguments passed to the callback.
    """

    time: float
    priority: int
    seq: int
    callback: Optional[Callable[..., Any]] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the event fired."""
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event; the kernel skips cancelled events cheaply."""
        self.callback = None
        self.args = ()

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if self.callback is not None:
            self.callback(*self.args)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``; returns the event."""
        event = Event(time, priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (cancelled ones included)."""
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Return the firing time of the earliest non-cancelled event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            raise IndexError("peek_time on empty EventQueue")
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
