"""Seeded randomness for reproducible experiments.

Every stochastic component takes a :class:`SeededRNG` (or derives a child
stream from one) so each experiment is exactly reproducible given a seed.
Child streams are derived by hashing the parent seed with a label, which
decouples component randomness from the order components are created in.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence

import numpy as np


def derive(seed: int, label: str) -> int:
    """Derive the seed of an independent named substream.

    Every stochastic component of a run (traffic synthesis, chaos fault
    schedules, ...) seeds its generator with ``derive(run_seed, label)``
    instead of sharing (or offsetting) the run seed directly.  Streams are
    decoupled by construction: enabling one component never perturbs the
    draws of another, and the same ``(seed, label)`` pair always yields the
    same stream regardless of creation order.
    """
    mix = zlib.crc32(label.encode("utf-8"))
    return (int(seed) * 1_000_003 + mix) & 0x7FFFFFFF


class SeededRNG:
    """Thin wrapper around :class:`numpy.random.Generator` with child streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    def child(self, label: str) -> "SeededRNG":
        """Derive an independent stream keyed by ``label``.

        Seed derivation is :func:`derive`; see there for the guarantees.
        """
        return SeededRNG(derive(self.seed, label))

    # ------------------------------------------------------------------
    # Distribution helpers (delegate to numpy)
    # ------------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return float(self._gen.lognormal(mean, sigma))

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, items: Sequence, size: Optional[int] = None, replace: bool = True):
        """Uniform choice from a sequence (scalar when ``size`` is None)."""
        idx = self._gen.choice(len(items), size=size, replace=replace)
        if size is None:
            return items[int(idx)]
        return [items[int(i)] for i in idx]

    def shuffle(self, items: list) -> None:
        self._gen.shuffle(items)

    def array(self, shape, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """Uniform array — used by traffic-matrix synthesis."""
        return self._gen.uniform(low, high, size=shape)

    @property
    def numpy(self) -> np.random.Generator:
        """The underlying numpy generator for vectorised sampling."""
        return self._gen
