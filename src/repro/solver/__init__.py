"""ILP/LP layer: the CPLEX stand-in used by the Optimization Engine.

Sec. IV-D formulates VNF placement as an ILP (NP-hard via Set Cover) and
solves it with "LP relaxation, an approximation technique ... by CPLEX".
This package provides:

* :mod:`repro.solver.model` — a declarative, sparse LP/ILP model builder;
* :mod:`repro.solver.lp` — LP solving via ``scipy.optimize.linprog`` (HiGHS);
* :mod:`repro.solver.rounding` — LP relaxation + deterministic rounding and
  repair (the production path, mirroring the paper);
* :mod:`repro.solver.branch_bound` — exact branch-and-bound for small
  instances (used to validate rounding quality in the ablation bench).
"""

from repro.solver.branch_bound import BranchBoundResult, solve_branch_bound
from repro.solver.lp import LPResult, solve_lp
from repro.solver.model import Constraint, LinExpr, Model, Sense, Variable
from repro.solver.rounding import RoundingResult, solve_with_rounding

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "Sense",
    "solve_lp",
    "LPResult",
    "solve_with_rounding",
    "RoundingResult",
    "solve_branch_bound",
    "BranchBoundResult",
]
