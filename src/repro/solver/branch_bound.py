"""Exact branch-and-bound over the LP relaxation.

Practical only for small models (Internet2-scale); the evaluation uses it
to quantify the optimality gap of the production rounding path (the
``bench_ablation_solver`` benchmark).  Best-bound node selection, branching
on the most fractional integer variable.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.solver.lp import LPResult, SolverError, solve_lp
from repro.solver.model import Model


@dataclass
class BranchBoundResult:
    """Outcome of a branch-and-bound search."""

    status: str  # "optimal", "feasible" (node limit hit), "infeasible"
    objective: float
    solution: Optional[np.ndarray]
    nodes_explored: int
    gap: float  # relative gap between incumbent and best bound

    def value_of(self, var) -> float:
        if self.solution is None:
            raise ValueError("no incumbent solution")
        return float(self.solution[var.index])


def _most_fractional(solution: np.ndarray, integer_indices, tol: float) -> Optional[int]:
    best_idx, best_frac = None, tol
    for i in integer_indices:
        frac = abs(solution[i] - round(solution[i]))
        if frac > best_frac:
            best_idx, best_frac = i, frac
    return best_idx


def solve_branch_bound(
    model: Model,
    max_nodes: int = 2000,
    int_tol: float = 1e-6,
    gap_tol: float = 1e-6,
    compiled=None,
) -> BranchBoundResult:
    """Minimise ``model`` respecting integrality of its integer variables.

    Args:
        compiled: reuse a pre-compiled model (warm-start callers pass the
            template's cached matrices; per-node solves then share one set
            of clamped bounds via ``CompiledModel.clamped_bounds``).
    """
    if compiled is None:
        compiled = model.compile()
    integer_indices = model.integer_indices
    n = model.num_variables
    counter = itertools.count()

    try:
        root = solve_lp(model, compiled)
    except SolverError:
        return BranchBoundResult("infeasible", math.inf, None, 0, math.inf)

    # Heap of (lp_bound, tiebreak, lower_overrides, upper_overrides)
    nan = np.full(n, np.nan)
    heap = [(root.objective, next(counter), nan.copy(), nan.copy(), root)]
    incumbent_obj = math.inf
    incumbent: Optional[np.ndarray] = None
    nodes = 0

    def try_round_up(lp_result) -> None:
        """Primal heuristic: ceil the integer variables, keep if feasible."""
        nonlocal incumbent_obj, incumbent
        snapped = lp_result.solution.copy()
        for i in integer_indices:
            snapped[i] = math.ceil(snapped[i] - int_tol)
        if model.check_feasible(snapped, tol=1e-6):
            return
        objective = model.objective.value(snapped)
        if objective < incumbent_obj:
            incumbent_obj = objective
            incumbent = snapped

    try_round_up(root)

    while heap and nodes < max_nodes:
        bound, _, lbs, ubs, lp = heapq.heappop(heap)
        if bound >= incumbent_obj - gap_tol:
            continue
        nodes += 1
        try_round_up(lp)
        branch_var = _most_fractional(lp.solution, integer_indices, int_tol)
        if branch_var is None:
            # Integral solution: candidate incumbent.
            if lp.objective < incumbent_obj:
                incumbent_obj = lp.objective
                incumbent = lp.solution.copy()
            continue
        pivot = lp.solution[branch_var]
        for is_down in (True, False):
            new_lbs, new_ubs = lbs.copy(), ubs.copy()
            if is_down:
                new_ubs[branch_var] = math.floor(pivot)
            else:
                new_lbs[branch_var] = math.ceil(pivot)
            try:
                child = solve_lp(
                    model,
                    compiled,
                    extra_lower_bounds=new_lbs,
                    extra_upper_bounds=new_ubs,
                )
            except SolverError:
                continue
            if child.objective < incumbent_obj - gap_tol:
                heapq.heappush(
                    heap, (child.objective, next(counter), new_lbs, new_ubs, child)
                )

    if incumbent is None:
        return BranchBoundResult("infeasible", math.inf, None, nodes, math.inf)
    best_bound = min((item[0] for item in heap), default=incumbent_obj)
    gap = abs(incumbent_obj - best_bound) / max(1.0, abs(incumbent_obj))
    status = "optimal" if not heap or gap <= gap_tol else "feasible"
    return BranchBoundResult(status, incumbent_obj, incumbent, nodes, gap)
