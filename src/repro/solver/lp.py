"""LP solving via scipy's HiGHS backend.

Solves the continuous relaxation of a :class:`~repro.solver.model.Model`
(integrality is ignored here; see :mod:`repro.solver.rounding` and
:mod:`repro.solver.branch_bound` for integer handling).

Two call paths share one semantic contract:

* The *direct* path hands :meth:`CompiledModel.highs_arrays`'s cached CSC
  matrix straight to scipy's bundled HiGHS wrapper, skipping
  ``linprog``'s per-call input validation and matrix stacking (which cost
  more than the dual simplex itself on warm re-solves).  Presolve is off:
  these models re-solve hundreds of times against one compiled structure,
  and HiGHS presolve costs more per call than it saves here.
* The *portable* fallback uses public ``linprog`` with the same options
  when the private wrapper modules are unavailable (scipy layout drift).

Both paths run the same HiGHS dual simplex on the same matrices, so a
process gets identical solutions whichever path it resolves to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.solver.model import CompiledModel, Model

try:  # pragma: no cover - exercised implicitly by every solve
    from scipy.optimize._highspy import _core as _highs_core
    from scipy.optimize._highspy._core import HighsModelStatus

    def _build_highs_options():
        """The options ``linprog(method="highs", presolve=False)`` would set."""
        opts = _highs_core.HighsOptions()
        opts.presolve = "off"
        opts.solver = "simplex"
        opts.highs_debug_level = int(
            _highs_core.HighsDebugLevel.kHighsDebugLevelNone
        )
        opts.log_to_console = False
        opts.output_flag = False
        opts.simplex_strategy = int(
            _highs_core.simplex_constants.SimplexStrategy.kSimplexStrategyDual
        )
        # Dantzig pricing: on these small, dense-column placement LPs it is
        # as fast as the default (devex/steepest) and, without presolve,
        # lands on markedly less degenerate optimal vertices — the rounding
        # pass turns vertex spread directly into extra instances.
        opts.simplex_dual_edge_weight_strategy = int(
            _highs_core.simplex_constants.kSimplexEdgeWeightStrategyDantzig
        )
        return opts

    _HIGHS_OPTIONS = _build_highs_options()
    HAVE_DIRECT_HIGHS = True
except Exception:  # ImportError, AttributeError on layout drift
    HAVE_DIRECT_HIGHS = False


class SolverError(RuntimeError):
    """Raised when the LP backend fails or the model is infeasible."""


@dataclass
class LPResult:
    """Solution of a continuous LP."""

    status: str
    objective: float
    solution: np.ndarray

    def value_of(self, var) -> float:
        """Value of a model variable in this solution."""
        return float(self.solution[var.index])


def solve_lp(
    model: Model,
    compiled: Optional[CompiledModel] = None,
    extra_upper_bounds: Optional[np.ndarray] = None,
    extra_lower_bounds: Optional[np.ndarray] = None,
    b_ub_override: Optional[np.ndarray] = None,
) -> LPResult:
    """Solve the LP relaxation of ``model``.

    Args:
        compiled: reuse a pre-compiled model (branch-and-bound recompiles
            bounds only, not the matrices).
        extra_upper_bounds / extra_lower_bounds: per-variable bound
            overrides (NaN = keep model bound), used for branching.
        b_ub_override: replacement right-hand-side vector for the ≤ rows
            (e.g. tightened resource budgets); matrices are reused.

    Raises:
        SolverError: if the problem is infeasible or unbounded.
    """
    cm = compiled if compiled is not None else model.compile()
    if HAVE_DIRECT_HIGHS:
        return _solve_direct(
            model, cm, extra_lower_bounds, extra_upper_bounds, b_ub_override
        )
    return _solve_linprog(
        model, cm, extra_lower_bounds, extra_upper_bounds, b_ub_override
    )


def _solve_direct(
    model: Model,
    cm: CompiledModel,
    extra_lower_bounds: Optional[np.ndarray],
    extra_upper_bounds: Optional[np.ndarray],
    b_ub_override: Optional[np.ndarray],
) -> LPResult:
    """Hand the cached CSC arrays straight to the bundled HiGHS solver.

    A ``HighsLp`` is built once per compiled model and cached alongside
    the arrays; each solve refreshes only the vectors that may have moved
    (matrix values after a rate rewrite, bounds under branching overrides)
    — tens of microseconds against the several milliseconds scipy's
    wrapper spends rebuilding the whole object.  A fresh ``Highs`` engine
    is created per solve, so every solve is a cold dual simplex run:
    identical inputs give identical (bit-for-bit) solutions regardless of
    solve history, which the warm-start plan-identity guarantee relies on.
    """
    h = cm.highs_arrays()
    lb, ub = h["lb"], h["ub"]
    if extra_lower_bounds is not None or extra_upper_bounds is not None:
        lb, ub = lb.copy(), ub.copy()
        if extra_lower_bounds is not None:
            m = ~np.isnan(extra_lower_bounds)
            lb[m] = np.maximum(lb[m], extra_lower_bounds[m])
        if extra_upper_bounds is not None:
            m = ~np.isnan(extra_upper_bounds)
            ub[m] = np.minimum(ub[m], extra_upper_bounds[m])
    rhs = h["rhs"]
    if b_ub_override is not None:
        rhs = rhs.copy()
        rhs[: h["n_ub"]] = b_ub_override

    lp = h.get("highs_lp")
    if lp is None:
        lp = _highs_core.HighsLp()
        lp.num_col_ = h["c"].size
        lp.num_row_ = h["rhs"].size
        lp.a_matrix_.num_col_ = h["c"].size
        lp.a_matrix_.num_row_ = h["rhs"].size
        lp.a_matrix_.format_ = _highs_core.MatrixFormat.kColwise
        lp.col_cost_ = h["c"]
        lp.a_matrix_.start_ = h["indptr"]
        lp.a_matrix_.index_ = h["indices"]
        h["highs_lp"] = lp
    # HighsLp fields hold copies, so the mutable vectors are refreshed on
    # every solve; the structural fields above never change.
    lp.a_matrix_.value_ = h["data"]
    lp.col_lower_ = lb
    lp.col_upper_ = ub
    lp.row_lower_ = h["lhs"]
    lp.row_upper_ = rhs

    highs = _highs_core._Highs()
    highs.passOptions(_HIGHS_OPTIONS)
    highs.passModel(lp)
    highs.run()
    status = highs.getModelStatus()
    if status == HighsModelStatus.kInfeasible:
        raise SolverError(f"model {model.name!r}: infeasible")
    if status in (
        HighsModelStatus.kUnbounded,
        HighsModelStatus.kUnboundedOrInfeasible,
    ):
        raise SolverError(f"model {model.name!r}: unbounded")
    if status != HighsModelStatus.kOptimal:
        raise SolverError(
            f"model {model.name!r}: solver failed "
            f"({highs.modelStatusToString(status)})"
        )
    return LPResult(
        status="optimal",
        objective=float(highs.getInfo().objective_function_value),
        solution=np.asarray(highs.getSolution().col_value, dtype=float),
    )


def _solve_linprog(
    model: Model,
    cm: CompiledModel,
    extra_lower_bounds: Optional[np.ndarray],
    extra_upper_bounds: Optional[np.ndarray],
    b_ub_override: Optional[np.ndarray],
) -> LPResult:
    """Portable fallback through public ``scipy.optimize.linprog``."""
    # The clamped (linprog-form) bounds are cached on the compiled model;
    # without overrides they are handed to linprog as-is, and with overrides
    # only the touched indices are rebuilt (branch-and-bound overrides a
    # handful of variables per node, not the whole vector).
    bounds = cm.clamped_bounds()
    if extra_lower_bounds is not None or extra_upper_bounds is not None:
        touched = np.zeros(len(bounds), dtype=bool)
        if extra_lower_bounds is not None:
            touched |= ~np.isnan(extra_lower_bounds)
        if extra_upper_bounds is not None:
            touched |= ~np.isnan(extra_upper_bounds)
        if touched.any():
            bounds = list(bounds)
            for i in np.flatnonzero(touched):
                lb, ub = bounds[i]
                if extra_lower_bounds is not None and not np.isnan(extra_lower_bounds[i]):
                    lb = max(lb, float(extra_lower_bounds[i]))
                if extra_upper_bounds is not None and not np.isnan(extra_upper_bounds[i]):
                    new_ub = float(extra_upper_bounds[i])
                    ub = new_ub if ub is None else min(ub, new_ub)
                bounds[i] = (lb, ub)

    res = linprog(
        cm.c,
        A_ub=cm.a_ub,
        b_ub=cm.b_ub if b_ub_override is None else b_ub_override,
        A_eq=cm.a_eq,
        b_eq=cm.b_eq,
        bounds=bounds,
        method="highs",
        options={
            "presolve": False,
            "simplex_dual_edge_weight_strategy": "dantzig",
        },
    )
    if res.status == 2:
        raise SolverError(f"model {model.name!r}: infeasible")
    if res.status == 3:
        raise SolverError(f"model {model.name!r}: unbounded")
    if not res.success:
        raise SolverError(f"model {model.name!r}: solver failed ({res.message})")
    return LPResult(status="optimal", objective=float(res.fun), solution=res.x)
