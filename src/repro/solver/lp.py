"""LP solving via scipy's HiGHS backend.

Solves the continuous relaxation of a :class:`~repro.solver.model.Model`
(integrality is ignored here; see :mod:`repro.solver.rounding` and
:mod:`repro.solver.branch_bound` for integer handling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.solver.model import CompiledModel, Model


class SolverError(RuntimeError):
    """Raised when the LP backend fails or the model is infeasible."""


@dataclass
class LPResult:
    """Solution of a continuous LP."""

    status: str
    objective: float
    solution: np.ndarray

    def value_of(self, var) -> float:
        """Value of a model variable in this solution."""
        return float(self.solution[var.index])


def _clamp_bounds(bounds: List[Tuple[float, float]]) -> List[Tuple[float, Optional[float]]]:
    return [(lb, None if ub == float("inf") else ub) for lb, ub in bounds]


def solve_lp(
    model: Model,
    compiled: Optional[CompiledModel] = None,
    extra_upper_bounds: Optional[np.ndarray] = None,
    extra_lower_bounds: Optional[np.ndarray] = None,
    b_ub_override: Optional[np.ndarray] = None,
) -> LPResult:
    """Solve the LP relaxation of ``model``.

    Args:
        compiled: reuse a pre-compiled model (branch-and-bound recompiles
            bounds only, not the matrices).
        extra_upper_bounds / extra_lower_bounds: per-variable bound
            overrides (NaN = keep model bound), used for branching.
        b_ub_override: replacement right-hand-side vector for the ≤ rows
            (e.g. tightened resource budgets); matrices are reused.

    Raises:
        SolverError: if the problem is infeasible or unbounded.
    """
    cm = compiled if compiled is not None else model.compile()
    bounds = list(cm.bounds)
    if extra_lower_bounds is not None or extra_upper_bounds is not None:
        new_bounds = []
        for i, (lb, ub) in enumerate(bounds):
            if extra_lower_bounds is not None and not np.isnan(extra_lower_bounds[i]):
                lb = max(lb, float(extra_lower_bounds[i]))
            if extra_upper_bounds is not None and not np.isnan(extra_upper_bounds[i]):
                ub = min(ub, float(extra_upper_bounds[i]))
            new_bounds.append((lb, ub))
        bounds = new_bounds

    res = linprog(
        cm.c,
        A_ub=cm.a_ub,
        b_ub=cm.b_ub if b_ub_override is None else b_ub_override,
        A_eq=cm.a_eq,
        b_eq=cm.b_eq,
        bounds=_clamp_bounds(bounds),
        method="highs",
    )
    if res.status == 2:
        raise SolverError(f"model {model.name!r}: infeasible")
    if res.status == 3:
        raise SolverError(f"model {model.name!r}: unbounded")
    if not res.success:
        raise SolverError(f"model {model.name!r}: solver failed ({res.message})")
    return LPResult(status="optimal", objective=float(res.fun), solution=res.x)
