"""LP relaxation with iterative rounding — the paper's production path.

Sec. IV-D: "We apply LP relaxation, an approximation technique, to reduce
the complexity."  The scheme here is iterative *round-up-and-resolve*:

1. solve the LP relaxation;
2. if every integer variable is integral, done;
3. otherwise fix the most fractional integer variable to the ceiling of its
   LP value (falling back to the floor if ceiling is infeasible, e.g. when
   a host's resource constraint Eq. 6 would be violated) and re-solve.

For covering-style problems like VNF placement, rounding up preserves
feasibility, so the loop terminates with a feasible integral placement in
at most (#integer variables) LP solves; in practice most variables come out
integral directly and only a handful of iterations run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.solver.lp import LPResult, SolverError, solve_lp
from repro.solver.model import Model


@dataclass
class RoundingResult:
    """Outcome of LP relaxation + iterative rounding."""

    status: str  # "integral"
    objective: float
    solution: np.ndarray
    lp_objective: float  # relaxation bound, for gap reporting
    lp_solves: int

    def value_of(self, var) -> float:
        return float(self.solution[var.index])

    @property
    def integrality_gap(self) -> float:
        """Relative gap between rounded objective and the LP bound."""
        if self.lp_objective == 0:
            return 0.0
        return (self.objective - self.lp_objective) / abs(self.lp_objective)


def solve_with_rounding(
    model: Model,
    int_tol: float = 1e-6,
    max_iterations: Optional[int] = None,
    compiled=None,
) -> RoundingResult:
    """Solve ``model`` by LP relaxation + iterative round-up.

    Args:
        compiled: reuse a pre-compiled model (warm-start callers pass the
            template's cached matrices instead of recompiling).

    Raises:
        SolverError: when even the relaxation is infeasible, or when neither
            rounding direction of some variable admits a feasible completion.
    """
    if compiled is None:
        compiled = model.compile()
    n = model.num_variables
    integer_indices = model.integer_indices
    lower = np.full(n, np.nan)
    upper = np.full(n, np.nan)

    lp = solve_lp(model, compiled)
    lp_bound = lp.objective
    solves = 1
    limit = max_iterations if max_iterations is not None else len(integer_indices) + 1

    for _ in range(limit):
        frac_idx = _pick_fractional(lp.solution, integer_indices, int_tol)
        if frac_idx is None:
            snapped = lp.solution.copy()
            for i in integer_indices:
                snapped[i] = round(snapped[i])
            objective = model.objective.value(snapped)
            return RoundingResult("integral", objective, snapped, lp_bound, solves)

        value = lp.solution[frac_idx]
        fixed = False
        for candidate in (math.ceil(value - int_tol), math.floor(value + int_tol)):
            lower[frac_idx] = candidate
            upper[frac_idx] = candidate
            try:
                lp = solve_lp(
                    model, compiled, extra_lower_bounds=lower, extra_upper_bounds=upper
                )
                solves += 1
                fixed = True
                break
            except SolverError:
                continue
        if not fixed:
            raise SolverError(
                f"model {model.name!r}: variable "
                f"{model.variables[frac_idx].name!r} admits no feasible rounding"
            )

    raise SolverError(f"model {model.name!r}: rounding did not converge")


def _pick_fractional(
    solution: np.ndarray, integer_indices: List[int], tol: float
) -> Optional[int]:
    """Index of the most fractional integer variable, or None if integral."""
    best, best_frac = None, tol
    for i in integer_indices:
        frac = abs(solution[i] - round(solution[i]))
        if frac > best_frac:
            best, best_frac = i, frac
    return best
