"""Declarative sparse LP/ILP model builder.

A tiny modeling language in the spirit of PuLP, but compiled to the sparse
matrices :func:`scipy.optimize.linprog` consumes.  Supports continuous and
integer variables, linear expressions, ≤ / ≥ / = constraints, and a
minimisation objective.  Kept deliberately minimal: everything the
Optimization Engine's formulation (Eq. 1–8) needs and nothing more.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
from scipy import sparse

Number = Union[int, float]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable (identified by its model index)."""

    index: int
    name: str
    lb: float
    ub: float
    integer: bool

    # Arithmetic builds LinExpr objects -------------------------------
    def __add__(self, other) -> "LinExpr":
        return LinExpr.of(self) + other

    def __radd__(self, other) -> "LinExpr":
        return LinExpr.of(self) + other

    def __sub__(self, other) -> "LinExpr":
        return LinExpr.of(self) - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self) + other

    def __mul__(self, k: Number) -> "LinExpr":
        return LinExpr.of(self) * k

    def __rmul__(self, k: Number) -> "LinExpr":
        return LinExpr.of(self) * k

    def __le__(self, rhs) -> "Constraint":
        return LinExpr.of(self) <= rhs

    def __ge__(self, rhs) -> "Constraint":
        return LinExpr.of(self) >= rhs

    # NOTE: __eq__ is kept as identity (dataclass) so variables can live in
    # dicts; use ``expr.eq(rhs)`` or ``LinExpr.of(v).eq(rhs)`` for equality
    # constraints involving a bare variable.


class LinExpr:
    """A linear expression: ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Dict[int, float]] = None, constant: float = 0.0):
        self.coeffs: Dict[int, float] = coeffs or {}
        self.constant = float(constant)

    @staticmethod
    def of(term: Union["LinExpr", Variable, Number]) -> "LinExpr":
        """Coerce a variable or number into an expression."""
        if isinstance(term, LinExpr):
            return term
        if isinstance(term, Variable):
            return LinExpr({term.index: 1.0})
        return LinExpr({}, float(term))

    @staticmethod
    def total(terms: Iterable[Union["LinExpr", Variable, Tuple[Number, Variable]]]) -> "LinExpr":
        """Sum of terms; tuples are (coefficient, variable) pairs."""
        out = LinExpr()
        for t in terms:
            if isinstance(t, tuple):
                k, v = t
                out.coeffs[v.index] = out.coeffs.get(v.index, 0.0) + float(k)
            else:
                e = LinExpr.of(t)
                for i, c in e.coeffs.items():
                    out.coeffs[i] = out.coeffs.get(i, 0.0) + c
                out.constant += e.constant
        return out

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    # Arithmetic -------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        o = LinExpr.of(other)
        out = self.copy()
        for i, c in o.coeffs.items():
            out.coeffs[i] = out.coeffs.get(i, 0.0) + c
        out.constant += o.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (LinExpr.of(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, k: Number) -> "LinExpr":
        return LinExpr({i: c * k for i, c in self.coeffs.items()}, self.constant * k)

    __rmul__ = __mul__

    # Constraint builders ------------------------------------------------
    def __le__(self, rhs) -> "Constraint":
        return Constraint(self - rhs, Sense.LE)

    def __ge__(self, rhs) -> "Constraint":
        return Constraint(self - rhs, Sense.GE)

    def eq(self, rhs) -> "Constraint":
        """Equality constraint ``self == rhs``."""
        return Constraint(self - rhs, Sense.EQ)

    def value(self, solution: np.ndarray) -> float:
        """Evaluate under a solution vector."""
        return self.constant + sum(c * solution[i] for i, c in self.coeffs.items())


@dataclass
class Constraint:
    """``expr (sense) 0`` — the rhs is folded into the expression constant."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    def violation(self, solution: np.ndarray, tol: float = 1e-6) -> float:
        """Amount by which the constraint is violated (0 when satisfied)."""
        v = self.expr.value(solution)
        if self.sense is Sense.LE:
            return max(0.0, v)
        if self.sense is Sense.GE:
            return max(0.0, -v)
        return abs(v)


@dataclass
class CompiledModel:
    """Sparse arrays ready for ``scipy.optimize.linprog``.

    ``ub_row_of`` / ``eq_row_of`` map a constraint's index in
    ``Model.constraints`` to its row in ``a_ub`` / ``a_eq``, letting callers
    retune right-hand sides (e.g. resource budgets) without recompiling.
    """

    c: np.ndarray
    a_ub: Optional[sparse.csr_matrix]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[sparse.csr_matrix]
    b_eq: Optional[np.ndarray]
    bounds: List[Tuple[float, float]]
    integer_mask: np.ndarray
    ub_row_of: Dict[int, int] = None  # type: ignore[assignment]
    eq_row_of: Dict[int, int] = None  # type: ignore[assignment]


class Model:
    """An LP/ILP model under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self._objective: Optional[LinExpr] = None

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ) -> Variable:
        """Create a variable; returns the handle used in expressions."""
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(len(self.variables), name, float(lb), float(ub), integer)
        self.variables.append(var)
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with <=, >= or .eq()."""
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: Union[LinExpr, Variable]) -> None:
        """Set the minimisation objective."""
        self._objective = LinExpr.of(expr)

    @property
    def objective(self) -> LinExpr:
        if self._objective is None:
            raise ValueError("objective not set")
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def integer_indices(self) -> List[int]:
        return [v.index for v in self.variables if v.integer]

    # ------------------------------------------------------------------
    def compile(self) -> CompiledModel:
        """Flatten to sparse standard form."""
        n = len(self.variables)
        c = np.zeros(n)
        for i, coef in self.objective.coeffs.items():
            c[i] = coef

        ub_rows: List[Tuple[Dict[int, float], float]] = []
        eq_rows: List[Tuple[Dict[int, float], float]] = []
        ub_row_of: Dict[int, int] = {}
        eq_row_of: Dict[int, int] = {}
        for ci, con in enumerate(self.constraints):
            coeffs, const = con.expr.coeffs, con.expr.constant
            if con.sense is Sense.LE:
                ub_row_of[ci] = len(ub_rows)
                ub_rows.append((coeffs, -const))
            elif con.sense is Sense.GE:
                ub_row_of[ci] = len(ub_rows)
                ub_rows.append(({i: -k for i, k in coeffs.items()}, const))
            else:
                eq_row_of[ci] = len(eq_rows)
                eq_rows.append((coeffs, -const))

        def build(rows) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
            if not rows:
                return None, None
            data, ri, ci, rhs = [], [], [], []
            for r, (coeffs, b) in enumerate(rows):
                rhs.append(b)
                for i, k in coeffs.items():
                    if k != 0.0:
                        ri.append(r)
                        ci.append(i)
                        data.append(k)
            mat = sparse.csr_matrix(
                (data, (ri, ci)), shape=(len(rows), n), dtype=float
            )
            return mat, np.asarray(rhs, dtype=float)

        a_ub, b_ub = build(ub_rows)
        a_eq, b_eq = build(eq_rows)
        bounds = [(v.lb, v.ub) for v in self.variables]
        integer_mask = np.array([v.integer for v in self.variables], dtype=bool)
        return CompiledModel(
            c, a_ub, b_ub, a_eq, b_eq, bounds, integer_mask, ub_row_of, eq_row_of
        )

    def check_feasible(self, solution: np.ndarray, tol: float = 1e-6) -> List[str]:
        """Names (or indices) of constraints violated by ``solution``."""
        bad = []
        for k, con in enumerate(self.constraints):
            if con.violation(solution) > tol:
                bad.append(con.name or f"constraint[{k}]")
        for v in self.variables:
            x = solution[v.index]
            if x < v.lb - tol or x > v.ub + tol:
                bad.append(f"bounds[{v.name}]")
        return bad
