"""Declarative sparse LP/ILP model builder.

A tiny modeling language in the spirit of PuLP, but compiled to the sparse
matrices :func:`scipy.optimize.linprog` consumes.  Supports continuous and
integer variables, linear expressions, ≤ / ≥ / = constraints, and a
minimisation objective.  Kept deliberately minimal: everything the
Optimization Engine's formulation (Eq. 1–8) needs and nothing more.

Compilation assembles COO triplet buffers with :func:`numpy.repeat` rather
than per-term Python loops, and a :class:`CompiledModel` supports in-place
coefficient / right-hand-side rewrites so warm-start callers (the engine's
:class:`~repro.core.engine.PlacementTemplate`) re-solve without recompiling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

Number = Union[int, float]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable (identified by its model index)."""

    index: int
    name: str
    lb: float
    ub: float
    integer: bool

    # Arithmetic builds LinExpr objects -------------------------------
    def __add__(self, other) -> "LinExpr":
        return LinExpr.of(self) + other

    def __radd__(self, other) -> "LinExpr":
        return LinExpr.of(self) + other

    def __sub__(self, other) -> "LinExpr":
        return LinExpr.of(self) - other

    def __rsub__(self, other) -> "LinExpr":
        return (-1.0 * self) + other

    def __mul__(self, k: Number) -> "LinExpr":
        return LinExpr.of(self) * k

    def __rmul__(self, k: Number) -> "LinExpr":
        return LinExpr.of(self) * k

    def __le__(self, rhs) -> "Constraint":
        return LinExpr.of(self) <= rhs

    def __ge__(self, rhs) -> "Constraint":
        return LinExpr.of(self) >= rhs

    # NOTE: __eq__ is kept as identity (dataclass) so variables can live in
    # dicts; use ``expr.eq(rhs)`` or ``LinExpr.of(v).eq(rhs)`` for equality
    # constraints involving a bare variable.


class LinExpr:
    """A linear expression: ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Optional[Dict[int, float]] = None, constant: float = 0.0):
        self.coeffs: Dict[int, float] = coeffs or {}
        self.constant = float(constant)

    @staticmethod
    def of(term: Union["LinExpr", Variable, Number]) -> "LinExpr":
        """Coerce a variable or number into an expression."""
        if isinstance(term, LinExpr):
            return term
        if isinstance(term, Variable):
            return LinExpr({term.index: 1.0})
        return LinExpr({}, float(term))

    @staticmethod
    def total(terms: Iterable[Union["LinExpr", Variable, Tuple[Number, Variable]]]) -> "LinExpr":
        """Sum of terms; tuples are (coefficient, variable) pairs."""
        out = LinExpr()
        for t in terms:
            if isinstance(t, tuple):
                k, v = t
                out.coeffs[v.index] = out.coeffs.get(v.index, 0.0) + float(k)
            else:
                e = LinExpr.of(t)
                for i, c in e.coeffs.items():
                    out.coeffs[i] = out.coeffs.get(i, 0.0) + c
                out.constant += e.constant
        return out

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    # Arithmetic -------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        o = LinExpr.of(other)
        out = self.copy()
        for i, c in o.coeffs.items():
            out.coeffs[i] = out.coeffs.get(i, 0.0) + c
        out.constant += o.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (LinExpr.of(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, k: Number) -> "LinExpr":
        return LinExpr({i: c * k for i, c in self.coeffs.items()}, self.constant * k)

    __rmul__ = __mul__

    # Constraint builders ------------------------------------------------
    def __le__(self, rhs) -> "Constraint":
        return Constraint(self - rhs, Sense.LE)

    def __ge__(self, rhs) -> "Constraint":
        return Constraint(self - rhs, Sense.GE)

    def eq(self, rhs) -> "Constraint":
        """Equality constraint ``self == rhs``."""
        return Constraint(self - rhs, Sense.EQ)

    def value(self, solution: np.ndarray) -> float:
        """Evaluate under a solution vector (NumPy gather, not a Python sum)."""
        m = len(self.coeffs)
        if m == 0:
            return self.constant
        idx = np.fromiter(self.coeffs.keys(), dtype=np.intp, count=m)
        coef = np.fromiter(self.coeffs.values(), dtype=float, count=m)
        return float(self.constant + np.asarray(solution)[idx] @ coef)


@dataclass
class Constraint:
    """``expr (sense) 0`` — the rhs is folded into the expression constant."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    def violation(self, solution: np.ndarray, tol: float = 1e-6) -> float:
        """Amount by which the constraint is violated (0 when satisfied)."""
        v = self.expr.value(solution)
        if self.sense is Sense.LE:
            return max(0.0, v)
        if self.sense is Sense.GE:
            return max(0.0, -v)
        return abs(v)


@dataclass
class CompiledModel:
    """Sparse arrays ready for ``scipy.optimize.linprog``.

    ``ub_row_of`` / ``eq_row_of`` map a constraint's index in
    ``Model.constraints`` to its row in ``a_ub`` / ``a_eq``, letting callers
    retune right-hand sides (e.g. resource budgets) without recompiling.
    ``row_sign`` records the standardisation sign per constraint (−1 for ≥
    rows, which are stored negated), so :meth:`set_coefficient` and
    :meth:`set_rhs` can be expressed in the constraint's own orientation.
    """

    c: np.ndarray
    a_ub: Optional[sparse.csr_matrix]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[sparse.csr_matrix]
    b_eq: Optional[np.ndarray]
    bounds: List[Tuple[float, float]]
    integer_mask: np.ndarray
    ub_row_of: Dict[int, int] = field(default_factory=dict)
    eq_row_of: Dict[int, int] = field(default_factory=dict)
    row_sign: Dict[int, float] = field(default_factory=dict)
    #: Cache of linprog-ready bounds (see :meth:`clamped_bounds`).
    _clamped: Optional[List[Tuple[float, Optional[float]]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazy (is_eq, row, col) → position-in-``data`` cache for coefficient
    #: rewrites; filled one row at a time on first touch.
    _pos_cache: Dict[Tuple[int, int, int], int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Lazy cache of HiGHS-native arrays (see :meth:`highs_arrays`).
    _highs: Optional[dict] = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def highs_arrays(self) -> dict:
        """Solver-native arrays for the direct HiGHS call path, cached.

        scipy's ``linprog`` re-stacks ``A_ub``/``A_eq`` into one CSC matrix
        and re-derives row/column bound arrays on *every* call; for warm
        re-solves that conversion dominates the non-simplex overhead.  This
        cache performs the conversion once per compiled model and keeps a
        CSR→CSC position map so in-place coefficient rewrites
        (:meth:`set_coefficient`, :meth:`set_ub_coefficients`) stay visible
        to the solver without rebuilding anything.

        Returns a dict with keys ``c``, ``indptr``/``indices``/``data``
        (stacked [A_ub; A_eq] in CSC), ``lhs``/``rhs`` (row activity
        bounds: ``(-inf, b_ub]`` rows then ``[b_eq, b_eq]`` rows), ``lb``/
        ``ub`` (column bounds), ``n_ub`` (number of inequality rows) and
        ``csr_to_csc`` (data-position map, A_ub entries first).
        """
        if self._highs is not None:
            return self._highs
        n = len(self.c)
        mats = [m for m in (self.a_ub, self.a_eq) if m is not None]
        if mats:
            stacked = mats[0] if len(mats) == 1 else sparse.vstack(mats, format="csr")
            stacked = stacked.tocsr()
            nnz = stacked.nnz
            # Map each CSR data position to its slot in the CSC copy by
            # pushing 1-based positions through the same conversion.
            marker = sparse.csr_matrix(
                (
                    np.arange(1, nnz + 1, dtype=float),
                    stacked.indices,
                    stacked.indptr,
                ),
                shape=stacked.shape,
            ).tocsc()
            csc = stacked.tocsc()
            csr_to_csc = np.empty(nnz, dtype=np.intp)
            csr_to_csc[marker.data.astype(np.intp) - 1] = np.arange(nnz, dtype=np.intp)
        else:
            csc = sparse.csc_matrix((0, n), dtype=float)
            csr_to_csc = np.empty(0, dtype=np.intp)
        n_ub = 0 if self.a_ub is None else self.a_ub.shape[0]
        b_ub = np.empty(0) if self.b_ub is None else np.asarray(self.b_ub, dtype=float)
        b_eq = np.empty(0) if self.b_eq is None else np.asarray(self.b_eq, dtype=float)
        lhs = np.concatenate([np.full(n_ub, -np.inf), b_eq])
        rhs = np.concatenate([b_ub, b_eq])
        lb = np.fromiter((b[0] for b in self.bounds), dtype=float, count=n)
        ub = np.fromiter((b[1] for b in self.bounds), dtype=float, count=n)
        self._highs = {
            "c": np.asarray(self.c, dtype=float),
            "indptr": csc.indptr,
            "indices": csc.indices,
            "data": csc.data,
            "lhs": lhs,
            "rhs": rhs,
            "lb": lb,
            "ub": ub,
            "n_ub": n_ub,
            "n_ub_nnz": 0 if self.a_ub is None else self.a_ub.nnz,
            "csr_to_csc": csr_to_csc,
        }
        return self._highs

    def set_ub_coefficients(self, data_positions: np.ndarray, values: np.ndarray) -> None:
        """Bulk-overwrite ``a_ub.data`` at ``data_positions`` (one scatter).

        The warm-start hot path: the engine's template resolves the Eq. 5
        rate slots once and rewrites them all per snapshot through here,
        which also keeps the cached HiGHS CSC copy in sync.
        """
        self.a_ub.data[data_positions] = values
        if self._highs is not None:
            self._highs["data"][self._highs["csr_to_csc"][data_positions]] = values

    # ------------------------------------------------------------------
    def clamped_bounds(self) -> List[Tuple[float, Optional[float]]]:
        """Bounds in linprog form (``inf`` → ``None``), computed once.

        Branch-and-bound and iterative rounding issue many solves against
        one compiled model; caching here removes the per-solve rebuild.
        """
        if self._clamped is None:
            self._clamped = [
                (lb, None if ub == float("inf") else ub) for lb, ub in self.bounds
            ]
        return self._clamped

    # ------------------------------------------------------------------
    def _locate(self, constraint_index: int):
        """(matrix, row, is_eq) of a constraint's standardised row."""
        row = self.ub_row_of.get(constraint_index)
        if row is not None:
            return self.a_ub, row, False
        row = self.eq_row_of.get(constraint_index)
        if row is not None:
            return self.a_eq, row, True
        raise KeyError(f"constraint {constraint_index} not in compiled model")

    def coefficient_slot(self, constraint_index: int, var_index: int):
        """``(matrix, data position, sign)`` of one stored coefficient.

        Exposed so warm-start callers can resolve positions once and batch
        their data writes.  Raises ``KeyError`` when the coefficient is not
        in the compiled sparsity pattern (it was zero at compile time) —
        recompile instead of writing through this API.
        """
        mat, row, is_eq = self._locate(constraint_index)
        key = (int(is_eq), row, var_index)
        pos = self._pos_cache.get(key)
        if pos is None:
            start, end = int(mat.indptr[row]), int(mat.indptr[row + 1])
            for off, col in enumerate(mat.indices[start:end]):
                self._pos_cache[(int(is_eq), row, int(col))] = start + off
            pos = self._pos_cache.get(key)
            if pos is None:
                raise KeyError(
                    f"constraint {constraint_index}: variable {var_index} "
                    "not in the compiled sparsity pattern"
                )
        return mat, pos, self.row_sign.get(constraint_index, 1.0)

    def set_coefficient(self, constraint_index: int, var_index: int, value: float) -> None:
        """Overwrite one coefficient, in the constraint's own orientation.

        Only coefficients that were nonzero at compile time can be rewritten
        (the sparsity pattern is fixed); standardisation sign for ≥ rows is
        applied internally.
        """
        mat, pos, sign = self.coefficient_slot(constraint_index, var_index)
        mat.data[pos] = sign * value
        if self._highs is not None:
            off = pos if mat is self.a_ub else self._highs["n_ub_nnz"] + pos
            self._highs["data"][self._highs["csr_to_csc"][off]] = sign * value

    def set_rhs(self, constraint_index: int, value: float) -> None:
        """Overwrite a constraint's right-hand side.

        ``value`` is the rhs as written (``linear part ≤/≥/= value``); the
        standardisation sign for ≥ rows is applied internally.
        """
        row = self.ub_row_of.get(constraint_index)
        if row is not None:
            self.b_ub[row] = self.row_sign.get(constraint_index, 1.0) * value
            if self._highs is not None:
                self._highs["rhs"][row] = self.b_ub[row]
            return
        row = self.eq_row_of.get(constraint_index)
        if row is not None:
            self.b_eq[row] = value
            if self._highs is not None:
                self._highs["lhs"][self._highs["n_ub"] + row] = value
                self._highs["rhs"][self._highs["n_ub"] + row] = value
            return
        raise KeyError(f"constraint {constraint_index} not in compiled model")


class Model:
    """An LP/ILP model under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self._objective: Optional[LinExpr] = None

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
    ) -> Variable:
        """Create a variable; returns the handle used in expressions."""
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(len(self.variables), name, float(lb), float(ub), integer)
        self.variables.append(var)
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built with <=, >= or .eq()."""
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constraints(
        self,
        constraints: Iterable[Constraint],
        names: Optional[Sequence[str]] = None,
    ) -> List[Constraint]:
        """Bulk-register constraints with one list extend.

        The engine's emission loops produce hundreds of constraints per
        class; this path avoids a Python call per constraint.
        """
        batch = list(constraints)
        if names is not None:
            if len(names) != len(batch):
                raise ValueError("names and constraints length mismatch")
            for con, name in zip(batch, names):
                if name:
                    con.name = name
        self.constraints.extend(batch)
        return batch

    def minimize(self, expr: Union[LinExpr, Variable]) -> None:
        """Set the minimisation objective."""
        self._objective = LinExpr.of(expr)

    @property
    def objective(self) -> LinExpr:
        if self._objective is None:
            raise ValueError("objective not set")
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def integer_indices(self) -> List[int]:
        return [v.index for v in self.variables if v.integer]

    # ------------------------------------------------------------------
    def compile(self) -> CompiledModel:
        """Flatten to sparse standard form (vectorized triplet assembly)."""
        n = len(self.variables)
        c = np.zeros(n)
        obj = self.objective.coeffs
        if obj:
            c[np.fromiter(obj.keys(), dtype=np.intp, count=len(obj))] = np.fromiter(
                obj.values(), dtype=float, count=len(obj)
            )

        # Bucket constraints by standard form; coefficients stay as the
        # original dicts, the ≥ negation is applied vectorized below.
        ub_rows: List[Dict[int, float]] = []
        ub_rhs: List[float] = []
        ub_signs: List[float] = []
        eq_rows: List[Dict[int, float]] = []
        eq_rhs: List[float] = []
        ub_row_of: Dict[int, int] = {}
        eq_row_of: Dict[int, int] = {}
        row_sign: Dict[int, float] = {}
        for ci, con in enumerate(self.constraints):
            coeffs, const = con.expr.coeffs, con.expr.constant
            if con.sense is Sense.LE:
                ub_row_of[ci] = len(ub_rows)
                row_sign[ci] = 1.0
                ub_rows.append(coeffs)
                ub_rhs.append(-const)
                ub_signs.append(1.0)
            elif con.sense is Sense.GE:
                ub_row_of[ci] = len(ub_rows)
                row_sign[ci] = -1.0
                ub_rows.append(coeffs)
                ub_rhs.append(const)
                ub_signs.append(-1.0)
            else:
                eq_row_of[ci] = len(eq_rows)
                row_sign[ci] = 1.0
                eq_rows.append(coeffs)
                eq_rhs.append(-const)

        def build(
            rows: List[Dict[int, float]],
            rhs: List[float],
            signs: Optional[List[float]],
        ) -> Tuple[Optional[sparse.csr_matrix], Optional[np.ndarray]]:
            if not rows:
                return None, None
            # COO triplet buffers: per-row dict keys/values land via C-speed
            # list extends; row indices come from one np.repeat.
            cols: List[int] = []
            vals: List[float] = []
            counts = np.empty(len(rows), dtype=np.intp)
            for r, coeffs in enumerate(rows):
                counts[r] = len(coeffs)
                cols.extend(coeffs.keys())
                vals.extend(coeffs.values())
            ri = np.repeat(np.arange(len(rows), dtype=np.intp), counts)
            ci_arr = np.asarray(cols, dtype=np.intp)
            data = np.asarray(vals, dtype=float)
            if signs is not None:
                data = data * np.repeat(np.asarray(signs, dtype=float), counts)
            keep = data != 0.0
            if not keep.all():
                ri, ci_arr, data = ri[keep], ci_arr[keep], data[keep]
            mat = sparse.csr_matrix(
                (data, (ri, ci_arr)), shape=(len(rows), n), dtype=float
            )
            return mat, np.asarray(rhs, dtype=float)

        a_ub, b_ub = build(ub_rows, ub_rhs, ub_signs)
        a_eq, b_eq = build(eq_rows, eq_rhs, None)
        bounds = [(v.lb, v.ub) for v in self.variables]
        integer_mask = np.fromiter(
            (v.integer for v in self.variables), dtype=bool, count=n
        )
        return CompiledModel(
            c, a_ub, b_ub, a_eq, b_eq, bounds, integer_mask,
            ub_row_of, eq_row_of, row_sign,
        )

    def check_feasible(self, solution: np.ndarray, tol: float = 1e-6) -> List[str]:
        """Names (or indices) of constraints violated by ``solution``."""
        bad = []
        for k, con in enumerate(self.constraints):
            if con.violation(solution) > tol:
                bad.append(con.name or f"constraint[{k}]")
        for v in self.variables:
            x = solution[v.index]
            if x < v.lb - tol or x > v.ub + tol:
                bad.append(f"bounds[{v.name}]")
        return bad
