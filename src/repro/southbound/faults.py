"""Seeded control-plane fault schedules (switch disconnects).

Disconnect events reuse the chaos layer's :class:`FaultEvent` /
:class:`FaultSchedule` containers but are drawn from the *southbound*
substream — ``derive(seed, "chaos.southbound")`` — never from
``chaos.schedule``'s.  Enabling control-plane chaos therefore composes
with an existing data-plane schedule at the same seed without moving a
single one of its draws (the bit-identity test replays both together).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.chaos.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.sim.rng import SeededRNG, derive
from repro.southbound.config import SOUTHBOUND_STREAM, SouthboundChaosConfig


def generate_southbound_schedule(
    switches: Sequence[str],
    config: SouthboundChaosConfig,
    seed: int,
) -> FaultSchedule:
    """Draw the deterministic disconnect schedule for one run.

    Args:
        switches: candidate switches (pass them sorted for a canonical
            draw order; they are sorted here regardless).
        config: how many disconnects, when, for how long.
        seed: the *run* seed; the southbound stream is derived internally.
    """
    rng = SeededRNG(derive(seed, SOUTHBOUND_STREAM))
    lo, hi = config.window
    if hi < lo:
        raise ValueError("southbound chaos window end precedes its start")

    events: List[FaultEvent] = []
    pool = sorted(set(switches))
    count = min(config.disconnects, len(pool))
    if count > 0:
        targets = rng.choice(pool, size=count, replace=False)
        for target in targets:
            events.append(
                FaultEvent(
                    time=round(float(rng.uniform(lo, hi)), 6),
                    kind=FaultKind.SWITCH_DISCONNECT,
                    target=target,
                    duration=round(
                        float(rng.uniform(*config.disconnect_duration)), 6
                    ),
                )
            )
    events.sort(key=lambda ev: (ev.time, ev.kind.value, ev.target))
    return FaultSchedule(seed=seed, events=tuple(events))
