"""The per-switch control channel: agent, loss model, retry machinery.

One :class:`SwitchAgent` + :class:`ControlChannel` pair exists per
physical switch.  The agent is the switch-resident half: it applies op
bundles to the switch's TCAM and its host's vSwitch, exactly once per
cookie, rejecting superseded epochs.  The channel is the controller-
resident half: it delivers messages through a seeded loss/delay model,
retransmits on timeout with exponential backoff and deterministic
jitter, bounds the in-flight window, and opens a circuit breaker after
consecutive timeouts (the switch is then *degraded*: probed at a slow
cadence instead of hammered).

Determinism: every attempt draws exactly five values from the channel's
own substream (forward-loss, forward-extra-delay, ack-loss,
ack-extra-delay, timeout-jitter) in a fixed order, whether or not each
value ends up mattering, so the draw sequence — and therefore the whole
run — is a pure function of the seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.tcam import TcamEntry
from repro.dataplane.vswitch import VSwitchRule
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRNG
from repro.southbound.config import ChannelConfig, SouthboundChaosConfig
from repro.southbound.messages import (
    ACK_APPLIED,
    ACK_DUPLICATE,
    ACK_STALE,
    Ack,
    ControlMessage,
    spec_entry,
)
from repro.southbound.metrics import SouthboundMetrics

#: Result handed to a sender whose message exhausted ``max_attempts``.
RESULT_FAILED = "failed"


class SwitchAgent:
    """Switch-resident op applier with idempotency + epoch fencing.

    Args:
        on_paths_applied: called with the ``paths`` tuple of an applied
            ``classify_sync`` / ``origin_sync`` (the fabric tracks which
            routing paths are live for probe expectations).
    """

    def __init__(
        self,
        switch: str,
        network: DataPlaneNetwork,
        on_paths_applied: Optional[Callable[[tuple], None]] = None,
    ) -> None:
        self.switch = switch
        self.network = network
        self.on_paths_applied = on_paths_applied
        self.current_epoch = -1
        self.applied_cookies: set = set()
        self.ops_applied = 0

    def receive(self, msg: ControlMessage) -> Ack:
        """Apply a message exactly once; returns the ack to send back."""
        if msg.epoch < self.current_epoch:
            # A newer desired state owns this switch; applying would
            # clobber it (the classic stale-retransmission hazard).
            return Ack(msg.cookie, ACK_STALE)
        if msg.epoch > self.current_epoch:
            self.current_epoch = msg.epoch
            self.applied_cookies.clear()
        if msg.cookie in self.applied_cookies:
            return Ack(msg.cookie, ACK_DUPLICATE)
        for op in msg.ops:
            self._apply(op)
        self.applied_cookies.add(msg.cookie)
        return Ack(msg.cookie, ACK_APPLIED)

    # ------------------------------------------------------------------
    def _apply(self, op: tuple) -> None:
        kind = op[0]
        table = self.network.switches[self.switch].table
        if kind == "tcam_put":
            table.replace(spec_entry(op[1]))
        elif kind == "tcam_del":
            table.remove_by_name(op[1])
        elif kind == "classify_sync":
            # The atomic swap: all classification entries of this switch
            # and the registered paths of the classes ingressing here
            # change in one sim event (an OpenFlow bundle in miniature).
            _, specs, paths = op
            prefix = f"{self.switch}/classify/"
            table.remove_where(lambda e: e.name.startswith(prefix))
            for spec in specs:
                table.install(spec_entry(spec))
            self._register_paths(paths)
        elif kind == "vsw_put":
            _, class_id, sub_id, instance_ids, exit_tag = op
            vsw = self.network.vswitch_at(self.switch)
            if any(vsw.registered(iid) is None for iid in instance_ids):
                # Instance died between desired-state render and apply
                # (e.g. a VNF crash raced the repair).  Skip: the drift
                # stays visible to the reconciler, and recovery's next
                # push stops referencing the dead instance.
                return
            vsw.install_rule(
                class_id, sub_id, VSwitchRule(tuple(instance_ids), exit_tag)
            )
        elif kind == "vsw_del":
            self.network.vswitch_at(self.switch).remove_rule(op[1], op[2])
        elif kind == "origin_sync":
            _, rows, paths = op
            vsw = self.network.vswitch_at(self.switch)
            vsw.clear_origin_rules()
            for class_id, hash_range, sub_id, first_host in rows:
                vsw.install_origin_rule(
                    class_id, tuple(hash_range), sub_id, first_host
                )
            self._register_paths(paths)
        else:
            raise ValueError(f"unknown southbound op kind {kind!r}")
        self.ops_applied += 1

    def _register_paths(self, paths: tuple) -> None:
        for class_id, path in paths:
            if self.network.class_paths.get(class_id) != tuple(path):
                self.network.register_class_path(class_id, path)
        if self.on_paths_applied is not None and paths:
            self.on_paths_applied(paths)


@dataclass
class _Pending:
    """One message's delivery state on the controller side."""

    msg: ControlMessage
    on_result: Callable[[str], None]
    attempts: int = 0
    done: bool = False
    timeout_event: object = field(default=None, repr=False)


class ControlChannel:
    """Controller-side reliable delivery to one switch.

    Args:
        rng: this channel's private substream
            (``derive(derive(seed, "chaos.southbound"), "channel.<switch>")``).
        on_circuit_open / on_circuit_close: degradation hooks
            ``(switch, now)`` — the chaos layer records detections here.
    """

    def __init__(
        self,
        sim: Simulator,
        agent: SwitchAgent,
        config: ChannelConfig,
        chaos: SouthboundChaosConfig,
        rng: SeededRNG,
        metrics: SouthboundMetrics,
        on_circuit_open: Optional[Callable[[str, float], None]] = None,
        on_circuit_close: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.sim = sim
        self.agent = agent
        self.config = config
        self.chaos = chaos
        self.rng = rng
        self.metrics = metrics
        self.on_circuit_open = on_circuit_open
        self.on_circuit_close = on_circuit_close
        self.disconnected = False
        #: Set when the controller crashes (repro.resilience): every
        #: already-scheduled delivery / ack / timeout becomes a no-op, so
        #: a dead controller can neither send nor observe anything.
        self.dead = False
        self.circuit_open = False
        self.consecutive_timeouts = 0
        self._circuit_opened_at: Optional[float] = None
        self._queue: Deque[_Pending] = deque()
        self._inflight: Dict[str, _Pending] = {}

    @property
    def switch(self) -> str:
        return self.agent.switch

    @property
    def degraded(self) -> bool:
        return self.circuit_open

    # ------------------------------------------------------------------
    def send(self, msg: ControlMessage, on_result: Callable[[str], None]) -> None:
        """Queue a message; ``on_result`` fires exactly once with the ack
        status (or :data:`RESULT_FAILED` after ``max_attempts``)."""
        self._queue.append(_Pending(msg=msg, on_result=on_result))
        self._pump()

    def disconnect(self) -> None:
        """Sever the channel: every leg in either direction is lost."""
        self.disconnected = True

    def reconnect(self) -> None:
        """Restore the channel; pending messages recover via retries."""
        self.disconnected = False

    def finalize(self, now: float) -> None:
        """Fold a still-open circuit into the degraded-time counter."""
        if self.circuit_open and self._circuit_opened_at is not None:
            self.metrics.degraded_seconds += now - self._circuit_opened_at
            self._circuit_opened_at = now

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while self._queue and len(self._inflight) < self.config.max_inflight:
            pending = self._queue.popleft()
            self._inflight[pending.msg.cookie] = pending
            self._attempt(pending)

    def _attempt(self, pending: _Pending) -> None:
        if pending.done or self.dead:
            return
        pending.attempts += 1
        attempt = pending.attempts
        # Fixed five-draw sequence per attempt (see module docstring).
        u_loss_fwd = self.rng.uniform()
        extra_fwd = self.rng.exponential(self.chaos.extra_delay_mean)
        u_loss_back = self.rng.uniform()
        extra_back = self.rng.exponential(self.chaos.extra_delay_mean)
        u_jitter = self.rng.uniform()

        cfg = self.config
        self.metrics.record_send(attempt)
        if self.disconnected or u_loss_fwd < self.chaos.loss_rate:
            self.metrics.record_loss()
        else:
            forward = cfg.install_latency * cfg.apply_fraction + extra_fwd
            back = cfg.install_latency * (1.0 - cfg.apply_fraction) + extra_back
            lost_back = u_loss_back < self.chaos.loss_rate
            self.sim.schedule(
                forward, self._deliver, args=(pending, lost_back, back)
            )
        timeout = cfg.rto(attempt) * (
            1.0 + cfg.jitter_frac * (2.0 * u_jitter - 1.0)
        )
        pending.timeout_event = self.sim.schedule(
            timeout, self._on_timeout, args=(pending, attempt)
        )

    def _deliver(self, pending: _Pending, lost_back: bool, back: float) -> None:
        if self.dead:
            return
        if self.disconnected:
            # The disconnect landed while the request was in flight.
            self.metrics.record_loss()
            return
        ack = self.agent.receive(pending.msg)
        if lost_back:
            self.metrics.record_loss()
            return
        self.sim.schedule(back, self._on_ack, args=(pending, ack))

    def _on_ack(self, pending: _Pending, ack: Ack) -> None:
        if self.dead:
            return
        if pending.done:
            return  # a retransmission's ack for an already-settled message
        if self.disconnected:
            self.metrics.record_loss()
            return
        pending.done = True
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        self._inflight.pop(pending.msg.cookie, None)
        self.consecutive_timeouts = 0
        self._close_circuit()
        self.metrics.record_ack(ack.status)
        pending.on_result(ack.status)
        self._pump()

    def _on_timeout(self, pending: _Pending, attempt: int) -> None:
        if self.dead:
            return
        if pending.done or pending.attempts != attempt:
            return  # stale timer of an earlier attempt
        self.metrics.record_timeout()
        self.consecutive_timeouts += 1
        if (
            not self.circuit_open
            and self.consecutive_timeouts >= self.config.circuit_threshold
        ):
            self._open_circuit()
        if pending.attempts >= self.config.max_attempts:
            pending.done = True
            self._inflight.pop(pending.msg.cookie, None)
            self.metrics.record_give_up()
            pending.on_result(RESULT_FAILED)
            self._pump()
            return
        if self.circuit_open:
            # Degraded: probe at a slow cadence instead of tight backoff.
            self.sim.schedule(
                self.config.circuit_probe_interval, self._attempt, args=(pending,)
            )
        else:
            self._attempt(pending)

    # ------------------------------------------------------------------
    def _open_circuit(self) -> None:
        self.circuit_open = True
        self._circuit_opened_at = self.sim.now
        self.metrics.record_circuit_open()
        if self.on_circuit_open is not None:
            self.on_circuit_open(self.switch, self.sim.now)

    def _close_circuit(self) -> None:
        if not self.circuit_open:
            return
        self.circuit_open = False
        if self._circuit_opened_at is not None:
            self.metrics.degraded_seconds += self.sim.now - self._circuit_opened_at
        self._circuit_opened_at = None
        if self.on_circuit_close is not None:
            self.on_circuit_close(self.switch, self.sim.now)
