"""Resilient southbound channel (controller ↔ switches).

Acked, idempotent rule installs over a seeded lossy channel; per-switch
retry/backoff with a circuit breaker; transactional make-before-break
delta installation; and desired-state anti-entropy reconciliation.
See DESIGN.md, "Control-plane failure model".
"""

from repro.southbound.channel import ControlChannel, SwitchAgent
from repro.southbound.config import (
    SOUTHBOUND_STREAM,
    ChannelConfig,
    SouthboundChaosConfig,
)
from repro.southbound.fabric import SouthboundFabric
from repro.southbound.faults import generate_southbound_schedule
from repro.southbound.messages import Ack, ControlMessage
from repro.southbound.metrics import EpochConvergence, SouthboundMetrics
from repro.southbound.state import (
    NetworkState,
    SwitchDiff,
    VERSION_STRIDE,
    diff_states,
    read_installed,
    render_desired,
)
from repro.southbound.transaction import Transaction

__all__ = [
    "Ack",
    "ChannelConfig",
    "ControlChannel",
    "ControlMessage",
    "EpochConvergence",
    "NetworkState",
    "SOUTHBOUND_STREAM",
    "SouthboundChaosConfig",
    "SouthboundFabric",
    "SouthboundMetrics",
    "SwitchAgent",
    "SwitchDiff",
    "Transaction",
    "VERSION_STRIDE",
    "diff_states",
    "generate_southbound_schedule",
    "read_installed",
    "render_desired",
]
