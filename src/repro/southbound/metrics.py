"""Deterministic counters for the southbound channel and fabric.

Mirrors the design of :class:`~repro.chaos.metrics.ChaosMetrics`: plain
Python counters fed exclusively from simulated state (never wall clock),
so ``to_dict()`` — and therefore a run's signature — is bit-identical
across same-seed invocations.  The :mod:`repro.obs` registry is updated
alongside when enabled; obs stays read-only with respect to the
simulation, so enabling it cannot perturb these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs

#: Transaction outcomes (keys of :attr:`SouthboundMetrics.transactions`).
TXN_COMMITTED = "committed"
TXN_ROLLED_BACK = "rolled_back"
TXN_FAILED = "failed"
TXN_COMMITTED_PARTIAL = "committed_partial"
TXN_SUPERSEDED = "superseded"

_OUTCOMES = (
    TXN_COMMITTED,
    TXN_ROLLED_BACK,
    TXN_FAILED,
    TXN_COMMITTED_PARTIAL,
    TXN_SUPERSEDED,
)


@dataclass
class EpochConvergence:
    """One desired-state epoch reaching zero drift everywhere."""

    epoch: int
    pushed_at: float
    converged_at: float
    degraded_solver: bool = False

    @property
    def latency(self) -> float:
        return self.converged_at - self.pushed_at

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "pushed_at": round(self.pushed_at, 9),
            "converged_at": round(self.converged_at, 9),
            "latency": round(self.latency, 9),
            "degraded_solver": self.degraded_solver,
        }


@dataclass
class SouthboundMetrics:
    """Counter ledger of one fabric's lifetime."""

    messages_sent: int = 0  # first attempts
    retries: int = 0  # retransmissions (attempts beyond the first)
    messages_lost: int = 0  # legs dropped by loss/disconnect
    acks: Dict[str, int] = field(
        default_factory=lambda: {"applied": 0, "duplicate": 0, "stale": 0}
    )
    timeouts: int = 0
    give_ups: int = 0  # messages failed after max_attempts
    circuit_opens: int = 0
    degraded_seconds: float = 0.0  # total circuit-open time across switches
    transactions: Dict[str, int] = field(
        default_factory=lambda: {k: 0 for k in _OUTCOMES}
    )
    rollback_ops: int = 0
    reconcile_ticks: int = 0
    reconcile_repairs: int = 0
    max_observed_drift: int = 0
    convergences: List[EpochConvergence] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_send(self, attempt: int) -> None:
        if attempt == 1:
            self.messages_sent += 1
            self._obs_inc("southbound_messages_total", result="sent")
        else:
            self.retries += 1
            self._obs_inc("southbound_retries_total")

    def record_loss(self) -> None:
        self.messages_lost += 1
        self._obs_inc("southbound_messages_total", result="lost")

    def record_ack(self, status: str) -> None:
        self.acks[status] = self.acks.get(status, 0) + 1
        self._obs_inc("southbound_messages_total", result=f"ack_{status}")

    def record_timeout(self) -> None:
        self.timeouts += 1
        self._obs_inc("southbound_timeouts_total")

    def record_give_up(self) -> None:
        self.give_ups += 1
        self._obs_inc("southbound_messages_total", result="give_up")

    def record_circuit_open(self) -> None:
        self.circuit_opens += 1
        self._obs_inc("southbound_circuit_opens_total")

    def record_transaction(self, outcome: str, rollback_ops: int = 0) -> None:
        self.transactions[outcome] = self.transactions.get(outcome, 0) + 1
        self.rollback_ops += rollback_ops
        if obs.REGISTRY.enabled:
            obs.metric("southbound_transactions_total").labels(
                outcome=outcome
            ).inc()
            if rollback_ops:
                obs.metric("southbound_rollback_ops_total").inc(rollback_ops)

    def record_reconcile(self, drift: int, repaired: bool) -> None:
        self.reconcile_ticks += 1
        if drift > self.max_observed_drift:
            self.max_observed_drift = drift
        if repaired:
            self.reconcile_repairs += 1
            self._obs_inc("southbound_reconcile_repairs_total")

    def record_convergence(self, record: EpochConvergence) -> None:
        self.convergences.append(record)
        if obs.REGISTRY.enabled:
            obs.metric("southbound_convergence_seconds").observe(record.latency)

    # ------------------------------------------------------------------
    @staticmethod
    def _obs_inc(name: str, **labels: str) -> None:
        if obs.REGISTRY.enabled:
            m = obs.metric(name)
            (m.labels(**labels) if labels else m).inc()

    # ------------------------------------------------------------------
    @property
    def convergence_latency_mean(self) -> Optional[float]:
        if not self.convergences:
            return None
        return sum(c.latency for c in self.convergences) / len(self.convergences)

    def to_dict(self) -> dict:
        return {
            "messages_sent": self.messages_sent,
            "retries": self.retries,
            "messages_lost": self.messages_lost,
            "acks": dict(sorted(self.acks.items())),
            "timeouts": self.timeouts,
            "give_ups": self.give_ups,
            "circuit_opens": self.circuit_opens,
            "degraded_seconds": round(self.degraded_seconds, 9),
            "transactions": dict(sorted(self.transactions.items())),
            "rollback_ops": self.rollback_ops,
            "reconcile_ticks": self.reconcile_ticks,
            "reconcile_repairs": self.reconcile_repairs,
            "max_observed_drift": self.max_observed_drift,
            "convergences": [c.to_dict() for c in self.convergences],
        }
