"""Southbound wire format: ops, messages, acks, idempotency cookies.

Everything on the channel is built from plain tuples of
ints/floats/strings so messages hash deterministically
(:func:`repro.dataplane.flowmod.stable_cookie`) and canonical state
snapshots compare with ``==``.

Op vocabulary (first element of each op tuple):

* ``("tcam_put", spec)`` — install/replace one TCAM entry by name.
* ``("tcam_del", name)`` — remove the TCAM entry called ``name``.
* ``("classify_sync", specs, paths)`` — atomically replace *all*
  classification entries of the switch with ``specs`` and register the
  class paths in ``paths`` (an OpenFlow bundle in miniature).  This is
  the make-before-break commit point: a class's classification and its
  registered path always change together.
* ``("vsw_put", class_id, sub_id, instance_ids, exit_tag)`` — one
  vSwitch rule.
* ``("vsw_del", class_id, sub_id)`` — remove one vSwitch rule.
* ``("origin_sync", origin_tuples)`` — replace the vSwitch's origin
  classification table wholesale.

``EntrySpec`` is the canonical 8-tuple form of a
:class:`~repro.dataplane.tcam.TcamEntry`:
``(name, priority, host_tag_is, class_id, hash_range, action_kind,
subclass_id, next_host)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.dataplane.flowmod import stable_cookie
from repro.dataplane.tcam import Action, ActionKind, TcamEntry

#: EntrySpec tuple indices (kept flat for cheap hashing/serialisation).
EntrySpec = Tuple[
    str,  # name
    int,  # priority
    Optional[str],  # host_tag_is
    Optional[str],  # class_id
    Optional[Tuple[float, float]],  # hash_range
    str,  # action kind value
    Optional[int],  # subclass_id
    Optional[str],  # next_host
]


def entry_spec(entry: TcamEntry) -> EntrySpec:
    """Canonical tuple form of a TCAM entry (order-independent compare)."""
    return (
        entry.name,
        entry.priority,
        entry.host_tag_is,
        entry.class_id,
        None if entry.hash_range is None else tuple(entry.hash_range),
        entry.action.kind.value,
        entry.action.subclass_id,
        entry.action.next_host,
    )


def spec_entry(spec: EntrySpec) -> TcamEntry:
    """Rebuild a TCAM entry from its canonical tuple."""
    name, priority, host_tag_is, class_id, hash_range, kind, sub_id, nxt = spec
    return TcamEntry(
        priority=priority,
        action=Action(ActionKind(kind), subclass_id=sub_id, next_host=nxt),
        host_tag_is=host_tag_is,
        class_id=class_id,
        hash_range=None if hash_range is None else tuple(hash_range),
        name=name,
    )


#: Ack statuses the agent can return.
ACK_APPLIED = "applied"
ACK_DUPLICATE = "duplicate"  # cookie seen before: retry of an applied msg
ACK_STALE = "stale"  # message from a superseded epoch: not applied


@dataclass(frozen=True)
class Ack:
    """Switch → controller acknowledgement of one control message."""

    cookie: str
    status: str


@dataclass(frozen=True)
class ControlMessage:
    """One controller → switch bundle of ops (a flow-mod batch).

    Attributes:
        switch: destination switch.
        epoch: desired-state epoch the ops belong to; agents reject
            messages from superseded epochs.
        txn_id: transaction (or repair pass) counter; part of the cookie
            so a later repair re-applying identical ops is not suppressed
            as a duplicate of an earlier transaction's message.
        phase: transaction phase label ("add" | "swap" | "del" |
            "rollback") — informational.
        ops: the op tuples, applied in order within one sim event.
        cookie: content hash of (epoch, txn_id, switch, phase, ops);
            retransmissions carry the same cookie, so the agent applies a
            message exactly once no matter how often it arrives.
    """

    switch: str
    epoch: int
    txn_id: int
    phase: str
    ops: Tuple[tuple, ...]
    cookie: str = field(default="")

    @staticmethod
    def make(
        switch: str, epoch: int, txn_id: int, phase: str, ops: Tuple[tuple, ...]
    ) -> "ControlMessage":
        cookie = stable_cookie(epoch, txn_id, switch, phase, ops)
        return ControlMessage(
            switch=switch,
            epoch=epoch,
            txn_id=txn_id,
            phase=phase,
            ops=tuple(ops),
            cookie=cookie,
        )
