"""The southbound fabric: desired state, transactions, anti-entropy.

:class:`SouthboundFabric` owns one control channel per physical switch
and the single *desired* :class:`~repro.southbound.state.NetworkState`.
State changes flow through exactly one door:

* :meth:`adopt` — bless the network's current (legacy-installed) state
  as desired epoch 0 without pushing anything, so enabling the fabric on
  an already-deployed network is a no-op on the wire.
* :meth:`push_desired` — render a new desired state from fresh
  :class:`~repro.core.rulegen.GeneratedRules` (bumping per-class
  versions where content changed), open a new epoch, and drive a
  make-before-break :class:`~repro.southbound.transaction.Transaction`
  toward it.
* the **reconciler** — a periodic anti-entropy pass diffing installed
  against desired and repairing drift with fresh transactions (same
  epoch, new transaction IDs), regardless of *why* the drift exists:
  lost rollbacks, partial deletes, failed swaps, or a vSwitch shedding
  rules when a VM died.

An epoch *converges* when a diff comes back empty; the fabric records
the convergence latency and fires the epoch's ``on_converged`` callback
exactly once (the chaos recovery path hangs deployment verification off
it).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.rulegen import GeneratedRules, RuleGenerator
from repro.dataplane.network import DataPlaneNetwork
from repro.sim.kernel import Simulator, Timer
from repro.sim.rng import SeededRNG, derive
from repro.southbound.channel import ControlChannel, SwitchAgent
from repro.southbound.config import (
    SOUTHBOUND_STREAM,
    ChannelConfig,
    SouthboundChaosConfig,
)
from repro.southbound.metrics import (
    EpochConvergence,
    SouthboundMetrics,
    TXN_COMMITTED,
)
from repro.southbound.state import (
    NetworkState,
    SwitchDiff,
    class_fingerprint,
    diff_states,
    read_installed,
    render_desired,
)
from repro.southbound.transaction import Transaction
from repro.traffic.classes import TrafficClass
from repro.vnf.instance import VNFInstance


class SouthboundFabric:
    """Fault-tolerant rule distribution for one data-plane network.

    Args:
        seed: the *run* seed; all channel randomness lives on
            ``derive(seed, "chaos.southbound")`` child streams, so the
            fabric never perturbs traffic or data-plane chaos draws.
        rulegen: used to materialise VNF instances referenced by pushed
            rules (instance creation is hypervisor-local, not a rule).
        chaos: the control-plane fault model; the default injects
            nothing, making the channel a deterministic 70 ms round trip.
    """

    def __init__(
        self,
        sim: Simulator,
        network: DataPlaneNetwork,
        seed: int,
        rulegen: RuleGenerator,
        config: Optional[ChannelConfig] = None,
        chaos: Optional[SouthboundChaosConfig] = None,
        drain_retired: bool = False,
    ) -> None:
        self.sim = sim
        self.network = network
        self.rulegen = rulegen
        #: Opt-in make-before-break instance drain (elastic scale-in):
        #: when a pushed epoch stops referencing an instance, the fabric
        #: shuts it down at convergence — after the new rules are live
        #: everywhere, so no packet ever needed the retired instance.
        self.drain_retired = drain_retired
        self.drained_total = 0
        self._retiring: List[str] = []
        self.config = config or ChannelConfig()
        self.chaos = chaos or SouthboundChaosConfig()
        self.metrics = SouthboundMetrics()
        #: Degradation hooks for the chaos layer (set by ChaosEngine).
        self.on_degraded: Optional[Callable[[str, float], None]] = None
        self.on_restored: Optional[Callable[[str, float], None]] = None

        base = derive(seed, SOUTHBOUND_STREAM)
        self.channels: Dict[str, ControlChannel] = {}
        for s in sorted(network.switches):
            agent = SwitchAgent(s, network, on_paths_applied=self._paths_applied)
            self.channels[s] = ControlChannel(
                sim,
                agent,
                self.config,
                self.chaos,
                SeededRNG(derive(base, f"channel.{s}")),
                self.metrics,
                on_circuit_open=self._circuit_opened,
                on_circuit_close=self._circuit_closed,
            )

        self.desired: Optional[NetworkState] = None
        self.epoch = 0
        self.converged_epoch = -1
        self.desired_since = 0.0
        self.versions: Dict[str, int] = {}
        self._fingerprints: Dict[str, tuple] = {}
        self.instances: Dict[str, VNFInstance] = {}
        self.active_paths: Dict[str, tuple] = {}
        self._txn_counter = 0
        #: Diff summary of the most recent :meth:`push_desired` (not of
        #: reconciler repairs); recovery reports it per convergence.
        self.last_push: Dict[str, int] = {"switches": 0, "ops": 0, "vsw_ops": 0}
        self.current_txn: Optional[Transaction] = None
        self._on_converged: Optional[Callable[[EpochConvergence], None]] = None
        self._degraded_solver = False
        self._reconcile_timer: Optional[Timer] = None

    # ------------------------------------------------------------------
    # Desired-state lifecycle
    # ------------------------------------------------------------------
    def adopt(
        self,
        rules: GeneratedRules,
        classes: Sequence[TrafficClass],
        instances: Optional[Dict[str, VNFInstance]] = None,
    ) -> None:
        """Bless the legacy-installed state as desired epoch 0.

        The initial deployment goes through the controller's normal
        install path; the fabric adopts the result, so by construction
        epoch 0 is already converged (``drift_count() == 0``).
        """
        self.instances = dict(instances or {})
        self._fingerprints = {
            c.class_id: class_fingerprint(rules, c) for c in classes
        }
        self.versions = {}
        self.desired = render_desired(
            sorted(self.network.switches),
            sorted(self.network.vswitches),
            rules,
            classes,
            {},
            self.versions,
        )
        self.active_paths = {c.class_id: tuple(c.path) for c in classes}
        self.epoch = 0
        self.converged_epoch = 0
        self.desired_since = self.sim.now

    def push_desired(
        self,
        rules: GeneratedRules,
        classes: Sequence[TrafficClass],
        stranded: Optional[Dict[str, str]] = None,
        instances: Optional[Dict[str, VNFInstance]] = None,
        on_converged: Optional[Callable[[EpochConvergence], None]] = None,
        degraded_solver: bool = False,
    ) -> int:
        """Open a new desired-state epoch and start pushing toward it.

        Args:
            stranded: ``class_id -> ingress switch`` of quarantined
                classes (their rules are withdrawn; a DROP guards the
                ingress; their registered path is deliberately kept so
                in-flight packets still walk into the DROP).
            instances: the surviving instance map (replaces the
                fabric's; dead instances must not linger here).
            on_converged: fired exactly once, when every switch first
                reaches zero drift against this epoch.

        Returns:
            The new epoch number.
        """
        stranded = dict(stranded or {})
        if instances is not None:
            self.instances = dict(instances)
        current = {c.class_id for c in classes}
        for c in classes:
            fp = class_fingerprint(rules, c)
            old = self._fingerprints.get(c.class_id)
            if old is not None and old != fp:
                # Content changed: new sub-ID version => pure-add rules.
                self.versions[c.class_id] = self.versions.get(c.class_id, 0) + 1
            self._fingerprints[c.class_id] = fp
        for cid in list(self._fingerprints):
            if cid not in current:
                del self._fingerprints[cid]

        self.instances = self.rulegen.materialize_instances(
            rules, self.network, sim=self.sim, instances=self.instances
        )
        if self.drain_retired:
            referenced = {
                key
                for rule_list in rules.vswitch_rules.values()
                for _, _, rule in rule_list
                for key in rule.instance_ids
            }
            self._retiring = sorted(k for k in self.instances if k not in referenced)
        else:
            self._retiring = []
        self.desired = render_desired(
            sorted(self.network.switches),
            sorted(self.network.vswitches),
            rules,
            classes,
            stranded,
            self.versions,
        )
        self.epoch += 1
        self.desired_since = self.sim.now
        self._on_converged = on_converged
        self._degraded_solver = degraded_solver
        diffs = self._diffs()
        vsw_kinds = ("vsw_put", "vsw_del", "origin_sync")
        self.last_push = {
            "switches": len(diffs),
            "ops": sum(d.op_count() for d in diffs),
            "vsw_ops": sum(
                1
                for d in diffs
                for op in (*d.adds, *d.swap, *d.dels)
                if op[0] in vsw_kinds
            ),
        }
        self._launch(diffs)
        return self.epoch

    # ------------------------------------------------------------------
    # Reconciliation (anti-entropy)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic reconciler."""
        if self._reconcile_timer is None:
            self._reconcile_timer = self.sim.every(
                self.config.reconcile_interval, self._reconcile
            )

    def stop(self) -> None:
        """Disarm the reconciler and settle degraded-time accounting."""
        if self._reconcile_timer is not None:
            self._reconcile_timer.cancel()
            self._reconcile_timer = None
        for channel in self.channels.values():
            channel.finalize(self.sim.now)

    # ------------------------------------------------------------------
    # Crash tolerance (see repro.resilience)
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Sever the controller side of this fabric in place.

        The switches keep every installed rule and VNF instance — only
        the controller-resident halves die: the reconciler stops, every
        control channel goes dead (already-scheduled deliveries, acks
        and timeouts become no-ops), and the in-flight transaction is
        orphaned.  Recovery builds a *new* fabric over the same network
        and re-adopts this surviving wire state through its reconciler.
        """
        if self._reconcile_timer is not None:
            self._reconcile_timer.cancel()
            self._reconcile_timer = None
        for channel in self.channels.values():
            channel.dead = True
        self.current_txn = None
        self._on_converged = None

    def restore(
        self,
        rules: GeneratedRules,
        classes: Sequence[TrafficClass],
        instances: Dict[str, VNFInstance],
        versions: Dict[str, int],
        epoch: int,
        converged_epoch: int,
    ) -> None:
        """Rebuild checkpointed desired state without opening an epoch.

        The recovery counterpart of :meth:`adopt`: desired state, class
        versions, and epoch counters come from the checkpoint verbatim
        (``versions`` keeps entries for deleted class IDs — per-class
        version numbers must continue the old numbering or a post-crash
        delete + re-create would render different sub-IDs than a
        never-crashed run).  Nothing is pushed here; the periodic
        reconciler diffs the surviving installed state against this
        desired state and repairs only the drift — never a blind
        reinstall.  Fresh :class:`SwitchAgent`s start at epoch -1 with
        empty cookie sets, so a restored epoch >= 0 is always accepted —
        the recovery analogue of a Kafka-style generation reset.
        """
        self.instances = self.rulegen.materialize_instances(
            rules, self.network, sim=self.sim, instances=dict(instances)
        )
        self._fingerprints = {
            c.class_id: class_fingerprint(rules, c) for c in classes
        }
        self.versions = {cid: int(v) for cid, v in versions.items()}
        self.desired = render_desired(
            sorted(self.network.switches),
            sorted(self.network.vswitches),
            rules,
            classes,
            {},
            self.versions,
        )
        self.active_paths = {c.class_id: tuple(c.path) for c in classes}
        self.epoch = int(epoch)
        self.converged_epoch = int(converged_epoch)
        self.desired_since = self.sim.now

    def _reconcile(self) -> None:
        if self.desired is None:
            return
        diffs = self._diffs()
        drift = sum(d.op_count() for d in diffs)
        if self.current_txn is not None:
            # A transaction owns the wire; measuring is fine, repairing
            # would race it.
            self.metrics.record_reconcile(drift, repaired=False)
            return
        if drift == 0:
            self.metrics.record_reconcile(0, repaired=False)
            self._note_converged()
            return
        self.metrics.record_reconcile(drift, repaired=True)
        self._launch(diffs)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def _launch(self, diffs: List[SwitchDiff]) -> None:
        if not diffs:
            self._note_converged()
            return
        self._txn_counter += 1
        txn = Transaction(
            self.sim,
            self.channels,
            self.epoch,
            self._txn_counter,
            diffs,
            on_done=lambda outcome, rollback_ops: None,
        )
        txn.on_done = lambda outcome, rollback_ops: self._txn_done(
            txn, outcome, rollback_ops
        )
        self.current_txn = txn
        txn.start()

    def _txn_done(self, txn: Transaction, outcome: str, rollback_ops: int) -> None:
        self.metrics.record_transaction(outcome, rollback_ops)
        if self.current_txn is txn:
            self.current_txn = None
        if outcome == TXN_COMMITTED and txn.epoch == self.epoch:
            if not self._diffs():
                self._note_converged()
        # Every other outcome: the reconciler drives convergence.

    def _note_converged(self) -> None:
        if self.converged_epoch >= self.epoch:
            return
        self.converged_epoch = self.epoch
        if self._retiring:
            # Drain retired instances only now — the epoch's rules are
            # installed everywhere, so nothing can route through them.
            for key in self._retiring:
                inst = self.instances.pop(key, None)
                if inst is not None:
                    inst.shutdown()
                    self.drained_total += 1
            self._retiring = []
        record = EpochConvergence(
            epoch=self.epoch,
            pushed_at=self.desired_since,
            converged_at=self.sim.now,
            degraded_solver=self._degraded_solver,
        )
        self.metrics.record_convergence(record)
        callback = self._on_converged
        if callback is not None:
            callback(record)

    # ------------------------------------------------------------------
    # Fault hooks (chaos injector)
    # ------------------------------------------------------------------
    def disconnect(self, switch: str) -> None:
        self.channels[switch].disconnect()

    def reconnect(self, switch: str) -> None:
        self.channels[switch].reconnect()

    def _circuit_opened(self, switch: str, now: float) -> None:
        if self.on_degraded is not None:
            self.on_degraded(switch, now)

    def _circuit_closed(self, switch: str, now: float) -> None:
        if self.on_restored is not None:
            self.on_restored(switch, now)

    def _paths_applied(self, paths: tuple) -> None:
        for class_id, path in paths:
            self.active_paths[class_id] = tuple(path)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.converged_epoch >= self.epoch

    def drift_count(self) -> int:
        """Total op count separating installed from desired state."""
        return sum(d.op_count() for d in self._diffs())

    def degraded_switches(self) -> List[str]:
        return sorted(s for s, c in self.channels.items() if c.degraded)

    def active_path(self, class_id: str) -> Optional[tuple]:
        """The routing path currently live for a class (probe oracle)."""
        return self.active_paths.get(class_id)

    def state_signature(self) -> str:
        """Canonical JSON of installed state + channel ledger.

        Bit-identical across same-seed runs; the bit-identity tests and
        the ``southbound-chaos`` experiment both hash this.
        """
        return json.dumps(
            {
                "epoch": self.epoch,
                "converged_epoch": self.converged_epoch,
                "installed": read_installed(self.network).signature_payload(),
                "metrics": self.metrics.to_dict(),
            },
            sort_keys=True,
        )

    def _diffs(self) -> List[SwitchDiff]:
        assert self.desired is not None
        return diff_states(read_installed(self.network), self.desired)
