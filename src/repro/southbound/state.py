"""Desired vs installed data-plane state: rendering, reading, diffing.

The fabric's reconciler and its transactional installer share one
diff engine: *desired* state is rendered from
:class:`~repro.core.rulegen.GeneratedRules` (plus quarantine entries for
stranded classes), *installed* state is read back from the live
:class:`~repro.dataplane.network.DataPlaneNetwork`, and the per-switch
difference becomes phased op lists (adds → classification swap →
deletes) for the make-before-break transaction.

Sub-class ID versioning (the make-before-break enabler)
-------------------------------------------------------

A rule *update* for an existing ``(class, sub)`` vSwitch key cannot be
pushed safely in any phase: while switches disagree, a packet classified
by an old entry could be processed by a new rule half-way (policy
violation).  The fabric therefore bumps a per-class *version* whenever a
class's rule content changes, and renders every sub-class ID of that
class as ``sub_id + version × VERSION_STRIDE``.  New-version rules are
pure *adds* — unreferenced (inert) until the class's ingress
classification swaps to the new IDs in one atomic sync — and the old
version's rules become pure *deletes* afterwards.  Sub-class IDs are
internal correlation tags (matched only between a classification entry's
action and the vSwitch rule key), so renumbering is invisible to the
data plane's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.rulegen import GeneratedRules
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.switch import (
    classification_entry,
    host_match_entry,
    pass_by_entry,
    quarantine_entry,
)
from repro.dataplane.vswitch import UPLINK
from repro.southbound.messages import EntrySpec, entry_spec
from repro.traffic.classes import TrafficClass

#: Gap between consecutive sub-class ID versions of one class.  Far above
#: any real sub-class count (TagAllocator IDs are small ints), so two
#: versions can never collide.
VERSION_STRIDE = 1_000_000


def versioned(sub_id: int, version: int) -> int:
    """The wire sub-class ID of ``sub_id`` at ``version``."""
    return sub_id + version * VERSION_STRIDE


def _classify_prefix(switch: str) -> str:
    return f"{switch}/classify/"


@dataclass
class NetworkState:
    """Canonical per-switch snapshot of every APPLE-managed rule.

    Used for both the *desired* rendering and the *installed* read-back,
    so convergence is literally ``installed == desired`` field by field.

    Attributes:
        tcam: per physical switch, entries by name.
        vsw: per host switch, vSwitch rules by ``(class_id, sub_id)`` →
            ``(instance_ids, exit_host_tag)``.
        origin: per host switch, the origin classification tuples.
        paths: registered routing path per class (desired side only lists
            classes of the current plan; stale installed paths of removed
            classes are deliberately kept — quarantine needs a path to
            walk packets into the ingress DROP).
    """

    tcam: Dict[str, Dict[str, EntrySpec]] = field(default_factory=dict)
    vsw: Dict[str, Dict[Tuple[str, int], Tuple[Tuple[str, ...], str]]] = field(
        default_factory=dict
    )
    origin: Dict[str, Tuple[tuple, ...]] = field(default_factory=dict)
    paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def signature_payload(self) -> dict:
        """JSON-ready canonical form (tests compare state signatures)."""
        return {
            "tcam": {
                s: sorted(map(repr, specs.values()))
                for s, specs in sorted(self.tcam.items())
            },
            "vsw": {
                s: sorted(
                    repr((k, v)) for k, v in table.items()
                )
                for s, table in sorted(self.vsw.items())
            },
            "origin": {
                s: sorted(map(repr, tup)) for s, tup in sorted(self.origin.items())
            },
        }


def class_fingerprint(
    rules: GeneratedRules, cls: TrafficClass
) -> tuple:
    """Everything about one class's rules that must swap atomically.

    A change in any component (classification rows, vSwitch rules, origin
    rows, or the routing path) bumps the class's version, turning the
    update into add-new → swap → delete-old.
    """
    cid = cls.class_id
    classifications = []
    for switch, rs in sorted(rules.switch_rule_sets.items()):
        for row in rs.classifications:
            if row[0] == cid:
                classifications.append((switch, row))
    vsw_rows = []
    for switch, lst in sorted(rules.vswitch_rules.items()):
        for class_id, sub_id, rule in lst:
            if class_id == cid:
                vsw_rows.append(
                    (switch, sub_id, tuple(rule.instance_ids), rule.exit_host_tag)
                )
    origin_rows = []
    for switch, lst in sorted(rules.origin_rules.items()):
        for row in lst:
            if row[0] == cid:
                origin_rows.append((switch, row))
    return (
        tuple(classifications),
        tuple(vsw_rows),
        tuple(origin_rows),
        tuple(cls.path),
    )


def render_desired(
    all_switches: Iterable[str],
    host_switches: Iterable[str],
    rules: GeneratedRules,
    classes: Iterable[TrafficClass],
    stranded: Mapping[str, str],
    versions: Mapping[str, int],
) -> NetworkState:
    """Desired state for one plan.

    Args:
        all_switches: every physical switch (each gets at least pass-by).
        host_switches: switches with an APPLE host (vSwitch state exists).
        rules: the Rule Generator's output for the current plan.
        classes: the plan's classes (paths + ingress switches).
        stranded: class_id → ingress switch of quarantined classes.
        versions: per-class sub-ID version (see module docstring).
    """
    state = NetworkState()
    for s in all_switches:
        spec = entry_spec(pass_by_entry(s))
        state.tcam[s] = {spec[0]: spec}
    for s in host_switches:
        state.vsw.setdefault(s, {})
        state.origin.setdefault(s, ())

    for s, rs in rules.switch_rule_sets.items():
        table = state.tcam.setdefault(s, {})
        if rs.host_match:
            spec = entry_spec(host_match_entry(s))
            table[spec[0]] = spec
        for class_id, hash_range, sub_id, first_host in rs.classifications:
            vsub = versioned(sub_id, versions.get(class_id, 0))
            spec = entry_spec(
                classification_entry(s, class_id, hash_range, vsub, first_host)
            )
            table[spec[0]] = spec

    for class_id, src in stranded.items():
        table = state.tcam.setdefault(src, {})
        spec = entry_spec(quarantine_entry(src, class_id))
        table[spec[0]] = spec

    for s, lst in rules.vswitch_rules.items():
        table = state.vsw.setdefault(s, {})
        for class_id, sub_id, rule in lst:
            vsub = versioned(sub_id, versions.get(class_id, 0))
            table[(class_id, vsub)] = (
                tuple(rule.instance_ids),
                rule.exit_host_tag,
            )

    for s, lst in rules.origin_rules.items():
        rows = []
        for class_id, hash_range, sub_id, first_host in lst:
            vsub = versioned(sub_id, versions.get(class_id, 0))
            rows.append((class_id, tuple(hash_range), vsub, first_host))
        state.origin[s] = tuple(rows)

    for cls in classes:
        state.paths[cls.class_id] = tuple(cls.path)
    return state


def read_installed(network: DataPlaneNetwork) -> NetworkState:
    """Read the live network back into the canonical state shape."""
    state = NetworkState()
    for s, sw in network.switches.items():
        state.tcam[s] = {e.name: entry_spec(e) for e in sw.table.entries()}
    for s, vsw in network.vswitches.items():
        table: Dict[Tuple[str, int], Tuple[Tuple[str, ...], str]] = {}
        for (in_port, class_id, sub_id), rule in vsw.installed_rules().items():
            if in_port != UPLINK or sub_id is None:
                continue
            table[(class_id, sub_id)] = (
                tuple(rule.instance_ids),
                rule.exit_host_tag,
            )
        state.vsw[s] = table
        state.origin[s] = tuple(
            (cid, tuple(hr), sid, fh)
            for cid, hr, sid, fh in vsw.installed_origin_rules()
        )
    state.paths = dict(network.class_paths)
    return state


@dataclass
class SwitchDiff:
    """Phased op lists reconciling one switch toward desired state."""

    switch: str
    adds: List[tuple] = field(default_factory=list)
    swap: List[tuple] = field(default_factory=list)
    dels: List[tuple] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.adds or self.swap or self.dels)

    def op_count(self) -> int:
        return len(self.adds) + len(self.swap) + len(self.dels)


def diff_states(
    installed: NetworkState, desired: NetworkState
) -> List[SwitchDiff]:
    """Per-switch phased diffs (only switches with work), sorted by name.

    Phase safety invariants:

    * ``adds`` contains only state that is *inert* until the swap —
      non-classification TCAM entries (host-match for newly used hosts,
      quarantine DROPs below classification priority) and vSwitch rules
      for keys nothing classifies to yet.
    * ``swap`` is one atomic ``classify_sync`` (and/or ``origin_sync``)
      per switch: classification entries and the affected class paths
      change together, so at every instant each class's packets are
      either fully old-route or fully new-route.
    * ``dels`` removes only state nothing references once every swap has
      been acknowledged.
    """
    out: List[SwitchDiff] = []
    switches = sorted(set(installed.tcam) | set(desired.tcam))
    for s in switches:
        diff = SwitchDiff(switch=s)
        prefix = _classify_prefix(s)
        inst = installed.tcam.get(s, {})
        want = desired.tcam.get(s, {})

        inst_classify = {n: v for n, v in inst.items() if n.startswith(prefix)}
        want_classify = {n: v for n, v in want.items() if n.startswith(prefix)}
        inst_other = {n: v for n, v in inst.items() if n not in inst_classify}
        want_other = {n: v for n, v in want.items() if n not in want_classify}

        for name in sorted(want_other):
            if name not in inst_other:
                diff.adds.append(("tcam_put", want_other[name]))
            elif inst_other[name] != want_other[name]:
                # Same-name content change (should not occur for the
                # static entry kinds; handled atomically for safety).
                diff.swap.append(("tcam_put", want_other[name]))
        for name in sorted(inst_other):
            if name not in want_other:
                diff.dels.append(("tcam_del", name))

        if set(inst_classify.items()) != set(want_classify.items()):
            paths = _paths_for_switch(s, desired)
            diff.swap.append(
                (
                    "classify_sync",
                    tuple(want_classify[n] for n in sorted(want_classify)),
                    paths,
                )
            )

        inst_vsw = installed.vsw.get(s, {})
        want_vsw = desired.vsw.get(s, {})
        for key in sorted(want_vsw):
            if key not in inst_vsw:
                ids, tag = want_vsw[key]
                diff.adds.append(("vsw_put", key[0], key[1], ids, tag))
            elif inst_vsw[key] != want_vsw[key]:
                ids, tag = want_vsw[key]
                diff.swap.append(("vsw_put", key[0], key[1], ids, tag))
        for key in sorted(inst_vsw):
            if key not in want_vsw:
                diff.dels.append(("vsw_del", key[0], key[1]))

        inst_origin = installed.origin.get(s, ())
        want_origin = desired.origin.get(s, ())
        if tuple(inst_origin) != tuple(want_origin):
            paths = _paths_for_switch(s, desired)
            diff.swap.append(("origin_sync", tuple(want_origin), paths))

        if not diff.empty:
            out.append(diff)
    return out


def _paths_for_switch(switch: str, desired: NetworkState) -> tuple:
    """(class_id, path) updates riding a sync op at ``switch``.

    A class's path is registered at its ingress switch's sync, so path
    and classification change in the same atomic apply.
    """
    rows = []
    for class_id, path in sorted(desired.paths.items()):
        if path and path[0] == switch:
            rows.append((class_id, tuple(path)))
    return tuple(rows)
