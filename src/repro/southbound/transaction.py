"""Transactional make-before-break delta installation.

A :class:`Transaction` pushes one set of per-switch
:class:`~repro.southbound.state.SwitchDiff` lists through three globally
barriered phases:

1. **add** — all inert additions (new-version vSwitch rules, host-match
   entries for newly used hosts, quarantine DROPs).  Nothing references
   them yet, so a half-applied add phase cannot change any packet's fate.
2. **swap** — the commit point: per-switch atomic ``classify_sync`` /
   ``origin_sync`` ops flip each class's ingress classification (and its
   registered path) from old-version to new-version sub-class IDs.
3. **del** — garbage collection of the now-unreferenced old state.

Phase N+1 starts only after *every* phase-N message is acknowledged, so
at no instant can a classification point at a rule that does not exist —
a partially applied delta can never open a policy-violation window.

Failure handling by phase:

* add fails → inverse ops are sent best-effort (``rolled_back``); even
  un-rolled-back leftovers are inert and match the (unchanged) desired
  state, so the reconciler simply finishes the job later.
* swap fails → ``failed``: some classes serve on the new version, the
  rest keep serving on the old one — both complete and correct.  No
  deletes run, so nothing any class references is removed.
* del fails → ``committed_partial``: the new state serves everywhere;
  only garbage remains, and anti-entropy sweeps it.
* any stale ack → ``superseded``: a newer epoch owns the switches; this
  transaction stops touching them immediately.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

from repro.sim.kernel import Simulator
from repro.southbound.channel import ControlChannel, RESULT_FAILED
from repro.southbound.messages import ACK_STALE, ControlMessage
from repro.southbound.metrics import (
    TXN_COMMITTED,
    TXN_COMMITTED_PARTIAL,
    TXN_FAILED,
    TXN_ROLLED_BACK,
    TXN_SUPERSEDED,
)
from repro.southbound.state import SwitchDiff

PHASES = ("add", "swap", "del")


def _inverse(op: tuple) -> tuple:
    """Rollback op undoing one add-phase op."""
    if op[0] == "tcam_put":
        return ("tcam_del", op[1][0])
    if op[0] == "vsw_put":
        return ("vsw_del", op[1], op[2])
    raise ValueError(f"add phase cannot contain {op[0]!r}")


class Transaction:
    """One three-phase push of a diff set toward the desired state."""

    def __init__(
        self,
        sim: Simulator,
        channels: Mapping[str, ControlChannel],
        epoch: int,
        txn_id: int,
        diffs: List[SwitchDiff],
        on_done: Callable[[str, int], None],
    ) -> None:
        self.sim = sim
        self.channels = channels
        self.epoch = epoch
        self.txn_id = txn_id
        self.on_done = on_done
        self.outcome: str = ""
        self.rollback_ops = 0
        self._ops: Dict[str, Dict[str, Tuple[tuple, ...]]] = {
            "add": {d.switch: tuple(d.adds) for d in diffs if d.adds},
            "swap": {d.switch: tuple(d.swap) for d in diffs if d.swap},
            "del": {d.switch: tuple(d.dels) for d in diffs if d.dels},
        }
        self._awaiting = 0
        self._failed_switches: List[str] = []
        self._superseded = False
        self._finished = False

    def start(self) -> None:
        self._run_phase(0)

    # ------------------------------------------------------------------
    def _run_phase(self, idx: int) -> None:
        while idx < len(PHASES) and not self._ops[PHASES[idx]]:
            idx += 1
        if idx >= len(PHASES):
            self._finish(TXN_COMMITTED)
            return
        phase = PHASES[idx]
        batches = sorted(self._ops[phase].items())
        self._awaiting = len(batches)
        self._failed_switches = []
        for switch, ops in batches:
            msg = ControlMessage.make(switch, self.epoch, self.txn_id, phase, ops)

            def _result(status: str, _switch: str = switch, _idx: int = idx) -> None:
                self._on_result(_idx, _switch, status)

            self.channels[switch].send(msg, _result)

    def _on_result(self, idx: int, switch: str, status: str) -> None:
        if self._finished:
            return
        if status == ACK_STALE:
            self._superseded = True
        elif status == RESULT_FAILED:
            self._failed_switches.append(switch)
        self._awaiting -= 1
        if self._awaiting > 0:
            return
        # Global barrier reached for phase ``idx``.
        if self._superseded:
            self._finish(TXN_SUPERSEDED)
            return
        phase = PHASES[idx]
        if self._failed_switches:
            if phase == "add":
                self._rollback()
                self._finish(TXN_ROLLED_BACK)
            elif phase == "swap":
                self._finish(TXN_FAILED)
            else:
                self._finish(TXN_COMMITTED_PARTIAL)
            return
        self._run_phase(idx + 1)

    # ------------------------------------------------------------------
    def _rollback(self) -> None:
        """Best-effort inverse of the add phase, to every add-switch.

        Sent even to switches whose add message "failed" — an ack may
        have been lost *after* the apply, and every inverse op is
        idempotent (deleting absent state is a no-op).  Results are
        ignored: leftovers are inert and anti-entropy owns them.
        """
        for switch, ops in sorted(self._ops["add"].items()):
            inverse = tuple(_inverse(op) for op in reversed(ops))
            self.rollback_ops += len(inverse)
            msg = ControlMessage.make(
                switch, self.epoch, self.txn_id, "rollback", inverse
            )
            self.channels[switch].send(msg, lambda status: None)

    def _finish(self, outcome: str) -> None:
        if self._finished:
            return
        self._finished = True
        self.outcome = outcome
        self.on_done(outcome, self.rollback_ops)
