"""Southbound channel tunables: latency, retries, chaos knobs.

Single source of truth for install latency (satellite of ISSUE 5): the
channel's healthy round-trip time defaults to
:data:`repro.cloud.opendaylight.RULE_INSTALL_SECONDS` — the paper's
measured 70 ms REST rule install — so the chaos recovery path, the
OpenDaylight facade and the southbound fabric all attribute the same
number instead of each hard-coding its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cloud.opendaylight import RULE_INSTALL_SECONDS

#: Label of the southbound chaos substream.  Derived independently of
#: ``chaos.schedule`` so enabling control-plane chaos never perturbs an
#: existing data-plane fault schedule (bit-identity across seeds).
SOUTHBOUND_STREAM = "chaos.southbound"


@dataclass(frozen=True)
class ChannelConfig:
    """Per-switch control-channel behaviour (controller side).

    Attributes:
        install_latency: healthy request→apply→ack round trip for one
            control message.  Defaults to the paper's measured 70 ms rule
            install; the forward (request) leg takes
            ``apply_fraction`` × this, the ack leg the rest.
        apply_fraction: fraction of the round trip spent before the switch
            applies the ops.
        retry_timeout: retransmission timeout of the first attempt.
        backoff_factor: multiplicative backoff per retry.
        max_backoff: cap on the retransmission timeout.
        jitter_frac: deterministic jitter: each attempt's timeout is
            scaled by ``1 ± jitter_frac`` drawn from the switch's seeded
            substream.
        max_attempts: attempts before a message (and its transaction
            phase) is declared failed.
        max_inflight: bounded in-flight window per switch; excess messages
            queue FIFO.
        circuit_threshold: consecutive timeouts before the breaker opens
            and the switch is marked degraded.
        circuit_probe_interval: while open, one probe retransmission per
            interval; the first ack closes the breaker.
        reconcile_interval: anti-entropy cadence of the fabric's
            desired-state reconciler.
    """

    install_latency: float = RULE_INSTALL_SECONDS
    apply_fraction: float = 0.5
    retry_timeout: float = 0.25
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter_frac: float = 0.25
    max_attempts: int = 8
    max_inflight: int = 2
    circuit_threshold: int = 3
    circuit_probe_interval: float = 1.0
    reconcile_interval: float = 0.5

    def rto(self, attempt: int) -> float:
        """Unjittered retransmission timeout of ``attempt`` (1-based)."""
        return min(
            self.retry_timeout * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )


@dataclass(frozen=True)
class SouthboundChaosConfig:
    """Seeded fault model of the control channel itself.

    All draws come from ``derive(seed, "chaos.southbound")`` (and
    per-switch child streams), so control-plane chaos composes with a
    data-plane :class:`~repro.chaos.schedule.FaultSchedule` without
    perturbing it.
    """

    #: Probability each message leg (request or ack) is lost.
    loss_rate: float = 0.0
    #: Mean of the exponential extra delay added per leg (seconds).
    extra_delay_mean: float = 0.0
    #: Number of switches that lose their control channel entirely for a
    #: window (drawn as ``FaultKind.SWITCH_DISCONNECT`` events).
    disconnects: int = 0
    #: Disconnect injection window (simulation seconds).
    window: Tuple[float, float] = (5.0, 25.0)
    #: Disconnect duration range (seconds).
    disconnect_duration: Tuple[float, float] = (2.0, 6.0)

    def enabled(self) -> bool:
        """Whether any fault injection is configured at all."""
        return (
            self.loss_rate > 0
            or self.extra_delay_mean > 0
            or self.disconnects > 0
        )
