"""Sub-class realisation: hash ranges and their prefix-set equivalents.

Sec. V-A defines a sub-class as the flows of a class that traverse the same
VNF-instance sequence, and proposes two realisations:

1. *Consistent hashing* — ``<10.1.1.0/24, h ∈ [0, 0.5)>`` — ideal but not
   supported by hardware switches.
2. *Prefix splitting* — ``<10.1.1.128/25>`` — implementable with wildcard
   TCAM rules, at the cost of possibly several rules per sub-class.

This module converts a target fraction interval into the minimal CIDR set
covering the corresponding address sub-range, and reports the rule count —
the TCAM cost that motivates the tagging scheme (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.classify.rules import format_prefix, parse_prefix


def range_to_cidrs(lo: int, hi: int, bits: int = 32) -> List[Tuple[int, int]]:
    """Minimal CIDR cover of the inclusive integer range ``[lo, hi]``.

    Returns (base, prefix_len) pairs.  Standard greedy algorithm: repeatedly
    take the largest aligned block starting at ``lo`` that fits.
    """
    if lo > hi:
        raise ValueError(f"empty range ({lo}, {hi})")
    if lo < 0 or hi >= (1 << bits):
        raise ValueError(f"range ({lo}, {hi}) outside {bits}-bit space")
    cidrs: List[Tuple[int, int]] = []
    while lo <= hi:
        # Largest block aligned at lo: limited by lo's trailing zeros...
        max_align = lo & -lo if lo else 1 << bits
        # ...and by the remaining span.
        span = hi - lo + 1
        block = max_align
        while block > span:
            block >>= 1
        plen = bits - block.bit_length() + 1
        cidrs.append((lo, plen))
        lo += block
    return cidrs


def range_to_cidr_count(lo: int, hi: int, bits: int = 32) -> int:
    """Number of CIDR blocks needed for ``[lo, hi]`` (TCAM entries)."""
    return len(range_to_cidrs(lo, hi, bits=bits))


def fraction_to_prefixes(
    class_prefix: str, frac_lo: float, frac_hi: float
) -> List[str]:
    """Prefixes realising the fraction interval ``[frac_lo, frac_hi)`` of a class.

    The class's address block is treated as the hash domain: the fraction
    interval maps to an address sub-range, which is covered by a minimal
    CIDR set.  ``fraction_to_prefixes("10.1.1.0/24", 0.5, 1.0)`` returns
    ``["10.1.1.128/25"]`` — the paper's worked example.

    Boundaries are rounded identically for adjacent intervals, so the
    prefix sets of a split's consecutive sub-classes tile the block with
    no overlap.  An interval narrower than one address after rounding gets
    no prefixes (its share is below the hardware's resolution).
    """
    if not 0.0 <= frac_lo < frac_hi <= 1.0:
        raise ValueError(f"need 0 <= frac_lo < frac_hi <= 1, got ({frac_lo}, {frac_hi})")
    base_lo, base_hi = parse_prefix(class_prefix)
    size = base_hi - base_lo + 1
    start = base_lo + int(round(frac_lo * size))
    stop = base_lo + int(round(frac_hi * size)) - 1
    if stop < start:
        return []  # narrower than one address at this block size
    return [format_prefix(lo, plen) for lo, plen in range_to_cidrs(start, stop)]


@dataclass(frozen=True)
class SubclassSplit:
    """A class split into weighted sub-class hash ranges.

    Attributes:
        class_prefix: the class's wildcard block (hash domain).
        boundaries: the cumulative split points; sub-class ``i`` owns the
            hash interval ``[boundaries[i], boundaries[i+1])``.
    """

    class_prefix: str
    boundaries: Tuple[float, ...]

    @staticmethod
    def from_weights(class_prefix: str, weights: List[float]) -> "SubclassSplit":
        """Split by normalised weights (one hash range per sub-class)."""
        if not weights or any(w < 0 for w in weights):
            raise ValueError("weights must be non-empty and non-negative")
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        bounds = [0.0]
        acc = 0.0
        for w in weights:
            acc += w / total
            bounds.append(min(acc, 1.0))
        bounds[-1] = 1.0
        return SubclassSplit(class_prefix, tuple(bounds))

    @property
    def num_subclasses(self) -> int:
        return len(self.boundaries) - 1

    def hash_range(self, i: int) -> Tuple[float, float]:
        """Sub-class ``i``'s hash interval ``[lo, hi)``."""
        return (self.boundaries[i], self.boundaries[i + 1])

    def weight(self, i: int) -> float:
        lo, hi = self.hash_range(i)
        return hi - lo

    def prefixes(self, i: int) -> List[str]:
        """Prefix realisation of sub-class ``i`` (the hardware method)."""
        lo, hi = self.hash_range(i)
        if hi <= lo:
            return []
        return fraction_to_prefixes(self.class_prefix, lo, hi)

    def total_prefix_rules(self) -> int:
        """TCAM entries for the whole split under the prefix method."""
        return sum(len(self.prefixes(i)) for i in range(self.num_subclasses) if self.weight(i) > 0)

    def subclass_of_hash(self, h: float) -> int:
        """Which sub-class a flow with hash value ``h`` ∈ [0,1) belongs to."""
        if not 0.0 <= h < 1.0:
            raise ValueError(f"hash value must be in [0, 1), got {h}")
        for i in range(self.num_subclasses):
            lo, hi = self.hash_range(i)
            if lo <= h < hi:
                return i
        # h falls in a zero-width trailing range; return the last non-empty.
        for i in reversed(range(self.num_subclasses)):
            if self.weight(i) > 0:
                return i
        raise ValueError("split has no non-empty sub-class")
