"""Packet-header fields and the header space they span.

A header is modelled as a tuple of unsigned integer fields (source address,
destination address, protocol, ports).  Predicates constrain each field to
integer intervals; the cross-product of field domains is the header space
over which atomic predicates partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple


@dataclass(frozen=True)
class HeaderField:
    """One header field: a name and a bit width.

    The field's domain is ``[0, 2**bits - 1]``.
    """

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.bits > 128:
            raise ValueError(f"field {self.name!r}: bits must be in 1..128")

    @property
    def max_value(self) -> int:
        return (1 << self.bits) - 1

    @property
    def size(self) -> int:
        """Number of values in the domain."""
        return 1 << self.bits


class FieldSpace:
    """An ordered set of header fields defining the header space."""

    def __init__(self, fields: Sequence[HeaderField]) -> None:
        if not fields:
            raise ValueError("FieldSpace needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")
        self.fields: Tuple[HeaderField, ...] = tuple(fields)
        self._by_name: Dict[str, HeaderField] = {f.name: f for f in fields}

    def __iter__(self) -> Iterator[HeaderField]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def field(self, name: str) -> HeaderField:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown field {name!r}; known: {[f.name for f in self.fields]}"
            ) from None

    def total_volume(self) -> int:
        """Number of distinct headers in the full space."""
        vol = 1
        for f in self.fields:
            vol *= f.size
        return vol


SRC_IP = HeaderField("src_ip", 32)
DST_IP = HeaderField("dst_ip", 32)
PROTO = HeaderField("proto", 8)
SRC_PORT = HeaderField("src_port", 16)
DST_PORT = HeaderField("dst_port", 16)

#: The 5-tuple header space used across the repository.
DEFAULT_FIELDS = FieldSpace([SRC_IP, DST_IP, PROTO, SRC_PORT, DST_PORT])
