"""Match rules and IPv4-prefix handling.

Bridges operator-facing rule syntax (``10.1.1.0/24``, port ranges, protocol
names) and the predicate algebra.  Classes "can usually be expressed by
wildcard rules" (Sec. IV-A); this module produces those wildcard/prefix
predicates and counts the TCAM entries they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.classify.fields import DEFAULT_FIELDS, FieldSpace
from repro.classify.predicates import Cube, Predicate

PROTO_NUMBERS: Dict[str, int] = {"icmp": 1, "tcp": 6, "udp": 17}


def parse_prefix(prefix: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` into the inclusive address interval (lo, hi)."""
    try:
        addr_str, _, len_str = prefix.partition("/")
        plen = int(len_str) if len_str else 32
        octets = [int(o) for o in addr_str.split(".")]
    except ValueError as exc:
        raise ValueError(f"bad prefix {prefix!r}") from exc
    if len(octets) != 4 or any(not 0 <= o <= 255 for o in octets):
        raise ValueError(f"bad address in prefix {prefix!r}")
    if not 0 <= plen <= 32:
        raise ValueError(f"bad prefix length in {prefix!r}")
    addr = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
    mask_bits = 32 - plen
    lo = (addr >> mask_bits) << mask_bits
    hi = lo | ((1 << mask_bits) - 1)
    return lo, hi


def format_prefix(lo: int, plen: int) -> str:
    """Render an address + prefix length back to dotted/CIDR text."""
    octets = [(lo >> s) & 0xFF for s in (24, 16, 8, 0)]
    return ".".join(str(o) for o in octets) + f"/{plen}"


def prefix_cube(
    space: FieldSpace,
    src: Optional[str] = None,
    dst: Optional[str] = None,
    proto: Optional[str] = None,
    dst_port: Optional[Tuple[int, int]] = None,
) -> Cube:
    """A cube matching the given prefixes / protocol / port range."""
    constraints: Dict[str, Tuple[int, int]] = {}
    if src is not None:
        constraints["src_ip"] = parse_prefix(src)
    if dst is not None:
        constraints["dst_ip"] = parse_prefix(dst)
    if proto is not None:
        num = PROTO_NUMBERS.get(proto.lower())
        if num is None:
            raise ValueError(f"unknown protocol {proto!r}")
        constraints["proto"] = (num, num)
    if dst_port is not None:
        constraints["dst_port"] = dst_port
    return Cube.make(space, constraints)


@dataclass(frozen=True)
class MatchRule:
    """An operator-facing match rule over the 5-tuple.

    Attributes mirror common ACL syntax; ``None`` means wildcard.
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    proto: Optional[str] = None
    dst_port: Optional[Tuple[int, int]] = None
    space: FieldSpace = field(default=DEFAULT_FIELDS, compare=False)

    def to_predicate(self) -> Predicate:
        """The packet set this rule matches."""
        return Predicate.of_cube(
            prefix_cube(
                self.space,
                src=self.src,
                dst=self.dst,
                proto=self.proto,
                dst_port=self.dst_port,
            )
        )

    def tcam_entries(self) -> int:
        """TCAM entries to express this rule.

        Prefixes and exact protocol are single-entry; an arbitrary port
        range expands into its minimal prefix cover.
        """
        if self.dst_port is None:
            return 1
        lo, hi = self.dst_port
        from repro.classify.split import range_to_cidr_count

        return range_to_cidr_count(lo, hi, bits=16)

    def describe(self) -> str:
        parts = []
        if self.src:
            parts.append(f"src={self.src}")
        if self.dst:
            parts.append(f"dst={self.dst}")
        if self.proto:
            parts.append(f"proto={self.proto}")
        if self.dst_port:
            parts.append(f"dst_port={self.dst_port[0]}-{self.dst_port[1]}")
        return "MatchRule(" + ", ".join(parts or ["*"]) + ")"
