"""Header-space predicates as unions of disjoint multi-field cubes.

The AP Verifier [44] represents packet sets as BDDs.  Here a packet set is
a :class:`Predicate`: a union of pairwise-disjoint :class:`Cube` objects,
each cube constraining every field to one integer interval.  Disjointness
is an invariant maintained by construction, which makes emptiness, volume,
and subset tests exact — everything atomic-predicate computation needs —
without a BDD library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.classify.fields import FieldSpace, HeaderField

Interval = Tuple[int, int]  # inclusive (lo, hi)


def _interval_intersect(a: Interval, b: Interval) -> Optional[Interval]:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    return (lo, hi) if lo <= hi else None


def _interval_subtract(a: Interval, b: Interval) -> List[Interval]:
    """Parts of ``a`` not covered by ``b`` (0, 1 or 2 intervals)."""
    inter = _interval_intersect(a, b)
    if inter is None:
        return [a]
    out = []
    if a[0] < inter[0]:
        out.append((a[0], inter[0] - 1))
    if inter[1] < a[1]:
        out.append((inter[1] + 1, a[1]))
    return out


@dataclass(frozen=True)
class Cube:
    """One rectangular region: each field constrained to one interval.

    ``intervals`` maps field name → inclusive (lo, hi).  Fields absent from
    the map are unconstrained (full domain).
    """

    space: FieldSpace
    intervals: Tuple[Tuple[str, Interval], ...]

    @staticmethod
    def make(space: FieldSpace, constraints: Optional[Dict[str, Interval]] = None) -> "Cube":
        """Build a cube from a {field: (lo, hi)} dict, validating bounds."""
        items: List[Tuple[str, Interval]] = []
        for name, (lo, hi) in sorted((constraints or {}).items()):
            fld = space.field(name)
            if not 0 <= lo <= hi <= fld.max_value:
                raise ValueError(
                    f"interval ({lo}, {hi}) out of range for field {name!r}"
                )
            if (lo, hi) != (0, fld.max_value):  # drop trivial constraints
                items.append((name, (lo, hi)))
        return Cube(space, tuple(items))

    # ------------------------------------------------------------------
    def interval_of(self, field: HeaderField) -> Interval:
        """The (possibly full-domain) interval constraining ``field``."""
        for name, iv in self.intervals:
            if name == field.name:
                return iv
        return (0, field.max_value)

    def volume(self) -> int:
        """Number of headers in the cube."""
        vol = 1
        for f in self.space.fields:
            lo, hi = self.interval_of(f)
            vol *= hi - lo + 1
        return vol

    def contains(self, header: Dict[str, int]) -> bool:
        """Membership test for a concrete header (missing fields = 0)."""
        for f in self.space.fields:
            lo, hi = self.interval_of(f)
            v = header.get(f.name, 0)
            if not lo <= v <= hi:
                return False
        return True

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Cube intersection, or None when empty."""
        constraints: Dict[str, Interval] = {}
        for f in self.space.fields:
            iv = _interval_intersect(self.interval_of(f), other.interval_of(f))
            if iv is None:
                return None
            constraints[f.name] = iv
        return Cube.make(self.space, constraints)

    def subtract(self, other: "Cube") -> List["Cube"]:
        """``self − other`` as pairwise-disjoint cubes.

        Standard per-field carving: for each field, split off the part of
        ``self`` outside ``other``'s interval, shrinking the remainder.
        """
        inter = self.intersect(other)
        if inter is None:
            return [self]
        pieces: List[Cube] = []
        remainder: Dict[str, Interval] = {
            f.name: self.interval_of(f) for f in self.space.fields
        }
        for f in self.space.fields:
            mine = remainder[f.name]
            theirs = other.interval_of(f)
            for part in _interval_subtract(mine, theirs):
                constraints = dict(remainder)
                constraints[f.name] = part
                pieces.append(Cube.make(self.space, constraints))
            clipped = _interval_intersect(mine, theirs)
            assert clipped is not None
            remainder[f.name] = clipped
        return pieces


class Predicate:
    """A packet set: a union of pairwise-disjoint cubes over one space."""

    def __init__(self, space: FieldSpace, cubes: Iterable[Cube] = ()) -> None:
        self.space = space
        self.cubes: Tuple[Cube, ...] = tuple(c for c in cubes if c.volume() > 0)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def everything(space: FieldSpace) -> "Predicate":
        return Predicate(space, [Cube.make(space)])

    @staticmethod
    def nothing(space: FieldSpace) -> "Predicate":
        return Predicate(space, [])

    @staticmethod
    def of_cube(cube: Cube) -> "Predicate":
        return Predicate(cube.space, [cube])

    # ------------------------------------------------------------------
    # Algebra (results keep the disjointness invariant)
    # ------------------------------------------------------------------
    def intersect(self, other: "Predicate") -> "Predicate":
        out: List[Cube] = []
        for a in self.cubes:
            for b in other.cubes:
                c = a.intersect(b)
                if c is not None:
                    out.append(c)
        return Predicate(self.space, out)

    def subtract(self, other: "Predicate") -> "Predicate":
        remaining = list(self.cubes)
        for b in other.cubes:
            nxt: List[Cube] = []
            for a in remaining:
                nxt.extend(a.subtract(b))
            remaining = nxt
        return Predicate(self.space, remaining)

    def complement(self) -> "Predicate":
        return Predicate.everything(self.space).subtract(self)

    def union(self, other: "Predicate") -> "Predicate":
        """Disjoint union: ``self ∪ (other − self)``."""
        return Predicate(
            self.space, list(self.cubes) + list(other.subtract(self).cubes)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.cubes

    def volume(self) -> int:
        """Exact header count (cubes are disjoint)."""
        return sum(c.volume() for c in self.cubes)

    def contains(self, header: Dict[str, int]) -> bool:
        return any(c.contains(header) for c in self.cubes)

    def equals(self, other: "Predicate") -> bool:
        """Semantic equality via symmetric difference emptiness."""
        return self.subtract(other).is_empty() and other.subtract(self).is_empty()

    def is_subset(self, other: "Predicate") -> bool:
        return self.subtract(other).is_empty()

    def overlaps(self, other: "Predicate") -> bool:
        return not self.intersect(other).is_empty()

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    def __repr__(self) -> str:
        return f"Predicate(cubes={len(self.cubes)}, volume={self.volume()})"
