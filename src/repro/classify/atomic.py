"""Atomic-predicate computation (Yang–Lam [44], cube-based).

Given the set of predicates appearing in the network's rules/policies, the
*atomic predicates* are the coarsest partition of header space such that
every input predicate is exactly a union of atoms.  APPLE uses them to
aggregate flows into equivalence classes (Sec. IV-A): two flows are in the
same class iff they fall in the same atom (and share a path).

Algorithm: start from the single atom "everything"; refine by each input
predicate P, replacing every atom A by the non-empty parts of A∩P and A−P.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.classify.fields import FieldSpace
from repro.classify.predicates import Predicate


@dataclass
class AtomicPredicates:
    """The result of atomic-predicate computation.

    Attributes:
        space: the header space partitioned.
        atoms: the disjoint atomic predicates covering the space.
        labels: for each input predicate index, the set of atom indices
            whose union equals that predicate.
    """

    space: FieldSpace
    atoms: List[Predicate]
    labels: List[FrozenSet[int]]

    def atoms_of(self, predicate_index: int) -> List[Predicate]:
        """The atoms composing input predicate ``predicate_index``."""
        return [self.atoms[i] for i in sorted(self.labels[predicate_index])]

    def atom_of_header(self, header: Dict[str, int]) -> int:
        """Index of the (unique) atom containing a concrete header."""
        for i, atom in enumerate(self.atoms):
            if atom.contains(header):
                return i
        raise ValueError(f"header {header} not in any atom (partition broken)")

    def equivalence_key(self, header: Dict[str, int]) -> FrozenSet[int]:
        """The set of input predicates matching this header's atom.

        Two headers with equal keys are indistinguishable by every input
        predicate — the equivalence-class relation of Sec. IV-A.
        """
        atom = self.atom_of_header(header)
        return frozenset(
            p for p, atom_set in enumerate(self.labels) if atom in atom_set
        )

    @property
    def num_atoms(self) -> int:
        return len(self.atoms)

    def verify_partition(self) -> bool:
        """Check atoms are pairwise disjoint and cover the space (test hook)."""
        total = sum(a.volume() for a in self.atoms)
        if total != self.space.total_volume():
            return False
        for i in range(len(self.atoms)):
            for j in range(i + 1, len(self.atoms)):
                if self.atoms[i].overlaps(self.atoms[j]):
                    return False
        return True


def compute_atomic_predicates(
    space: FieldSpace, predicates: Sequence[Predicate]
) -> AtomicPredicates:
    """Compute atomic predicates for the given inputs.

    Complexity is output-sensitive: each refinement at most doubles the atom
    count, and empty intersections are discarded immediately.
    """
    for p in predicates:
        if p.space is not space and p.space.fields != space.fields:
            raise ValueError("all predicates must share the field space")

    atoms: List[Predicate] = [Predicate.everything(space)]
    # memberships[k] = set of input-predicate indices fully containing atom k
    memberships: List[Set[int]] = [set()]

    for p_idx, pred in enumerate(predicates):
        new_atoms: List[Predicate] = []
        new_memberships: List[Set[int]] = []
        for atom, members in zip(atoms, memberships):
            inside = atom.intersect(pred)
            outside = atom.subtract(pred)
            if not inside.is_empty():
                new_atoms.append(inside)
                new_memberships.append(members | {p_idx})
            if not outside.is_empty():
                new_atoms.append(outside)
                new_memberships.append(set(members))
        atoms = new_atoms
        memberships = new_memberships

    labels: List[FrozenSet[int]] = []
    for p_idx in range(len(predicates)):
        labels.append(
            frozenset(k for k, members in enumerate(memberships) if p_idx in members)
        )
    return AtomicPredicates(space=space, atoms=atoms, labels=labels)
