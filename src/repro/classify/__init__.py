"""Flow classification: header-space predicates, atomic predicates, splits.

Sec. IV-A aggregates flows into equivalence classes using atomic-predicate
analysis [44][42]; Sec. V-A splits classes into sub-classes realised either
by consistent hashing or by prefix (wildcard-rule) sets.  This package
implements all three pieces from scratch:

* :mod:`repro.classify.predicates` — header-space predicates as unions of
  disjoint multi-field cubes (the BDD replacement; see DESIGN.md);
* :mod:`repro.classify.atomic` — Yang–Lam-style atomic-predicate partition;
* :mod:`repro.classify.rules` — match rules and IPv4-prefix handling;
* :mod:`repro.classify.split` — hash-range → minimal prefix-set conversion
  (the TCAM cost of the prefix sub-class method).
"""

from repro.classify.atomic import AtomicPredicates, compute_atomic_predicates
from repro.classify.fields import DEFAULT_FIELDS, HeaderField, FieldSpace
from repro.classify.predicates import Cube, Predicate
from repro.classify.rules import MatchRule, prefix_cube, parse_prefix
from repro.classify.split import fraction_to_prefixes, range_to_cidrs, SubclassSplit

__all__ = [
    "HeaderField",
    "FieldSpace",
    "DEFAULT_FIELDS",
    "Cube",
    "Predicate",
    "AtomicPredicates",
    "compute_atomic_predicates",
    "MatchRule",
    "prefix_cube",
    "parse_prefix",
    "fraction_to_prefixes",
    "range_to_cidrs",
    "SubclassSplit",
]
