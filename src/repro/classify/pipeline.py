"""The full Sec. IV-A classification pipeline: rules → atoms → classes.

Connects the classification substrate to class building: network operators
write policy *rule tables* (match → chain); atomic-predicate analysis
partitions header space so that every rule is a union of atoms; flows in
the same atom with the same (ingress, egress) pair — hence the same path —
form one traffic class.  "We use the recently developed atomic predicate
based analysis to classify flows into equivalence classes."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classify.atomic import AtomicPredicates, compute_atomic_predicates
from repro.classify.fields import DEFAULT_FIELDS, FieldSpace
from repro.classify.rules import MatchRule
from repro.topology.routing import Router
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain


@dataclass(frozen=True)
class PolicyRule:
    """One row of an operator policy table: match → chain."""

    match: MatchRule
    chain: PolicyChain


class PolicyRuleTable:
    """A first-match-wins policy table over header space.

    Args:
        rules: rules in priority order; a final catch-all
            (``MatchRule()``) is conventional but not required — headers
            matching no rule get no chain (and need no VNF placement).
    """

    def __init__(self, rules: Sequence[PolicyRule], space: FieldSpace = DEFAULT_FIELDS):
        self.rules: Tuple[PolicyRule, ...] = tuple(rules)
        self.space = space
        self._atoms: Optional[AtomicPredicates] = None

    # ------------------------------------------------------------------
    @property
    def atoms(self) -> AtomicPredicates:
        """Atomic predicates of the rule matches (computed once)."""
        if self._atoms is None:
            self._atoms = compute_atomic_predicates(
                self.space, [r.match.to_predicate() for r in self.rules]
            )
        return self._atoms

    def chain_for_atom(self, atom_index: int) -> Optional[PolicyChain]:
        """The chain the first matching rule assigns to an atom."""
        for rule_idx, atom_set in enumerate(self.atoms.labels):
            if atom_index in atom_set:
                return self.rules[rule_idx].chain
        return None

    def chain_for_header(self, header: Dict[str, int]) -> Optional[PolicyChain]:
        """First-match-wins lookup for a concrete header."""
        return self.chain_for_atom(self.atoms.atom_of_header(header))

    def atom_traffic_shares(self) -> List[Tuple[int, float]]:
        """(atom index, volume share) pairs, assuming uniform header mass.

        The share weights how much of a demand falls into each atom when
        no finer traffic information exists.
        """
        total = self.space.total_volume()
        return [
            (k, atom.volume() / total) for k, atom in enumerate(self.atoms.atoms)
        ]


def classes_from_rules(
    table: PolicyRuleTable,
    router: Router,
    demands: Sequence[Tuple[str, str, float]],
    min_share: float = 1e-6,
) -> List[TrafficClass]:
    """Build traffic classes from a policy table and pairwise demands.

    Each (src, dst, rate) demand is split across the table's atoms by
    volume share; atoms assigned the same chain are merged (they are
    indistinguishable to placement), giving exactly the paper's
    equivalence classes: same path + same policy chain.

    Args:
        demands: (ingress switch, egress switch, rate in Mbps) triples.
        min_share: atoms carrying less than this share of a demand are
            dropped as noise.
    """
    # Merge atoms by their assigned chain.
    share_by_chain: Dict[PolicyChain, float] = {}
    for atom_idx, share in table.atom_traffic_shares():
        chain = table.chain_for_atom(atom_idx)
        if chain is None or len(chain) == 0:
            continue
        share_by_chain[chain] = share_by_chain.get(chain, 0.0) + share

    classes: List[TrafficClass] = []
    for src, dst, rate in demands:
        if src == dst or rate <= 0:
            continue
        path = router.path(src, dst)
        for k, (chain, share) in enumerate(sorted(
            share_by_chain.items(), key=lambda kv: kv[0].names
        )):
            if share < min_share:
                continue
            classes.append(
                TrafficClass(
                    class_id=f"{src}->{dst}/{'+'.join(chain.names)}",
                    src=src,
                    dst=dst,
                    path=path,
                    chain=chain,
                    rate_mbps=rate * share,
                    share=min(share, 1.0),
                )
            )
    return classes
