"""Time-varying traffic synthesis: diurnal pattern + power-law MVR noise.

Sec. IX-A replays 672 snapshots per topology (one week at 15-minute
intervals).  Real backbone traffic shows "clear daily or weekly patterns"
(Sec. VI) plus short-term fluctuation whose variance follows a power law of
the mean — the mean–variance relationship (MVR) of [21] that the paper uses
to argue aggregated classes are smoother.  This module reproduces both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.sim.rng import derive
from repro.traffic.gravity import gravity_matrix
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

#: One week at 15-minute snapshots = the paper's 672 snapshots.
WEEK_SNAPSHOTS = 672
SNAPSHOT_INTERVAL = 900.0  # 15 minutes


@dataclass
class DiurnalModel:
    """Parameters of the temporal model.

    ``rate(t) = base · diurnal(t) · weekly(t) + MVR noise``, where

    * ``diurnal(t) = 1 + daily_amplitude · sin(2πt/86400 + phase)``,
    * ``weekly(t)`` damps weekends by ``weekend_dip``,
    * noise std = ``mvr_phi · mean^mvr_beta`` (power-law MVR, β ≈ 0.8 on
      measured backbones), truncated at zero.
    * ``burst_prob``/``burst_scale`` inject occasional short spikes — the
      small-time-scale dynamics fast failover must absorb (Fig. 12).
    """

    daily_amplitude: float = 0.4
    weekend_dip: float = 0.35
    mvr_phi: float = 0.25
    mvr_beta: float = 0.8
    burst_prob: float = 0.01
    burst_scale: float = 3.0

    def factor(self, t: float) -> float:
        """Deterministic diurnal × weekly modulation factor at time ``t``."""
        day = 86_400.0
        diurnal = 1.0 + self.daily_amplitude * np.sin(2 * np.pi * t / day - np.pi / 2)
        weekday = int(t // day) % 7
        weekly = 1.0 - (self.weekend_dip if weekday >= 5 else 0.0)
        return float(diurnal * weekly)


def synthesize_series(
    topo: Topology,
    total_mbps: float,
    snapshots: int = WEEK_SNAPSHOTS,
    interval: float = SNAPSHOT_INTERVAL,
    model: DiurnalModel = DiurnalModel(),
    seed: int = 0,
    weights=None,
    pairs=None,
) -> TrafficMatrixSeries:
    """Synthesise a time-varying traffic-matrix series for ``topo``.

    The spatial structure is a gravity-model base matrix; each snapshot
    modulates it with the diurnal/weekly factor and adds per-entry MVR noise
    and rare bursts.

    Args:
        total_mbps: aggregate demand of the base matrix.
        snapshots: number of snapshots (default: one week at 15 min).
        interval: seconds between snapshots.
        weights: optional per-node gravity weights (e.g. zero for switches
            that terminate no traffic, like data-center core switches).
        pairs: optional whitelist of (src, dst) pairs; other demands are
            zeroed and the matrix rescaled — the paper's UNIV1 methodology
            replays traces "between random source-destination pairs".
    """
    if snapshots < 1:
        raise ValueError("need at least one snapshot")
    base = gravity_matrix(topo, total_mbps, seed=seed, weights=weights).array
    if pairs is not None:
        index = {s: i for i, s in enumerate(topo.switches)}
        mask = np.zeros_like(base, dtype=bool)
        for src, dst in pairs:
            mask[index[src], index[dst]] = True
        base = np.where(mask, base, 0.0)
        kept = base.sum()
        if kept <= 0:
            raise ValueError("pair whitelist removed all demand")
        base = base * (total_mbps / kept)
    rng = np.random.default_rng(derive(seed, "traffic.mvr"))
    nodes = topo.switches
    n = len(nodes)
    mats = []
    for k in range(snapshots):
        t = k * interval
        mean = base * model.factor(t)
        std = np.where(
            mean > 0,
            model.mvr_phi * np.power(np.maximum(mean, 1e-9), model.mvr_beta),
            0.0,
        )
        snap = mean + rng.normal(0.0, 1.0, size=(n, n)) * std
        # Rare multiplicative bursts on individual entries.
        bursts = rng.random((n, n)) < model.burst_prob
        snap = np.where(bursts, snap * model.burst_scale, snap)
        snap = np.maximum(snap, 0.0)
        np.fill_diagonal(snap, 0.0)
        mats.append(TrafficMatrix(nodes, snap))
    return TrafficMatrixSeries(tuple(nodes), mats, interval)


def aggregate_smoothing_ratio(series: TrafficMatrixSeries, group_size: int = 8) -> float:
    """Coefficient-of-variation ratio: aggregated vs individual demands.

    Demonstrates the Sec. IV-A claim that class aggregation smooths traffic:
    returns CV(aggregate of ``group_size`` entries) / mean CV(entry), which
    is < 1 under power-law MVR.  Used by the aggregation ablation bench.
    """
    stacked = np.stack([s.array for s in series.snapshots])  # (T, N, N)
    t, n, _ = stacked.shape
    flat = stacked.reshape(t, n * n)
    active = flat[:, flat.mean(axis=0) > 0]
    if active.shape[1] < group_size:
        raise ValueError("not enough active demands to aggregate")

    def cv(x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=0)
        return np.where(mean > 0, x.std(axis=0) / np.maximum(mean, 1e-12), 0.0)

    individual_cv = float(cv(active).mean())
    groups = active[:, : (active.shape[1] // group_size) * group_size]
    grouped = groups.reshape(t, -1, group_size).sum(axis=2)
    aggregated_cv = float(cv(grouped).mean())
    if individual_cv == 0:
        return 1.0
    return aggregated_cv / individual_cv
