"""Gravity-model traffic-matrix synthesis (the FNSS stand-in).

The paper synthesises AS-3679 traffic matrices with the FNSS toolchain [35],
whose standard generator is the gravity model: demand between (s, d) is
proportional to the product of node weights.  Node weights are drawn from a
log-normal distribution, consistent with measured PoP-level traffic skew.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.topology.graph import Topology
from repro.sim.rng import derive
from repro.traffic.matrix import TrafficMatrix


def node_weights(
    topo: Topology,
    seed: int = 0,
    sigma: float = 0.5,
    degree_bias: float = 0.5,
) -> Dict[str, float]:
    """Per-node traffic weights: log-normal draw biased by node degree.

    High-degree switches (hubs) attract more traffic, as in real ISP maps.

    Args:
        sigma: log-normal shape (spread of weights).
        degree_bias: exponent applied to node degree as a multiplicative
            bias; 0 disables the bias.
    """
    rng = np.random.default_rng(derive(seed, "traffic.gravity"))
    weights = {}
    for node in topo.switches:
        base = float(rng.lognormal(mean=0.0, sigma=sigma))
        weights[node] = base * (max(topo.degree(node), 1) ** degree_bias)
    return weights


def gravity_matrix(
    topo: Topology,
    total_mbps: float,
    seed: int = 0,
    weights: Optional[Dict[str, float]] = None,
) -> TrafficMatrix:
    """A gravity-model matrix normalised to ``total_mbps`` aggregate demand.

    ``T[s][d] = total * w_s * w_d / (sum_i w_i)^2`` for s ≠ d, then
    renormalised so off-diagonal entries sum exactly to ``total_mbps``.
    """
    if total_mbps < 0:
        raise ValueError("total_mbps must be non-negative")
    nodes: Sequence[str] = topo.switches
    if weights is None:
        weights = node_weights(topo, seed=seed)
    w = np.array([weights[n] for n in nodes], dtype=float)
    if (w < 0).any():
        raise ValueError("node weights must be non-negative")
    outer = np.outer(w, w)
    np.fill_diagonal(outer, 0.0)
    total = outer.sum()
    if total <= 0:
        demands = np.zeros_like(outer)
    else:
        demands = outer * (total_mbps / total)
    return TrafficMatrix(nodes, demands)
