"""Traffic equivalence classes — the Optimization Engine's unit of work.

Sec. IV-A: "The flows having the same path and policy chain are aggregated
into a class."  A :class:`TrafficClass` is exactly that aggregation: a
(path, policy chain) pair with an aggregate rate.  The
:class:`ClassBuilder` derives classes from a traffic matrix, a router
(giving paths), and a policy assignment (giving chains), optionally
splitting a switch pair's demand across several applications with different
chains.
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.topology.routing import Router
from repro.traffic.matrix import TrafficMatrix
from repro.vnf.chains import PolicyChain


@dataclass(frozen=True)
class TrafficClass:
    """An equivalence class of flows: same path, same policy chain.

    Attributes:
        class_id: unique identifier (stable across snapshots).
        src: ingress switch.
        dst: egress switch.
        path: the switch sequence P_h (includes src and dst).
        chain: the policy chain C_h.
        rate_mbps: aggregate traffic rate T_h.
        share: fraction of the (src, dst) demand this class carries (1.0
            when the pair has a single chain).
    """

    class_id: str
    src: str
    dst: str
    path: Tuple[str, ...]
    chain: PolicyChain
    rate_mbps: float
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.path or self.path[0] != self.src or self.path[-1] != self.dst:
            raise ValueError(f"path of class {self.class_id} must run src → dst")
        if self.rate_mbps < 0:
            raise ValueError("rate_mbps must be non-negative")
        if not 0 < self.share <= 1:
            raise ValueError("share must be in (0, 1]")

    @property
    def path_length(self) -> int:
        """|P_h|: the number of switches on the path."""
        return len(self.path)

    @property
    def chain_length(self) -> int:
        """|C_h|: the number of NFs on the policy chain."""
        return len(self.chain)

    def switch_index(self, switch: str) -> int:
        """i(P, h, v): 0-based index of ``switch`` on the path."""
        return self.path.index(switch)

    def nf_index(self, nf_name: str) -> int:
        """i(C, h, n): 0-based index of NF ``nf_name`` on the chain."""
        return self.chain.index(nf_name)

    def with_rate(self, rate_mbps: float) -> "TrafficClass":
        """A copy of this class with a different rate (snapshot replay)."""
        return TrafficClass(
            self.class_id, self.src, self.dst, self.path, self.chain, rate_mbps, self.share
        )


#: Maps a (src, dst) pair to the chains its traffic is split across,
#: as (chain, share) pairs whose shares sum to 1.
PolicyAssignment = Callable[[str, str], Sequence[Tuple[PolicyChain, float]]]


class ClassBuilder:
    """Build :class:`TrafficClass` lists from matrices + routing + policies.

    Args:
        router: provides the forwarding path per (src, dst) — the input
            APPLE must not disturb (interference freedom).
        assignment: maps a pair to its (chain, share) list.
        min_rate_mbps: demands at or below this are dropped (noise floor).
    """

    def __init__(
        self,
        router: Router,
        assignment: PolicyAssignment,
        min_rate_mbps: float = 0.0,
    ) -> None:
        self.router = router
        self.assignment = assignment
        self.min_rate_mbps = min_rate_mbps

    def build(self, matrix: TrafficMatrix) -> List[TrafficClass]:
        """Classes for one traffic matrix, deterministically ordered."""
        classes: List[TrafficClass] = []
        for src, dst, rate in matrix.pairs(min_rate=self.min_rate_mbps):
            path = self.router.path(src, dst)
            chain_shares = list(self.assignment(src, dst))
            if not chain_shares:
                continue
            total_share = sum(share for _, share in chain_shares)
            if abs(total_share - 1.0) > 1e-9:
                raise ValueError(
                    f"policy shares for ({src}, {dst}) sum to {total_share}, not 1"
                )
            for k, (chain, share) in enumerate(chain_shares):
                if not chain:
                    continue  # chainless traffic needs no VNF placement
                classes.append(
                    TrafficClass(
                        class_id=f"{src}->{dst}#{k}",
                        src=src,
                        dst=dst,
                        path=path,
                        chain=chain,
                        rate_mbps=rate * share,
                        share=share,
                    )
                )
        return classes

    def rebuild_rates(
        self, classes: Sequence[TrafficClass], matrix: TrafficMatrix
    ) -> List[TrafficClass]:
        """Same class structure, rates re-read from a new snapshot.

        Replay keeps the class set fixed (paths and chains don't change
        between snapshots) and only updates T_h.
        """
        return [
            c.with_rate(matrix.rate(c.src, c.dst) * c.share) for c in classes
        ]


def uniform_assignment(
    chains: Sequence[PolicyChain],
) -> PolicyAssignment:
    """Every pair splits its traffic uniformly across ``chains``."""
    if not chains:
        raise ValueError("need at least one chain")
    share = 1.0 / len(chains)
    fixed = [(c, share) for c in chains]

    def assign(src: str, dst: str) -> Sequence[Tuple[PolicyChain, float]]:
        return fixed

    return assign


def hashed_assignment(
    chains: Sequence[PolicyChain],
) -> PolicyAssignment:
    """Each pair deterministically gets one chain (hash of the pair).

    Mimics operator policies that differ per prefix pair without splitting
    any single pair's traffic.
    """
    if not chains:
        raise ValueError("need at least one chain")

    def assign(src: str, dst: str) -> Sequence[Tuple[PolicyChain, float]]:
        # zlib.crc32, not hash(): string hashing is salted per process and
        # would make policy assignment (and thus every experiment)
        # non-reproducible across runs.
        idx = zlib.crc32(f"{src}|{dst}".encode("utf-8")) % len(chains)
        return [(chains[idx], 1.0)]

    return assign
