"""Trace replay: turn a traffic-matrix series into per-class rate timelines.

Sec. IX-A: "we replay all the traffic matrices in time order and APPLE will
react to traffic changes during this process."  The timeline produced here
feeds the Fig. 12 experiment, where the Dynamic Handler watches per-instance
load as snapshots advance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.traffic.classes import ClassBuilder, TrafficClass
from repro.traffic.matrix import TrafficMatrixSeries


@dataclass
class ClassRateTimeline:
    """Rates of a fixed class set across snapshots.

    Attributes:
        classes: the class structures (paths/chains fixed across time).
        times: replay timestamp of each snapshot.
        rates: array of shape (num_snapshots, num_classes), Mbps.
    """

    classes: List[TrafficClass]
    times: List[float]
    rates: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.times), len(self.classes))
        if self.rates.shape != expected:
            raise ValueError(f"rates shape {self.rates.shape} != {expected}")

    def snapshot_classes(self, snapshot: int) -> List[TrafficClass]:
        """Class list with rates as of snapshot index ``snapshot``."""
        row = self.rates[snapshot]
        return [c.with_rate(float(r)) for c, r in zip(self.classes, row)]

    def iter_snapshots(self) -> Iterator[Tuple[float, List[TrafficClass]]]:
        """Yield (time, classes-with-rates) per snapshot, in order."""
        for k, t in enumerate(self.times):
            yield t, self.snapshot_classes(k)

    @property
    def num_snapshots(self) -> int:
        return len(self.times)

    def class_rate_series(self, class_id: str) -> np.ndarray:
        """Rate-over-time vector of one class."""
        for j, c in enumerate(self.classes):
            if c.class_id == class_id:
                return self.rates[:, j].copy()
        raise KeyError(f"unknown class {class_id!r}")


def replay_series(
    builder: ClassBuilder, series: TrafficMatrixSeries
) -> ClassRateTimeline:
    """Build the fixed class set from the mean matrix, then replay rates.

    Matches the paper's methodology: class structure (and the placement
    computed from it) comes from the mean matrix; each snapshot then
    re-scales per-class rates.
    """
    mean_classes = builder.build(series.mean())
    times = series.times()
    rates = np.zeros((len(series), len(mean_classes)))
    for k, snap in enumerate(series):
        for j, c in enumerate(mean_classes):
            rates[k, j] = snap.rate(c.src, c.dst) * c.share
    return ClassRateTimeline(mean_classes, times, rates)
