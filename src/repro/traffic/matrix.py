"""Traffic matrices and time series of snapshots.

A :class:`TrafficMatrix` is an N×N array of demand rates (Mbps) between
switch pairs, with a stable node ordering.  A :class:`TrafficMatrixSeries`
is the sequence of snapshots the evaluation replays in time order (672
snapshots for Internet2/GEANT, 1-second snapshots for UNIV1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class TrafficMatrix:
    """An N×N demand matrix in Mbps with named nodes.

    Args:
        nodes: node names in matrix order.
        demands: N×N array-like; ``demands[i][j]`` is the rate from
            ``nodes[i]`` to ``nodes[j]``.  The diagonal must be zero.
    """

    def __init__(self, nodes: Sequence[str], demands) -> None:
        self.nodes: Tuple[str, ...] = tuple(nodes)
        arr = np.asarray(demands, dtype=float)
        n = len(self.nodes)
        if arr.shape != (n, n):
            raise ValueError(f"expected {(n, n)} matrix, got {arr.shape}")
        if (arr < 0).any():
            raise ValueError("demands must be non-negative")
        if np.diagonal(arr).any():
            raise ValueError("diagonal (self-demand) must be zero")
        self._demands = arr
        self._index = {name: i for i, name in enumerate(self.nodes)}

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The underlying N×N array (a copy is not made; treat as read-only)."""
        return self._demands

    def rate(self, src: str, dst: str) -> float:
        """Demand rate from ``src`` to ``dst`` in Mbps."""
        return float(self._demands[self._index[src], self._index[dst]])

    def total(self) -> float:
        """Sum of all demands (Mbps)."""
        return float(self._demands.sum())

    def pairs(self, min_rate: float = 0.0) -> Iterator[Tuple[str, str, float]]:
        """Yield (src, dst, rate) for every pair with rate > ``min_rate``."""
        n = len(self.nodes)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                r = float(self._demands[i, j])
                if r > min_rate:
                    yield (self.nodes[i], self.nodes[j], r)

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A new matrix with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return TrafficMatrix(self.nodes, self._demands * factor)

    def __repr__(self) -> str:
        return f"TrafficMatrix(n={len(self.nodes)}, total={self.total():.1f} Mbps)"


@dataclass
class TrafficMatrixSeries:
    """A time-ordered series of snapshots sharing one node set.

    Attributes:
        nodes: node names in matrix order.
        snapshots: the snapshot matrices.
        interval: seconds between consecutive snapshots.
    """

    nodes: Tuple[str, ...]
    snapshots: List[TrafficMatrix]
    interval: float = 300.0

    def __post_init__(self) -> None:
        for snap in self.snapshots:
            if snap.nodes != tuple(self.nodes):
                raise ValueError("snapshot node set differs from series node set")
        if self.interval <= 0:
            raise ValueError("interval must be positive")

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[TrafficMatrix]:
        return iter(self.snapshots)

    def __getitem__(self, idx: int) -> TrafficMatrix:
        return self.snapshots[idx]

    def mean(self) -> TrafficMatrix:
        """The element-wise mean matrix — the Optimization Engine's input.

        Sec. IX-A: "We run the Optimization Engine, whose traffic matrix
        input is the mean value of the 672 snapshots."
        """
        if not self.snapshots:
            raise ValueError("empty series has no mean")
        stacked = np.stack([s.array for s in self.snapshots])
        return TrafficMatrix(self.nodes, stacked.mean(axis=0))

    def peak(self) -> TrafficMatrix:
        """Element-wise max over snapshots (used for over-provision ablation)."""
        if not self.snapshots:
            raise ValueError("empty series has no peak")
        stacked = np.stack([s.array for s in self.snapshots])
        return TrafficMatrix(self.nodes, stacked.max(axis=0))

    def times(self) -> List[float]:
        """Replay timestamps of each snapshot."""
        return [i * self.interval for i in range(len(self.snapshots))]

    def slice(self, start: int, stop: Optional[int] = None) -> "TrafficMatrixSeries":
        """A sub-series covering snapshots ``[start:stop]``."""
        return TrafficMatrixSeries(self.nodes, self.snapshots[start:stop], self.interval)


def series_from_arrays(
    nodes: Sequence[str], arrays: Iterable[np.ndarray], interval: float = 300.0
) -> TrafficMatrixSeries:
    """Build a series from raw numpy snapshots."""
    snaps = [TrafficMatrix(nodes, a) for a in arrays]
    return TrafficMatrixSeries(tuple(nodes), snaps, interval)
