"""Traffic matrices, synthesis, and equivalence classes (Sec. IV-A, IX-A).

The evaluation replays 672 snapshots of time-varying traffic matrices per
topology.  The original Abilene/TOTEM traces are not redistributable, so
this package synthesises statistically equivalent series: gravity-model
spatial structure (FNSS-style), diurnal/weekly temporal patterns, and noise
following the power-law mean–variance relationship (MVR) the paper cites
for the smoothing effect of class aggregation.
"""

from repro.traffic.classes import ClassBuilder, TrafficClass
from repro.traffic.diurnal import DiurnalModel, synthesize_series
from repro.traffic.gravity import gravity_matrix, node_weights
from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries
from repro.traffic.io import load_matrix_json, load_series, save_matrix_json, save_series
from repro.traffic.replay import ClassRateTimeline, replay_series
from repro.traffic.trace import aggregate_to_classes, Flow, generate_flows

__all__ = [
    "TrafficMatrix",
    "TrafficMatrixSeries",
    "gravity_matrix",
    "node_weights",
    "DiurnalModel",
    "synthesize_series",
    "TrafficClass",
    "ClassBuilder",
    "ClassRateTimeline",
    "replay_series",
    "save_series",
    "load_series",
    "save_matrix_json",
    "load_matrix_json",
    "Flow",
    "generate_flows",
    "aggregate_to_classes",
]
