"""Traffic-matrix persistence: save/load series for reproducible runs.

Experiments synthesise matrices from seeds, but downstream users often
want to pin the exact series (or import measured ones).  Formats:

* ``.npz`` — compact binary for full series (numpy archive holding the
  node list, interval, and a (T, N, N) demand tensor);
* ``.json`` — human-readable single matrices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.traffic.matrix import TrafficMatrix, TrafficMatrixSeries

PathLike = Union[str, Path]


def save_series(series: TrafficMatrixSeries, path: PathLike) -> None:
    """Write a series to a ``.npz`` archive."""
    demands = np.stack([s.array for s in series.snapshots])
    np.savez_compressed(
        Path(path),
        nodes=np.array(series.nodes, dtype=object),
        interval=np.array([series.interval]),
        demands=demands,
    )


def load_series(path: PathLike) -> TrafficMatrixSeries:
    """Read a series written by :func:`save_series`.

    Raises:
        ValueError: malformed archive (missing keys or bad tensor shape).
    """
    with np.load(Path(path), allow_pickle=True) as data:
        for key in ("nodes", "interval", "demands"):
            if key not in data:
                raise ValueError(f"series archive missing {key!r}")
        nodes = tuple(str(n) for n in data["nodes"])
        interval = float(data["interval"][0])
        demands = data["demands"]
    if demands.ndim != 3 or demands.shape[1] != len(nodes) or (
        demands.shape[1] != demands.shape[2]
    ):
        raise ValueError(f"bad demand tensor shape {demands.shape}")
    snapshots = [TrafficMatrix(nodes, demands[k]) for k in range(demands.shape[0])]
    return TrafficMatrixSeries(nodes, snapshots, interval)


def save_matrix_json(matrix: TrafficMatrix, path: PathLike) -> None:
    """Write one matrix as human-readable JSON."""
    payload = {
        "nodes": list(matrix.nodes),
        "demands_mbps": [
            [float(x) for x in row] for row in matrix.array.tolist()
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_matrix_json(path: PathLike) -> TrafficMatrix:
    """Read a matrix written by :func:`save_matrix_json`.

    Raises:
        ValueError: malformed document.
    """
    payload = json.loads(Path(path).read_text())
    try:
        nodes = payload["nodes"]
        demands = payload["demands_mbps"]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed matrix JSON in {path}") from exc
    return TrafficMatrix(nodes, demands)
