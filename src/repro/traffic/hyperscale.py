"""Hyperscale workload synthesis: classes sampled without a full matrix.

The replay experiments build a dense |V|×|V| traffic matrix and derive
equivalence classes from it — fine at 79 switches, hopeless at thousands
(a 500-node fat-tree has 250k pairs, of which a workload exercises a tiny
fraction).  :func:`sample_classes` instead samples the class population
directly: seeded (src, dst) pairs between host-bearing switches, paths
from one BFS per distinct source (not one search per pair), chains hashed
from the pair as :func:`repro.traffic.classes.hashed_assignment` does, and
heavy-tailed per-class rates.  Everything is a pure function of
``(topology, num_classes, seed)``, so the hyperscale benchmarks inherit
the repo's bit-identity discipline.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.sim.rng import derive
from repro.topology.graph import Topology
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import STANDARD_CHAINS, PolicyChain


def sample_classes(
    topo: Topology,
    num_classes: int,
    seed: int = 0,
    chains: Sequence[PolicyChain] = STANDARD_CHAINS,
    mean_rate_mbps: float = 20.0,
    rate_sigma: float = 0.8,
) -> List[TrafficClass]:
    """Sample ``num_classes`` equivalence classes over ``topo``.

    Endpoints are drawn (seeded, uniform) from the switches that carry
    APPLE hosts — in a fat-tree that is the edge layer, matching servers'
    position in a real DC.  A pair drawn twice yields distinct classes
    (``#0``, ``#1``, …) whose chains differ, the same shape
    multi-application pairs produce in the matrix-driven builder.  Rates
    are lognormal (heavy-tailed, like real per-aggregate volumes) with
    the requested mean.

    Deterministic: same arguments → identical list, element for element.
    """
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    if not chains:
        raise ValueError("need at least one chain")
    endpoints = [s for s in topo.switches if topo.host_cores(s) > 0]
    if len(endpoints) < 2:
        raise ValueError("topology needs at least two host-bearing switches")
    rng = np.random.default_rng(derive(seed, "traffic.hyperscale"))

    n = len(endpoints)
    src_idx = rng.integers(0, n, size=num_classes)
    dst_idx = rng.integers(0, n - 1, size=num_classes)
    dst_idx = np.where(dst_idx >= src_idx, dst_idx + 1, dst_idx)  # dst != src

    # Heavy-tailed rates with the requested mean: lognormal(µ, σ) has mean
    # exp(µ + σ²/2), so µ is solved from the target.
    mu = float(np.log(mean_rate_mbps) - rate_sigma**2 / 2.0)
    rates = rng.lognormal(mean=mu, sigma=rate_sigma, size=num_classes)

    # One BFS tree per distinct source instead of one search per pair.
    path_cache: Dict[str, Dict[str, List[str]]] = {}

    def path_to(src: str, dst: str) -> Tuple[str, ...]:
        by_dst = path_cache.get(src)
        if by_dst is None:
            by_dst = path_cache[src] = nx.single_source_shortest_path(
                topo.graph, src
            )
        return tuple(by_dst[dst])

    counts: Dict[Tuple[str, str], int] = {}
    out: List[TrafficClass] = []
    for k in range(num_classes):
        src = endpoints[int(src_idx[k])]
        dst = endpoints[int(dst_idx[k])]
        dup = counts.get((src, dst), 0)
        counts[(src, dst)] = dup + 1
        # Chain hashed from (pair, duplicate index): stable across runs,
        # and repeated draws of one pair spread across the chain set.
        chain = chains[zlib.crc32(f"{src}|{dst}|{dup}".encode()) % len(chains)]
        out.append(
            TrafficClass(
                class_id=f"{src}->{dst}#{dup}",
                src=src,
                dst=dst,
                path=path_to(src, dst),
                chain=chain,
                rate_mbps=float(rates[k]),
            )
        )
    return out


def scale_rates(
    classes: Sequence[TrafficClass], factor: float
) -> List[TrafficClass]:
    """The next snapshot of a hyperscale series: same structure, scaled T_h.

    Replay semantics in one line — paths and chains never change between
    snapshots, so warm re-solves only rewrite rates.
    """
    return [c.with_rate(c.rate_mbps * factor) for c in classes]
