"""Flow-level trace generation — the scalability motivation of Sec. IV-A.

Kandula et al. [23] measured ~100K flow arrivals per second on a
1500-server cluster; placing per flow is hopeless, which is why APPLE
aggregates into classes.  This module generates synthetic flow-level
traces (Poisson arrivals, log-normal sizes, per-pair demand proportional
to a traffic matrix) and aggregates them back into classes, letting tests
and benchmarks quantify exactly how much the aggregation buys:
thousands of flows collapse into the (path, chain) class set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.routing import Router
from repro.sim.rng import derive
from repro.traffic.classes import PolicyAssignment, TrafficClass
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class Flow:
    """One flow in a trace."""

    flow_id: int
    src: str
    dst: str
    start: float
    rate_mbps: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


def generate_flows(
    matrix: TrafficMatrix,
    duration: float,
    mean_flow_rate_mbps: float = 5.0,
    mean_flow_duration: float = 10.0,
    seed: int = 0,
    min_rate: float = 1e-6,
) -> List[Flow]:
    """Poisson flow arrivals realising a traffic matrix's average rates.

    Per pair, the arrival rate is chosen so that (arrivals x mean rate x
    mean duration) / horizon equals the matrix entry; rates are
    log-normal, durations exponential — heavy-tailed like measured data
    center flows.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    rng = np.random.default_rng(derive(seed, "traffic.flows"))
    flows: List[Flow] = []
    fid = 0
    for src, dst, rate in matrix.pairs(min_rate=min_rate):
        expected_concurrent = rate / mean_flow_rate_mbps
        arrival_rate = expected_concurrent / mean_flow_duration
        n = rng.poisson(arrival_rate * duration)
        if n == 0:
            continue
        starts = rng.uniform(0.0, duration, size=n)
        # Log-normal with mean ≈ mean_flow_rate_mbps.
        sigma = 1.0
        mu = np.log(mean_flow_rate_mbps) - sigma**2 / 2
        rates = rng.lognormal(mu, sigma, size=n)
        durations = rng.exponential(mean_flow_duration, size=n)
        for s, r, d in zip(starts, rates, durations):
            flows.append(Flow(fid, src, dst, float(s), float(r), float(d)))
            fid += 1
    flows.sort(key=lambda f: f.start)
    return flows


def active_flows(flows: Sequence[Flow], at: float) -> List[Flow]:
    """Flows alive at time ``at``."""
    return [f for f in flows if f.start <= at < f.end]


def aggregate_to_classes(
    flows: Sequence[Flow],
    router: Router,
    assignment: PolicyAssignment,
    at: float,
) -> Tuple[List[TrafficClass], int]:
    """Collapse the live flows at time ``at`` into traffic classes.

    Returns (classes, live flow count) — the input-size reduction the
    Optimization Engine gets from Sec. IV-A's aggregation.
    """
    live = active_flows(flows, at)
    rate_by_key: Dict[Tuple[str, str, object], float] = {}
    path_cache: Dict[Tuple[str, str], tuple] = {}
    for f in live:
        for chain, share in assignment(f.src, f.dst):
            if not chain:
                continue
            key = (f.src, f.dst, chain)
            rate_by_key[key] = rate_by_key.get(key, 0.0) + f.rate_mbps * share
    classes: List[TrafficClass] = []
    for (src, dst, chain), rate in sorted(
        rate_by_key.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2].names)
    ):
        if (src, dst) not in path_cache:
            path_cache[(src, dst)] = router.path(src, dst)
        classes.append(
            TrafficClass(
                class_id=f"{src}->{dst}/{'+'.join(chain.names)}",
                src=src,
                dst=dst,
                path=path_cache[(src, dst)],
                chain=chain,
                rate_mbps=rate,
            )
        )
    return classes, len(live)
