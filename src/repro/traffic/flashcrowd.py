"""Flash-crowd traffic schedules — DDoS-shaped spikes on seeded substreams.

ROADMAP item 4 layers load dynamics on the chaos engine: where
:mod:`repro.chaos.schedule` perturbs the *infrastructure*, a
:class:`FlashCrowdSchedule` perturbs the *offered traffic*.  Each
:class:`SpikeEvent` is a trapezoid — a linear ramp to ``amplitude``×
baseline, a hold, and a linear decay back to 1× — applied to a seeded
subset of traffic classes.  Spikes stack multiplicatively when several
target the same class at once, which is exactly the shape a volumetric
DDoS or a flash crowd presents to an ingress.

Determinism mirrors the chaos schedule: every draw comes from a
``derive(seed, FLASH_STREAM)`` substream, the event list is canonically
sorted, and :meth:`FlashCrowdSchedule.signature` hashes the canonical
JSON form so two runs with the same seed provably replay the same load.
"""

from __future__ import annotations

import hashlib
import json
import math

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import SeededRNG, derive

#: RNG substream label for flash-crowd generation (disjoint from the
#: fault-schedule stream so spikes never perturb fault draws).
FLASH_STREAM = "chaos.flashcrowd"


@dataclass(frozen=True)
class SpikeEvent:
    """One trapezoidal traffic spike against a set of classes.

    Attributes:
        start: sim time the ramp begins.
        ramp: seconds to climb from 1× to ``amplitude``×.
        hold: seconds at full amplitude.
        decay: seconds to fall back to 1×.
        amplitude: peak multiplier (≥ 1.0; 1.0 is a no-op spike).
        targets: class ids the spike applies to (canonically sorted).
    """

    start: float
    ramp: float
    hold: float
    decay: float
    amplitude: float
    targets: Tuple[str, ...]

    @property
    def end(self) -> float:
        """Time the spike has fully decayed back to baseline."""
        return self.start + self.ramp + self.hold + self.decay

    def multiplier(self, class_id: str, t: float) -> float:
        """Load multiplier this spike contributes for ``class_id`` at ``t``."""
        if class_id not in self.targets or t <= self.start or t >= self.end:
            return 1.0
        dt = t - self.start
        if dt < self.ramp:
            frac = dt / self.ramp if self.ramp > 0 else 1.0
        elif dt < self.ramp + self.hold:
            frac = 1.0
        else:
            remaining = self.end - t
            frac = remaining / self.decay if self.decay > 0 else 0.0
        return 1.0 + (self.amplitude - 1.0) * frac

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": round(self.start, 6),
            "ramp": round(self.ramp, 6),
            "hold": round(self.hold, 6),
            "decay": round(self.decay, 6),
            "amplitude": round(self.amplitude, 6),
            "targets": list(self.targets),
        }


@dataclass
class FlashCrowdConfig:
    """Knobs for seeded spike generation.

    Attributes:
        spikes: number of spike events to draw.
        amplitude: (low, high) peak-multiplier range.
        window: (earliest, latest) spike start time.
        ramp / hold / decay: (low, high) duration ranges per phase.
        target_fraction: fraction of the class population each spike
            hits (at least one class).
    """

    spikes: int = 2
    amplitude: Tuple[float, float] = (4.0, 4.0)
    window: Tuple[float, float] = (4.0, 12.0)
    ramp: Tuple[float, float] = (0.5, 1.5)
    hold: Tuple[float, float] = (3.0, 6.0)
    decay: Tuple[float, float] = (1.0, 2.5)
    target_fraction: float = 0.3


@dataclass(frozen=True)
class FlashCrowdSchedule:
    """An immutable, replayable sequence of traffic spikes."""

    seed: int
    events: Tuple[SpikeEvent, ...] = field(default_factory=tuple)

    def multiplier(self, class_id: str, t: float) -> float:
        """Combined load multiplier for ``class_id`` at sim time ``t``.

        Overlapping spikes stack multiplicatively — a class hit by two
        concurrent 2× spikes offers 4× its baseline.
        """
        m = 1.0
        for event in self.events:
            m *= event.multiplier(class_id, t)
        return m

    def windows(self) -> Tuple[Tuple[float, float], ...]:
        """(start, end) spans of every spike, in schedule order."""
        return tuple((e.start, e.end) for e in self.events)

    def horizon(self) -> float:
        """Time by which every spike has fully decayed (0.0 if none)."""
        return max((e.end for e in self.events), default=0.0)

    def signature(self) -> str:
        """Content hash of the canonical JSON form (rerun identity)."""
        payload = {
            "seed": self.seed,
            "events": [e.to_dict() for e in self.events],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    @classmethod
    def empty(cls, seed: int = 0) -> "FlashCrowdSchedule":
        """A schedule with no spikes (baseline load forever)."""
        return cls(seed=seed, events=())


def generate_flash_crowd(
    class_ids: Sequence[str],
    config: FlashCrowdConfig,
    seed: int,
) -> FlashCrowdSchedule:
    """Draw a deterministic spike schedule from a seeded substream.

    Targets are drawn without replacement from the sorted class-id pool,
    so the schedule depends only on (seed, config, set of class ids) —
    never on dict iteration order.
    """
    rng = SeededRNG(derive(seed, FLASH_STREAM))
    pool = sorted(set(class_ids))
    if not pool:
        return FlashCrowdSchedule.empty(seed)
    count = max(1, min(len(pool), math.ceil(config.target_fraction * len(pool))))

    events: List[SpikeEvent] = []
    for _ in range(config.spikes):
        start = rng.uniform(*config.window)
        ramp = rng.uniform(*config.ramp)
        hold = rng.uniform(*config.hold)
        decay = rng.uniform(*config.decay)
        amplitude = rng.uniform(*config.amplitude)
        targets = tuple(sorted(rng.choice(pool, size=count, replace=False)))
        events.append(
            SpikeEvent(
                start=start,
                ramp=ramp,
                hold=hold,
                decay=decay,
                amplitude=max(1.0, amplitude),
                targets=targets,
            )
        )

    events.sort(key=lambda e: (e.start, e.end, e.targets))
    return FlashCrowdSchedule(seed=seed, events=tuple(events))
