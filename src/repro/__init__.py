"""APPLE: an NFV orchestration framework for interference-free policy enforcement.

A full-system Python reproduction of Li & Qian, ICDCS 2016.  APPLE places
virtual network function instances *on* the existing forwarding paths of
traffic classes — never re-routing them — so that policy chains
(firewall → IDS → proxy, ...) are enforced while routing and traffic
engineering stay untouched, and every instance is an isolated VM.

Quickstart::

    from repro import AppleController, internet2, STANDARD_CHAINS
    from repro.traffic import gravity_matrix
    from repro.traffic.classes import hashed_assignment

    topo = internet2()
    controller = AppleController(topo, hashed_assignment(STANDARD_CHAINS))
    deployment = controller.run(gravity_matrix(topo, total_mbps=20_000))
    print(deployment.plan.total_instances(), "instances placed")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    AppleController,
    DynamicHandler,
    EngineConfig,
    OptimizationEngine,
    PlacementPlan,
    RuleGenerator,
    assign_subclasses,
    greedy_placement,
    ingress_placement,
)
from repro.sim import Simulator
from repro.topology import as3679, geant, internet2, load_topology, Topology, univ1
from repro.traffic import gravity_matrix, synthesize_series, TrafficMatrix
from repro.vnf import DEFAULT_CATALOG, PolicyChain, STANDARD_CHAINS

__version__ = "1.0.0"

__all__ = [
    "AppleController",
    "OptimizationEngine",
    "EngineConfig",
    "PlacementPlan",
    "DynamicHandler",
    "RuleGenerator",
    "assign_subclasses",
    "ingress_placement",
    "greedy_placement",
    "Simulator",
    "Topology",
    "internet2",
    "geant",
    "univ1",
    "as3679",
    "load_topology",
    "TrafficMatrix",
    "gravity_matrix",
    "synthesize_series",
    "PolicyChain",
    "STANDARD_CHAINS",
    "DEFAULT_CATALOG",
    "__version__",
]
