"""Policy chains (service chains) and their synthesis.

A policy chain C_h is an ordered NF sequence every flow of a class must
traverse (e.g. firewall → IDS → proxy for http traffic).  Sec. IX-A: "Due
to the lack of publicly available information on NF related policies, we
synthesize network function policies based on real-network study by [37]
and case studies [12]. The policy chains are the sequences of 4 different
NFs: firewall, proxy, NAT and IDS."
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.vnf.types import DEFAULT_CATALOG, NFType, NFTypeCatalog


class PolicyChain:
    """An immutable, ordered sequence of NF names.

    Duplicate NFs are rejected: the data plane assumes "a packet does not
    traverse a same instance twice" (Sec. V-B), and none of the paper's
    chains repeat an NF.
    """

    def __init__(self, nf_names: Sequence[str], catalog: NFTypeCatalog = DEFAULT_CATALOG):
        names = tuple(nf_names)
        for name in names:
            if name not in catalog:
                raise KeyError(f"chain references unknown NF {name!r}")
        if len(set(names)) != len(names):
            raise ValueError(f"chain {names} repeats an NF")
        self._names = names
        self._catalog = catalog

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __getitem__(self, j: int) -> str:
        """c_h^j: the j-th NF name (0-based here; the paper is 1-based)."""
        return self._names[j]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PolicyChain) and self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return "PolicyChain(" + " -> ".join(self._names) + ")"

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def index(self, nf_name: str) -> int:
        """i(C, h, n): position of ``nf_name`` in this chain (0-based)."""
        return self._names.index(nf_name)

    def nf_types(self) -> List[NFType]:
        """The datasheet objects in chain order."""
        return [self._catalog.get(n) for n in self._names]

    def successor(self, nf_name: str) -> Optional[str]:
        """The NF after ``nf_name``, or None if it is last."""
        i = self.index(nf_name)
        return self._names[i + 1] if i + 1 < len(self._names) else None

    def total_cores(self) -> int:
        """Cores for one instance of every NF in the chain."""
        return sum(t.cores for t in self.nf_types())

    def min_capacity_mbps(self) -> float:
        """The chain's bottleneck single-instance capacity."""
        return min(t.capacity_mbps for t in self.nf_types())


#: Representative chains from the SFC data-center use cases [12] and the
#: middlebox study [37]: perimeter security, web access, address translation.
STANDARD_CHAINS: Tuple[PolicyChain, ...] = (
    PolicyChain(["firewall", "ids"]),
    PolicyChain(["firewall", "proxy"]),
    PolicyChain(["nat", "firewall"]),
    PolicyChain(["firewall", "ids", "proxy"]),
    PolicyChain(["nat", "firewall", "ids"]),
)


class ChainGenerator:
    """Deterministic random chain synthesis over a catalog.

    Args:
        catalog: NF types to draw from.
        min_len / max_len: chain length bounds (inclusive).
        seed: RNG seed.
    """

    def __init__(
        self,
        catalog: NFTypeCatalog = DEFAULT_CATALOG,
        min_len: int = 1,
        max_len: int = 4,
        seed: int = 0,
    ) -> None:
        if not 1 <= min_len <= max_len <= len(catalog):
            raise ValueError(
                f"need 1 <= min_len <= max_len <= {len(catalog)}; "
                f"got ({min_len}, {max_len})"
            )
        self.catalog = catalog
        self.min_len = min_len
        self.max_len = max_len
        self._rng = np.random.default_rng(seed)

    def generate(self) -> PolicyChain:
        """One random chain: distinct NFs in a random order."""
        names = self.catalog.names
        length = int(self._rng.integers(self.min_len, self.max_len + 1))
        picked = self._rng.choice(len(names), size=length, replace=False)
        return PolicyChain([names[int(i)] for i in picked], self.catalog)

    def generate_many(self, count: int) -> List[PolicyChain]:
        """``count`` chains (duplicates possible, as in real policy sets)."""
        return [self.generate() for _ in range(count)]
