"""VNF type datasheets — Table IV of the paper.

| Network Function | Cores | Capacity  | ClickOS |
|------------------|-------|-----------|---------|
| Firewall         | 4     | 900 Mbps  | yes     |
| Proxy            | 4     | 900 Mbps  | no      |
| NAT              | 2     | 900 Mbps  | yes     |
| IDS              | 8     | 600 Mbps  | no      |

Capacity in the ILP (Cap_n) is expressed in the same unit as class rates
(Mbps here); the packet-level experiments additionally use a pps capacity
derived from the prototype's measured 8.5 Kpps monitor knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class NFType:
    """A network-function type and its resource datasheet.

    Attributes:
        name: canonical NF name (e.g. ``"firewall"``).
        cores: CPU cores one instance requires (R_n, 1-D resource vector).
        capacity_mbps: processing capacity of one instance (Cap_n).
        clickos: True when the NF runs as a lightweight ClickOS VM and can
            be booted/reconfigured in ~30 ms (fast-failover eligible);
            False for full VMs (proxy, IDS) that take seconds via OpenStack.
        capacity_pps: packet-rate capacity used by packet-level experiments.
        modifies_headers: True when the NF rewrites packet headers (NAT),
            which "makes sub-class classification invalid" downstream
            (Sec. X) and forces global sub-class IDs in the tag field.
        memory_gb: memory one instance requires (second dimension of R_n).
    """

    name: str
    cores: int
    capacity_mbps: float
    clickos: bool
    capacity_pps: float = 8500.0
    modifies_headers: bool = False
    memory_gb: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"{self.name}: cores must be positive")
        if self.capacity_mbps <= 0 or self.capacity_pps <= 0:
            raise ValueError(f"{self.name}: capacities must be positive")
        if self.memory_gb <= 0:
            raise ValueError(f"{self.name}: memory_gb must be positive")

    def resource_vector(self) -> Tuple[float, ...]:
        """R_n as a vector: (cores, memory_gb)."""
        return (float(self.cores), float(self.memory_gb))

    def instances_for(self, rate_mbps: float) -> int:
        """Minimum instance count to carry ``rate_mbps`` (ceil division)."""
        if rate_mbps <= 0:
            return 0
        full, rem = divmod(rate_mbps, self.capacity_mbps)
        return int(full) + (1 if rem > 1e-9 else 0)


FIREWALL = NFType("firewall", cores=4, capacity_mbps=900.0, clickos=True, memory_gb=2.0)
PROXY = NFType("proxy", cores=4, capacity_mbps=900.0, clickos=False, memory_gb=4.0)
NAT = NFType(
    "nat", cores=2, capacity_mbps=900.0, clickos=True,
    modifies_headers=True, memory_gb=1.0,
)
IDS = NFType("ids", cores=8, capacity_mbps=600.0, clickos=False, memory_gb=8.0)


class NFTypeCatalog:
    """A registry of NF types, keyed by name."""

    def __init__(self, types: Sequence[NFType]) -> None:
        self._types: Dict[str, NFType] = {}
        for t in types:
            if t.name in self._types:
                raise ValueError(f"duplicate NF type {t.name!r}")
            self._types[t.name] = t

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[NFType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def get(self, name: str) -> NFType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError(
                f"unknown NF type {name!r}; known: {sorted(self._types)}"
            ) from None

    @property
    def names(self) -> List[str]:
        return list(self._types)

    def clickos_types(self) -> List[NFType]:
        """Types that can be fast-failover targets."""
        return [t for t in self._types.values() if t.clickos]


#: The Table IV catalog used throughout the evaluation.
DEFAULT_CATALOG = NFTypeCatalog([FIREWALL, PROXY, NAT, IDS])
