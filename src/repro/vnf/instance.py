"""VNF instances and the rate-driven capacity/loss model.

Sec. VII-B measured that "for most of the VNFs, the performance is closely
related to the packet receiving rate, but not the packet size" (Fig. 6):
a ClickOS passive monitor drops nothing until the receiving rate passes its
capacity knee, after which the loss rate soars as 1 − capacity/rate.

:class:`VNFInstance` supports both views:

* fluid — :meth:`offered_load_loss` maps an offered rate to a loss ratio
  (used by the trace-replay simulation of Fig. 12);
* packet-level — :meth:`consume` admits/drops individual packets against a
  sliding-window rate limit (used by the Fig. 6 / Fig. 9 experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.kernel import Simulator
from repro.vnf.types import NFType

PacketHook = Callable[[int, float], None]


@dataclass
class InstanceStats:
    """Running counters of one instance."""

    packets_in: int = 0
    packets_processed: int = 0
    packets_dropped: int = 0
    bytes_processed: int = 0

    @property
    def loss_ratio(self) -> float:
        """Fraction of received packets dropped so far."""
        if self.packets_in == 0:
            return 0.0
        return self.packets_dropped / self.packets_in


class VNFInstance:
    """One running VNF instance (a VM) attached to an APPLE host.

    Args:
        instance_id: unique identifier.
        nf_type: the datasheet (capacity, cores, ClickOS flag).
        switch: the switch whose APPLE host runs this instance.
        sim: optional simulator; required for packet-level operation.
        window: sliding window (seconds) for the packet-level rate limit.
        downstream: optional hook receiving processed packets.
    """

    def __init__(
        self,
        instance_id: str,
        nf_type: NFType,
        switch: str,
        sim: Optional[Simulator] = None,
        window: float = 0.1,
        downstream: Optional[PacketHook] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.instance_id = instance_id
        self.nf_type = nf_type
        self.switch = switch
        self.sim = sim
        self.window = window
        self.downstream = downstream
        self.stats = InstanceStats()
        self.running = True
        #: Remaining capacity fraction; < 1 during a brownout.
        self.degradation = 1.0
        self._recent: List[float] = []  # processed-packet timestamps in window
        # Window budget in packets; NFType is frozen, so only degrade()
        # changes this (and whoever calls it must invalidate cached walk
        # plans, which capture the budget by value).  The batched walker
        # reads _budget/_recent directly (see
        # DataPlaneNetwork.inject_stream) — keep their semantics in sync
        # with consume().
        self._budget: float = float(nf_type.capacity_pps) * window

    # ------------------------------------------------------------------
    # Fluid model
    # ------------------------------------------------------------------
    def offered_load_loss(self, offered_mbps: float) -> float:
        """Loss ratio when carrying ``offered_mbps`` of traffic.

        Zero below capacity; 1 − capacity/offered above it — the Fig. 6
        knee, independent of packet size.
        """
        if offered_mbps <= self.nf_type.capacity_mbps:
            return 0.0
        return 1.0 - self.nf_type.capacity_mbps / offered_mbps

    def utilization(self, offered_mbps: float) -> float:
        """Offered load over capacity (may exceed 1 when overloaded)."""
        return offered_mbps / self.nf_type.capacity_mbps

    def is_overloaded(self, offered_mbps: float, threshold: float = 1.0) -> bool:
        """Whether offered load exceeds ``threshold`` × capacity."""
        return self.utilization(offered_mbps) > threshold

    # ------------------------------------------------------------------
    # Packet-level model
    # ------------------------------------------------------------------
    def consume(self, packet_size: int, now: Optional[float] = None) -> bool:
        """Admit one packet; returns True if processed, False if dropped.

        A packet is dropped when processing it would push the rate over
        ``capacity_pps`` within the sliding window.  Packet size does not
        affect admission (the paper's measured behaviour) but is recorded
        for byte accounting.
        """
        if not self.running:
            return False
        if now is None:
            if self.sim is None:
                raise ValueError("packet-level consume needs a simulator or timestamps")
            now = self.sim.now
        self.stats.packets_in += 1
        self._trim(now)
        if len(self._recent) + 1 > self._budget:
            self.stats.packets_dropped += 1
            return False
        self._recent.append(now)
        self.stats.packets_processed += 1
        self.stats.bytes_processed += packet_size
        if self.downstream is not None:
            self.downstream(packet_size, now)
        return True

    def receive_rate_pps(self, now: Optional[float] = None) -> float:
        """Processed-packet rate over the sliding window."""
        if now is None and self.sim is not None:
            now = self.sim.now
        if now is not None:
            self._trim(now)
        return len(self._recent) / self.window

    def shutdown(self) -> None:
        """Stop the instance; further packets are dropped."""
        self.running = False

    # ------------------------------------------------------------------
    # Partial degradation ("brownout" faults)
    # ------------------------------------------------------------------
    def degrade(self, factor: float) -> None:
        """Scale capacity to ``factor`` of nominal (a chaos brownout).

        Affects both views: the sliding-window packet budget shrinks and
        :attr:`effective_capacity_mbps` drops.  Callers driving the batched
        walker must invalidate cached walk plans afterwards (they capture
        the budget by value).
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        self.degradation = factor
        self._budget = float(self.nf_type.capacity_pps) * self.window * factor

    def restore_full(self) -> None:
        """End a brownout: back to nominal capacity."""
        self.degrade(1.0)

    @property
    def effective_capacity_mbps(self) -> float:
        """Nominal capacity scaled by the current degradation (0 if down)."""
        if not self.running:
            return 0.0
        return self.nf_type.capacity_mbps * self.degradation

    def reset_runtime(self) -> None:
        """Zero the packet-level state (stats + sliding window).

        Clears the window list in place so references held by cached walk
        plans stay valid.
        """
        self.stats = InstanceStats()
        self._recent.clear()

    def _trim(self, now: float) -> None:
        cutoff = now - self.window
        recent = self._recent
        i = 0
        while i < len(recent) and recent[i] <= cutoff:
            i += 1
        if i:
            del recent[:i]

    def __repr__(self) -> str:
        return (
            f"VNFInstance({self.instance_id!r}, type={self.nf_type.name}, "
            f"switch={self.switch!r})"
        )
