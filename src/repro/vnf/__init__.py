"""Virtual network functions: types, instances, ClickOS, and policy chains.

Implements Table IV's VNF datasheets (firewall, proxy, NAT, IDS), the
rate-driven capacity/loss model of Fig. 6 (loss depends on packet *rate*,
not size), the ClickOS lightweight-VM distinction (30 ms boot/reconfigure),
and the policy-chain synthesis of Sec. IX-A.
"""

from repro.vnf.chains import ChainGenerator, PolicyChain, STANDARD_CHAINS
from repro.vnf.clickos import ClickOSConfig, ClickOSImage, PASSIVE_MONITOR
from repro.vnf.instance import InstanceStats, VNFInstance
from repro.vnf.types import (
    DEFAULT_CATALOG,
    FIREWALL,
    IDS,
    NAT,
    NFType,
    NFTypeCatalog,
    PROXY,
)

__all__ = [
    "NFType",
    "NFTypeCatalog",
    "DEFAULT_CATALOG",
    "FIREWALL",
    "PROXY",
    "NAT",
    "IDS",
    "VNFInstance",
    "InstanceStats",
    "ClickOSImage",
    "ClickOSConfig",
    "PASSIVE_MONITOR",
    "PolicyChain",
    "ChainGenerator",
    "STANDARD_CHAINS",
]
