"""ClickOS images and configurations (the lightweight-VM substrate).

ClickOS [28] runs Click modular-router configurations as tiny Xen VMs that
boot in ~30 ms and can be reconfigured in ~30 ms — the property APPLE's
fast failover exploits (Sec. VI, VIII-D).  This module models the image
(what OpenStack's Glance would store) and the Click configuration (what the
"customized tool described in [28]" pushes in Step 9 of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Raw ClickOS boot time on bare Xen, per [28] (seconds).
CLICKOS_BOOT_SECONDS = 0.030
#: Reconfiguring a running ClickOS VM, measured in Sec. VIII-D (seconds).
CLICKOS_RECONFIGURE_SECONDS = 0.030


@dataclass(frozen=True)
class ClickOSConfig:
    """A Click configuration to be pushed into a ClickOS VM.

    Attributes:
        role: the NF the configuration implements (``"passive-monitor"``,
            ``"firewall"``, ``"nat"`` ...).
        elements: Click element graph rendered as text (informational; the
            simulator interprets only ``role``).
        parameters: role parameters, e.g. firewall rule count.
    """

    role: str
    elements: str = ""
    parameters: Tuple[Tuple[str, str], ...] = ()

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters)
        return f"{self.role}({params})" if params else self.role


#: The passive-monitor configuration used by the prototype experiments
#: (Fig. 6, Fig. 9): counts packets, forwards everything.
PASSIVE_MONITOR = ClickOSConfig(
    role="passive-monitor",
    elements="FromDevice(0) -> Counter -> ToDevice(1);",
)

FIREWALL_CONFIG = ClickOSConfig(
    role="firewall",
    elements="FromDevice(0) -> Classifier(...) -> IPFilter(...) -> ToDevice(1);",
)

NAT_CONFIG = ClickOSConfig(
    role="nat",
    elements="FromDevice(0) -> IPRewriter(...) -> ToDevice(1);",
)

ROLE_CONFIGS: Dict[str, ClickOSConfig] = {
    "passive-monitor": PASSIVE_MONITOR,
    "firewall": FIREWALL_CONFIG,
    "nat": NAT_CONFIG,
}


class ClickOSImage:
    """A bootable ClickOS image with a mutable active configuration.

    Mirrors the lifecycle the prototype exercises: boot with a config,
    later :meth:`reconfigure` in ~30 ms instead of booting a fresh VM
    (Sec. VIII-D's key optimisation).
    """

    def __init__(self, image_id: str, config: Optional[ClickOSConfig] = None) -> None:
        self.image_id = image_id
        self.config = config
        self.reconfigure_count = 0

    @property
    def configured(self) -> bool:
        return self.config is not None

    def reconfigure(self, config: ClickOSConfig) -> float:
        """Swap the active configuration; returns the time cost in seconds."""
        self.config = config
        self.reconfigure_count += 1
        return CLICKOS_RECONFIGURE_SECONDS

    def __repr__(self) -> str:
        desc = self.config.describe() if self.config else "unconfigured"
        return f"ClickOSImage({self.image_id!r}, {desc})"
