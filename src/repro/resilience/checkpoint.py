"""Checkpoint capture: the orchestrator's desired state as one payload.

A checkpoint is an ordinary journal record (kind ``CHECKPOINT``) whose
payload is everything recovery needs *besides* the intent suffix:

* bus progress (``seq``) and the idempotency cookies of every intent
  that had already reached a terminal state — the exactly-once fence;
* run accounting (outcomes, latencies, verify counters, audit ticks,
  cross-tenant PV-seconds) so recovered summaries match a crash-free run;
* the arbiter's *settled* ledgers — ``steady`` holdings, charged TCAM,
  and the observability counters.  In-flight reservations are
  deliberately absent: an op that hadn't converged by the checkpoint
  re-executes from its journaled intent, re-requesting its grant;
* one *settled snapshot* per tenant worker: the committed blueprint
  (chain endpoints, NF sequences, exact unrounded rates), the SLO class,
  and the southbound fabric's version vector + epoch counters.

Worker snapshots are taken at convergence (``_converged``) and teardown,
i.e. only at op boundaries — a checkpoint never sees a half-built
deployment.  The fabric's ``versions`` dict is captured **verbatim**,
including entries for deleted class IDs: per-class version numbers only
ever increment, so a delete + re-create after recovery must continue the
old numbering or the recovered wire state would diverge bit-for-bit from
a never-crashed run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tenancy.orchestrator import TenantOrchestrator
    from repro.tenancy.worker import TenantWorker


def empty_snapshot(slo_name: str = "silver") -> dict:
    """The settled snapshot of a tenant with no live deployment."""
    return {
        "slo": slo_name,
        "ops_completed": 0,
        "chains": [],
        "versions": {},
        "epoch": -1,
        "converged_epoch": -1,
    }


def settled_snapshot(worker: "TenantWorker") -> dict:
    """Snapshot one worker's committed state at an op boundary.

    Rates are stored unrounded (JSON round-trips floats exactly);
    rounding here would break bit-identity the first time a replayed
    ``ScaleChain`` multiplies a restored rate.
    """
    snap = {
        "slo": worker.slo.name,
        "ops_completed": worker.ops_completed,
        "chains": [
            [cid, c.src, c.dst, list(c.chain.names), c.rate_mbps]
            for cid, c in sorted(worker.chains.items())
        ],
        "versions": {},
        "epoch": -1,
        "converged_epoch": -1,
    }
    if worker.fabric is not None:
        snap["versions"] = {
            cid: int(v) for cid, v in worker.fabric.versions.items()
        }
        snap["epoch"] = int(worker.fabric.epoch)
        snap["converged_epoch"] = int(worker.fabric.converged_epoch)
    return snap


def capture(orch: "TenantOrchestrator") -> dict:
    """Capture the full checkpoint payload for one orchestrator."""
    arb = orch.arbiter
    workers: Dict[str, dict] = {}
    for tenant_id, worker in sorted(orch.workers.items()):
        settled = getattr(worker, "_settled", None)
        if settled is None:
            settled = empty_snapshot(worker.slo.name)
        workers[tenant_id] = settled
    return {
        "time": orch.sim.now,
        "seq": orch.bus._seq,
        "terminal_cookies": sorted(
            r.cookie for r in orch.bus.records if r.terminal and r.cookie
        ),
        "outcomes": dict(sorted(orch.outcomes.items())),
        "latencies": list(orch.latencies),
        "verify_ok": orch.verify_ok,
        "verify_failed": orch.verify_failed,
        "convergences": orch.convergences,
        "audit_ticks": orch.audit_ticks,
        "xt_pv": orch.cross_tenant_violation_seconds,
        "arbiter": {
            "steady": {
                t: dict(sorted(m.items()))
                for t, m in sorted(arb.steady.items())
            },
            "tcam_used": dict(sorted(arb.tcam_used.items())),
            "granted_total": arb.granted_total,
            "queued_total": arb.queued_total,
            "rejected_total": arb.rejected_total,
            "trims_total": arb.trims_total,
        },
        "workers": workers,
    }
