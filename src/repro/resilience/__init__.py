"""Control-plane crash tolerance: journal, checkpoints, recovery.

The orchestrator stack (tenancy bus/arbiter/workers, the elastic loop,
each tenant's southbound fabric) is the single stateful authority for
interference-free enforcement — and until this package existed, killing
it lost everything.  Three pieces fix that:

* :mod:`repro.resilience.journal` — a write-ahead intent journal:
  every accepted intent, arbiter grant, elastic scale decision and
  southbound epoch event is appended *before* it takes effect, with
  seeded-deterministic record IDs, on an in-memory or on-disk (JSONL)
  backend.  Both are fsync-free: durability is modelled, not bought.
* :mod:`repro.resilience.checkpoint` — periodic snapshots of the
  orchestrator / arbiter / per-tenant desired state, written into the
  journal as ordinary records, so recovery replays only the suffix.
* :mod:`repro.resilience.recovery` — restore the last checkpoint,
  replay the journal suffix (idempotency cookies make replay
  exactly-once), then re-adopt the still-running data plane through the
  southbound anti-entropy reconciler: installed-vs-desired diff, never
  a blind reinstall, so in-flight make-before-break transactions roll
  forward.

``recovery`` is imported lazily (it pulls in the tenancy stack, which
itself journals through this package).  :mod:`repro.resilience.metrics`
mirrors :class:`repro.chaos.metrics.ChaosMetrics`: a deterministic
export plus a separate ``wall_clock()`` side channel.
"""

from repro.resilience.journal import (
    CHECKPOINT,
    COMMIT,
    EPOCH,
    GRANT,
    INTENT,
    RECOVERY,
    SCALE,
    SHUTDOWN,
    FileJournal,
    JournalRecord,
    MemoryJournal,
)
from repro.resilience.metrics import RecoveryEvent, ResilienceMetrics

__all__ = [
    "INTENT",
    "COMMIT",
    "GRANT",
    "SCALE",
    "EPOCH",
    "CHECKPOINT",
    "SHUTDOWN",
    "RECOVERY",
    "JournalRecord",
    "MemoryJournal",
    "FileJournal",
    "ResilienceMetrics",
    "RecoveryEvent",
    "recover",
    "RecoveryReport",
]


def __getattr__(name: str):
    # Lazy: repro.resilience.recovery imports the tenancy stack, and the
    # tenancy bus imports this package's journal constants — importing
    # recovery eagerly here would close that cycle mid-init.
    if name in ("recover", "RecoveryReport"):
        from repro.resilience import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
