"""The write-ahead intent journal: append-only, seeded, replayable.

Every state-changing decision of the control plane is appended here
*before* it takes effect (classic WAL discipline): accepted intents,
arbiter admission verdicts, intent commits, elastic scale decisions,
southbound epoch opens/convergences, periodic checkpoints, graceful
shutdowns and recoveries.  A crash at any point leaves a prefix of the
journal on, um, disk; recovery restores the last ``CHECKPOINT`` record
and replays the ``INTENT`` suffix (see :mod:`repro.resilience.recovery`).

Record IDs are *seeded-deterministic*: ``sha1("{seed}:{index}:{kind}")``
truncated to 12 hex chars, so two same-seed runs produce bit-identical
journals — the rerun regression hashes :meth:`Journal.signature`.

Two backends, both fsync-free (durability is modelled, not bought):

* :class:`MemoryJournal` — a list; what every test and experiment uses.
* :class:`FileJournal` — JSONL write-through with a one-line header;
  ``FileJournal.load`` round-trips it, so a journal can outlive the
  process that wrote it.

This module deliberately imports nothing from the tenancy / elastic /
southbound stacks — they import *its* record-kind constants, and the
payloads stay plain JSON-compatible dicts (the intent codec lives with
the intent types, :func:`repro.tenancy.intents.intent_to_payload`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Record kinds, in rough lifecycle order.
INTENT = "intent"          #: an accepted intent, logged before delivery
GRANT = "grant"            #: an arbiter admission verdict
COMMIT = "commit"          #: an intent reaching a terminal state
SCALE = "scale"            #: an elastic-loop scale decision, pre-push
EPOCH = "epoch"            #: a southbound epoch opened or converged
CHECKPOINT = "checkpoint"  #: a full desired-state snapshot (inline)
SHUTDOWN = "shutdown"      #: a graceful stop (undelivered seqs listed)
RECOVERY = "recovery"      #: a crash recovery completed

KINDS = (INTENT, GRANT, COMMIT, SCALE, EPOCH, CHECKPOINT, SHUTDOWN, RECOVERY)

#: Header line of the on-disk backend.
FILE_SCHEMA = "apple-wal/v1"


def record_id(seed: int, index: int, kind: str) -> str:
    """The seeded-deterministic ID of the ``index``-th record."""
    return hashlib.sha1(f"{seed}:{index}:{kind}".encode()).hexdigest()[:12]


@dataclass(frozen=True)
class JournalRecord:
    """One appended record (immutable once written — it's a WAL)."""

    index: int
    record_id: str
    kind: str
    time: float
    payload: dict

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "record_id": self.record_id,
            "kind": self.kind,
            "time": self.time,
            "payload": self.payload,
        }


class Journal:
    """Shared append/iterate/inspect machinery of both backends."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.records: List[JournalRecord] = []

    # ------------------------------------------------------------------
    def append(self, kind: str, payload: dict, time: float = 0.0) -> JournalRecord:
        """Append one record; returns it (ID derived from seed + index)."""
        if kind not in KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        rec = JournalRecord(
            index=len(self.records),
            record_id=record_id(self.seed, len(self.records), kind),
            kind=kind,
            time=float(time),
            payload=payload,
        )
        self.records.append(rec)
        self._persist(rec)
        return rec

    def _persist(self, rec: JournalRecord) -> None:  # pragma: no cover
        """Backend hook; the in-memory journal does nothing here."""

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> List[JournalRecord]:
        return [r for r in self.records if r.kind == kind]

    def kind_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def last_checkpoint(self) -> Optional[JournalRecord]:
        """The most recent ``CHECKPOINT`` record, or None."""
        for rec in reversed(self.records):
            if rec.kind == CHECKPOINT:
                return rec
        return None

    def signature(self) -> str:
        """Digest of the full journal (bit-identity regressions)."""
        payload = json.dumps(
            [r.to_dict() for r in self.records], sort_keys=True
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:16]


class MemoryJournal(Journal):
    """The default backend: records live in the process."""


class FileJournal(Journal):
    """JSONL write-through backend (fsync-free, append-only).

    Line 1 is a header (``{"schema": "apple-wal/v1", "seed": N}``); every
    later line is one :class:`JournalRecord`.  ``load`` round-trips a
    file written by a previous process — the crash-across-process story.
    """

    def __init__(self, path, seed: int = 0) -> None:
        super().__init__(seed)
        self.path = Path(path)
        if not self.path.exists():
            self.path.write_text(
                json.dumps({"schema": FILE_SCHEMA, "seed": self.seed}) + "\n"
            )

    def _persist(self, rec: JournalRecord) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(rec.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "FileJournal":
        """Rebuild a journal (header + records) from its JSONL file."""
        path = Path(path)
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
        if not lines:
            raise ValueError(f"empty journal file {path}")
        header = json.loads(lines[0])
        if header.get("schema") != FILE_SCHEMA:
            raise ValueError(
                f"{path}: expected {FILE_SCHEMA!r} header, got {header!r}"
            )
        journal = cls(path, seed=int(header.get("seed", 0)))
        journal.records = []
        for line in lines[1:]:
            raw = json.loads(line)
            rec = JournalRecord(
                index=int(raw["index"]),
                record_id=str(raw["record_id"]),
                kind=str(raw["kind"]),
                time=float(raw["time"]),
                payload=raw["payload"],
            )
            expect = record_id(journal.seed, rec.index, rec.kind)
            if rec.record_id != expect:
                raise ValueError(
                    f"{path}: record {rec.index} has id {rec.record_id!r}, "
                    f"expected {expect!r} (corrupt or wrong-seed journal)"
                )
            journal.records.append(rec)
        return journal
