"""Resilience metrics: crashes, recoveries, journal growth, downtime.

Mirrors the :class:`repro.chaos.metrics.ChaosMetrics` split: everything
in :meth:`ResilienceMetrics.to_dict` is a pure function of the seed (so
it participates in bit-identity regressions via :meth:`signature`),
while host wall-clock timings — recovery latency as actually measured —
live behind the separate :meth:`wall_clock` side channel and never touch
the deterministic export.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RecoveryEvent:
    """One crash→recover cycle, as seen by the experiment harness."""

    crash_time: float
    recovered_at: float
    checkpoint_time: float
    journal_records: int
    replayed: int
    skipped: int
    tenants_restored: int
    tenants_rebuilt: int
    caught_up_at: Optional[float] = None
    wall_seconds: float = 0.0

    @property
    def downtime(self) -> float:
        return self.recovered_at - self.crash_time

    def to_dict(self) -> dict:
        return {
            "crash_time": round(self.crash_time, 6),
            "recovered_at": round(self.recovered_at, 6),
            "checkpoint_time": round(self.checkpoint_time, 6),
            "downtime": round(self.downtime, 6),
            "journal_records": self.journal_records,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "tenants_restored": self.tenants_restored,
            "tenants_rebuilt": self.tenants_rebuilt,
            "caught_up_at": (
                round(self.caught_up_at, 6)
                if self.caught_up_at is not None
                else None
            ),
        }


@dataclass
class ResilienceMetrics:
    """Aggregated controller-crash metrics for one run."""

    crashes: int = 0
    checkpoints: int = 0
    journal_length: int = 0
    journal_kinds: Dict[str, int] = field(default_factory=dict)
    recoveries: List[RecoveryEvent] = field(default_factory=list)

    def record_crash(self) -> None:
        self.crashes += 1

    def record_recovery(self, event: RecoveryEvent) -> None:
        self.recoveries.append(event)

    def snapshot_journal(self, journal) -> None:
        """Capture the journal's final shape (length + per-kind counts)."""
        self.journal_length = len(journal)
        self.journal_kinds = dict(sorted(journal.kind_counts().items()))
        self.checkpoints = self.journal_kinds.get("checkpoint", 0)

    # ------------------------------------------------------------------
    @property
    def downtime_seconds(self) -> float:
        return sum(ev.downtime for ev in self.recoveries)

    @property
    def intents_replayed(self) -> int:
        return sum(ev.replayed for ev in self.recoveries)

    @property
    def intents_skipped(self) -> int:
        return sum(ev.skipped for ev in self.recoveries)

    def to_dict(self) -> dict:
        """Deterministic export — no wall-clock values in here."""
        return {
            "crashes": self.crashes,
            "recoveries": len(self.recoveries),
            "checkpoints": self.checkpoints,
            "journal_length": self.journal_length,
            "journal_kinds": dict(self.journal_kinds),
            "downtime_seconds": round(self.downtime_seconds, 6),
            "intents_replayed": self.intents_replayed,
            "intents_skipped": self.intents_skipped,
            "events": [ev.to_dict() for ev in self.recoveries],
        }

    def wall_clock(self) -> dict:
        """Host-timing side channel, kept out of the deterministic dict."""
        return {
            "recovery_wall_seconds": [
                round(ev.wall_seconds, 6) for ev in self.recoveries
            ],
            "recovery_wall_total": round(
                sum(ev.wall_seconds for ev in self.recoveries), 6
            ),
        }

    def signature(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(payload.encode()).hexdigest()[:16]
