"""Deterministic controller recovery: checkpoint + replay + re-adopt.

``recover`` rebuilds a :class:`~repro.tenancy.orchestrator
.TenantOrchestrator` from a write-ahead journal after a crash:

1. **Restore the last checkpoint.**  Run accounting, the arbiter's
   settled ledgers (free pool recomputed as physical − Σ steady), and
   one worker per checkpointed tenant.  A tenant's blueprint (chains,
   exact rates, SLO) deterministically regenerates its placement plan,
   sub-class assignment and rule set: the engine and rule generator are
   pure functions of (classes, grant, catalog), so the rebuilt desired
   state is bit-identical to what the dead controller held.
2. **Re-adopt the live data plane.**  A crash leaves installed rules and
   running VNF instances on the switches (``crash()`` harvests them).
   Each tenant gets a *fresh* southbound fabric over that surviving
   network; ``fabric.restore`` plants the checkpointed desired state and
   version vector, and the anti-entropy reconciler repairs only the
   installed-vs-desired diff — never a blind reinstall — so an epoch the
   dead controller had half-pushed is phase-safely rolled back to the
   checkpoint and then rolled forward by replay.  Without a harvest
   (e.g. property tests that only keep the journal) the wire is rebuilt
   from the regenerated rules first — the one deliberate exception to
   the no-blind-reinstall rule, and it applies only when no live switch
   state survived to adopt.
3. **Replay the journal suffix.**  Every journaled intent whose
   idempotency cookie is *not* in the checkpoint's terminal set is
   redelivered in seq order at its original submission time (or
   immediately, if that is already past).  Cookies make replay
   exactly-once: an op that committed before the crash but after the
   checkpoint re-executes — its effects are not in the checkpoint —
   while one that committed before the checkpoint never double-applies.

Everything here is seeded-deterministic: recovering at any crash point
converges to the same ``state_signature()`` as a run that never crashed.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.controller import Deployment
from repro.core.subclasses import assign_subclasses
from repro.dataplane.network import DataPlaneNetwork
from repro.elastic.slo import SLO_CLASSES
from repro.resilience.journal import COMMIT, INTENT, RECOVERY, Journal
from repro.sim.kernel import Simulator
from repro.sim.rng import derive
from repro.southbound.fabric import SouthboundFabric
from repro.tenancy.arbiter import Grant
from repro.tenancy.intents import IntentRecord, intent_from_payload
from repro.tenancy.orchestrator import DEFAULT_TCAM_BUDGET, TenantOrchestrator
from repro.tenancy.worker import TenantWorker
from repro.topology.graph import Topology
from repro.traffic.classes import TrafficClass
from repro.vnf.chains import PolicyChain
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog

#: Checkpoint payload used when the journal has no CHECKPOINT yet
#: (a crash before the first cadence tick replays the whole journal).
_EMPTY_CHECKPOINT = {
    "time": 0.0,
    "seq": 0,
    "terminal_cookies": [],
    "outcomes": {},
    "latencies": [],
    "verify_ok": 0,
    "verify_failed": 0,
    "convergences": 0,
    "audit_ticks": 0,
    "xt_pv": 0.0,
    "arbiter": {
        "steady": {},
        "tcam_used": {},
        "granted_total": 0,
        "queued_total": 0,
        "rejected_total": 0,
        "trims_total": 0,
    },
    "workers": {},
}


@dataclass
class RecoveryReport:
    """What one ``recover`` call restored, replayed and rebuilt."""

    checkpoint_time: float
    journal_records: int
    replayed: int
    skipped: int
    tenants_restored: int
    tenants_rebuilt: int
    recovered_at: float
    wall_seconds: float

    def to_dict(self) -> dict:
        return {
            "checkpoint_time": round(self.checkpoint_time, 6),
            "journal_records": self.journal_records,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "tenants_restored": self.tenants_restored,
            "tenants_rebuilt": self.tenants_rebuilt,
            "recovered_at": round(self.recovered_at, 6),
        }


def _restore_worker(
    orch: TenantOrchestrator,
    tenant_id: str,
    snap: dict,
    harvest: Optional[Dict[str, tuple]],
) -> bool:
    """Rebuild one tenant worker from its settled snapshot.

    Returns True when the live wire was re-adopted from a harvest,
    False when it had to be rebuilt (or the tenant has no deployment).
    """
    worker = TenantWorker(tenant_id, orch)
    orch.workers[tenant_id] = worker
    worker.slo = SLO_CLASSES[snap["slo"]]
    worker.ops_completed = int(snap["ops_completed"])
    worker._settled = {
        "slo": snap["slo"],
        "ops_completed": int(snap["ops_completed"]),
        "chains": [list(row) for row in snap["chains"]],
        "versions": {k: int(v) for k, v in snap["versions"].items()},
        "epoch": int(snap["epoch"]),
        "converged_epoch": int(snap["converged_epoch"]),
    }
    if not snap["chains"]:
        # Torn-down (or never-deployed) tenant: the worker must exist —
        # orch.workers never drops tenants, and state_signature() hashes
        # every worker — but it holds nothing.
        return False

    target: Dict[str, TrafficClass] = {}
    for chain_id, src, dst, nf_names, rate in snap["chains"]:
        target[chain_id] = TrafficClass(
            class_id=f"{tenant_id}/{chain_id}",
            src=src,
            dst=dst,
            path=orch.router.path(src, dst),
            chain=PolicyChain(tuple(nf_names), orch.catalog),
            rate_mbps=rate,
        )
    classes = [target[k] for k in sorted(target)]
    # The grant sizing and the engine are pure in (classes, physical,
    # catalog): this re-solve reproduces the pre-crash plan bit for bit.
    need = orch.arbiter._compute_need(classes)
    if need is None:
        raise RuntimeError(
            f"recovery: checkpointed blueprint of {tenant_id!r} no longer fits"
        )
    plan = worker.engine.place(classes, need)
    subclass_plan = assign_subclasses(plan)
    rules = worker.rulegen.generate(plan.classes, subclass_plan)

    harvested = harvest.get(tenant_id) if harvest else None
    if harvested is not None:
        network, instances = harvested
    else:
        # No surviving wire to adopt: rebuild base (version-0) rules and
        # let the reconciler transition them to the checkpointed
        # versions.  The documented exception to never-blind-reinstall.
        network = DataPlaneNetwork(orch.topo)
        instances = worker.rulegen.install(
            rules, network, plan.classes, sim=orch.sim
        )
    fabric = SouthboundFabric(
        orch.sim,
        network,
        seed=derive(orch.seed, f"tenancy.sb.{tenant_id}"),
        rulegen=worker.rulegen,
        config=orch.channel_config,
    )
    fabric.restore(
        rules,
        plan.classes,
        instances,
        snap["versions"],
        snap["epoch"],
        snap["converged_epoch"],
    )
    fabric.start()
    worker.chains = target
    worker.network = network
    worker.fabric = fabric
    worker.deployment = Deployment(
        plan, subclass_plan, rules, network, dict(fabric.instances)
    )
    return harvested is not None


def recover(
    journal: Journal,
    topo: Topology,
    sim: Simulator,
    *,
    seed: int,
    harvest: Optional[Dict[str, tuple]] = None,
    catalog: NFTypeCatalog = DEFAULT_CATALOG,
    engine_config=None,
    channel_config=None,
    tcam_budget: int = DEFAULT_TCAM_BUDGET,
    audit_interval: float = 0.25,
    admission_timeout: float = 8.0,
    checkpoint_interval: Optional[float] = None,
) -> Tuple[TenantOrchestrator, RecoveryReport]:
    """Rebuild an orchestrator from its journal (see module docstring).

    Args:
        journal: the dead controller's write-ahead journal.
        harvest: ``{tenant: (network, instances)}`` as returned by
            ``TenantOrchestrator.crash()`` / ``shutdown()`` — the data
            plane that kept forwarding while the controller was down.
            ``None`` rebuilds each tenant's wire from regenerated rules.
        checkpoint_interval: when set, the recovered orchestrator keeps
            journaling + checkpointing at this cadence (so it survives
            the *next* crash too); when None it journals without a
            periodic checkpoint timer.

    Returns:
        ``(orchestrator, report)``; the orchestrator is started and the
        replay suffix is already scheduled on ``sim``.
    """
    wall_start = _time.perf_counter()
    checkpoint = journal.last_checkpoint()
    ckpt = checkpoint.payload if checkpoint is not None else _EMPTY_CHECKPOINT

    orch = TenantOrchestrator(
        topo,
        sim,
        seed=seed,
        catalog=catalog,
        engine_config=engine_config,
        channel_config=channel_config,
        tcam_budget=tcam_budget,
        audit_interval=audit_interval,
        admission_timeout=admission_timeout,
    )

    # -- run accounting ------------------------------------------------
    orch.outcomes = dict(ckpt["outcomes"])
    orch.latencies = list(ckpt["latencies"])
    orch.verify_ok = int(ckpt["verify_ok"])
    orch.verify_failed = int(ckpt["verify_failed"])
    orch.convergences = int(ckpt["convergences"])
    orch.audit_ticks = int(ckpt["audit_ticks"])
    orch.cross_tenant_violation_seconds = float(ckpt["xt_pv"])

    # -- arbiter ledgers -----------------------------------------------
    arb = orch.arbiter
    arb.steady = {
        t: {sw: int(c) for sw, c in m.items()}
        for t, m in ckpt["arbiter"]["steady"].items()
    }
    arb.tcam_used = {
        t: int(v) for t, v in ckpt["arbiter"]["tcam_used"].items()
    }
    arb.free = dict(arb.physical)
    for m in arb.steady.values():
        for sw, c in m.items():
            arb.free[sw] = arb.free.get(sw, 0) - c
    # In-flight reservations are *not* restored: any op that was mid
    # flight re-executes from its journaled intent and re-requests.
    arb.grants = {
        t: Grant(t, dict(m)) for t, m in sorted(arb.steady.items())
    }
    arb.granted_total = int(ckpt["arbiter"]["granted_total"])
    arb.queued_total = int(ckpt["arbiter"]["queued_total"])
    arb.rejected_total = int(ckpt["arbiter"]["rejected_total"])
    arb.trims_total = int(ckpt["arbiter"]["trims_total"])

    # -- tenant workers + southbound re-adoption -----------------------
    tenants_restored = 0
    tenants_rebuilt = 0
    for tenant_id in sorted(ckpt["workers"]):
        snap = ckpt["workers"][tenant_id]
        if _restore_worker(orch, tenant_id, snap, harvest):
            tenants_restored += 1
        elif snap["chains"]:
            tenants_rebuilt += 1

    # -- replay the intent suffix --------------------------------------
    terminal_cookies = set(ckpt["terminal_cookies"])
    commits = {
        rec.payload["cookie"]: rec.payload for rec in journal.of_kind(COMMIT)
    }
    records = []
    to_replay = []
    for rec in journal.of_kind(INTENT):
        payload = rec.payload
        record = IntentRecord(
            intent=intent_from_payload(payload["intent"]),
            seq=int(payload["seq"]),
            submitted_at=float(payload["submitted_at"]),
            cookie=payload["cookie"],
        )
        if record.cookie in terminal_cookies:
            # Committed before the checkpoint: its effects are inside the
            # restored state.  Exactly-once — never redelivered.
            commit = commits[record.cookie]
            record.status = commit["status"]
            record.detail = commit["detail"]
            record.started_at = commit["started_at"]
            record.completed_at = commit["completed_at"]
        else:
            to_replay.append(record)
        records.append(record)
    orch.bus.restore(records)
    orch.bus._seq = max(orch.bus._seq, int(ckpt["seq"]))
    for record in to_replay:
        orch.bus.redeliver(record)

    orch.start(audit_interval)
    if checkpoint_interval is not None:
        orch.attach_journal(journal, checkpoint_interval)
    else:
        orch.journal = journal
        orch.bus.journal = journal

    wall_seconds = _time.perf_counter() - wall_start
    report = RecoveryReport(
        checkpoint_time=float(ckpt["time"]),
        journal_records=len(journal),
        replayed=len(to_replay),
        skipped=len(records) - len(to_replay),
        tenants_restored=tenants_restored,
        tenants_rebuilt=tenants_rebuilt,
        recovered_at=sim.now,
        wall_seconds=wall_seconds,
    )
    journal.append(RECOVERY, report.to_dict(), time=sim.now)
    if obs.REGISTRY.enabled:
        obs.metric("resilience_recoveries_total").inc()
        obs.metric("resilience_intents_replayed_total").inc(report.replayed)
        obs.metric("resilience_intents_skipped_total").inc(report.skipped)
        obs.metric("resilience_recovery_seconds").observe(wall_seconds)
    return orch, report
