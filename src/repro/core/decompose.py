"""Decomposed placement: per-partition ILP shards + capacity coordination.

The monolithic model of :mod:`repro.core.engine` is exact but superlinear
in model size (the LP simplex dominates), which caps it near the paper's
79-node AS-3679.  Production scale — hundreds of switches, 10⁴–10⁶
equivalence classes — needs the orchestration move Sang et al. and Bari
et al. point at: stop solving one giant model and solve coordinated
shards.  Classes couple *only* through shared host capacity (Eq. 5/6);
everything else in the ILP is per-class.  So:

1. **Partition** classes by ingress group (:func:`partition_classes`):
   all classes entering at one switch stay together (they share paths and
   host prefixes), groups are packed greedy-heaviest into shards balanced
   by *structural* weight (d-variable count), never by rate — so the
   partition is a pure function of the class structure and stays put
   across snapshots, which keeps per-shard warm templates valid.
2. **Solve shards independently** against the *full* host capacity — the
   price-0 start of a Lagrangian/price-adjustment scheme.  Unconstrained
   shards are the cheap case (no artificial tightness, so the rounding
   repair loop inside each shard terminates quickly), and at sane
   utilisation the optimistic round is usually the only one.  Shards run
   in-process (per-shard :class:`~repro.core.engine.OptimizationEngine`
   instances whose template caches give the warm-start path *per shard*)
   or fanned out via :func:`repro.parallel.parallel_map` with spec-only
   :class:`~repro.parallel.FnSpec` work units.
3. **Coordinate**: the merged usage is checked against real capacity.
   Hosts oversubscribed by the optimistic round get their cores (and
   memory) *split* among the shards using them, proportional to each
   shard's LP-derived usage — the price rises exactly where demand
   collides — and only the contributing shards re-solve.  A shard that
   goes infeasible under its share has the slack of every under-using
   shard reclaimed for it (others keep their committed plans; the failed
   shard is re-granted everything they left unused) before the instance
   falls back to the monolithic solve.  The loop is bounded by
   ``max_rounds``, so convergence is by construction: at most
   ``max_rounds`` coordination rounds, each re-solving only the
   contributing shards, then one monolithic solve worst-case.

Below ``min_classes`` the decomposed engine delegates to the monolithic
path untouched — small instances stay bit-identical to the classic
engine.  Merged plans are checked, not assumed: the capacity sweep at
step 3 enforces exactly the Eq. 6 coupling the partition removed, and a
final trim collapses the cross-shard rounding waste (shards sharing a
(switch, NF) slot each paid their own ceiling).
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.core.engine import EngineConfig, OptimizationEngine, PlacementError
from repro.core.placement import PlacementPlan
from repro.parallel import FnSpec, Jobs, parallel_map, resolve_jobs
from repro.traffic.classes import TrafficClass
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog

#: Shards stop paying off once they get too thin; ``"auto"`` targets this
#: many d variables per shard before capping at :data:`MAX_SHARDS`.
TARGET_DVARS_PER_SHARD = 2500

#: Upper bound for the ``"auto"`` shard count.
MAX_SHARDS = 16


def structure_weight(
    cls: TrafficClass, available_cores: Mapping[str, int]
) -> int:
    """d-variable count of one class — the LP-cost driver, rate-free."""
    hosts = sum(1 for sw in cls.path if available_cores.get(sw, 0) > 0)
    return cls.chain_length * max(1, hosts)


def auto_shard_count(
    classes: Sequence[TrafficClass],
    available_cores: Mapping[str, int],
    max_shards: int = MAX_SHARDS,
) -> int:
    """Shard count from the model size: ~constant d-vars per shard.

    Unlike the data plane's core-bound :func:`repro.parallel.auto_shards`,
    decomposition pays off even on one core — k shards of n/k variables
    cost ~``k·(n/k)^1.5 = n^1.5/√k`` serial — so the count scales with
    the *instance*, capped by the ingress-group count (the partition
    unit) and :data:`MAX_SHARDS`.
    """
    total = sum(structure_weight(c, available_cores) for c in classes)
    groups = len({c.src for c in classes})
    return max(
        1,
        min(max_shards, groups, math.ceil(total / TARGET_DVARS_PER_SHARD)),
    )


def partition_classes(
    classes: Sequence[TrafficClass],
    available_cores: Mapping[str, int],
    shards: int,
) -> List[List[int]]:
    """Partition class indices into at most ``shards`` ingress groups.

    Classes sharing an ingress switch stay together (one group), groups
    are packed heaviest-first onto the least-loaded shard.  Weights are
    structural (d-variable counts), so the partition depends only on the
    class/host structure — identical across snapshots of one replay.
    Empty shards are dropped; the effective count may be below
    ``shards`` when there are fewer ingress groups.
    """
    if shards < 1:
        raise ValueError("shards must be positive")
    groups: "OrderedDict[str, List[int]]" = OrderedDict()
    for idx, cls in enumerate(classes):
        groups.setdefault(cls.src, []).append(idx)
    weights = {
        src: sum(structure_weight(classes[i], available_cores) for i in idxs)
        for src, idxs in groups.items()
    }
    order = sorted(groups, key=lambda src: (-weights[src], src))
    bins: List[List[int]] = [[] for _ in range(min(shards, len(groups)))]
    loads = [0] * len(bins)
    for src in order:
        b = min(range(len(bins)), key=lambda i: (loads[i], i))
        bins[b].extend(groups[src])
        loads[b] += weights[src]
    return [sorted(b) for b in bins if b]


def _allocate(
    weights: Sequence[Mapping[str, float]],
    available: Mapping[str, int],
) -> List[Dict[str, int]]:
    """Integer proportional split of each host's capacity across shards.

    Largest-remainder rounding with deterministic (remainder, shard
    index) tie-breaks; shards with zero weight at a host get nothing
    there.  Per host, grants sum to at most the capacity — the property
    that makes a merged plan of shard solves feasible by construction.
    """
    alloc: List[Dict[str, int]] = [{} for _ in weights]
    for sw, cap in available.items():
        cap = int(cap)
        shares = [
            (s, w.get(sw, 0.0)) for s, w in enumerate(weights)
            if w.get(sw, 0.0) > 0
        ]
        total = sum(u for _, u in shares)
        if cap <= 0 or total <= 0:
            continue
        raw = [(s, cap * u / total) for s, u in shares]
        grant = {s: int(r) for s, r in raw}
        leftover = cap - sum(grant.values())
        by_remainder = sorted(raw, key=lambda t: (-(t[1] - int(t[1])), t[0]))
        for s, _ in by_remainder[:leftover]:
            grant[s] += 1
        for s, cores in grant.items():
            if cores > 0:
                alloc[s][sw] = cores
    return alloc


def _demand_weights(
    classes: Sequence[TrafficClass],
    shard_lists: Sequence[Sequence[int]],
    available_cores: Mapping[str, int],
    catalog: NFTypeCatalog,
) -> List[Dict[str, float]]:
    """Closed-form per-(shard, host) core-demand proxy.

    Each class's expected core need (Σ over its chain of cores_n / Cap_n,
    times its rate) is spread evenly over the hosts on its path — what
    the LP would do absent capacity pressure, at zero solve cost.  Used
    as the floor under LP-usage weights so hosts idle in one round keep a
    structurally sensible share for the next.
    """
    weights: List[Dict[str, float]] = [{} for _ in shard_lists]
    for s, idxs in enumerate(shard_lists):
        for i in idxs:
            cls = classes[i]
            hosts = [sw for sw in cls.path if available_cores.get(sw, 0) > 0]
            if not hosts:
                continue
            per_mbps = sum(
                catalog.get(nf).cores / catalog.get(nf).capacity_mbps
                for nf in cls.chain
            )
            share = max(cls.rate_mbps, 1e-6) * per_mbps / len(hosts)
            for sw in hosts:
                weights[s][sw] = weights[s].get(sw, 0.0) + share
    return weights


def _repair_allocation(
    alloc: List[Dict[str, int]],
    classes: Sequence[TrafficClass],
    shard_lists: Sequence[Sequence[int]],
    available_cores: Mapping[str, int],
    catalog: NFTypeCatalog,
) -> None:
    """Guarantee every class a host big enough for its largest NF.

    Proportional rounding can zero a light shard out of every host on
    some class's path, or leave it fewer cores than one IDS instance
    needs.  This pass tops the best host up from the unallocated pool
    first, then steals single cores from the richest co-located shard
    (never below one core).  Mutates ``alloc`` in place; anything it
    cannot fix surfaces as a shard failure and is handled by the slack
    reclaim / monolithic fallback.
    """

    def pool(sw: str) -> int:
        return int(available_cores.get(sw, 0)) - sum(a.get(sw, 0) for a in alloc)

    for s, idxs in enumerate(shard_lists):
        for i in idxs:
            cls = classes[i]
            hosts = [sw for sw in cls.path if available_cores.get(sw, 0) > 0]
            if not hosts:
                continue
            need = max(catalog.get(nf).cores for nf in cls.chain)
            if max((alloc[s].get(sw, 0) for sw in hosts), default=0) >= need:
                continue
            for sw in sorted(
                hosts, key=lambda v: (-int(available_cores.get(v, 0)), v)
            ):
                deficit = need - alloc[s].get(sw, 0)
                take = min(deficit, max(0, pool(sw)))
                if take > 0:
                    alloc[s][sw] = alloc[s].get(sw, 0) + take
                    deficit -= take
                while deficit > 0:
                    donors = [
                        t for t in range(len(alloc))
                        if t != s and alloc[t].get(sw, 0) > 1
                    ]
                    if not donors:
                        break
                    donor = max(donors, key=lambda t: (alloc[t].get(sw, 0), -t))
                    alloc[donor][sw] -= 1
                    alloc[s][sw] = alloc[s].get(sw, 0) + 1
                    deficit -= 1
                if deficit <= 0:
                    break


def _raise_unexpected(results: Sequence) -> None:
    """Re-raise any non-placement failure from a shard round.

    Only :class:`PlacementError` means "this shard needs more capacity"
    and is worth a coordination round; anything else (pickling, backend
    crash) is a bug the caller must see immediately.
    """
    for r in results:
        if isinstance(r, Exception) and not isinstance(r, PlacementError):
            raise r


def _solve_shard(payload: dict) -> PlacementPlan:
    """Spec-only work unit: one shard's cold solve in a worker process.

    Module-level so :class:`repro.parallel.FnSpec` can ship a dotted
    reference instead of pickling an engine; the worker re-hydrates an
    :class:`OptimizationEngine` from the payload's config fields.
    """
    engine = OptimizationEngine(payload["catalog"], payload["config"])
    return engine.place(
        payload["classes"],
        payload["cores"],
        available_memory_gb=payload.get("memory"),
    )


@dataclass
class CapacitySplit:
    """A cached coordination state: partition + current per-shard grants.

    Grants start at the full host capacity for every shard (price 0,
    ``constrained=False``).  The first contention switches the split to
    constrained mode: every host proportionally divided, grants summing
    to at most the capacity.  Both states are stable across snapshots of
    one replay, so the structure keys — and with them the warm templates
    — stay put.
    """

    key: tuple
    shard_lists: List[List[int]]
    cores: List[Dict[str, int]]
    memory: Optional[List[Dict[str, float]]]
    #: Structural demand proxy, computed once per split and reused as the
    #: weight floor whenever the capacity is (re-)divided.
    demand: List[Dict[str, float]] = None  # type: ignore[assignment]
    #: True once grants were narrowed to a proper partition of capacity.
    constrained: bool = False
    #: Set when coordination gave up and the instance went monolithic —
    #: later snapshots of the same structure skip straight to it.
    use_monolithic: bool = False
    rounds: int = 0
    solves: int = 0


@dataclass
class DecomposeConfig:
    """Tunables of the decomposed placement path.

    Attributes:
        shards: shard count, or ``"auto"`` (scale with model size, capped
            by ingress groups and :data:`MAX_SHARDS`).
        min_classes: below this many classes the monolithic engine runs
            untouched — small instances stay bit-identical to today.
        max_rounds: price-adjustment rounds before the monolithic
            fallback (the convergence bound).
        jobs: worker processes for shard solves (``1`` = in-process,
            which is also the warm-template path; ``"auto"`` / ``N`` fan
            out cold solves via :func:`repro.parallel.parallel_map`).
    """

    shards: Jobs = "auto"
    min_classes: int = 64
    max_rounds: int = 3
    jobs: Jobs = 1

    def __post_init__(self) -> None:
        if self.shards != "auto":
            if int(self.shards) < 1:
                raise ValueError("shards must be positive or 'auto'")
        if self.min_classes < 0:
            raise ValueError("min_classes must be non-negative")
        if self.max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")


class DecomposedEngine:
    """Placement at hyperscale: partition, solve, coordinate, merge.

    A drop-in alternative to :class:`OptimizationEngine.place` for large
    instances.  Holds one monolithic engine (small-instance passthrough
    and fallback) plus one engine per shard, so the warm-start template
    cache — the 672-snapshot replay hot path — works *per shard*: a
    snapshot whose structure matches re-solves every shard with a rate
    rewrite only.
    """

    def __init__(
        self,
        catalog: NFTypeCatalog = DEFAULT_CATALOG,
        config: Optional[EngineConfig] = None,
        decompose: Optional[DecomposeConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or EngineConfig()
        self.decompose = decompose or DecomposeConfig()
        #: Monolithic passthrough + fallback engine.
        self.mono = OptimizationEngine(catalog, self.config)
        self._shard_engines: Dict[int, OptimizationEngine] = {}
        self._splits: "OrderedDict[tuple, CapacitySplit]" = OrderedDict()
        #: Telemetry.
        self.decomposed_solves = 0
        self.mono_passthroughs = 0
        self.mono_fallbacks = 0
        self.reclaim_rounds_total = 0
        self.reclaimed_cores_total = 0
        self.deadline_fallbacks = 0

    # ------------------------------------------------------------------
    @property
    def warm_solves(self) -> int:
        return self.mono.warm_solves + sum(
            e.warm_solves for e in self._shard_engines.values()
        )

    @property
    def cold_builds(self) -> int:
        return self.mono.cold_builds + sum(
            e.cold_builds for e in self._shard_engines.values()
        )

    def clear_templates(self) -> None:
        """Drop all cached state (splits + every engine's templates)."""
        self.mono.clear_templates()
        for engine in self._shard_engines.values():
            engine.clear_templates()
        self._splits.clear()

    def _engine_for(self, shard: int) -> OptimizationEngine:
        engine = self._shard_engines.get(shard)
        if engine is None:
            engine = self._shard_engines[shard] = OptimizationEngine(
                self.catalog, self.config
            )
        return engine

    # ------------------------------------------------------------------
    def resolve_shards(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
    ) -> int:
        """The effective shard count for this instance.

        Explicit counts are clamped by the ingress-group count — the
        partition unit — so a single-ingress instance resolves to one
        shard and takes the bit-identical monolithic passthrough.
        """
        if self.decompose.shards == "auto":
            return auto_shard_count(classes, available_cores)
        groups = len({c.src for c in classes})
        return max(1, min(int(self.decompose.shards), groups))

    def _structure_key(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
        shards: int,
    ) -> tuple:
        class_part = tuple((c.class_id, c.path, tuple(c.chain)) for c in classes)
        cores_part = tuple(sorted((s, int(v)) for s, v in available_cores.items()))
        mem_part = (
            None
            if available_memory_gb is None
            else tuple(sorted((s, float(v)) for s, v in available_memory_gb.items()))
        )
        return (class_part, cores_part, mem_part, shards, id(self.catalog))

    # ------------------------------------------------------------------
    def place(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
    ) -> PlacementPlan:
        """Solve ``classes`` decomposed; fall back monolithic when beaten.

        Raises:
            PlacementError: as :meth:`OptimizationEngine.place` — every
                unrecoverable shard failure falls back to the monolithic
                solve, so the verdict on a genuinely infeasible instance
                is exactly the classic engine's.
        """
        started = time.perf_counter()
        shards = self.resolve_shards(classes, available_cores)
        if len(classes) < self.decompose.min_classes or shards <= 1:
            self.mono_passthroughs += 1
            return self.mono.place(classes, available_cores, available_memory_gb)

        key = self._structure_key(
            classes, available_cores, available_memory_gb, shards
        )
        split = self._splits.get(key)
        if split is None:
            split = self._build_split(
                classes, available_cores, available_memory_gb, shards, key
            )
            self._splits[key] = split
            while len(self._splits) > 8:
                self._splits.popitem(last=False)
        else:
            self._splits.move_to_end(key)
        if split.use_monolithic:
            self.mono_fallbacks += 1
            return self.mono.place(classes, available_cores, available_memory_gb)

        n_shards = len(split.shard_lists)
        plans: List = [None] * n_shards
        need = list(range(n_shards))
        rounds = 0
        reclaim_attempted = False
        while True:
            solved = self._solve_round(classes, split, need)
            _raise_unexpected(solved)
            for s, plan in zip(need, solved):
                plans[s] = plan

            failed = [
                s for s in range(n_shards)
                if isinstance(plans[s], PlacementError)
            ]
            if failed:
                if not split.constrained:
                    # A shard failed with the *full* capacity.  Its model
                    # is a restriction of the monolithic one, but the
                    # ceiling-repair heuristic is not monotone: smaller
                    # models usually repair more easily, yet not always.
                    # The monolithic solve is the authoritative verdict.
                    split.use_monolithic = True
                    self.mono_fallbacks += 1
                    return self.mono.place(
                        classes, available_cores, available_memory_gb
                    )
                if reclaim_attempted or rounds >= self.decompose.max_rounds:
                    split.use_monolithic = True
                    self.mono_fallbacks += 1
                    return self.mono.place(
                        classes, available_cores, available_memory_gb
                    )
                reclaim_attempted = True
                need = self._reclaim_slack(
                    classes, split, plans, failed, available_cores,
                    available_memory_gb,
                )
                continue

            if not self._oversubscribed(
                plans, available_cores, available_memory_gb
            ):
                break
            if rounds >= self.decompose.max_rounds:
                split.use_monolithic = True
                self.mono_fallbacks += 1
                return self.mono.place(
                    classes, available_cores, available_memory_gb
                )
            rounds += 1
            reclaim_attempted = False
            self._split_capacity(
                classes, split, plans, available_cores, available_memory_gb
            )
            need = list(range(n_shards))

        split.rounds += rounds
        split.solves += 1
        self.decomposed_solves += 1
        self.reclaim_rounds_total += rounds

        merged = self._merge(classes, plans, started)
        if obs.REGISTRY.enabled:
            obs.metric("solver_shard_count").set(n_shards)
            obs.metric("solver_shard_rounds").set(rounds)
            for plan in plans:
                obs.metric("solver_shard_solve_seconds").observe(
                    plan.solve_seconds
                )
        return merged

    # ------------------------------------------------------------------
    def estimate_solve_seconds(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
    ) -> float:
        """Deterministic solve-cost estimate of the *decomposed* path.

        Delegates to :meth:`OptimizationEngine.estimate_solve_seconds`
        with this instance's effective shard count, so deadline decisions
        see the sum of shard-sized models instead of the monolithic size
        (which would spuriously trigger greedy fallbacks — the shards are
        superlinearly cheaper).
        """
        shards = self.resolve_shards(classes, available_cores)
        if len(classes) < self.decompose.min_classes:
            shards = 1
        return self.mono.estimate_solve_seconds(
            classes, available_cores, shards=shards
        )

    def place_with_deadline(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[PlacementPlan, bool]:
        """Deadline-aware wrapper mirroring the monolithic engine's.

        The estimate is shard-aware, so instances the decomposition can
        finish in time run the real solver instead of degrading to the
        greedy placer.
        """
        if (
            deadline is not None
            and self.estimate_solve_seconds(classes, available_cores) > deadline
        ):
            from repro.core.greedy import greedy_placement

            clamped = [self.mono._clamped(c) for c in classes]
            OptimizationEngine._check_paths(clamped, available_cores)
            plan = greedy_placement(
                clamped,
                available_cores,
                self.catalog,
                capacity_headroom=self.config.capacity_headroom,
            )
            self.deadline_fallbacks += 1
            if obs.REGISTRY.enabled:
                obs.metric("solver_deadline_fallbacks_total").inc()
            return plan, True
        return (
            self.place(classes, available_cores, available_memory_gb),
            False,
        )

    # ------------------------------------------------------------------
    def _build_split(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
        shards: int,
        key: tuple,
    ) -> CapacitySplit:
        shard_lists = partition_classes(classes, available_cores, shards)
        # Price-0 grants: every shard initially sees the full capacity.
        cores = [dict(available_cores) for _ in shard_lists]
        memory = None
        if available_memory_gb is not None:
            memory = [dict(available_memory_gb) for _ in shard_lists]
        return CapacitySplit(
            key=key, shard_lists=shard_lists, cores=cores, memory=memory
        )

    def _solve_round(
        self,
        classes: Sequence[TrafficClass],
        split: CapacitySplit,
        shard_ids: Sequence[int],
    ) -> List:
        """Solve the given shards; returns plans (or PlacementError)."""
        shard_ids = list(shard_ids)
        jobs = resolve_jobs(self.decompose.jobs)
        shard_classes = {
            s: [classes[i] for i in split.shard_lists[s]] for s in shard_ids
        }
        if jobs == "auto" or int(jobs) > 1:
            payloads = [
                {
                    "classes": shard_classes[s],
                    "cores": split.cores[s],
                    "memory": split.memory[s] if split.memory else None,
                    "config": self.config,
                    "catalog": self.catalog,
                }
                for s in shard_ids
            ]
            return parallel_map(
                FnSpec.of(_solve_shard),
                payloads,
                jobs=jobs,
                return_exceptions=True,
            )
        results = []
        for s in shard_ids:
            try:
                results.append(
                    self._engine_for(s).place(
                        shard_classes[s],
                        split.cores[s],
                        available_memory_gb=(
                            split.memory[s] if split.memory else None
                        ),
                    )
                )
            except PlacementError as exc:
                results.append(exc)
        return results

    @staticmethod
    def _oversubscribed(
        plans: List[PlacementPlan],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
    ) -> bool:
        """Does the merged usage of the shard plans exceed any host?"""
        totals: Dict[str, int] = {}
        for plan in plans:
            for sw, cores in plan.cores_by_switch().items():
                totals[sw] = totals.get(sw, 0) + cores
        for sw, cores in totals.items():
            if cores > int(available_cores.get(sw, 0)):
                return True
        if available_memory_gb is not None:
            mem_totals: Dict[str, float] = {}
            for plan in plans:
                for sw, mem in plan.memory_by_switch().items():
                    mem_totals[sw] = mem_totals.get(sw, 0.0) + mem
            for sw, mem in mem_totals.items():
                if mem > float(available_memory_gb.get(sw, 0.0)) + 1e-9:
                    return True
        return False

    def _split_capacity(
        self,
        classes: Sequence[TrafficClass],
        split: CapacitySplit,
        plans: List[PlacementPlan],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
    ) -> None:
        """Divide every host among the shards: the price-adjustment step.

        Weights are the shards' LP-derived usage from the round that
        oversubscribed — what each shard's relaxation actually asked for,
        the best seed available — floored by the structural demand proxy
        so hosts idle this round keep a sensible share for later
        snapshots.  After the proportional split, grants sum to at most
        each host's capacity, which makes the merged plan of the next
        round feasible by construction; a repair pass then guarantees
        every class one host big enough for its largest NF (an 8-core IDS
        must fit somewhere on the path).  Mutates the cached split —
        subsequent snapshots inherit the learned prices and warm-solve
        against them.
        """
        if split.demand is None:
            split.demand = _demand_weights(
                classes, split.shard_lists, available_cores, self.catalog
            )
        weights: List[Dict[str, float]] = []
        for s, plan in enumerate(plans):
            usage = plan.cores_by_switch()
            floor = split.demand[s]
            merged = {
                sw: float(usage.get(sw, 0)) + 1e-3 * floor.get(sw, 0.0)
                for sw in set(usage) | set(floor)
            }
            weights.append(merged)
        before_total = sum(sum(a.values()) for a in split.cores)
        split.cores = _allocate(weights, available_cores)
        _repair_allocation(
            split.cores, classes, split.shard_lists, available_cores,
            self.catalog,
        )
        split.constrained = True
        reclaimed = max(
            0, before_total - sum(sum(a.values()) for a in split.cores)
        )
        self.reclaimed_cores_total += reclaimed
        if obs.REGISTRY.enabled and reclaimed:
            obs.metric("solver_shard_reclaimed_cores_total").inc(reclaimed)
        if split.memory is not None and available_memory_gb is not None:
            split.memory = [
                {
                    sw: float(available_memory_gb.get(sw, 0.0))
                    * grant
                    / max(1, int(available_cores.get(sw, 1)))
                    for sw, grant in alloc.items()
                }
                for alloc in split.cores
            ]

    def _reclaim_slack(
        self,
        classes: Sequence[TrafficClass],
        split: CapacitySplit,
        plans: List,
        failed: List[int],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
    ) -> List[int]:
        """Re-grant everything the committed shards left unused.

        A shard infeasible under its contention share gets, at every
        host, the capacity minus what the *other* shards' committed plans
        actually consume — the under-users' slack, reclaimed.  With
        several failed shards the slack is split among them proportional
        to their previous grants.  Only the failed shards re-solve.
        """
        core_usage = [
            plan.cores_by_switch() if isinstance(plan, PlacementPlan) else {}
            for plan in plans
        ]
        slack_avail: Dict[str, int] = {}
        for sw, cap in available_cores.items():
            committed = sum(
                core_usage[s].get(sw, 0)
                for s in range(len(plans))
                if s not in failed
            )
            slack_avail[sw] = max(0, int(cap) - committed)
        # Previous grants as weights: a shard that was starved somewhere
        # keeps its claim shape, scaled up to the reclaimed slack.
        weights: List[Dict[str, float]] = [
            (
                {
                    sw: float(max(split.cores[s].get(sw, 0), 1))
                    for sw in slack_avail
                    if slack_avail[sw] > 0
                }
                if s in failed
                else {}
            )
            for s in range(len(plans))
        ]
        grants = _allocate(weights, slack_avail)
        failed_lists = [split.shard_lists[s] for s in failed]
        failed_alloc = [grants[s] for s in failed]
        _repair_allocation(
            failed_alloc, classes, failed_lists, slack_avail, self.catalog
        )
        reclaimed = 0
        for s, alloc in zip(failed, failed_alloc):
            reclaimed += max(
                0, sum(alloc.values()) - sum(split.cores[s].values())
            )
            split.cores[s] = alloc
            if split.memory is not None and available_memory_gb is not None:
                split.memory[s] = {
                    sw: float(available_memory_gb.get(sw, 0.0))
                    * grant
                    / max(1, int(available_cores.get(sw, 1)))
                    for sw, grant in alloc.items()
                }
        self.reclaimed_cores_total += reclaimed
        if obs.REGISTRY.enabled and reclaimed:
            obs.metric("solver_shard_reclaimed_cores_total").inc(reclaimed)
        return list(failed)

    def _merge(
        self,
        classes: Sequence[TrafficClass],
        plans: List[PlacementPlan],
        started: float,
    ) -> PlacementPlan:
        """Union the shard plans into one :class:`PlacementPlan`.

        Quantities of a (switch, NF) slot sum across shards; class keys
        never collide (a class lives in exactly one shard).  A final trim
        recomputes each slot's needed instance count from the *merged*
        load — shards sharing a slot each paid their own Eq. 5 ceiling,
        and the sum of per-shard ceilings over-provisions by up to one
        instance per shard.  The reported ``lp_bound`` is the sum of
        shard bounds — valid for each shard's *relaxed or restricted*
        subproblem, an approximation (not a certified bound) of the joint
        LP optimum.
        """
        quantities: Dict[Tuple[str, str], int] = {}
        distribution: Dict[Tuple[str, int, int], float] = {}
        clamped: Dict[str, TrafficClass] = {}
        lp_bound = 0.0
        for plan in plans:
            for slot, count in plan.quantities.items():
                quantities[slot] = quantities.get(slot, 0) + count
            distribution.update(plan.distribution)
            for cls in plan.classes:
                clamped[cls.class_id] = cls
            lp_bound += plan.lp_bound
        merged_classes = [clamped[c.class_id] for c in classes]

        # Trim cross-shard rounding waste: the merged load at a slot needs
        # ceil(load / derated Cap_n) instances, never the sum of per-shard
        # ceilings.  Uses the same headroom-derated capacity the engine
        # plans with, so the trimmed plan still validates.
        load: Dict[Tuple[str, str], float] = {}
        for (cid, i, j), frac in distribution.items():
            if frac <= 0:
                continue
            cls = clamped[cid]
            slot = (cls.path[i], cls.chain[j])
            load[slot] = load.get(slot, 0.0) + cls.rate_mbps * frac
        for slot in list(quantities):
            cap = (
                self.catalog.get(slot[1]).capacity_mbps
                * self.config.capacity_headroom
            )
            needed = int(math.ceil(load.get(slot, 0.0) / cap - 1e-9))
            if needed < quantities[slot]:
                if needed > 0:
                    quantities[slot] = needed
                else:
                    del quantities[slot]

        return PlacementPlan(
            quantities=quantities,
            distribution=distribution,
            classes=merged_classes,
            catalog=self.catalog,
            objective=float(sum(quantities.values())),
            lp_bound=float(lp_bound),
            solve_seconds=time.perf_counter() - started,
            warm_start=all(p.warm_start for p in plans),
        )
