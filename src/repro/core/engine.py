"""The Optimization Engine: traffic-aware VNF placement (Sec. IV).

Builds the ILP of Eq. 1–8 over traffic classes and solves it by LP
relaxation + iterative rounding (the paper's CPLEX-with-LP-relaxation
production path) or exactly by branch-and-bound for small instances.

Formulation notes:

* The derived variable σ_{h,j}^i (cumulative portion processed up to path
  position i) is substituted away: σ_{h,j}^i = Σ_{i'≤i} d_{h,j}^{i'}, which
  removes a third of the variables without changing the polytope.
* d variables exist only at path positions whose switch has an APPLE host —
  elsewhere the portion is identically zero.
* q variables exist only for (switch, NF) pairs some class can actually
  use, keeping the model sparse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.placement import PlacementPlan
from repro.solver.branch_bound import solve_branch_bound
from repro.solver.lp import solve_lp, SolverError
from repro.solver.model import LinExpr, Model
from repro.solver.rounding import solve_with_rounding
from repro.traffic.classes import TrafficClass
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog


class PlacementError(RuntimeError):
    """Raised when no feasible placement exists (e.g. no host on a path)."""


@dataclass
class EngineConfig:
    """Tunables of the Optimization Engine.

    Attributes:
        solver: ``"rounding"`` (LP relaxation + round-up, the paper's path)
            or ``"exact"`` (branch-and-bound, small instances only).
        min_class_rate_mbps: classes below this rate are clamped up to it,
            so even near-idle classes receive (shared) instances — APPLE
            provisions proactively for potential flows (Sec. I).
        max_bb_nodes: node limit for the exact solver.
        consolidate: run the dust-consolidation pass after rounding, which
            evacuates lightly loaded instances into other instances' spare
            capacity (order-preserving) to shrink the integrality gap.
        capacity_headroom: fraction of each instance's capacity the engine
            may plan onto (Eq. 5 uses headroom x Cap_n).  Below 1.0 the
            placement keeps slack for traffic dynamics, mirroring the
            paper's practice of setting the overload threshold below the
            measured loss knee.
        compare_greedy: also run the first-fit greedy heuristic and keep
            whichever plan uses fewer instances.  Neither heuristic
            dominates: LP rounding wins under fragmentation, greedy under
            low utilisation.  Off by default so results match the paper's
            pure LP-relaxation methodology.
        dust_threshold: a single-instance slot is "dust" when its load is
            below this fraction of one instance's capacity.
    """

    solver: str = "rounding"
    min_class_rate_mbps: float = 1e-3
    max_bb_nodes: int = 2000
    consolidate: bool = True
    dust_threshold: float = 0.6
    capacity_headroom: float = 1.0
    compare_greedy: bool = False

    def __post_init__(self) -> None:
        if self.solver not in ("rounding", "exact"):
            raise ValueError(f"unknown solver {self.solver!r}")


class OptimizationEngine:
    """Computes VNF placement plans from classes + available resources.

    Args:
        catalog: NF datasheets (capacities Cap_n, resource vectors R_n).
        config: solver configuration.
    """

    def __init__(
        self,
        catalog: NFTypeCatalog = DEFAULT_CATALOG,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or EngineConfig()

    # ------------------------------------------------------------------
    def place(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
    ) -> PlacementPlan:
        """Solve the placement problem for ``classes``.

        Args:
            classes: traffic classes (path, chain, rate).
            available_cores: A_v (core dimension) — free cores per switch
                with an APPLE host; switches absent cannot host instances.
            available_memory_gb: optional second dimension of A_v; when
                given, Eq. 6 is enforced per resource type (R_n is the
                (cores, memory) vector of each NF).

        Raises:
            PlacementError: a class's path has no APPLE host, or the model
                is infeasible (insufficient capacity anywhere).
        """
        started = time.perf_counter()
        classes = [self._clamped(c) for c in classes]
        self._check_paths(classes, available_cores)

        model = Model("apple-placement")
        # d variables, created lazily only at host positions -------------
        d_vars: Dict[Tuple[str, int, int], object] = {}
        # load_terms[(v, n)] collects (T_h, d_var) for capacity constraints
        load_terms: Dict[Tuple[str, str], List[Tuple[float, object]]] = {}

        for cls in classes:
            host_positions = [
                i for i, sw in enumerate(cls.path) if available_cores.get(sw, 0) > 0
            ]
            for j, nf in enumerate(cls.chain):
                for i in host_positions:
                    var = model.add_var(f"d[{cls.class_id},{i},{j}]", lb=0.0, ub=1.0)
                    d_vars[(cls.class_id, i, j)] = var
                    key = (cls.path[i], nf)
                    load_terms.setdefault(key, []).append((cls.rate_mbps, var))

            # Eq. 4: every chain step processes 100% of the class.
            for j in range(cls.chain_length):
                step_vars = [d_vars[(cls.class_id, i, j)] for i in host_positions]
                model.add_constraint(
                    LinExpr.total(step_vars).eq(1.0),
                    name=f"complete[{cls.class_id},{j}]",
                )

            # Eq. 3 (with σ substituted): cumulative of step j-1 dominates
            # cumulative of step j at every prefix of the path.
            for j in range(1, cls.chain_length):
                for stop in range(len(host_positions) - 1):
                    prefix = host_positions[: stop + 1]
                    expr = LinExpr.total(
                        [(1.0, d_vars[(cls.class_id, i, j - 1)]) for i in prefix]
                        + [(-1.0, d_vars[(cls.class_id, i, j)]) for i in prefix]
                    )
                    model.add_constraint(
                        expr >= 0.0, name=f"order[{cls.class_id},{j},{stop}]"
                    )

        # q variables for used (switch, NF) pairs -------------------------
        q_vars: Dict[Tuple[str, str], object] = {}
        for (switch, nf) in sorted(load_terms):
            q_vars[(switch, nf)] = model.add_var(
                f"q[{switch},{nf}]", lb=0.0, integer=True
            )

        # Eq. 5: capacity.
        for (switch, nf), terms in sorted(load_terms.items()):
            cap = self._cap(nf)
            expr = LinExpr.total(terms) - cap * q_vars[(switch, nf)]
            model.add_constraint(expr <= 0.0, name=f"cap[{switch},{nf}]")

        # Eq. 6: per-switch resources.
        by_switch: Dict[str, List[Tuple[float, object]]] = {}
        for (switch, nf), q in q_vars.items():
            by_switch.setdefault(switch, []).append(
                (float(self.catalog.get(nf).cores), q)
            )
        resource_rows: Dict[str, int] = {}
        for switch, terms in sorted(by_switch.items()):
            model.add_constraint(
                LinExpr.total(terms) <= float(available_cores.get(switch, 0)),
                name=f"res[{switch}]",
            )
            resource_rows[switch] = model.num_constraints - 1

        # Eq. 6, memory dimension (when modelled): Σ mem_n · q ≤ M_v.
        if available_memory_gb is not None:
            mem_by_switch: Dict[str, List[Tuple[float, object]]] = {}
            for (switch, nf), q in q_vars.items():
                mem_by_switch.setdefault(switch, []).append(
                    (float(self.catalog.get(nf).memory_gb), q)
                )
            for switch, terms in sorted(mem_by_switch.items()):
                model.add_constraint(
                    LinExpr.total(terms)
                    <= float(available_memory_gb.get(switch, 0.0)),
                    name=f"mem[{switch}]",
                )

        # Eq. 1: minimise total instance count.
        model.minimize(LinExpr.total(list(q_vars.values())))

        # Solve ------------------------------------------------------------
        try:
            if self.config.solver == "exact":
                bb = solve_branch_bound(model, max_nodes=self.config.max_bb_nodes)
                if bb.solution is None:
                    raise PlacementError("exact solver found no feasible placement")
                solution, objective, lp_bound = bb.solution, bb.objective, bb.objective
                quantities = {
                    key: int(round(solution[q.index]))
                    for key, q in q_vars.items()
                    if round(solution[q.index]) > 0
                }
            else:
                solution, quantities, objective, lp_bound = self._solve_ceiling(
                    model,
                    q_vars,
                    load_terms,
                    available_cores,
                    resource_rows,
                    available_memory_gb,
                )
        except SolverError as exc:
            raise PlacementError(f"placement infeasible: {exc}") from exc
        distribution = self._extract_distribution(classes, d_vars, solution)
        if (
            self.config.compare_greedy
            and self.config.solver == "rounding"
            and available_memory_gb is None
        ):
            alt = self._try_greedy(classes, available_cores)
            if alt is not None and alt[0] < sum(quantities.values()):
                quantities, distribution = alt[1], alt[2]
                objective = float(alt[0])
        if self.config.consolidate:
            # Cascade: evacuating one slot frees spare that may unlock the
            # next; repeat until a fixed point (bounded by slot count).
            for _ in range(4):
                before = sum(quantities.values())
                self._consolidate_dust(classes, distribution, quantities)
                if sum(quantities.values()) == before:
                    break
            objective = float(sum(quantities.values()))
        return PlacementPlan(
            quantities=quantities,
            distribution=distribution,
            classes=list(classes),
            catalog=self.catalog,
            objective=float(objective),
            lp_bound=float(lp_bound),
            solve_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def _solve_ceiling(
        self,
        model: Model,
        q_vars: Dict[Tuple[str, str], object],
        load_terms: Dict[Tuple[str, str], List[Tuple[float, object]]],
        available_cores: Mapping[str, int],
        resource_rows: Dict[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
    ):
        """LP relaxation + ceiling rounding with budget-tightening repair.

        One LP solve gives the spatial distribution d; the integer counts
        are then q_n^v = ceil(L_vn / Cap_n) from the *actual* loads L_vn the
        LP assigned (tighter than ceiling the fractional q).  Because the
        LP enforces L_vn ≤ Cap_n · q_lp, the d values remain feasible under
        these counts; only the per-switch core budget (Eq. 6) can be broken
        by the round-up.  When a switch overshoots, its budget in the LP is
        tightened by the overshoot and the LP re-solved — this converges in
        a couple of iterations in practice.  If repair fails, fall back to
        generic iterative rounding.
        """
        import math

        import numpy as np

        compiled = model.compile()
        budgets = {
            sw: float(available_cores.get(sw, 0)) for sw in resource_rows
        }
        banned_slots: set = set()  # slots whose d vars are forced to zero
        prev_violations: Dict[str, int] = {}
        lp_bound: Optional[float] = None
        for _ in range(8):
            if all(
                budgets[sw] == float(available_cores.get(sw, 0))
                for sw in resource_rows
            ):
                b_ub = None
            else:
                b_ub = compiled.b_ub.copy()
                for sw, ci in resource_rows.items():
                    b_ub[compiled.ub_row_of[ci]] = budgets[sw]
            extra_ub = None
            if banned_slots:
                extra_ub = np.full(model.num_variables, np.nan)
                for slot in banned_slots:
                    for _t, var in load_terms.get(slot, []):
                        extra_ub[var.index] = 0.0
            lp = solve_lp(
                model, compiled, b_ub_override=b_ub, extra_upper_bounds=extra_ub
            )
            if lp_bound is None:
                lp_bound = lp.objective

            quantities: Dict[Tuple[str, str], int] = {}
            cores_by_switch: Dict[str, int] = {}
            memory_by_switch: Dict[str, float] = {}
            for key, terms in load_terms.items():
                load = sum(t * lp.solution[var.index] for t, var in terms)
                if load <= 1e-12:
                    continue
                nf = self.catalog.get(key[1])
                count = int(
                    math.ceil(load / self._cap(key[1]) - 1e-9)
                )
                count = max(count, 1)
                quantities[key] = count
                cores_by_switch[key[0]] = (
                    cores_by_switch.get(key[0], 0) + nf.cores * count
                )
                memory_by_switch[key[0]] = (
                    memory_by_switch.get(key[0], 0.0) + nf.memory_gb * count
                )

            violations = {
                sw: cores - available_cores.get(sw, 0)
                for sw, cores in cores_by_switch.items()
                if cores > available_cores.get(sw, 0)
            }
            if available_memory_gb is not None and not violations:
                # Memory overshoot cannot be repaired by tightening core
                # budgets; defer to the generic rounding fallback.
                memory_broken = any(
                    mem > available_memory_gb.get(sw, 0.0) + 1e-9
                    for sw, mem in memory_by_switch.items()
                )
                if memory_broken:
                    break
            if not violations:
                solution = lp.solution.copy()
                for key, q in q_vars.items():
                    solution[q.index] = float(quantities.get(key, 0))
                objective = float(sum(quantities.values()))
                return solution, quantities, objective, lp_bound
            for sw, overshoot in violations.items():
                if prev_violations.get(sw, 0) == overshoot:
                    # Budget tightening had no effect: the overshoot comes
                    # from dust slots whose fractional core use is ~0.
                    # Evacuate the lightest slot at this switch instead.
                    slots_here = sorted(
                        (
                            (load, key)
                            for key, load in (
                                (k, sum(t * lp.solution[v.index] for t, v in terms))
                                for k, terms in load_terms.items()
                                if k[0] == sw and k not in banned_slots
                            )
                            if load > 1e-12
                        )
                    )
                    if slots_here:
                        banned_slots.add(slots_here[0][1])
                budgets[sw] = max(0.0, budgets[sw] - float(overshoot))
            prev_violations = dict(violations)

        res = solve_with_rounding(model)
        quantities = {
            key: int(round(res.solution[q.index]))
            for key, q in q_vars.items()
            if round(res.solution[q.index]) > 0
        }
        return res.solution, quantities, res.objective, res.lp_objective

    def _consolidate_dust(
        self,
        classes: Sequence[TrafficClass],
        distribution: Dict[Tuple[str, int, int], float],
        quantities: Dict[Tuple[str, str], int],
    ) -> None:
        """Evacuate lightly loaded instances into other instances' spare.

        LP degeneracy spreads small portions across many slots; after
        ceiling those slivers each pin a whole instance.  This pass takes
        every single-instance slot whose load is below the dust threshold
        and tries to move *all* of its portions onto other slots of the
        same NF on each class's path, checking spare capacity and the
        ordering constraint (Eq. 3) before committing.  Mutates
        ``distribution`` and ``quantities`` in place.
        """
        class_by_id = {c.class_id: c for c in classes}
        loads: Dict[Tuple[str, str], float] = {}
        portions: Dict[Tuple[str, str], List[Tuple[str, int, int]]] = {}
        for (cid, i, j), frac in distribution.items():
            cls = class_by_id[cid]
            slot = (cls.path[i], cls.chain[j])
            loads[slot] = loads.get(slot, 0.0) + frac * cls.rate_mbps
            portions.setdefault(slot, []).append((cid, i, j))

        def spare(slot: Tuple[str, str]) -> float:
            return self._cap(slot[1]) * quantities.get(slot, 0) - loads.get(slot, 0.0)

        dust = sorted(
            (
                slot
                for slot, q in quantities.items()
                if q == 1
                and loads.get(slot, 0.0)
                < self.config.dust_threshold * self._cap(slot[1])
            ),
            key=lambda s: loads.get(s, 0.0),
        )
        for slot in dust:
            moves: List[Tuple[Tuple[str, int, int], Tuple[str, int, int]]] = []
            pending: Dict[Tuple[str, str], float] = {}
            ok = True
            for (cid, i, j) in portions.get(slot, []):
                cls = class_by_id[cid]
                frac = distribution.get((cid, i, j), 0.0)
                if frac <= 0:
                    continue
                mass = frac * cls.rate_mbps
                target = self._find_target(
                    cls, i, j, slot, mass, quantities, spare, pending, distribution
                )
                if target is None:
                    ok = False
                    break
                moves.append(((cid, i, j), (cid, target, j)))
                tslot = (cls.path[target], cls.chain[j])
                pending[tslot] = pending.get(tslot, 0.0) + mass
            if not ok or not moves:
                continue
            # Commit: shift fractions, update loads, drop the instance.
            for (cid, i, j), (_, ti, _) in moves:
                cls = class_by_id[cid]
                frac = distribution.pop((cid, i, j))
                distribution[(cid, ti, j)] = (
                    distribution.get((cid, ti, j), 0.0) + frac
                )
                tslot = (cls.path[ti], cls.chain[j])
                loads[tslot] = loads.get(tslot, 0.0) + frac * cls.rate_mbps
                portions.setdefault(tslot, []).append((cid, ti, j))
            loads.pop(slot, None)
            portions.pop(slot, None)
            del quantities[slot]

    def _find_target(
        self,
        cls: TrafficClass,
        i: int,
        j: int,
        slot: Tuple[str, str],
        mass: float,
        quantities: Dict[Tuple[str, str], int],
        spare,
        pending: Dict[Tuple[str, str], float],
        distribution: Dict[Tuple[str, int, int], float],
    ) -> Optional[int]:
        """A path position that can absorb (cls, step j)'s portion at ``i``.

        The candidate must host instances of the same NF with enough spare
        capacity (accounting for moves staged in ``pending``) and moving
        the portion there must keep Eq. 3's ordering valid for the class.
        """
        nf = cls.chain[j]
        for ti in range(cls.path_length):
            if ti == i:
                continue
            tslot = (cls.path[ti], nf)
            if tslot == slot or quantities.get(tslot, 0) <= 0:
                continue
            if spare(tslot) - pending.get(tslot, 0.0) < mass - 1e-9:
                continue
            if self._order_ok_after_move(cls, distribution, i, ti, j):
                return ti
        return None

    @staticmethod
    def _order_ok_after_move(
        cls: TrafficClass,
        distribution: Dict[Tuple[str, int, int], float],
        i: int,
        ti: int,
        j: int,
        tol: float = 1e-9,
    ) -> bool:
        """Would moving d[cls, i, j] to position ti keep Eq. 3 valid?"""
        frac = distribution.get((cls.class_id, i, j), 0.0)

        def portion(jj: int, ii: int) -> float:
            v = distribution.get((cls.class_id, ii, jj), 0.0)
            if jj == j:
                if ii == i:
                    v = 0.0
                if ii == ti:
                    v += frac
            return v

        for jj in (j, j + 1):
            if jj < 1 or jj >= cls.chain_length:
                continue
            cum_prev = cum_cur = 0.0
            for ii in range(cls.path_length):
                cum_prev += portion(jj - 1, ii)
                cum_cur += portion(jj, ii)
                if cum_cur > cum_prev + tol:
                    return False
        return True

    def _try_greedy(self, classes, available_cores):
        """Run the greedy heuristic; returns (objective, q, d) or None."""
        from repro.core.greedy import greedy_placement

        try:
            plan = greedy_placement(
                classes,
                available_cores,
                self.catalog,
                capacity_headroom=self.config.capacity_headroom,
            )
        except PlacementError:
            return None
        return plan.total_instances(), dict(plan.quantities), dict(plan.distribution)

    def _cap(self, nf_name: str) -> float:
        """Plannable capacity of one instance (headroom-derated Cap_n)."""
        return self.catalog.get(nf_name).capacity_mbps * self.config.capacity_headroom

    def _clamped(self, cls: TrafficClass) -> TrafficClass:
        floor = self.config.min_class_rate_mbps
        if cls.rate_mbps < floor:
            return cls.with_rate(floor)
        return cls

    @staticmethod
    def _check_paths(
        classes: Sequence[TrafficClass], available_cores: Mapping[str, int]
    ) -> None:
        seen = set()
        for cls in classes:
            if cls.class_id in seen:
                raise PlacementError(f"duplicate class id {cls.class_id!r}")
            seen.add(cls.class_id)
            if not any(available_cores.get(sw, 0) > 0 for sw in cls.path):
                raise PlacementError(
                    f"class {cls.class_id!r}: no APPLE host on its path {cls.path}"
                )

    @staticmethod
    def _extract_distribution(
        classes: Sequence[TrafficClass],
        d_vars: Dict[Tuple[str, int, int], object],
        solution,
        eps: float = 1e-9,
    ) -> Dict[Tuple[str, int, int], float]:
        """Read d values, drop numeric dust, renormalise each chain step."""
        raw: Dict[Tuple[str, int, int], float] = {}
        for key, var in d_vars.items():
            v = float(solution[var.index])
            if v > eps:
                raw[key] = v
        for cls in classes:
            for j in range(cls.chain_length):
                keys = [
                    (cls.class_id, i, j)
                    for i in range(cls.path_length)
                    if (cls.class_id, i, j) in raw
                ]
                total = sum(raw[k] for k in keys)
                if total > 0:
                    for k in keys:
                        raw[k] /= total
        return raw
