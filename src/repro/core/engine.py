"""The Optimization Engine: traffic-aware VNF placement (Sec. IV).

Builds the ILP of Eq. 1–8 over traffic classes and solves it by LP
relaxation + iterative rounding (the paper's CPLEX-with-LP-relaxation
production path) or exactly by branch-and-bound for small instances.

Formulation notes:

* The derived variable σ_{h,j}^i (cumulative portion processed up to path
  position i) is substituted away: σ_{h,j}^i = Σ_{i'≤i} d_{h,j}^{i'}, which
  removes a third of the variables without changing the polytope.
* d variables exist only at path positions whose switch has an APPLE host —
  elsewhere the portion is identically zero.
* q variables exist only for (switch, NF) pairs some class can actually
  use, keeping the model sparse.

Warm-start architecture (the re-solve hot path):

Between traffic snapshots only the class rates T_h change — topology,
paths, chains, and host sets are identical.  ``place()`` therefore splits
into a *structure phase* that builds variables, the rate-independent
constraints, and the compiled sparse matrices (cached in a
:class:`PlacementTemplate`, keyed by the class/host/catalog structure) and
a *per-snapshot phase* that only rewrites the rate coefficients of the
Eq. 5 capacity rows in place (:meth:`PlacementTemplate.set_rates`) before
re-solving.  A 672-snapshot replay compiles the model once, not 672 times,
and warm re-solves are bit-identical to cold solves because both run the
same solve code over the same matrices.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs, perf
from repro.core.constraints import assemble_placement_model
from repro.core.placement import PlacementPlan
from repro.solver.branch_bound import solve_branch_bound
from repro.solver.lp import solve_lp, SolverError
from repro.solver.model import CompiledModel, Model, Variable
from repro.solver.rounding import solve_with_rounding
from repro.traffic.classes import TrafficClass
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog


class PlacementError(RuntimeError):
    """Raised when no feasible placement exists (e.g. no host on a path)."""


@dataclass
class EngineConfig:
    """Tunables of the Optimization Engine.

    Attributes:
        solver: ``"rounding"`` (LP relaxation + round-up, the paper's path)
            or ``"exact"`` (branch-and-bound, small instances only).
        min_class_rate_mbps: classes below this rate are clamped up to it,
            so even near-idle classes receive (shared) instances — APPLE
            provisions proactively for potential flows (Sec. I).
        max_bb_nodes: node limit for the exact solver.
        consolidate: run the dust-consolidation pass after rounding, which
            evacuates lightly loaded instances into other instances' spare
            capacity (order-preserving) to shrink the integrality gap.
        capacity_headroom: fraction of each instance's capacity the engine
            may plan onto (Eq. 5 uses headroom x Cap_n).  Below 1.0 the
            placement keeps slack for traffic dynamics, mirroring the
            paper's practice of setting the overload threshold below the
            measured loss knee.
        compare_greedy: also run the first-fit greedy heuristic and keep
            whichever plan uses fewer instances.  Neither heuristic
            dominates: LP rounding wins under fragmentation, greedy under
            low utilisation.  Off by default so results match the paper's
            pure LP-relaxation methodology.
        dust_threshold: a single-instance slot is "dust" when its load is
            below this fraction of one instance's capacity.
        warm_start: reuse cached :class:`PlacementTemplate` structures when
            consecutive ``place()`` calls share the same class/host
            structure (snapshot replay, periodic reoptimization).  Warm
            re-solves produce plans identical to cold solves; disable only
            to benchmark the cold path.
        template_cache_size: LRU capacity of the engine's template cache
            (one entry per distinct class/host structure).
    """

    solver: str = "rounding"
    min_class_rate_mbps: float = 1e-3
    max_bb_nodes: int = 2000
    consolidate: bool = True
    dust_threshold: float = 0.6
    capacity_headroom: float = 1.0
    compare_greedy: bool = False
    warm_start: bool = True
    template_cache_size: int = 4

    def __post_init__(self) -> None:
        if self.solver not in ("rounding", "exact"):
            raise ValueError(f"unknown solver {self.solver!r}")
        if self.template_cache_size < 1:
            raise ValueError("template_cache_size must be at least 1")


@dataclass
class PlacementTemplate:
    """The structure phase of one placement instance, ready to re-solve.

    Holds the model, its compiled matrices, and the variable bookkeeping
    for a fixed (class structure, hosts, catalog, config) key.  Rates are
    the only snapshot-dependent input; :meth:`set_rates` rewrites them in
    place on both the :class:`~repro.solver.model.Model` expressions and
    the cached :class:`~repro.solver.model.CompiledModel` so every solver
    path (LP ceiling, rounding fallback, branch-and-bound) sees the new
    snapshot without a recompile.
    """

    key: tuple
    model: Model
    compiled: CompiledModel
    d_vars: Dict[Tuple[str, int, int], Variable]
    q_vars: Dict[Tuple[str, str], Variable]
    #: Sorted (switch, nf) slots, indexing the vectorized load arrays.
    slots: List[Tuple[str, str]]
    #: Per slot: the (class index, d variable) pairs loading it.
    load_members: Dict[Tuple[str, str], List[Tuple[int, Variable]]]
    #: Constraint index (into ``model.constraints``) of each Eq. 5 row.
    cap_rows: Dict[Tuple[str, str], int]
    #: Constraint index of each Eq. 6 core-budget row, per switch.
    resource_rows: Dict[str, int]
    #: False when the compiled sparsity pattern cannot absorb new rates
    #: (a rate compiled to exactly zero); such templates are single-shot.
    reusable: bool = True
    solves: int = 0
    # Vectorized helpers, filled by the builder ------------------------
    _rate_positions: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _rate_class_idx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _expr_updates: List[Tuple[Dict[int, float], int, int]] = field(
        default_factory=list, repr=False
    )
    _member_slot_idx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _member_var_idx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _member_class_idx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _d_keys: List[Tuple[str, int, int]] = field(default_factory=list, repr=False)
    _d_idx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _rates: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    #: Renormalisation group (one per class × chain step) of each d var.
    _d_group: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _n_groups: int = 0
    # Per-slot datasheet arrays (aligned with ``slots``) and the switch
    # universe, for the vectorized ceiling/budget accounting.
    _slot_cap: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _slot_cores: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _slot_mem: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _slot_switch: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _switch_names: List[str] = field(default_factory=list, repr=False)
    _q_idx: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def set_rates(self, classes: Sequence[TrafficClass]) -> None:
        """Rewrite the rate-dependent coefficients for a new snapshot.

        Updates the Eq. 5 capacity rows in both the model expressions and
        the compiled matrix data (one vectorized scatter); everything else
        in the model is rate-independent.
        """
        rates = np.fromiter(
            (c.rate_mbps for c in classes), dtype=float, count=len(classes)
        )
        self._rates = rates
        if not self.reusable:
            # Coefficients were embedded at build time and cannot be
            # rewritten through the sparsity pattern; the template is only
            # valid for the rates it was built with.
            return
        self.compiled.set_ub_coefficients(
            self._rate_positions, rates[self._rate_class_idx]
        )
        for coeffs, var_index, cls_idx in self._expr_updates:
            coeffs[var_index] = rates[cls_idx]

    def slot_loads(self, solution: np.ndarray) -> np.ndarray:
        """L_vn per slot under an LP solution (vectorized Eq. 5 left side)."""
        if not len(self.slots):
            return np.zeros(0)
        weights = (
            self._rates[self._member_class_idx] * solution[self._member_var_idx]
        )
        return np.bincount(
            self._member_slot_idx, weights=weights, minlength=len(self.slots)
        )


class OptimizationEngine:
    """Computes VNF placement plans from classes + available resources.

    Args:
        catalog: NF datasheets (capacities Cap_n, resource vectors R_n).
            Treated as immutable: templates cache coefficients derived from
            it.
        config: solver configuration.
    """

    def __init__(
        self,
        catalog: NFTypeCatalog = DEFAULT_CATALOG,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.catalog = catalog
        self.config = config or EngineConfig()
        #: LRU of reusable templates keyed by structure.
        self._templates: "OrderedDict[tuple, PlacementTemplate]" = OrderedDict()
        #: Telemetry: structure builds vs warm template reuses.
        self.cold_builds = 0
        self.warm_solves = 0
        #: Placements degraded to the greedy placer by a solve deadline.
        self.deadline_fallbacks = 0

    # ------------------------------------------------------------------
    def clear_templates(self) -> None:
        """Drop all cached templates (force cold solves)."""
        self._templates.clear()

    def make_template(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
    ) -> PlacementTemplate:
        """Run only the structure phase; pass the result to :meth:`place`.

        Useful when the caller manages template lifetime itself (e.g. one
        template per topology in a long replay); :meth:`place` also keeps
        an internal LRU, so most callers never need this.
        """
        classes = [self._clamped(c) for c in classes]
        self._check_paths(classes, available_cores)
        key = self._structure_key(classes, available_cores, available_memory_gb)
        return self._build_template(classes, available_cores, available_memory_gb, key)

    # ------------------------------------------------------------------
    def place(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
        template: Optional[PlacementTemplate] = None,
    ) -> PlacementPlan:
        """Solve the placement problem for ``classes``.

        Args:
            classes: traffic classes (path, chain, rate).
            available_cores: A_v (core dimension) — free cores per switch
                with an APPLE host; switches absent cannot host instances.
            available_memory_gb: optional second dimension of A_v; when
                given, Eq. 6 is enforced per resource type (R_n is the
                (cores, memory) vector of each NF).
            template: an explicit :class:`PlacementTemplate` from
                :meth:`make_template`; must match this instance's
                structure.  When omitted and ``config.warm_start`` is on,
                the engine's internal cache supplies one automatically.

        Raises:
            PlacementError: a class's path has no APPLE host, the model is
                infeasible (insufficient capacity anywhere), or an explicit
                template does not match the instance structure.
        """
        started = time.perf_counter()
        classes = [self._clamped(c) for c in classes]
        self._check_paths(classes, available_cores)
        key = self._structure_key(classes, available_cores, available_memory_gb)

        warm = False
        if template is not None:
            if template.key != key:
                raise PlacementError(
                    "placement template does not match this instance "
                    "(classes/hosts/config changed); build a new template"
                )
            if template.solves > 0 and not template.reusable:
                raise PlacementError(
                    "placement template is single-shot (degenerate sparsity) "
                    "and was already solved; build a new template"
                )
            warm = template.solves > 0
        elif self.config.warm_start:
            template = self._templates.get(key)
            if template is not None:
                self._templates.move_to_end(key)
                warm = True
        if template is None:
            build_started = time.perf_counter()
            with obs.span("engine.template_build", cat="solver"):
                template = self._build_template(
                    classes, available_cores, available_memory_gb, key
                )
            if obs.REGISTRY.enabled:
                obs.metric("solver_lp_assembly_seconds").observe(
                    time.perf_counter() - build_started
                )
            if self.config.warm_start and template.reusable:
                self._templates[key] = template
                while len(self._templates) > self.config.template_cache_size:
                    self._templates.popitem(last=False)
        if warm:
            self.warm_solves += 1
        else:
            self.cold_builds += 1
        rate_started = time.perf_counter()
        with perf.span("engine.rate_update"):
            template.set_rates(classes)
        if obs.REGISTRY.enabled:
            obs.metric("solver_rate_update_seconds").observe(
                time.perf_counter() - rate_started
            )
        template.solves += 1

        model, q_vars = template.model, template.q_vars
        span_name = "engine.warm_solve" if warm else "engine.cold_solve"
        try:
            with obs.span(span_name, cat="solver"):
                if self.config.solver == "exact":
                    bb = solve_branch_bound(
                        model,
                        max_nodes=self.config.max_bb_nodes,
                        compiled=template.compiled,
                    )
                    if bb.solution is None:
                        raise PlacementError(
                            "exact solver found no feasible placement"
                        )
                    solution, objective, lp_bound = (
                        bb.solution, bb.objective, bb.objective,
                    )
                    quantities = {
                        key_: int(round(solution[q.index]))
                        for key_, q in q_vars.items()
                        if round(solution[q.index]) > 0
                    }
                else:
                    solution, quantities, objective, lp_bound = self._solve_ceiling(
                        template, available_cores, available_memory_gb
                    )
        except SolverError as exc:
            raise PlacementError(f"placement infeasible: {exc}") from exc
        distribution = self._extract_distribution(classes, template, solution)
        if (
            self.config.compare_greedy
            and self.config.solver == "rounding"
            and available_memory_gb is None
        ):
            alt = self._try_greedy(classes, available_cores)
            if alt is not None and alt[0] < sum(quantities.values()):
                quantities, distribution = alt[1], alt[2]
                objective = float(alt[0])
        if self.config.consolidate:
            with perf.span("engine.consolidate"):
                self._consolidate_dust(classes, distribution, quantities)
            objective = float(sum(quantities.values()))
        if obs.REGISTRY.enabled:
            mode = "warm" if warm else "cold"
            obs.metric("solver_solves_total").labels(mode=mode).inc()
            obs.metric("solver_solve_seconds").labels(mode=mode).observe(
                time.perf_counter() - started
            )
            obs.metric("solver_classes").set(len(classes))
            obs.metric("solver_instances_planned").set(
                sum(quantities.values())
            )
            obs.metric("solver_warm_hit_ratio").set(
                self.warm_solves / (self.warm_solves + self.cold_builds)
            )
        return PlacementPlan(
            quantities=quantities,
            distribution=distribution,
            classes=list(classes),
            catalog=self.catalog,
            objective=float(objective),
            lp_bound=float(lp_bound),
            solve_seconds=time.perf_counter() - started,
            warm_start=warm,
        )

    # ------------------------------------------------------------------
    def estimate_solve_seconds(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        shards: int = 1,
    ) -> float:
        """Deterministic a-priori estimate of one LP solve's cost.

        A calibrated function of the model size (d and q variable
        counts) — deliberately *not* a wall-clock measurement, so a
        deadline decision is a pure function of the problem structure and
        identical across same-seed runs and machines.

        With ``shards > 1`` the estimate models the decomposed solve of
        :class:`repro.core.decompose.DecomposedEngine`: the same
        partition is computed and the per-shard costs are *summed* (the
        serial worst case — still far below the monolithic figure, since
        the simplex term is superlinear), plus a per-shard coordination
        overhead.  Estimating a partitioned solve from the monolithic
        model size would spuriously push deadline callers onto the greedy
        fallback for instances the shards finish comfortably.
        """

        def model_cost(subset: Sequence[TrafficClass]) -> float:
            d_count = 0
            slots = set()
            for cls in subset:
                hosts = [
                    sw for sw in cls.path if available_cores.get(sw, 0) > 0
                ]
                for nf in cls.chain:
                    d_count += len(hosts)
                    for sw in hosts:
                        slots.add((sw, nf))
            n = d_count + len(slots)
            # Calibrated against the bench_placement corpus: ~1 ms fixed
            # cost plus a superlinear term for the LP (assembly is
            # ~linear, the simplex iterations dominate as the model
            # grows).
            return 1e-3 + 2e-6 * n * float(max(n, 1)) ** 0.5

        if shards <= 1:
            return model_cost(classes)
        from repro.core.decompose import partition_classes

        parts = partition_classes(classes, available_cores, shards)
        return sum(
            model_cost([classes[i] for i in idxs]) for idxs in parts
        ) + 1e-3 * len(parts)

    def place_with_deadline(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[PlacementPlan, bool]:
        """Graceful degradation wrapper around :meth:`place`.

        When the deterministic solve-time estimate exceeds ``deadline``,
        fall back to the greedy first-fit placer (a complete, feasible,
        merely less efficient placement) instead of risking a late LP
        answer.  Returns ``(plan, degraded)``.

        Raises:
            PlacementError: as :meth:`place`; the greedy fallback raises
                it too when some class fits nowhere.
        """
        if (
            deadline is not None
            and self.estimate_solve_seconds(classes, available_cores) > deadline
        ):
            from repro.core.greedy import greedy_placement

            clamped = [self._clamped(c) for c in classes]
            self._check_paths(clamped, available_cores)
            plan = greedy_placement(
                clamped,
                available_cores,
                self.catalog,
                capacity_headroom=self.config.capacity_headroom,
            )
            self.deadline_fallbacks += 1
            if obs.REGISTRY.enabled:
                obs.metric("solver_deadline_fallbacks_total").inc()
            return plan, True
        return (
            self.place(classes, available_cores, available_memory_gb),
            False,
        )

    # ------------------------------------------------------------------
    def _structure_key(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
    ) -> tuple:
        """Everything the model structure depends on, except the rates."""
        class_part = tuple(
            (c.class_id, c.path, tuple(c.chain)) for c in classes
        )
        cores_part = tuple(sorted(
            (s, int(v)) for s, v in available_cores.items()
        ))
        mem_part = (
            None
            if available_memory_gb is None
            else tuple(sorted(
                (s, float(v)) for s, v in available_memory_gb.items()
            ))
        )
        return (
            class_part,
            cores_part,
            mem_part,
            self.config.capacity_headroom,
            id(self.catalog),
        )

    def _build_template(
        self,
        classes: Sequence[TrafficClass],
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]],
        key: tuple,
    ) -> PlacementTemplate:
        """The structure phase: variables, constraints, compiled matrices.

        The Eq. 1–6 assembly lives in :mod:`repro.core.constraints`; the
        builders run in a pinned order so variable indices and constraint
        rows — and therefore warm-started solves — stay bit-identical to
        the historical inline assembly.
        """
        model = Model("apple-placement")
        bundle = assemble_placement_model(
            model,
            classes,
            available_cores,
            available_memory_gb,
            cap=self._cap,
            catalog=self.catalog,
        )
        compiled = model.compile()

        template = PlacementTemplate(
            key=key,
            model=model,
            compiled=compiled,
            d_vars=bundle.d_vars,
            q_vars=bundle.q_vars,
            slots=bundle.slots,
            load_members=bundle.load_members,
            cap_rows=bundle.cap_rows,
            resource_rows=bundle.resource_rows,
        )
        self._index_template(template)
        return template

    def _index_template(self, template: PlacementTemplate) -> None:
        """Resolve the rate coefficients' storage slots for bulk rewrites."""
        positions: List[int] = []
        class_idx: List[int] = []
        member_slot: List[int] = []
        member_var: List[int] = []
        member_cls: List[int] = []
        expr_updates: List[Tuple[Dict[int, float], int, int]] = []
        compiled = template.compiled
        reusable = True
        for slot_i, slot in enumerate(template.slots):
            con_index = template.cap_rows[slot]
            expr_coeffs = template.model.constraints[con_index].expr.coeffs
            for cls_i, var in template.load_members[slot]:
                member_slot.append(slot_i)
                member_var.append(var.index)
                member_cls.append(cls_i)
                try:
                    _, pos, sign = compiled.coefficient_slot(con_index, var.index)
                except KeyError:
                    # A rate compiled to exactly zero and fell out of the
                    # sparsity pattern; this template cannot take new rates.
                    reusable = False
                    continue
                if sign != 1.0:
                    reusable = False
                    continue
                positions.append(pos)
                class_idx.append(cls_i)
                expr_updates.append((expr_coeffs, var.index, cls_i))
        if len(set(positions)) != len(positions):
            reusable = False  # aliased storage (duplicate switch on a path)
        template.reusable = reusable
        template._rate_positions = np.asarray(positions, dtype=np.intp)
        template._rate_class_idx = np.asarray(class_idx, dtype=np.intp)
        template._expr_updates = expr_updates
        template._member_slot_idx = np.asarray(member_slot, dtype=np.intp)
        template._member_var_idx = np.asarray(member_var, dtype=np.intp)
        template._member_class_idx = np.asarray(member_cls, dtype=np.intp)
        template._d_keys = list(template.d_vars)
        template._d_idx = np.fromiter(
            (v.index for v in template.d_vars.values()),
            dtype=np.intp,
            count=len(template.d_vars),
        )
        # Renormalisation groups: d vars of one (class, chain step) are
        # created consecutively, so a run-length scan assigns group ids.
        groups = np.empty(len(template._d_keys), dtype=np.intp)
        gid = -1
        prev = None
        for k, (cid, _i, j) in enumerate(template._d_keys):
            if (cid, j) != prev:
                gid += 1
                prev = (cid, j)
            groups[k] = gid
        template._d_group = groups
        template._n_groups = gid + 1
        # Per-slot datasheet arrays for the vectorized ceiling rounding.
        n_slots = len(template.slots)
        template._slot_cap = np.empty(n_slots)
        template._slot_cores = np.empty(n_slots)
        template._slot_mem = np.empty(n_slots)
        switch_of = {}
        switch_idx = np.empty(n_slots, dtype=np.intp)
        for k, (switch, nf_name) in enumerate(template.slots):
            nf = self.catalog.get(nf_name)
            template._slot_cap[k] = self._cap(nf_name)
            template._slot_cores[k] = float(nf.cores)
            template._slot_mem[k] = float(nf.memory_gb)
            switch_idx[k] = switch_of.setdefault(switch, len(switch_of))
        template._slot_switch = switch_idx
        template._switch_names = list(switch_of)
        template._q_idx = np.fromiter(
            (template.q_vars[slot].index for slot in template.slots),
            dtype=np.intp,
            count=n_slots,
        )
        # Build the solver-native array cache eagerly so its one-time CSC
        # conversion is charged to the structure phase, not the first solve.
        compiled.highs_arrays()

    # ------------------------------------------------------------------
    def _solve_ceiling(
        self,
        template: PlacementTemplate,
        available_cores: Mapping[str, int],
        available_memory_gb: Optional[Mapping[str, float]] = None,
    ):
        """LP relaxation + ceiling rounding with budget-tightening repair.

        One LP solve gives the spatial distribution d; the integer counts
        are then q_n^v = ceil(L_vn / Cap_n) from the *actual* loads L_vn the
        LP assigned (tighter than ceiling the fractional q).  Because the
        LP enforces L_vn ≤ Cap_n · q_lp, the d values remain feasible under
        these counts; only the per-switch core budget (Eq. 6) can be broken
        by the round-up.  When a switch overshoots, its budget in the LP is
        tightened by the overshoot and the LP re-solved — this converges in
        a couple of iterations in practice.  If repair fails, fall back to
        generic iterative rounding.
        """
        model, compiled = template.model, template.compiled
        q_vars, resource_rows = template.q_vars, template.resource_rows
        budgets = {
            sw: float(available_cores.get(sw, 0)) for sw in resource_rows
        }
        switch_names = template._switch_names
        avail_cores_arr = np.fromiter(
            (float(available_cores.get(sw, 0)) for sw in switch_names),
            dtype=float,
            count=len(switch_names),
        )
        if available_memory_gb is not None:
            avail_mem_arr = np.fromiter(
                (float(available_memory_gb.get(sw, 0.0)) for sw in switch_names),
                dtype=float,
                count=len(switch_names),
            )
        banned_slots: set = set()  # slots whose d vars are forced to zero
        prev_violations: Dict[str, int] = {}
        lp_bound: Optional[float] = None
        for _ in range(8):
            if all(
                budgets[sw] == float(available_cores.get(sw, 0))
                for sw in resource_rows
            ):
                b_ub = None
            else:
                b_ub = compiled.b_ub.copy()
                for sw, ci in resource_rows.items():
                    b_ub[compiled.ub_row_of[ci]] = budgets[sw]
            extra_ub = None
            if banned_slots:
                extra_ub = np.full(model.num_variables, np.nan)
                for slot in banned_slots:
                    for _ci, var in template.load_members.get(slot, []):
                        extra_ub[var.index] = 0.0
            lp = solve_lp(
                model, compiled, b_ub_override=b_ub, extra_upper_bounds=extra_ub
            )
            if lp_bound is None:
                lp_bound = lp.objective

            loads = template.slot_loads(lp.solution)
            # Vectorized ceiling: q = max(1, ceil(L / Cap)) on active slots,
            # then per-switch resource sums via one bincount each.
            active = loads > 1e-12
            counts = np.zeros(len(template.slots), dtype=np.int64)
            counts[active] = np.maximum(
                np.ceil(
                    loads[active] / template._slot_cap[active] - 1e-9
                ).astype(np.int64),
                1,
            )
            cores_used = np.bincount(
                template._slot_switch,
                weights=template._slot_cores * counts,
                minlength=len(switch_names),
            )
            over = cores_used - avail_cores_arr
            violations = {
                switch_names[k]: int(over[k]) for k in np.flatnonzero(over > 0)
            }
            if available_memory_gb is not None and not violations:
                # Memory overshoot cannot be repaired by tightening core
                # budgets; defer to the generic rounding fallback.
                mem_used = np.bincount(
                    template._slot_switch,
                    weights=template._slot_mem * counts,
                    minlength=len(switch_names),
                )
                if bool(np.any(mem_used > avail_mem_arr + 1e-9)):
                    break
            if not violations:
                solution = lp.solution.copy()
                solution[template._q_idx] = counts
                quantities = {
                    template.slots[k]: int(counts[k])
                    for k in np.flatnonzero(active)
                }
                objective = float(counts.sum())
                return solution, quantities, objective, lp_bound
            for sw, overshoot in violations.items():
                if prev_violations.get(sw, 0) == overshoot:
                    # Budget tightening had no effect: the overshoot comes
                    # from dust slots whose fractional core use is ~0.
                    # Evacuate the lightest slot at this switch instead.
                    slots_here = sorted(
                        (float(loads[slot_i]), slot)
                        for slot_i, slot in enumerate(template.slots)
                        if slot[0] == sw
                        and slot not in banned_slots
                        and loads[slot_i] > 1e-12
                    )
                    if slots_here:
                        banned_slots.add(slots_here[0][1])
                budgets[sw] = max(0.0, budgets[sw] - float(overshoot))
            prev_violations = dict(violations)

        res = solve_with_rounding(model, compiled=compiled)
        quantities = {
            slot: int(round(res.solution[q.index]))
            for slot, q in q_vars.items()
            if round(res.solution[q.index]) > 0
        }
        return res.solution, quantities, res.objective, res.lp_objective

    def _consolidate_dust(
        self,
        classes: Sequence[TrafficClass],
        distribution: Dict[Tuple[str, int, int], float],
        quantities: Dict[Tuple[str, str], int],
    ) -> None:
        """Evacuate lightly loaded instances into other instances' spare.

        LP degeneracy spreads small portions across many slots; after
        ceiling those slivers each pin a whole instance.  This pass takes
        every single-instance slot whose load is below the dust threshold
        and tries to move *all* of its portions onto other slots of the
        same NF on each class's path, checking spare capacity and the
        ordering constraint (Eq. 3) before committing.  Mutates
        ``distribution`` and ``quantities`` in place.

        Evacuating one slot frees spare that may unlock the next, so the
        pass cascades until a fixed point.  The load/portion indices are
        built once and maintained incrementally across rounds, and a slot
        whose evacuation failed is skipped until some commit has changed
        the global state (an attempt is a pure function of that state, so
        retrying it unchanged would fail identically).
        """
        class_by_id = {c.class_id: c for c in classes}
        loads: Dict[Tuple[str, str], float] = {}
        portions: Dict[Tuple[str, str], List[Tuple[str, int, int]]] = {}
        for (cid, i, j), frac in distribution.items():
            cls = class_by_id[cid]
            slot = (cls.path[i], cls.chain[j])
            loads[slot] = loads.get(slot, 0.0) + frac * cls.rate_mbps
            portions.setdefault(slot, []).append((cid, i, j))

        def spare(slot: Tuple[str, str]) -> float:
            return self._cap(slot[1]) * quantities.get(slot, 0) - loads.get(slot, 0.0)

        version = 0
        failed_at: Dict[Tuple[str, str], int] = {}
        for _round in range(4):
            dust = sorted(
                (
                    slot
                    for slot, q in quantities.items()
                    if q == 1
                    and loads.get(slot, 0.0)
                    < self.config.dust_threshold * self._cap(slot[1])
                ),
                key=lambda s: loads.get(s, 0.0),
            )
            start_version = version
            for slot in dust:
                if failed_at.get(slot) == version:
                    continue
                moves: List[Tuple[Tuple[str, int, int], Tuple[str, int, int]]] = []
                pending: Dict[Tuple[str, str], float] = {}
                ok = True
                for (cid, i, j) in portions.get(slot, []):
                    cls = class_by_id[cid]
                    frac = distribution.get((cid, i, j), 0.0)
                    if frac <= 0:
                        continue
                    mass = frac * cls.rate_mbps
                    target = self._find_target(
                        cls, i, j, slot, mass, quantities, spare, pending, distribution
                    )
                    if target is None:
                        ok = False
                        break
                    moves.append(((cid, i, j), (cid, target, j)))
                    tslot = (cls.path[target], cls.chain[j])
                    pending[tslot] = pending.get(tslot, 0.0) + mass
                if not ok or not moves:
                    failed_at[slot] = version
                    continue
                # Commit: shift fractions, update loads, drop the instance.
                for (cid, i, j), (_, ti, _) in moves:
                    cls = class_by_id[cid]
                    frac = distribution.pop((cid, i, j))
                    distribution[(cid, ti, j)] = (
                        distribution.get((cid, ti, j), 0.0) + frac
                    )
                    tslot = (cls.path[ti], cls.chain[j])
                    loads[tslot] = loads.get(tslot, 0.0) + frac * cls.rate_mbps
                    portions.setdefault(tslot, []).append((cid, ti, j))
                loads.pop(slot, None)
                portions.pop(slot, None)
                del quantities[slot]
                version += 1
            if version == start_version:
                break

    def _find_target(
        self,
        cls: TrafficClass,
        i: int,
        j: int,
        slot: Tuple[str, str],
        mass: float,
        quantities: Dict[Tuple[str, str], int],
        spare,
        pending: Dict[Tuple[str, str], float],
        distribution: Dict[Tuple[str, int, int], float],
    ) -> Optional[int]:
        """A path position that can absorb (cls, step j)'s portion at ``i``.

        The candidate must host instances of the same NF with enough spare
        capacity (accounting for moves staged in ``pending``) and moving
        the portion there must keep Eq. 3's ordering valid for the class.
        """
        nf = cls.chain[j]
        for ti in range(cls.path_length):
            if ti == i:
                continue
            tslot = (cls.path[ti], nf)
            if tslot == slot or quantities.get(tslot, 0) <= 0:
                continue
            if spare(tslot) - pending.get(tslot, 0.0) < mass - 1e-9:
                continue
            if self._order_ok_after_move(cls, distribution, i, ti, j):
                return ti
        return None

    @staticmethod
    def _order_ok_after_move(
        cls: TrafficClass,
        distribution: Dict[Tuple[str, int, int], float],
        i: int,
        ti: int,
        j: int,
        tol: float = 1e-9,
    ) -> bool:
        """Would moving d[cls, i, j] to position ti keep Eq. 3 valid?"""
        frac = distribution.get((cls.class_id, i, j), 0.0)

        def portion(jj: int, ii: int) -> float:
            v = distribution.get((cls.class_id, ii, jj), 0.0)
            if jj == j:
                if ii == i:
                    v = 0.0
                if ii == ti:
                    v += frac
            return v

        for jj in (j, j + 1):
            if jj < 1 or jj >= cls.chain_length:
                continue
            cum_prev = cum_cur = 0.0
            for ii in range(cls.path_length):
                cum_prev += portion(jj - 1, ii)
                cum_cur += portion(jj, ii)
                if cum_cur > cum_prev + tol:
                    return False
        return True

    def _try_greedy(self, classes, available_cores):
        """Run the greedy heuristic; returns (objective, q, d) or None."""
        from repro.core.greedy import greedy_placement

        try:
            plan = greedy_placement(
                classes,
                available_cores,
                self.catalog,
                capacity_headroom=self.config.capacity_headroom,
            )
        except PlacementError:
            return None
        return plan.total_instances(), dict(plan.quantities), dict(plan.distribution)

    def _cap(self, nf_name: str) -> float:
        """Plannable capacity of one instance (headroom-derated Cap_n)."""
        return self.catalog.get(nf_name).capacity_mbps * self.config.capacity_headroom

    def _clamped(self, cls: TrafficClass) -> TrafficClass:
        floor = self.config.min_class_rate_mbps
        if cls.rate_mbps < floor:
            return cls.with_rate(floor)
        return cls

    @staticmethod
    def _check_paths(
        classes: Sequence[TrafficClass], available_cores: Mapping[str, int]
    ) -> None:
        seen = set()
        for cls in classes:
            if cls.class_id in seen:
                raise PlacementError(f"duplicate class id {cls.class_id!r}")
            seen.add(cls.class_id)
            if not any(available_cores.get(sw, 0) > 0 for sw in cls.path):
                raise PlacementError(
                    f"class {cls.class_id!r}: no APPLE host on its path {cls.path}"
                )

    @staticmethod
    def _extract_distribution(
        classes: Sequence[TrafficClass],
        template: PlacementTemplate,
        solution,
        eps: float = 1e-9,
    ) -> Dict[Tuple[str, int, int], float]:
        """Read d values, drop numeric dust, renormalise each chain step.

        Fully vectorized: per-(class, step) sums come from one ``bincount``
        over the precomputed renormalisation groups, and only surviving
        (> ``eps``) entries are materialised into the result dict.
        """
        values = np.asarray(solution)[template._d_idx]
        keep = values > eps
        vals = np.where(keep, values, 0.0)
        totals = np.bincount(
            template._d_group, weights=vals, minlength=template._n_groups
        )
        group_total = totals[template._d_group]
        norm = np.divide(
            vals, group_total, out=vals, where=group_total > 0
        )
        d_keys = template._d_keys
        return {d_keys[k]: float(norm[k]) for k in np.flatnonzero(keep)}
