"""Sub-class assignment: from spatial distribution d to instance sequences.

Sec. V: "Policy enforcement is on per-flow basis, even though the
Optimization Engine operates on classes ... we define the aggregation of
flows within a class that traverse the same VNF instances as a sub-class."

Construction (monotone coupling): treat the class's hash domain [0, 1) as
the quantile axis.  For each chain step j, the plan's marginals d_{h,j}^i
partition [0, 1) into intervals served at successive path positions; the
ordering constraint Eq. 3 guarantees that stacking all steps' partitions
yields instance sequences whose switch positions are non-decreasing along
the chain — i.e. every sub-class's instance sequence respects the path
order requirement of Sec. IV-D.

Within a (switch, NF) slot that has q > 1 instances, hash intervals are
further split so each instance carries at most its fair share
L_vn / q ≤ Cap_n (feasible by Eq. 5), balancing "the responsibility of
each VNF instance" (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.placement import InstanceRef, PlacementPlan
from repro.traffic.classes import TrafficClass

_EPS = 1e-9


@dataclass(frozen=True)
class Subclass:
    """One sub-class: a hash interval mapped to a fixed instance sequence.

    Attributes:
        class_id: owning class.
        sub_id: sub-class ID (local to the class; multiplexable tag value).
        hash_range: the [lo, hi) slice of the class's hash domain.
        instance_seq: the instances traversed, one per chain position.
    """

    class_id: str
    sub_id: int
    hash_range: Tuple[float, float]
    instance_seq: Tuple[InstanceRef, ...]

    @property
    def weight(self) -> float:
        """Fraction of the class's traffic this sub-class carries."""
        return self.hash_range[1] - self.hash_range[0]

    def covers(self, flow_hash: float) -> bool:
        return self.hash_range[0] <= flow_hash < self.hash_range[1]

    def switches(self) -> Tuple[str, ...]:
        """Processing switches in chain order."""
        return tuple(ref.switch for ref in self.instance_seq)


class SubclassAssignmentError(RuntimeError):
    """Raised when the plan's distribution cannot be realised."""


@dataclass
class SubclassPlan:
    """All sub-classes of all classes, plus instance-load bookkeeping."""

    by_class: Dict[str, List[Subclass]]
    instance_load: Dict[InstanceRef, float]

    def subclasses(self, class_id: str) -> List[Subclass]:
        try:
            return self.by_class[class_id]
        except KeyError:
            raise KeyError(f"unknown class {class_id!r}") from None

    def subclass_for_hash(self, class_id: str, flow_hash: float) -> Subclass:
        """The sub-class a flow hashing to ``flow_hash`` belongs to."""
        for sub in self.subclasses(class_id):
            if sub.covers(flow_hash):
                return sub
        raise KeyError(f"hash {flow_hash} uncovered in class {class_id!r}")

    def max_subclasses_per_class(self) -> int:
        """Sizing input for the sub-class tag field (IDs are multiplexed)."""
        return max((len(v) for v in self.by_class.values()), default=0)

    def total_subclasses(self) -> int:
        return sum(len(v) for v in self.by_class.values())

    def all_instances(self) -> List[InstanceRef]:
        return sorted(self.instance_load, key=lambda r: r.key)


class _SlotAllocator:
    """Splits a (switch, NF) slot's load across its q instances.

    Instances are filled in order, each up to its fair-share target; the
    caller receives (mass, instance) pieces.
    """

    def __init__(self, refs: List[InstanceRef], total_load: float) -> None:
        self.refs = refs
        target = total_load / len(refs) if refs else 0.0
        self.remaining = [target] * len(refs)
        self._cursor = 0

    def take(self, mass: float) -> List[Tuple[float, InstanceRef]]:
        pieces: List[Tuple[float, InstanceRef]] = []
        left = mass
        while left > _EPS:
            if self._cursor >= len(self.refs):
                # Numerical slack: dump the residue on the last instance.
                pieces.append((left, self.refs[-1]))
                break
            avail = self.remaining[self._cursor]
            if avail <= _EPS:
                self._cursor += 1
                continue
            bite = min(left, avail)
            self.remaining[self._cursor] -= bite
            pieces.append((bite, self.refs[self._cursor]))
            left -= bite
        return pieces


def assign_subclasses(plan: PlacementPlan) -> SubclassPlan:
    """Realise a placement plan as concrete sub-classes.

    Raises:
        SubclassAssignmentError: the distribution references a (switch, NF)
            pair with no placed instance, or produces a sequence violating
            path order (would indicate an engine bug).
    """
    refs_by_slot: Dict[Tuple[str, str], List[InstanceRef]] = {}
    for ref in plan.instance_refs():
        refs_by_slot.setdefault((ref.switch, ref.nf), []).append(ref)
    allocators: Dict[Tuple[str, str], _SlotAllocator] = {
        slot: _SlotAllocator(refs, load)
        for slot, load in plan.load_by_slot().items()
        for refs in [refs_by_slot.get(slot, [])]
        if refs
    }

    by_class: Dict[str, List[Subclass]] = {}
    instance_load: Dict[InstanceRef, float] = {}

    for cls in sorted(plan.classes, key=lambda c: c.class_id):
        pieces_per_step = _pieces_for_class(cls, plan, allocators)
        subs = _merge_steps(cls, pieces_per_step)
        by_class[cls.class_id] = subs
        for sub in subs:
            for ref in sub.instance_seq:
                instance_load[ref] = (
                    instance_load.get(ref, 0.0) + sub.weight * cls.rate_mbps
                )
        _check_order(cls, subs)

    return SubclassPlan(by_class=by_class, instance_load=instance_load)


def _pieces_for_class(
    cls: TrafficClass,
    plan: PlacementPlan,
    allocators: Dict[Tuple[str, str], _SlotAllocator],
) -> List[List[Tuple[float, float, InstanceRef]]]:
    """Per chain step: (hash_lo, hash_hi, instance) pieces covering [0, 1)."""
    steps: List[List[Tuple[float, float, InstanceRef]]] = []
    for j, nf in enumerate(cls.chain):
        pieces: List[Tuple[float, float, InstanceRef]] = []
        cursor = 0.0
        for i in range(cls.path_length):
            frac = plan.portion(cls.class_id, i, j)
            if frac <= _EPS:
                continue
            slot = (cls.path[i], nf)
            allocator = allocators.get(slot)
            if allocator is None:
                raise SubclassAssignmentError(
                    f"class {cls.class_id!r}: distribution uses slot {slot} "
                    "but no instance is placed there"
                )
            mass = frac * cls.rate_mbps
            for bite, ref in allocator.take(mass):
                width = (bite / mass) * frac if mass > 0 else frac
                pieces.append((cursor, min(cursor + width, 1.0), ref))
                cursor += width
        if not pieces:
            raise SubclassAssignmentError(
                f"class {cls.class_id!r}: chain step {j} has no portions"
            )
        # Snap the tail to exactly 1.0 (floating-point dust).
        lo, _, ref = pieces[-1]
        pieces[-1] = (lo, 1.0, ref)
        steps.append(pieces)
    return steps


def _merge_steps(
    cls: TrafficClass,
    steps: List[List[Tuple[float, float, InstanceRef]]],
) -> List[Subclass]:
    """Overlay every step's partition of [0, 1) into final sub-classes."""
    bounds = {0.0, 1.0}
    for pieces in steps:
        for lo, hi, _ in pieces:
            bounds.add(lo)
            bounds.add(hi)
    ordered = sorted(bounds)
    subs: List[Subclass] = []
    for lo, hi in zip(ordered, ordered[1:]):
        if hi - lo <= _EPS:
            continue
        mid = (lo + hi) / 2.0
        seq = tuple(_piece_at(pieces, mid) for pieces in steps)
        subs.append(
            Subclass(
                class_id=cls.class_id,
                sub_id=len(subs),
                hash_range=(lo, hi),
                instance_seq=seq,
            )
        )
    return subs


def _piece_at(
    pieces: List[Tuple[float, float, InstanceRef]], point: float
) -> InstanceRef:
    for lo, hi, ref in pieces:
        if lo <= point < hi:
            return ref
    # point sits in floating-point dust between pieces; take the nearest.
    best = min(pieces, key=lambda p: min(abs(p[0] - point), abs(p[1] - point)))
    return best[2]


def _check_order(cls: TrafficClass, subs: List[Subclass]) -> None:
    """Every sub-class's switches must be non-decreasing along the path."""
    pos = {sw: i for i, sw in enumerate(cls.path)}
    for sub in subs:
        indices = [pos[sw] for sw in sub.switches()]
        if any(b < a for a, b in zip(indices, indices[1:])):
            raise SubclassAssignmentError(
                f"class {cls.class_id!r} sub-class {sub.sub_id}: instance "
                f"sequence {sub.switches()} violates path order"
            )
