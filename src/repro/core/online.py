"""Online placement: admit new flows without re-running global optimisation.

Sec. IV: "The Optimization Engine may apply global optimization that
computes a VNF placement plan for all current flows or online placement for
any new flows ... Online algorithms are for our future research."  This
module implements that future-work path: newly arriving classes are placed
incrementally against the current deployment's residual capacity, never
moving existing assignments (so installed rules stay valid), and released
when their flows expire.

Algorithm: per class, a shortest-path DP over (chain step, path position)
pairs.  Placing step j at position i costs 0 when an existing instance of
the step's NF at that switch has spare capacity, or the instance's resource
footprint when a new instance must be launched; transitions only move
forward along the path, so chain order (Eq. 3) holds by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.placement import PlacementPlan
from repro.traffic.classes import TrafficClass
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog

_INF = float("inf")


class OnlinePlacementError(RuntimeError):
    """Raised when a new class cannot be admitted with residual capacity."""


@dataclass
class OnlineDecision:
    """The placement chosen for one admitted class.

    Attributes:
        class_id: the admitted class.
        positions: chosen path position per chain step (non-decreasing).
        new_instances: (switch, nf) slots where an instance was launched.
    """

    class_id: str
    positions: Tuple[int, ...]
    new_instances: Tuple[Tuple[str, str], ...]


class OnlinePlacer:
    """Incremental admission of classes against residual capacity.

    Args:
        available_cores: A_v per switch (total, not residual).
        catalog: NF datasheets.
        base_plan: optional existing global plan whose instances and loads
            seed the placer's state (new flows fill existing spare first).
        capacity_headroom: plannable fraction of instance capacity, matching
            the global engine's knob.
    """

    def __init__(
        self,
        available_cores: Mapping[str, int],
        catalog: NFTypeCatalog = DEFAULT_CATALOG,
        base_plan: Optional[PlacementPlan] = None,
        capacity_headroom: float = 1.0,
    ) -> None:
        if not 0 < capacity_headroom <= 1:
            raise ValueError("capacity_headroom must be in (0, 1]")
        self.catalog = catalog
        self.capacity_headroom = capacity_headroom
        self.available_cores = dict(available_cores)
        self.quantities: Dict[Tuple[str, str], int] = {}
        self.loads: Dict[Tuple[str, str], float] = {}
        self.cores_used: Dict[str, int] = {}
        self._admitted: Dict[str, Tuple[TrafficClass, OnlineDecision]] = {}

        if base_plan is not None:
            self.quantities.update(base_plan.quantities)
            for slot, load in base_plan.load_by_slot().items():
                self.loads[slot] = load
            for switch, cores in base_plan.cores_by_switch().items():
                self.cores_used[switch] = cores

    # ------------------------------------------------------------------
    def _cap(self, nf_name: str) -> float:
        return self.catalog.get(nf_name).capacity_mbps * self.capacity_headroom

    def spare(self, slot: Tuple[str, str]) -> float:
        """Unused (headroom-derated) capacity at a slot."""
        return self._cap(slot[1]) * self.quantities.get(slot, 0) - self.loads.get(
            slot, 0.0
        )

    def free_cores(self, switch: str) -> int:
        return self.available_cores.get(switch, 0) - self.cores_used.get(switch, 0)

    # ------------------------------------------------------------------
    def admit(self, cls: TrafficClass) -> OnlineDecision:
        """Place a new class; mutates state only on success.

        Raises:
            OnlinePlacementError: no feasible assignment with residual
                capacity (the caller should trigger global re-optimisation).
        """
        if cls.class_id in self._admitted:
            raise OnlinePlacementError(f"class {cls.class_id!r} already admitted")

        path_len = cls.path_length
        chain_len = cls.chain_length
        # cost[j][i]: minimal new-instance cores to serve steps 0..j with
        # step j at position i.  parent[j][i]: best predecessor position.
        cost = [[_INF] * path_len for _ in range(chain_len)]
        parent = [[-1] * path_len for _ in range(chain_len)]

        def step_cost(j: int, i: int) -> float:
            nf_name = cls.chain[j]
            nf = self.catalog.get(nf_name)
            slot = (cls.path[i], nf_name)
            if self.spare(slot) >= cls.rate_mbps - 1e-9:
                return 0.0
            # How many new instances would this step need here?
            deficit = cls.rate_mbps - max(self.spare(slot), 0.0)
            added = math.ceil(deficit / self._cap(nf_name) - 1e-12)
            if self.free_cores(cls.path[i]) < added * nf.cores:
                return _INF
            return float(added * nf.cores)

        for i in range(path_len):
            cost[0][i] = step_cost(0, i)
        for j in range(1, chain_len):
            best_prev, best_prev_i = _INF, -1
            for i in range(path_len):
                if cost[j - 1][i] < best_prev:
                    best_prev, best_prev_i = cost[j - 1][i], i
                c = step_cost(j, i)
                if best_prev + c < cost[j][i]:
                    cost[j][i] = best_prev + c
                    parent[j][i] = best_prev_i

        end = min(range(path_len), key=lambda i: cost[chain_len - 1][i])
        if cost[chain_len - 1][end] == _INF:
            raise OnlinePlacementError(
                f"class {cls.class_id!r}: no feasible online placement; "
                "re-run global optimisation"
            )

        positions = [0] * chain_len
        positions[chain_len - 1] = end
        for j in range(chain_len - 1, 0, -1):
            positions[j - 1] = parent[j][positions[j]]

        # NOTE: the DP's per-switch core costs are additive per step; when
        # two steps share a switch the combined cost could exceed the
        # budget even though each fits alone — verify before committing.
        new_instances = self._commit(cls, positions)
        decision = OnlineDecision(cls.class_id, tuple(positions), tuple(new_instances))
        self._admitted[cls.class_id] = (cls, decision)
        return decision

    def _commit(
        self, cls: TrafficClass, positions: Sequence[int]
    ) -> List[Tuple[str, str]]:
        staged_q: Dict[Tuple[str, str], int] = {}
        staged_cores: Dict[str, int] = {}
        staged_load: Dict[Tuple[str, str], float] = {}
        for j, i in enumerate(positions):
            nf_name = cls.chain[j]
            nf = self.catalog.get(nf_name)
            slot = (cls.path[i], nf_name)
            pending_load = staged_load.get(slot, 0.0)
            spare = (
                self._cap(nf_name)
                * (self.quantities.get(slot, 0) + staged_q.get(slot, 0))
                - self.loads.get(slot, 0.0)
                - pending_load
            )
            deficit = cls.rate_mbps - max(spare, 0.0)
            if deficit > 1e-9:
                added = math.ceil(deficit / self._cap(nf_name) - 1e-12)
                staged_q[slot] = staged_q.get(slot, 0) + added
                staged_cores[cls.path[i]] = (
                    staged_cores.get(cls.path[i], 0) + added * nf.cores
                )
            staged_load[slot] = pending_load + cls.rate_mbps
        for switch, cores in staged_cores.items():
            if self.free_cores(switch) < cores:
                raise OnlinePlacementError(
                    f"class {cls.class_id!r}: switch {switch!r} cannot host "
                    "the combined new instances of multiple chain steps"
                )
        # Commit.
        new_instances: List[Tuple[str, str]] = []
        for slot, added in staged_q.items():
            self.quantities[slot] = self.quantities.get(slot, 0) + added
            new_instances.extend([slot] * added)
        for switch, cores in staged_cores.items():
            self.cores_used[switch] = self.cores_used.get(switch, 0) + cores
        for slot, load in staged_load.items():
            self.loads[slot] = self.loads.get(slot, 0.0) + load
        return new_instances

    # ------------------------------------------------------------------
    def release(self, class_id: str) -> None:
        """Remove an admitted class's load (instances stay warm).

        Instances are intentionally not torn down — the Optimization
        Engine's next periodic run reclaims them; online release must be
        cheap and rule-stable.
        """
        if class_id not in self._admitted:
            raise KeyError(f"class {class_id!r} was not admitted online")
        cls, decision = self._admitted.pop(class_id)
        for j, i in enumerate(decision.positions):
            slot = (cls.path[i], cls.chain[j])
            self.loads[slot] = max(0.0, self.loads.get(slot, 0.0) - cls.rate_mbps)

    def admitted_classes(self) -> List[str]:
        return sorted(self._admitted)

    def to_plan(self) -> PlacementPlan:
        """A PlacementPlan covering the online-admitted classes.

        Distribution entries are whole-class (online never splits); the
        plan can feed the standard sub-class + Rule Generator pipeline.
        """
        distribution: Dict[Tuple[str, int, int], float] = {}
        classes = []
        for cls, decision in self._admitted.values():
            classes.append(cls)
            for j, i in enumerate(decision.positions):
                distribution[(cls.class_id, i, j)] = 1.0
        return PlacementPlan(
            quantities=dict(self.quantities),
            distribution=distribution,
            classes=classes,
            catalog=self.catalog,
            objective=float(sum(self.quantities.values())),
        )
