"""The Dynamic Handler: overload detection and fast failover (Sec. VI).

Large time-scale dynamics are handled by periodically re-running the
Optimization Engine; the hard part is small time-scale bursts.  Fast
failover reacts in tens of milliseconds by (1) halving the workload of
every sub-class traversing an overloaded instance, (2) spreading the freed
half onto the least-loaded sub-classes of the same class, and (3) when that
would overload someone else, installing new lightweight ClickOS instances
to create new sub-classes.  When the overload subsides, weights roll back
and the extra instances are cancelled (Fig. 4).

Two implementations live here:

* :class:`OverloadDetector` — packet-level, polling per-port counters with
  the paper's hysteresis thresholds (8.5 Kpps up / 4 Kpps down); drives the
  Fig. 9 prototype experiment.
* :class:`DynamicHandler` — fluid-level, replaying traffic-matrix
  snapshots against a placement; drives the Fig. 12 simulation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import InstanceRef, PlacementPlan
from repro.core.subclasses import Subclass, SubclassPlan
from repro.sim.kernel import Simulator, Timer
from repro.traffic.replay import ClassRateTimeline
from repro.vnf.types import NFTypeCatalog

# Paper constants (Sec. VIII-E): overload above 8.5 Kpps, roll back at 4.
OVERLOAD_UP_PPS = 8500.0
OVERLOAD_DOWN_PPS = 4000.0


@dataclass
class FailoverEvent:
    """One fast-failover action, for reporting/tests."""

    time: float
    kind: str  # "overload", "rebalance", "new-instance", "rollback"
    detail: str


# ---------------------------------------------------------------------------
# Packet-level detector (Fig. 9)
# ---------------------------------------------------------------------------
class OverloadDetector:
    """Polls a rate callable and fires overload/recovery with hysteresis.

    The prototype polls Open vSwitch per-port packet counters (which
    "update almost instantly", unlike per-flow counters) every interval.

    Args:
        sim: shared simulator.
        rate_fn: returns the current receiving rate in pps.
        on_overload / on_recovery: callbacks fired on threshold crossings.
        up_pps / down_pps: hysteresis thresholds.
        poll_interval: counter polling period in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_fn: Callable[[], float],
        on_overload: Callable[[], None],
        on_recovery: Callable[[], None],
        up_pps: float = OVERLOAD_UP_PPS,
        down_pps: float = OVERLOAD_DOWN_PPS,
        poll_interval: float = 0.1,
    ) -> None:
        if down_pps >= up_pps:
            raise ValueError("hysteresis requires down_pps < up_pps")
        self.sim = sim
        self.rate_fn = rate_fn
        self.on_overload = on_overload
        self.on_recovery = on_recovery
        self.up_pps = up_pps
        self.down_pps = down_pps
        self.overloaded = False
        self.events: List[FailoverEvent] = []
        self._timer: Timer = sim.every(poll_interval, self._poll)

    def stop(self) -> None:
        self._timer.cancel()

    def _poll(self) -> None:
        rate = self.rate_fn()
        if not self.overloaded and rate > self.up_pps:
            self.overloaded = True
            self.events.append(
                FailoverEvent(self.sim.now, "overload", f"rate={rate:.0f}pps")
            )
            self.on_overload()
        elif self.overloaded and rate <= self.down_pps:
            self.overloaded = False
            self.events.append(
                FailoverEvent(self.sim.now, "rollback", f"rate={rate:.0f}pps")
            )
            self.on_recovery()


# ---------------------------------------------------------------------------
# Fluid-level handler (Fig. 12)
# ---------------------------------------------------------------------------
@dataclass
class FailoverConfig:
    """Tunables of the fluid fast-failover model.

    Attributes:
        enabled: disable to get the "without fast failover" baseline.
        detection_delay: seconds from overload onset to rules taking effect
            (counter poll + 70 ms rule install + 30 ms ClickOS reconfigure).
        overload_util: utilisation above which an instance is overloaded
            (the paper sets the threshold below the true loss knee, so the
            default reacts slightly before packets drop).
        rollback_util: a diverged class rolls back once every instance of
            its *base* layout would sit below this utilisation — the
            hysteresis mirroring the paper's 8.5 Kpps up / 4 Kpps down.
        slow_nf_delay: reaction delay when the relieving instance is a full
            VM instead of ClickOS (OpenStack boot + configuration).
    """

    enabled: bool = True
    detection_delay: float = 0.6
    overload_util: float = 0.95
    rollback_util: float = 0.8
    slow_nf_delay: float = 6.2


@dataclass
class LossTimeline:
    """Result of a fluid replay."""

    times: List[float]
    loss: List[float]  # network-wide packet loss ratio per snapshot
    extra_cores: List[int]  # cores consumed by failover instances
    events: List[FailoverEvent]

    @property
    def mean_loss(self) -> float:
        return float(np.mean(self.loss)) if self.loss else 0.0

    @property
    def max_loss(self) -> float:
        return float(np.max(self.loss)) if self.loss else 0.0

    @property
    def mean_extra_cores(self) -> float:
        return float(np.mean(self.extra_cores)) if self.extra_cores else 0.0


class _SubState:
    """Mutable replay state of one sub-class."""

    __slots__ = ("weight", "base_weight", "seq", "is_extra")

    def __init__(self, weight: float, seq: Tuple[InstanceRef, ...], is_extra: bool = False):
        self.weight = weight
        self.base_weight = weight
        self.seq = seq
        self.is_extra = is_extra


class DynamicHandler:
    """Fluid replay of a traffic timeline with optional fast failover.

    Args:
        plan: the placement (defines base instances).
        subclass_plan: the sub-class assignment realised from the plan.
        catalog: NF datasheets.
        free_cores: cores still free per switch *after* the placement —
            the budget failover instances may dip into.
        config: failover tunables.
    """

    MAX_REBALANCE_ROUNDS = 12

    def __init__(
        self,
        plan: PlacementPlan,
        subclass_plan: SubclassPlan,
        catalog: NFTypeCatalog,
        free_cores: Dict[str, int],
        config: Optional[FailoverConfig] = None,
    ) -> None:
        self.plan = plan
        self.catalog = catalog
        self.config = config or FailoverConfig()
        self.free_cores = dict(free_cores)
        self.events: List[FailoverEvent] = []
        self._class_by_id = {c.class_id: c for c in plan.classes}
        self._state: Dict[str, List[_SubState]] = {
            cid: [_SubState(s.weight, s.instance_seq) for s in subs]
            for cid, subs in subclass_plan.by_class.items()
        }
        self._extra_instances: Dict[InstanceRef, str] = {}  # ref -> relieved key
        self._extra_counter = 0
        self._failed: set = set()  # injected crash faults

    # ------------------------------------------------------------------
    def replay(self, timeline: ClassRateTimeline) -> LossTimeline:
        """Replay every snapshot; returns per-snapshot loss and extra cores."""
        times: List[float] = []
        losses: List[float] = []
        extra_cores: List[int] = []
        dt = timeline.times[1] - timeline.times[0] if len(timeline.times) > 1 else 1.0

        for k, t in enumerate(timeline.times):
            rates = {
                c.class_id: float(timeline.rates[k, j])
                for j, c in enumerate(timeline.classes)
            }
            loss = self._step(t, rates, dt)
            times.append(t)
            losses.append(loss)
            extra_cores.append(self._extra_core_count())
        return LossTimeline(times, losses, extra_cores, self.events)

    # ------------------------------------------------------------------
    def _step(self, t: float, rates: Dict[str, float], dt: float) -> float:
        pre_loss = self._network_loss(rates)
        if not self.config.enabled:
            return pre_loss

        # The Dynamic Handler keeps reacting within the snapshot until no
        # instance is overloaded or it runs out of moves; each round costs
        # one detection delay of pre-rebalance loss.
        delay_total = 0.0
        for _ in range(self.MAX_REBALANCE_ROUNDS):
            overloaded = self._overloaded(self._instance_loads(rates))
            if not overloaded:
                break
            self.events.append(
                FailoverEvent(t, "overload", f"{len(overloaded)} instances")
            )
            before = self._network_loss(rates)
            delay_total += self._rebalance(t, rates, overloaded)
            if self._network_loss(rates) >= before - 1e-12:
                break  # no progress (resources exhausted)
        post_loss = self._network_loss(rates)
        frac = min(1.0, delay_total / dt) if dt > 0 else 0.0
        loss = pre_loss * frac + post_loss * (1.0 - frac)
        self._maybe_rollback(t, rates)
        return loss

    # ------------------------------------------------------------------
    # Failure injection (robustness extension)
    # ------------------------------------------------------------------
    def fail_instance(self, ref: InstanceRef) -> None:
        """Mark an instance as failed: zero capacity from now on.

        Fast failover then treats it exactly like a (permanently)
        overloaded instance: the next step halves the sub-classes through
        it, spreads their traffic, and replaces it with new ClickOS
        instances.  Models crash faults, which the paper's mechanism
        handles for free.
        """
        self._failed.add(ref)
        self.events.append(
            FailoverEvent(0.0, "failure", f"{ref.key} marked failed")
        )

    def recover_instance(self, ref: InstanceRef) -> None:
        """Clear a previously injected failure."""
        self._failed.discard(ref)

    # ------------------------------------------------------------------
    # Load / loss computation
    # ------------------------------------------------------------------
    def _instance_loads(self, rates: Dict[str, float]) -> Dict[InstanceRef, float]:
        loads: Dict[InstanceRef, float] = {}
        for cid, subs in self._state.items():
            rate = rates.get(cid, 0.0)
            for st in subs:
                if st.weight <= 0:
                    continue
                for ref in st.seq:
                    loads[ref] = loads.get(ref, 0.0) + rate * st.weight
        return loads

    def _capacity(self, ref: InstanceRef) -> float:
        if ref in self._failed:
            return 0.0
        return self.catalog.get(ref.nf).capacity_mbps

    def _overloaded(self, loads: Dict[InstanceRef, float]) -> List[InstanceRef]:
        thr = self.config.overload_util
        return sorted(
            (r for r, load in loads.items() if load > thr * self._capacity(r)),
            key=lambda r: r.key,
        )

    def _network_loss(self, rates: Dict[str, float]) -> float:
        """Aggregate loss ratio: per-instance overflow composed per chain."""
        loads = self._instance_loads(rates)
        inst_loss = {
            r: max(0.0, 1.0 - self._capacity(r) / load) if load > 0 else 0.0
            for r, load in loads.items()
        }
        total_rate = 0.0
        total_lost = 0.0
        for cid, subs in self._state.items():
            rate = rates.get(cid, 0.0)
            if rate <= 0:
                continue
            total_rate += rate
            for st in subs:
                if st.weight <= 0:
                    continue
                survive = 1.0
                for ref in st.seq:
                    survive *= 1.0 - inst_loss.get(ref, 0.0)
                total_lost += rate * st.weight * (1.0 - survive)
        return total_lost / total_rate if total_rate > 0 else 0.0

    # ------------------------------------------------------------------
    # Fast failover (Fig. 4)
    # ------------------------------------------------------------------
    def _rebalance(
        self, t: float, rates: Dict[str, float], overloaded: List[InstanceRef]
    ) -> float:
        """Halve-and-spread around overloaded instances; returns delay."""
        delay = self.config.detection_delay
        over_set = set(overloaded)
        loads = self._instance_loads(rates)  # updated incrementally below
        for cid, subs in self._state.items():
            rate = rates.get(cid, 0.0)
            touched = [st for st in subs if over_set.intersection(st.seq)]
            if not touched:
                continue
            clear = [st for st in subs if not over_set.intersection(st.seq)]
            for st in touched:
                freed = st.weight / 2.0
                if freed <= 0:
                    continue
                st.weight -= freed
                for ref in st.seq:
                    loads[ref] = loads.get(ref, 0.0) - freed * rate
                target = self._spread_target(clear, rate, freed, loads)
                if target is not None:
                    target.weight += freed
                    for ref in target.seq:
                        loads[ref] = loads.get(ref, 0.0) + freed * rate
                    self.events.append(
                        FailoverEvent(t, "rebalance", f"{cid}: moved {freed:.3f}")
                    )
                else:
                    new_st, slow = self._new_subclass(
                        t, self._class_by_id[cid], st, freed, over_set
                    )
                    if new_st is not None:
                        subs.append(new_st)
                        clear.append(new_st)
                        for ref in new_st.seq:
                            loads[ref] = loads.get(ref, 0.0) + freed * rate
                        if slow:
                            delay = max(delay, self.config.slow_nf_delay)
                    else:
                        st.weight += freed  # no resources: loss persists
                        for ref in st.seq:
                            loads[ref] = loads.get(ref, 0.0) + freed * rate
        return delay

    def _spread_target(
        self,
        clear: List[_SubState],
        rate: float,
        freed: float,
        loads: Dict[InstanceRef, float],
    ) -> Optional[_SubState]:
        """Least-loaded clear sub-class that absorbs ``freed`` without overload."""
        best: Optional[_SubState] = None
        best_util = float("inf")
        for st in clear:
            candidate_util = 0.0
            ok = True
            for ref in st.seq:
                load = loads.get(ref, 0.0) + freed * rate
                util = load / self._capacity(ref)
                candidate_util = max(candidate_util, util)
                if util > self.config.overload_util:
                    ok = False
                    break
            if ok and candidate_util < best_util:
                best, best_util = st, candidate_util
        return best

    def _new_subclass(
        self,
        t: float,
        cls,
        source: _SubState,
        freed: float,
        over_set: set,
    ) -> Tuple[Optional[_SubState], bool]:
        """Clone ``source``'s sequence, replacing overloaded instances.

        Replacements are installed at any APPLE host on the class's path
        whose position keeps the chain order valid (between the previous
        and next steps' positions), preferring the original switch.
        Returns (new sub-state, used_slow_path); None when no compatible
        switch has the cores for some replacement.
        """
        path_pos = {sw: i for i, sw in enumerate(cls.path)}
        positions = [path_pos[ref.switch] for ref in source.seq]
        new_seq: List[InstanceRef] = []
        slow = False
        allocations: List[Tuple[InstanceRef, str, int]] = []

        def fail() -> Tuple[None, bool]:
            # Roll back partial allocations, including their registry
            # entries — otherwise their cores would be freed twice.
            for doomed, sw, cores in allocations:
                self.free_cores[sw] += cores
                del self._extra_instances[doomed]
            return None, False

        prev_pos = 0
        for k, ref in enumerate(source.seq):
            if ref not in over_set:
                new_seq.append(ref)
                prev_pos = positions[k]
                continue
            nf = self.catalog.get(ref.nf)
            hi = positions[k + 1] if k + 1 < len(positions) else len(cls.path) - 1
            # Candidate switches: original first, then order-compatible
            # positions nearest to the original.
            candidates = sorted(
                range(prev_pos, hi + 1), key=lambda p: abs(p - positions[k])
            )
            chosen: Optional[str] = None
            for p in candidates:
                sw = cls.path[p]
                if self.free_cores.get(sw, 0) >= nf.cores:
                    chosen = sw
                    prev_pos = p
                    break
            if chosen is None:
                return fail()
            self.free_cores[chosen] -= nf.cores
            self._extra_counter += 1
            new_ref = InstanceRef(chosen, ref.nf, 1000 + self._extra_counter)
            allocations.append((new_ref, chosen, nf.cores))
            self._extra_instances[new_ref] = ref.key
            new_seq.append(new_ref)
            if not nf.clickos:
                slow = True
            self.events.append(
                FailoverEvent(t, "new-instance", f"{new_ref.key} relieves {ref.key}")
            )
        return _SubState(freed, tuple(new_seq), is_extra=True), slow

    # ------------------------------------------------------------------
    def _maybe_rollback(self, t: float, rates: Dict[str, float]) -> None:
        """Roll classes back to their base configuration when it is safe.

        "Since overloading is transient, the distribution will roll back to
        the normal state when the VNF instance is no longer overloaded"
        (Sec. VI).  Safety test: compute the loads the *base* sub-class
        layout (original weights, no extras) would carry under the current
        rates; any class all of whose base instances stay below the
        rollback threshold is restored and its extra instances cancelled.
        """
        base_loads: Dict[InstanceRef, float] = {}
        for cid, subs in self._state.items():
            rate = rates.get(cid, 0.0)
            for st in subs:
                if st.is_extra:
                    continue
                for ref in st.seq:
                    base_loads[ref] = (
                        base_loads.get(ref, 0.0) + rate * st.base_weight
                    )
        thr = self.config.rollback_util
        for cid, subs in self._state.items():
            diverged = any(st.is_extra for st in subs) or any(
                abs(st.weight - st.base_weight) > 1e-12
                for st in subs
                if not st.is_extra
            )
            if not diverged:
                continue
            base_refs = {
                ref for st in subs if not st.is_extra for ref in st.seq
            }
            safe = all(
                base_loads.get(ref, 0.0) <= thr * self._capacity(ref)
                for ref in base_refs
            )
            if not safe:
                continue
            keep: List[_SubState] = []
            for st in subs:
                if st.is_extra:
                    self._release_extras(t, st)
                else:
                    st.weight = st.base_weight
                    keep.append(st)
            self._state[cid] = keep
            self.events.append(FailoverEvent(t, "rollback", f"{cid} restored"))

    def _release_extras(self, t: float, st: _SubState) -> None:
        """Return the cores of an extra sub-class's replacement instances."""
        for ref in st.seq:
            if ref in self._extra_instances:
                nf = self.catalog.get(ref.nf)
                self.free_cores[ref.switch] = (
                    self.free_cores.get(ref.switch, 0) + nf.cores
                )
                del self._extra_instances[ref]
                self.events.append(FailoverEvent(t, "rollback", f"cancel {ref.key}"))

    def _extra_core_count(self) -> int:
        return sum(self.catalog.get(r.nf).cores for r in self._extra_instances)
