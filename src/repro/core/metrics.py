"""Evaluation metrics: TCAM accounting, core usage, loss replay helpers.

The TCAM accounting here is analytic (rule counting), matching how Fig. 10
is computed: the *with-tagging* scheme installs classification rules only
at each class's ingress switch plus one host-match rule per APPLE host in
use and a pass-by rule per switch; the *without-tagging* baseline must
install every sub-class's classification (prefix-expanded) on **every**
switch the class's traffic can traverse — all ECMP paths in data centers,
which is why UNIV1 shows the largest reduction.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.classify.split import range_to_cidr_count
from repro.core.placement import PlacementPlan
from repro.core.subclasses import SubclassPlan
from repro.topology.graph import Topology
from repro.topology.routing import Router
from repro.traffic.classes import TrafficClass

HASH_BITS = 16  # resolution of hash-range → prefix-rule expansion


def hash_range_entries(lo: float, hi: float, bits: int = HASH_BITS) -> int:
    """TCAM slots to match the hash interval [lo, hi) with prefix rules."""
    size = 1 << bits
    start = int(round(lo * size))
    stop = int(round(hi * size)) - 1
    if stop < start:
        return 1
    return range_to_cidr_count(start, stop, bits=bits)


def tcam_usage_with_tagging(
    topo: Topology,
    classes: Sequence[TrafficClass],
    subclass_plan: SubclassPlan,
) -> Dict[str, int]:
    """Per-switch TCAM slots under the tagging scheme (Sec. V-B).

    One host-match rule per APPLE host in use, plus each sub-class's
    classification rules at its class's ingress switch only.  (The pass-by
    fall-through to other applications' tables exists under both schemes
    and is not an APPLE policy-enforcement cost.)
    """
    usage: Dict[str, int] = {}
    hosts_in_use = {ref.switch for ref in subclass_plan.instance_load}
    for switch in hosts_in_use:
        usage[switch] = usage.get(switch, 0) + 1  # host-match rule
    for cls in classes:
        for sub in subclass_plan.subclasses(cls.class_id):
            usage[cls.src] = usage.get(cls.src, 0) + hash_range_entries(
                *sub.hash_range
            )
    return usage


def tcam_usage_without_tagging(
    topo: Topology,
    classes: Sequence[TrafficClass],
    subclass_plan: SubclassPlan,
    router: Optional[Router] = None,
) -> Dict[str, int]:
    """Per-switch TCAM slots without tagging.

    Without tags in the packet, every switch a class's traffic may
    traverse must carry the full sub-class classification to make its own
    steering decision (with ECMP, the union of all equal-cost paths — the
    reason data-center multipath makes tagging most valuable).  Switches
    whose host a sub-class visits additionally need the classification on
    the *return* leg from the host, since the untagged packet re-enters
    the pipeline there.
    """
    usage: Dict[str, int] = {}
    for cls in classes:
        if router is not None:
            switches = set()
            for path in router.paths(cls.src, cls.dst):
                switches.update(path)
        else:
            switches = set(cls.path)
        for sub in subclass_plan.subclasses(cls.class_id):
            entries = hash_range_entries(*sub.hash_range)
            for sw in switches:
                usage[sw] = usage.get(sw, 0) + entries
            for sw in set(sub.switches()):
                usage[sw] = usage.get(sw, 0) + entries  # return-leg rules
    return usage


def tcam_usage_cross_product(
    topo: Topology,
    classes: Sequence[TrafficClass],
    subclass_plan: SubclassPlan,
    other_app_rules: int = 16,
) -> Dict[str, int]:
    """Per-switch TCAM slots when flow-table pipelining is unsupported.

    Sec. V-B: with pipelining, APPLE's table and the next table (routing,
    ACLs, traffic engineering) cost |APPLE| + |other| per switch; without
    it "the semantics can still be retained by the cross-product of the
    two tables, but the TCAM consumption would increase" —
    (|APPLE| + 1) × |other|, the +1 being the pass-by row that pairs
    non-APPLE traffic with every next-table rule.

    Args:
        other_app_rules: rules other control applications hold per switch.
    """
    if other_app_rules < 1:
        raise ValueError("other_app_rules must be at least 1")
    pipelined = tcam_usage_with_tagging(topo, classes, subclass_plan)
    return {
        sw: (pipelined.get(sw, 0) + 1) * other_app_rules
        for sw in topo.switches
    }


def cross_product_penalty(
    topo: Topology,
    classes: Sequence[TrafficClass],
    subclass_plan: SubclassPlan,
    other_app_rules: int = 16,
) -> float:
    """Total TCAM of the cross-product layout over the pipelined layout.

    The pipelined total counts both tables (|APPLE| + 1 pass-by + |other|
    per switch); the penalty grows with APPLE's rule count — negligible on
    pass-through switches, large at ingress switches holding many
    classification rules.
    """
    pipelined = tcam_usage_with_tagging(topo, classes, subclass_plan)
    crossed = tcam_usage_cross_product(
        topo, classes, subclass_plan, other_app_rules
    )
    base = sum(
        pipelined.get(sw, 0) + 1 + other_app_rules for sw in topo.switches
    )
    return sum(crossed.values()) / base if base else float("inf")


def tcam_reduction_ratio(
    topo: Topology,
    classes: Sequence[TrafficClass],
    subclass_plan: SubclassPlan,
    router: Optional[Router] = None,
) -> float:
    """Total TCAM without tagging / with tagging (Fig. 10's metric)."""
    with_tag = sum(tcam_usage_with_tagging(topo, classes, subclass_plan).values())
    without = sum(
        tcam_usage_without_tagging(topo, classes, subclass_plan, router).values()
    )
    return without / with_tag if with_tag > 0 else float("inf")


def plan_core_usage(plan: PlacementPlan) -> int:
    """CPU cores consumed by a plan's instances (Fig. 11's metric)."""
    return plan.total_cores()


def free_cores_after(
    plan: PlacementPlan, available_cores: Mapping[str, int]
) -> Dict[str, int]:
    """Cores still free per switch after deploying ``plan``.

    This is the budget fast failover may dip into for extra instances.
    """
    used = plan.cores_by_switch()
    return {
        sw: int(avail) - used.get(sw, 0) for sw, avail in available_cores.items()
    }


def loss_over_time(timeline, handler) -> "LossTimeline":
    """Replay ``timeline`` through a configured DynamicHandler.

    Thin convenience wrapper so experiments read declaratively; see
    :class:`repro.core.dynamic.DynamicHandler`.
    """
    return handler.replay(timeline)
