"""Concrete prefix realisation of sub-class classification (Sec. V-A).

The tagging scheme matches sub-classes by hash range; real hardware
without programmable hashing realises each range as source-prefix
wildcards inside the class's address block (the ``<10.1.1.128/25>``
method).  This module compiles a sub-class plan plus a class → prefix map
into the exact CIDR rules an ingress switch would hold, and reports the
TCAM cost of that realisation — the concrete counterpart of the analytic
accounting in :mod:`repro.core.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.classify.split import fraction_to_prefixes
from repro.core.subclasses import SubclassPlan


@dataclass(frozen=True)
class PrefixRule:
    """One ingress wildcard rule: prefix → sub-class."""

    class_id: str
    sub_id: int
    prefix: str


def compile_prefix_rules(
    subclass_plan: SubclassPlan,
    class_prefixes: Mapping[str, str],
) -> Dict[str, List[PrefixRule]]:
    """CIDR rules per class realising every sub-class's hash range.

    Args:
        class_prefixes: the wildcard address block of each class (its hash
            domain under the prefix method).

    Raises:
        KeyError: a class in the plan has no prefix assigned.
    """
    out: Dict[str, List[PrefixRule]] = {}
    for class_id, subs in subclass_plan.by_class.items():
        try:
            block = class_prefixes[class_id]
        except KeyError:
            raise KeyError(
                f"class {class_id!r} has no address block for the prefix "
                "realisation"
            ) from None
        rules: List[PrefixRule] = []
        for sub in subs:
            lo, hi = sub.hash_range
            if hi <= lo:
                continue
            for prefix in fraction_to_prefixes(block, lo, hi):
                rules.append(PrefixRule(class_id, sub.sub_id, prefix))
        out[class_id] = rules
    return out


def prefix_rule_counts(
    subclass_plan: SubclassPlan,
    class_prefixes: Mapping[str, str],
) -> Tuple[int, int]:
    """(total sub-classes, total prefix rules) — the inflation pair.

    With consistent hashing, one rule per sub-class suffices; the prefix
    method needs ``total rules ≥ total sub-classes``, with equality only
    for power-of-two-aligned splits.
    """
    compiled = compile_prefix_rules(subclass_plan, class_prefixes)
    rules = sum(len(v) for v in compiled.values())
    subclasses = subclass_plan.total_subclasses()
    return subclasses, rules


def assign_class_blocks(
    subclass_plan: SubclassPlan, base_octet: int = 10
) -> Dict[str, str]:
    """Synthesise disjoint /24 blocks for every class (test/demo helper).

    Real deployments take blocks from operator policy; experiments just
    need *some* consistent assignment.

    Raises:
        ValueError: more classes than /24 blocks under the base octet.
    """
    blocks: Dict[str, str] = {}
    class_ids = sorted(subclass_plan.by_class)
    if len(class_ids) > 256 * 256:
        raise ValueError("more classes than available /24 blocks")
    for k, class_id in enumerate(class_ids):
        second, third = divmod(k, 256)
        blocks[class_id] = f"{base_octet}.{second}.{third}.0/24"
    return blocks
