"""APPLE core: the paper's primary contribution.

* :mod:`repro.core.engine` — the Optimization Engine (ILP of Eq. 1–8,
  solved by LP relaxation + rounding);
* :mod:`repro.core.placement` — placement-plan result types;
* :mod:`repro.core.subclasses` — sub-class assignment from the spatial
  distribution d (Sec. V-A, monotone-coupling construction);
* :mod:`repro.core.rulegen` — the Rule Generator (Table III layouts, vSwitch
  rules, TCAM accounting with and without tagging);
* :mod:`repro.core.dynamic` — the Dynamic Handler and fast failover (Sec. VI);
* :mod:`repro.core.controller` — the central controller wiring everything;
* :mod:`repro.core.baselines` — the ingress strawman, the no-tagging TCAM
  scheme, a greedy placement heuristic, and Table I's framework comparison.
"""

from repro.core.baselines import (
    FRAMEWORK_COMPARISON,
    greedy_placement,
    ingress_placement,
)
from repro.core.controller import AppleController, UnknownClassError
from repro.core.dynamic import DynamicHandler, FailoverEvent
from repro.core.engine import EngineConfig, OptimizationEngine
from repro.core.metrics import (
    cross_product_penalty,
    loss_over_time,
    plan_core_usage,
    tcam_usage_cross_product,
    tcam_usage_with_tagging,
    tcam_usage_without_tagging,
)
from repro.core.online import OnlineDecision, OnlinePlacementError, OnlinePlacer
from repro.core.periodic import PeriodicReoptimizer, ReoptimizationReport
from repro.core.provisioning import OrchestatedProvisioner, ProvisioningResult
from repro.core.verify import verify_deployment, VerificationReport
from repro.core.placement import InstanceRef, PlacementPlan
from repro.core.rulegen import GeneratedRules, RuleGenerator
from repro.core.subclasses import Subclass, SubclassPlan, assign_subclasses

__all__ = [
    "OptimizationEngine",
    "EngineConfig",
    "PlacementPlan",
    "InstanceRef",
    "Subclass",
    "SubclassPlan",
    "assign_subclasses",
    "RuleGenerator",
    "GeneratedRules",
    "DynamicHandler",
    "FailoverEvent",
    "AppleController",
    "UnknownClassError",
    "ingress_placement",
    "greedy_placement",
    "FRAMEWORK_COMPARISON",
    "plan_core_usage",
    "tcam_usage_with_tagging",
    "tcam_usage_without_tagging",
    "tcam_usage_cross_product",
    "cross_product_penalty",
    "loss_over_time",
    "OnlinePlacer",
    "OnlineDecision",
    "OnlinePlacementError",
    "PeriodicReoptimizer",
    "ReoptimizationReport",
    "OrchestatedProvisioner",
    "ProvisioningResult",
    "verify_deployment",
    "VerificationReport",
]
