"""First-fit greedy placement heuristic.

Places whole classes (largest first) at single path positions, reusing
instances with spare capacity before opening new ones.  Used as a solver
ablation baseline, and optionally by the Optimization Engine as a second
candidate whose objective is compared against LP-relaxation rounding
(``EngineConfig.compare_greedy``) — neither heuristic dominates the other
across load regimes.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.engine import PlacementError
from repro.core.placement import PlacementPlan
from repro.traffic.classes import TrafficClass
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog


def greedy_placement(
    classes: Sequence[TrafficClass],
    available_cores: Mapping[str, int],
    catalog: NFTypeCatalog = DEFAULT_CATALOG,
    capacity_headroom: float = 1.0,
) -> PlacementPlan:
    """First-fit heuristic: whole classes at single path positions.

    Classes are processed in descending rate order.  For each chain step
    the heuristic picks the earliest path position (at or after the
    previous step's position, preserving order) where adding the class's
    load fits within the switch's core budget, preferring slots whose
    already-placed instances have spare capacity.

    Raises:
        PlacementError: when some class cannot be placed anywhere.
    """
    if not 0 < capacity_headroom <= 1:
        raise PlacementError("capacity_headroom must be in (0, 1]")
    load: Dict[Tuple[str, str], float] = {}  # (switch, nf) -> assigned Mbps
    cores_used: Dict[str, int] = {}
    distribution: Dict[Tuple[str, int, int], float] = {}

    def cap_of(nf_name: str) -> float:
        return catalog.get(nf_name).capacity_mbps * capacity_headroom

    def q_for(slot: Tuple[str, str], extra: float) -> int:
        return math.ceil((load.get(slot, 0.0) + extra) / cap_of(slot[1]) - 1e-12)

    def fits(slot: Tuple[str, str], extra: float) -> bool:
        switch, nf_name = slot
        nf = catalog.get(nf_name)
        added_instances = q_for(slot, extra) - q_for(slot, 0.0)
        added_cores = added_instances * nf.cores
        budget = available_cores.get(switch, 0)
        return cores_used.get(switch, 0) + added_cores <= budget

    for cls in sorted(classes, key=lambda c: (-c.rate_mbps, c.class_id)):
        prev_pos = 0
        for j, nf_name in enumerate(cls.chain):
            placed = False
            # First pass: reuse a slot with spare capacity (no new instance).
            for want_spare in (True, False):
                for i in range(prev_pos, cls.path_length):
                    switch = cls.path[i]
                    if available_cores.get(switch, 0) <= 0:
                        continue
                    slot = (switch, nf_name)
                    adds_instance = q_for(slot, cls.rate_mbps) > q_for(slot, 0.0)
                    if want_spare and adds_instance:
                        continue
                    if not fits(slot, cls.rate_mbps):
                        continue
                    old_q = q_for(slot, 0.0)
                    load[slot] = load.get(slot, 0.0) + cls.rate_mbps
                    new_q = q_for(slot, 0.0)
                    nf = catalog.get(nf_name)
                    cores_used[switch] = (
                        cores_used.get(switch, 0) + (new_q - old_q) * nf.cores
                    )
                    distribution[(cls.class_id, i, j)] = 1.0
                    prev_pos = i
                    placed = True
                    break
                if placed:
                    break
            if not placed:
                raise PlacementError(
                    f"greedy: class {cls.class_id!r} step {j} ({nf_name}) "
                    "fits nowhere on its path"
                )

    quantities = {
        slot: max(1, math.ceil(rate / cap_of(slot[1]) - 1e-12))
        for slot, rate in load.items()
    }
    return PlacementPlan(
        quantities=quantities,
        distribution=distribution,
        classes=list(classes),
        catalog=catalog,
        objective=float(sum(quantities.values())),
    )
