"""Constraint assembly for the placement ILP (Eq. 1–8), shared builders.

The Optimization Engine's structure phase used to assemble the whole model
inline in ``engine.py``; the blocks live here so other placement entry
points (the decomposed solver's shards, the tenancy workers' per-tenant
solves) read as a sequence of named equation builders rather than a wall
of loops.

Ordering contract — **do not reorder**: variable indices and constraint
rows must come out exactly as the historical inline assembly produced
them, because warm-started templates rewrite coefficients by position
(:meth:`PlacementTemplate.set_rates`) and the repo's warm==cold tests pin
solves bit for bit.  Concretely:

1. d variables per class, per chain step, per host position (class order);
   Eq. 4 completeness then Eq. 3 ordering rows interleaved per class;
2. q variables over the sorted (switch, NF) slots;
3. Eq. 5 capacity rows in slot order (their row indices are recorded for
   the rate rewrite);
4. Eq. 6 resource rows in sorted switch order;
5. Eq. 6 memory rows (when memory is modelled) in sorted switch order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.solver.model import Constraint, LinExpr, Model, Variable
from repro.traffic.classes import TrafficClass
from repro.vnf.types import NFTypeCatalog

#: (switch, NF) pair — one potential instance slot.
Slot = Tuple[str, str]


@dataclass
class ConstraintBundle:
    """Everything the assembly produced, in creation order.

    The engine turns this into a :class:`PlacementTemplate`; the field
    names deliberately match the template's so the hand-off is 1:1.
    """

    cons: List[Constraint] = field(default_factory=list)
    d_vars: Dict[Tuple[str, int, int], Variable] = field(default_factory=dict)
    q_vars: Dict[Slot, Variable] = field(default_factory=dict)
    slots: List[Slot] = field(default_factory=list)
    load_members: Dict[Slot, List[Tuple[int, Variable]]] = field(
        default_factory=dict
    )
    cap_rows: Dict[Slot, int] = field(default_factory=dict)
    resource_rows: Dict[str, int] = field(default_factory=dict)


def add_flow_rows(
    model: Model,
    bundle: ConstraintBundle,
    classes: Sequence[TrafficClass],
    available_cores: Mapping[str, int],
) -> None:
    """d variables plus Eq. 4 completeness and Eq. 3 ordering rows.

    d variables exist only at path positions whose switch has an APPLE
    host; Eq. 3 appears with σ substituted away (cumulative portion of
    step j-1 dominates step j at every path prefix).
    """
    d_vars = bundle.d_vars
    load_members = bundle.load_members
    cons = bundle.cons
    for cls_idx, cls in enumerate(classes):
        host_positions = [
            i for i, sw in enumerate(cls.path) if available_cores.get(sw, 0) > 0
        ]
        for j, nf in enumerate(cls.chain):
            for i in host_positions:
                var = model.add_var(f"d[{cls.class_id},{i},{j}]", lb=0.0, ub=1.0)
                d_vars[(cls.class_id, i, j)] = var
                load_members.setdefault((cls.path[i], nf), []).append(
                    (cls_idx, var)
                )

        # Eq. 4: every chain step processes 100% of the class.
        for j in range(cls.chain_length):
            step_vars = [d_vars[(cls.class_id, i, j)] for i in host_positions]
            con = LinExpr.total(step_vars).eq(1.0)
            con.name = f"complete[{cls.class_id},{j}]"
            cons.append(con)

        # Eq. 3 (with σ substituted): cumulative of step j-1 dominates
        # cumulative of step j at every prefix of the path.
        for j in range(1, cls.chain_length):
            for stop in range(len(host_positions) - 1):
                prefix = host_positions[: stop + 1]
                expr = LinExpr.total(
                    [(1.0, d_vars[(cls.class_id, i, j - 1)]) for i in prefix]
                    + [(-1.0, d_vars[(cls.class_id, i, j)]) for i in prefix]
                )
                con = expr >= 0.0
                con.name = f"order[{cls.class_id},{j},{stop}]"
                cons.append(con)


def add_instance_vars(model: Model, bundle: ConstraintBundle) -> None:
    """Integer q variables for every used (switch, NF) slot, sorted."""
    bundle.slots = sorted(bundle.load_members)
    for (switch, nf) in bundle.slots:
        bundle.q_vars[(switch, nf)] = model.add_var(
            f"q[{switch},{nf}]", lb=0.0, integer=True
        )


def add_capacity_rows(
    bundle: ConstraintBundle,
    classes: Sequence[TrafficClass],
    cap: Callable[[str], float],
) -> None:
    """Eq. 5: per-slot load ≤ instances × derated capacity.

    The rate coefficients T_h are the only snapshot-dependent numbers in
    the model; ``set_rates`` rewrites them, so each row's index is
    recorded in ``cap_rows``.
    """
    cons = bundle.cons
    for (switch, nf) in bundle.slots:
        members = bundle.load_members[(switch, nf)]
        expr = LinExpr.total(
            [(classes[ci].rate_mbps, var) for ci, var in members]
        ) - cap(nf) * bundle.q_vars[(switch, nf)]
        con = expr <= 0.0
        con.name = f"cap[{switch},{nf}]"
        bundle.cap_rows[(switch, nf)] = len(cons)
        cons.append(con)


def add_resource_rows(
    bundle: ConstraintBundle,
    available_cores: Mapping[str, int],
    catalog: NFTypeCatalog,
) -> None:
    """Eq. 6, core dimension: Σ cores_n · q ≤ A_v per switch."""
    cons = bundle.cons
    by_switch: Dict[str, List[Tuple[float, Variable]]] = {}
    for (switch, nf), q in bundle.q_vars.items():
        by_switch.setdefault(switch, []).append(
            (float(catalog.get(nf).cores), q)
        )
    for switch, terms in sorted(by_switch.items()):
        con = LinExpr.total(terms) <= float(available_cores.get(switch, 0))
        con.name = f"res[{switch}]"
        bundle.resource_rows[switch] = len(cons)
        cons.append(con)


def add_memory_rows(
    bundle: ConstraintBundle,
    available_memory_gb: Optional[Mapping[str, float]],
    catalog: NFTypeCatalog,
) -> None:
    """Eq. 6, memory dimension (when modelled): Σ mem_n · q ≤ M_v."""
    if available_memory_gb is None:
        return
    cons = bundle.cons
    mem_by_switch: Dict[str, List[Tuple[float, Variable]]] = {}
    for (switch, nf), q in bundle.q_vars.items():
        mem_by_switch.setdefault(switch, []).append(
            (float(catalog.get(nf).memory_gb), q)
        )
    for switch, terms in sorted(mem_by_switch.items()):
        con = LinExpr.total(terms) <= float(
            available_memory_gb.get(switch, 0.0)
        )
        con.name = f"mem[{switch}]"
        cons.append(con)


def instance_count_objective(bundle: ConstraintBundle) -> LinExpr:
    """Eq. 1: total instance count, in q creation (slot) order."""
    return LinExpr.total(list(bundle.q_vars.values()))


def assemble_placement_model(
    model: Model,
    classes: Sequence[TrafficClass],
    available_cores: Mapping[str, int],
    available_memory_gb: Optional[Mapping[str, float]],
    cap: Callable[[str], float],
    catalog: NFTypeCatalog,
) -> ConstraintBundle:
    """Run every builder in the pinned order and attach the objective."""
    bundle = ConstraintBundle()
    add_flow_rows(model, bundle, classes, available_cores)
    add_instance_vars(model, bundle)
    add_capacity_rows(bundle, classes, cap)
    add_resource_rows(bundle, available_cores, catalog)
    add_memory_rows(bundle, available_memory_gb, catalog)
    model.add_constraints(bundle.cons)
    model.minimize(instance_count_objective(bundle))
    return bundle
