"""The APPLE central controller: the glue of Fig. 1.

Wires the control-plane applications together: classes are built from a
traffic matrix + routing + policies, the Optimization Engine computes a
placement, sub-classes realise it, the Rule Generator installs data-plane
rules, and the Dynamic Handler watches for overload.  Examples and
integration tests drive the system through this façade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.dynamic import DynamicHandler, FailoverConfig
from repro.core.engine import EngineConfig, OptimizationEngine
from repro.core.metrics import free_cores_after
from repro.core.placement import PlacementPlan
from repro.core.rulegen import GeneratedRules, RuleGenerator
from repro.core.subclasses import SubclassPlan, assign_subclasses
from repro.dataplane.network import DataPlaneNetwork, DeliveryRecord
from repro.dataplane.packet import Packet
from repro.sim.kernel import Simulator
from repro.topology.graph import Topology
from repro.topology.routing import Router
from repro.traffic.classes import ClassBuilder, PolicyAssignment, TrafficClass
from repro.traffic.matrix import TrafficMatrix
from repro.vnf.instance import VNFInstance
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.southbound.fabric import SouthboundFabric


class UnknownClassError(KeyError):
    """A class id that is not part of the current deployment.

    Subclasses :class:`KeyError` so pre-existing ``except KeyError``
    handlers keep working; tenancy workers catch this type specifically to
    distinguish a tenant-scoped miss (a class belonging to another tenant,
    or one already deleted) from a genuine mapping bug.
    """

    def __init__(self, class_id: str) -> None:
        super().__init__(f"unknown class {class_id!r}")
        self.class_id = class_id

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass
class Deployment:
    """A realised placement: everything needed to push packets."""

    plan: PlacementPlan
    subclass_plan: SubclassPlan
    rules: GeneratedRules
    network: DataPlaneNetwork
    instances: Dict[str, VNFInstance]


class AppleController:
    """End-to-end APPLE controller over one topology.

    Args:
        topo: the network; its ``hosts`` map defines APPLE host capacity.
        assignment: policy assignment mapping (src, dst) → chains+shares.
        catalog: NF datasheets.
        ecmp: whether routing (the interference-free input) uses ECMP.
        engine_config: Optimization Engine tunables.
        min_rate_mbps: demands at or below this are ignored by class building.
    """

    def __init__(
        self,
        topo: Topology,
        assignment: PolicyAssignment,
        catalog: NFTypeCatalog = DEFAULT_CATALOG,
        ecmp: bool = False,
        engine_config: Optional[EngineConfig] = None,
        min_rate_mbps: float = 0.0,
    ) -> None:
        self.topo = topo
        self.catalog = catalog
        self.router = Router(topo, ecmp=ecmp)
        self.class_builder = ClassBuilder(
            self.router, assignment, min_rate_mbps=min_rate_mbps
        )
        self.engine = OptimizationEngine(catalog, engine_config)
        self.rule_generator = RuleGenerator(catalog)
        self.classes: List[TrafficClass] = []
        self.deployment: Optional[Deployment] = None
        #: Resilient control channel; see :meth:`attach_southbound`.
        self.southbound: Optional["SouthboundFabric"] = None

    # ------------------------------------------------------------------
    def available_cores(self) -> Dict[str, int]:
        """A_v (core dimension) per switch from the topology's host specs."""
        return {s: spec.cores for s, spec in self.topo.hosts.items()}

    def available_memory_gb(self) -> Dict[str, float]:
        """A_v (memory dimension) per switch from the host specs."""
        return {s: spec.memory_gb for s, spec in self.topo.hosts.items()}

    def build_classes(self, matrix: TrafficMatrix) -> List[TrafficClass]:
        """Aggregate the matrix's demands into equivalence classes."""
        self.classes = self.class_builder.build(matrix)
        return self.classes

    def compute_placement(
        self, matrix: Optional[TrafficMatrix] = None
    ) -> PlacementPlan:
        """Run the Optimization Engine (building classes first if needed)."""
        if matrix is not None:
            self.build_classes(matrix)
        if not self.classes:
            raise ValueError("no traffic classes; pass a matrix or build classes")
        return self.engine.place(
            self.classes,
            self.available_cores(),
            available_memory_gb=self.available_memory_gb(),
        )

    def deploy(
        self, plan: PlacementPlan, sim: Optional[Simulator] = None
    ) -> Deployment:
        """Realise a plan: sub-classes, rules, and a wired data plane."""
        subclass_plan = assign_subclasses(plan)
        rules = self.rule_generator.generate(plan.classes, subclass_plan)
        network = DataPlaneNetwork(self.topo)
        instances = self.rule_generator.install(
            rules, network, plan.classes, sim=sim
        )
        self.deployment = Deployment(plan, subclass_plan, rules, network, instances)
        return self.deployment

    def run(
        self, matrix: TrafficMatrix, sim: Optional[Simulator] = None
    ) -> Deployment:
        """Convenience: classes → placement → deployment in one call."""
        plan = self.compute_placement(matrix)
        return self.deploy(plan, sim=sim)

    def attach_southbound(self, fabric: "SouthboundFabric") -> None:
        """Adopt the current deployment into a southbound fabric.

        The initial install goes through the direct path (:meth:`deploy`);
        the fabric blesses the result as its desired epoch 0 — a no-op on
        the wire — and every later rule change (recovery reconvergences,
        reconciler repairs) then flows through acked, transactional
        southbound pushes.
        """
        if self.deployment is None:
            raise RuntimeError("deploy a placement before attaching southbound")
        fabric.adopt(
            self.deployment.rules,
            self.deployment.plan.classes,
            self.deployment.instances,
        )
        self.southbound = fabric

    # ------------------------------------------------------------------
    def send_packet(
        self,
        class_id: str,
        flow_hash: float,
        size_bytes: int = 1500,
        now: float = 0.0,
    ) -> DeliveryRecord:
        """Inject one packet of a class into the deployed data plane."""
        if self.deployment is None:
            raise RuntimeError("deploy a placement before sending packets")
        cls = next(
            (c for c in self.deployment.plan.classes if c.class_id == class_id), None
        )
        if cls is None:
            raise UnknownClassError(class_id)
        packet = Packet(
            class_id=class_id,
            flow_hash=flow_hash,
            src=cls.src,
            dst=cls.dst,
            size_bytes=size_bytes,
        )
        return self.deployment.network.inject(packet, now=now)

    def make_dynamic_handler(
        self, config: Optional[FailoverConfig] = None
    ) -> DynamicHandler:
        """A Dynamic Handler bound to the current deployment."""
        if self.deployment is None:
            raise RuntimeError("deploy a placement before creating the handler")
        return DynamicHandler(
            self.deployment.plan,
            self.deployment.subclass_plan,
            self.catalog,
            free_cores=free_cores_after(
                self.deployment.plan, self.available_cores()
            ),
            config=config,
        )
