"""Baselines and comparison frameworks.

* :data:`FRAMEWORK_COMPARISON` — Table I's qualitative property matrix.
* :func:`ingress_placement` — the *ingress* strawman of Sec. IX-D:
  "consolidates all the VNFs of the policy chain in the ingress switch and
  enforce policy there for each class".  Each class gets dedicated
  instances at its ingress — no resource multiplexing between classes,
  which is exactly the benefit APPLE's Fig. 11 quantifies.
* :func:`greedy_placement` — a first-fit heuristic used as a solver
  ablation: entire classes assigned to single path positions, instances
  shared between classes at the same slot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.engine import PlacementError
from repro.core.placement import PlacementPlan
from repro.traffic.classes import TrafficClass
from repro.vnf.types import DEFAULT_CATALOG, NFTypeCatalog


@dataclass(frozen=True)
class FrameworkProperties:
    """One row of Table I."""

    name: str
    policy_enforcement: bool
    interference_free: bool
    isolation: bool


#: Table I — comparison of NF orchestration frameworks.
FRAMEWORK_COMPARISON: Tuple[FrameworkProperties, ...] = (
    FrameworkProperties("StEERING", True, False, True),
    FrameworkProperties("SIMPLE", True, False, True),
    FrameworkProperties("PACE", False, True, True),
    FrameworkProperties("CoMb", True, True, False),
    FrameworkProperties("Stratos", True, False, True),
    FrameworkProperties("E2", True, False, True),
    FrameworkProperties("VNF-OP", True, False, True),
    FrameworkProperties("APPLE", True, True, True),
)


def ingress_placement(
    classes: Sequence[TrafficClass],
    catalog: NFTypeCatalog = DEFAULT_CATALOG,
) -> PlacementPlan:
    """The ingress strawman: per-class dedicated instances at the ingress.

    Every class gets ceil(T_h / Cap_n) (at least one) instances of each NF
    in its chain at its ingress switch.  No multiplexing across classes and
    no attention to available resources — the paper uses it purely as the
    hardware-usage comparison point of Fig. 11.
    """
    quantities: Dict[Tuple[str, str], int] = {}
    distribution: Dict[Tuple[str, int, int], float] = {}
    for cls in classes:
        for j, nf_name in enumerate(cls.chain):
            nf = catalog.get(nf_name)
            count = max(1, nf.instances_for(cls.rate_mbps))
            key = (cls.src, nf_name)
            quantities[key] = quantities.get(key, 0) + count
            distribution[(cls.class_id, 0, j)] = 1.0
    return PlacementPlan(
        quantities=quantities,
        distribution=distribution,
        classes=list(classes),
        catalog=catalog,
        objective=float(sum(quantities.values())),
    )


# greedy_placement moved to repro.core.greedy (imported for API compatibility).
from repro.core.greedy import greedy_placement  # noqa: E402  (re-export)
