"""The Rule Generator: data-plane rules from a sub-class plan (Sec. V).

Gathers the Optimization Engine's output (via the sub-class assignment) and
produces:

* per-physical-switch Table III layouts — host-match rules where APPLE
  hosts are in use, classification rules *only at each class's ingress
  switch* (the key TCAM saving of the tagging scheme), and the pass-by
  catch-all;
* per-vSwitch ``<IncomePort, class, sub-class>`` rules walking packets
  through the consecutive local instances of their sequence, then tagging
  the next host ID (or FIN).

:meth:`RuleGenerator.install` applies everything to a
:class:`~repro.dataplane.network.DataPlaneNetwork`, creating concrete
:class:`~repro.vnf.instance.VNFInstance` objects for the plan's logical
instance slots when the caller does not supply its own (e.g. orchestrator-
launched) instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.placement import InstanceRef
from repro.core.subclasses import Subclass, SubclassPlan
from repro.dataplane.network import DataPlaneNetwork
from repro.dataplane.packet import FIN
from repro.dataplane.switch import SwitchRuleSet
from repro.dataplane.tagging import TagAllocator
from repro.dataplane.vswitch import VSwitchRule
from repro.sim.kernel import Simulator
from repro.traffic.classes import TrafficClass
from repro.vnf.instance import VNFInstance
from repro.vnf.types import NFTypeCatalog


@dataclass
class GeneratedRules:
    """Everything the Rule Generator emits for one plan."""

    switch_rule_sets: Dict[str, SwitchRuleSet]
    vswitch_rules: Dict[str, List[Tuple[str, int, VSwitchRule]]]
    tag_allocator: TagAllocator
    hosts_in_use: List[str]
    #: Origin classification per vSwitch for host-originated classes
    #: (Fig. 3's ip3 scenario): (class_id, hash_range, sub_id, first_host).
    origin_rules: Dict[str, List[Tuple[str, Tuple[float, float], int, str]]] = field(
        default_factory=dict
    )

    def classification_rule_count(self) -> int:
        """Logical classification rules across all switches (ingress only)."""
        return sum(len(rs.classifications) for rs in self.switch_rule_sets.values())


@dataclass
class RuleDelta:
    """What :meth:`RuleGenerator.install_delta` actually pushed."""

    switches_updated: int = 0
    flow_mods: int = 0
    vswitch_updates: int = 0
    instances_created: int = 0
    paths_updated: int = 0


class RuleGenerator:
    """Computes and installs data-plane rules for a sub-class plan.

    Args:
        catalog: NF datasheets (to materialise instances at install time).
    """

    def __init__(self, catalog: NFTypeCatalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    def generate(
        self,
        classes: Sequence[TrafficClass],
        subclass_plan: SubclassPlan,
        host_originated: Optional[set] = None,
    ) -> GeneratedRules:
        """Produce rule sets for all switches and vSwitches.

        Args:
            host_originated: class ids whose traffic is born at production
                VMs inside the APPLE host at the class's source switch;
                their classification lives in that vSwitch's origin table
                instead of the physical ingress switch (Fig. 3, ip3).
        """
        class_by_id = {c.class_id: c for c in classes}
        host_originated = host_originated or set()

        hosts_in_use = sorted(
            {ref.switch for ref in subclass_plan.instance_load}
        )
        tags = TagAllocator()
        tags.assign_host_ids(hosts_in_use)
        # Sec. X: a header-modifying NF anywhere before the end of a chain
        # invalidates downstream 5-tuple classification, so sub-class IDs
        # must be network-global instead of multiplexed per class.
        needs_global = any(
            any(nf.modifies_headers for nf in cls.chain.nf_types()[:-1])
            for cls in classes
            if cls.chain_length > 0
        )
        if needs_global:
            tags.reserve_global_subclass_ids(
                max(1, subclass_plan.total_subclasses())
            )
        else:
            tags.reserve_subclass_ids(
                max(1, subclass_plan.max_subclasses_per_class())
            )

        rule_sets: Dict[str, SwitchRuleSet] = {}
        vswitch_rules: Dict[str, List[Tuple[str, int, VSwitchRule]]] = {}
        origin_rules: Dict[str, List[Tuple[str, Tuple[float, float], int, str]]] = {}

        def rule_set(switch: str) -> SwitchRuleSet:
            if switch not in rule_sets:
                rule_sets[switch] = SwitchRuleSet(switch=switch)
            return rule_sets[switch]

        for switch in hosts_in_use:
            rule_set(switch).host_match = True

        for class_id in sorted(subclass_plan.by_class):
            cls = class_by_id.get(class_id)
            if cls is None:
                raise KeyError(f"sub-class plan references unknown class {class_id!r}")
            for sub in subclass_plan.subclasses(class_id):
                groups = _group_by_switch(sub.instance_seq)
                if not groups:
                    continue
                first_host = groups[0][0]
                if class_id in host_originated:
                    # Classification in the source host's vSwitch (Fig. 3).
                    origin_rules.setdefault(cls.src, []).append(
                        (class_id, sub.hash_range, sub.sub_id, first_host)
                    )
                else:
                    # Ingress classification (Table III rows 2-3).
                    rule_set(cls.src).classifications.append(
                        (class_id, sub.hash_range, sub.sub_id, first_host)
                    )
                # vSwitch rules per visited host.
                for g, (switch, refs) in enumerate(groups):
                    next_tag = groups[g + 1][0] if g + 1 < len(groups) else FIN
                    vswitch_rules.setdefault(switch, []).append(
                        (
                            class_id,
                            sub.sub_id,
                            VSwitchRule(
                                instance_ids=tuple(r.key for r in refs),
                                exit_host_tag=next_tag,
                            ),
                        )
                    )

        return GeneratedRules(
            switch_rule_sets=rule_sets,
            vswitch_rules=vswitch_rules,
            tag_allocator=tags,
            hosts_in_use=hosts_in_use,
            origin_rules=origin_rules,
        )

    # ------------------------------------------------------------------
    def materialize_instances(
        self,
        rules: GeneratedRules,
        network: DataPlaneNetwork,
        sim: Optional[Simulator] = None,
        instances: Optional[Dict[str, VNFInstance]] = None,
        delta: Optional[RuleDelta] = None,
    ) -> Dict[str, VNFInstance]:
        """Create and register every instance the rules reference.

        Shared by :meth:`install`, :meth:`install_delta` and the
        southbound fabric: instance creation is a hypervisor-local action
        (not a flow rule), so it happens before rules that reference the
        instances are pushed.  Registration is skipped where the binding
        is unchanged (re-registering bumps the vSwitch generation and
        retires warm walk plans for no reason).

        Returns:
            The full instance map keyed by ref key.
        """
        inst_map: Dict[str, VNFInstance] = dict(instances or {})
        needed: Dict[str, List[str]] = {}
        for rule_list in rules.vswitch_rules.values():
            for _, _, rule in rule_list:
                for key in rule.instance_ids:
                    switch = key.rsplit("@", 1)[1]
                    needed.setdefault(switch, []).append(key)
        for switch, keys in needed.items():
            vsw = network.vswitch_at(switch)
            for key in keys:
                if key not in inst_map:
                    nf_name = key.split("[", 1)[0]
                    inst_map[key] = VNFInstance(
                        instance_id=key,
                        nf_type=self.catalog.get(nf_name),
                        switch=switch,
                        sim=sim,
                    )
                    if delta is not None:
                        delta.instances_created += 1
                if vsw.registered(key) is not inst_map[key]:
                    vsw.register_instance(inst_map[key], alias=key)
        return inst_map

    # ------------------------------------------------------------------
    def install(
        self,
        rules: GeneratedRules,
        network: DataPlaneNetwork,
        classes: Sequence[TrafficClass],
        sim: Optional[Simulator] = None,
        instances: Optional[Dict[str, VNFInstance]] = None,
    ) -> Dict[str, VNFInstance]:
        """Apply generated rules to a data-plane network.

        Args:
            instances: existing instances keyed by
                :attr:`InstanceRef.key`; missing ones are created (pure
                data-plane simulations skip the orchestrator).

        Returns:
            The full instance map keyed by ref key.
        """
        for cls in classes:
            network.register_class_path(cls.class_id, cls.path)

        inst_map = self.materialize_instances(
            rules, network, sim=sim, instances=instances
        )

        for switch, rule_list in rules.vswitch_rules.items():
            vsw = network.vswitch_at(switch)
            for class_id, sub_id, rule in rule_list:
                vsw.install_rule(class_id, sub_id, rule)

        for switch, origin_list in rules.origin_rules.items():
            vsw = network.vswitch_at(switch)
            for class_id, hash_range, sub_id, first_host in origin_list:
                vsw.install_origin_rule(class_id, hash_range, sub_id, first_host)

        for switch_name, sw in network.switches.items():
            rule_set = rules.switch_rule_sets.get(switch_name)
            if rule_set is not None:
                rule_set.apply(sw)
            else:
                sw.table.clear()
                sw.install_pass_by()

        if obs.REGISTRY.enabled:
            obs.metric("controller_installs_total").labels(mode="full").inc()
            obs.metric("controller_rule_installs_total").labels(kind="tcam").inc(
                sum(sw.table.logical_entries for sw in network.switches.values())
            )
            obs.metric("controller_rule_installs_total").labels(
                kind="vswitch"
            ).inc(sum(len(v) for v in rules.vswitch_rules.values()))
            obs.metric("controller_rule_installs_total").labels(
                kind="origin"
            ).inc(sum(len(v) for v in rules.origin_rules.values()))

        return inst_map

    # ------------------------------------------------------------------
    def install_delta(
        self,
        rules: GeneratedRules,
        network: DataPlaneNetwork,
        classes: Sequence[TrafficClass],
        previous: Optional[GeneratedRules],
        sim: Optional[Simulator] = None,
        instances: Optional[Dict[str, VNFInstance]] = None,
    ) -> Tuple[Dict[str, VNFInstance], RuleDelta]:
        """Apply only what changed since ``previous`` (TCAM/flow-mod deltas).

        The recovery path's installer: a re-placement after a localised
        fault usually leaves most switches' rule sets identical, and a
        full reinstall would clear every TCAM table — invalidating every
        flow cache and walk plan network-wide for no reason.  This applies
        per-switch rule sets, per-vSwitch rule tables, class-path updates
        and instance (re-)registrations only where they differ from
        ``previous``, and reports the push volume in a :class:`RuleDelta`.

        With ``previous=None`` this degrades to a full :meth:`install`
        (every rule counts as pushed).

        Returns:
            ``(instance_map, delta)``.
        """
        delta = RuleDelta()
        if previous is None:
            inst_map = self.install(
                rules, network, classes, sim=sim, instances=instances
            )
            delta.switches_updated = len(network.switches)
            delta.flow_mods = sum(
                sw.table.logical_entries for sw in network.switches.values()
            )
            delta.vswitch_updates = len(rules.vswitch_rules)
            delta.instances_created = len(inst_map) - len(instances or {})
            delta.paths_updated = len(classes)
            return inst_map, delta

        inst_map: Dict[str, VNFInstance] = dict(instances or {})

        for cls in classes:
            if network.class_paths.get(cls.class_id) != tuple(cls.path):
                network.register_class_path(cls.class_id, cls.path)
                delta.paths_updated += 1

        # Instance materialisation + (re-)registration where bindings moved.
        inst_map = self.materialize_instances(
            rules, network, sim=sim, instances=inst_map, delta=delta
        )

        # vSwitch rule tables, only where the rule list changed.
        touched = set(rules.vswitch_rules) | set(previous.vswitch_rules)
        for switch in sorted(touched):
            new_list = rules.vswitch_rules.get(switch, [])
            if new_list == previous.vswitch_rules.get(switch, []):
                continue
            vsw = network.vswitch_at(switch)
            vsw.clear_rules()
            for class_id, sub_id, rule in new_list:
                vsw.install_rule(class_id, sub_id, rule)
            delta.vswitch_updates += 1

        # Origin classifications (host-originated classes) are rare; any
        # change rewrites the affected vSwitch's origin table wholesale.
        origin_touched = set(rules.origin_rules) | set(previous.origin_rules)
        for switch in sorted(origin_touched):
            new_list = rules.origin_rules.get(switch, [])
            if new_list == previous.origin_rules.get(switch, []):
                continue
            vsw = network.vswitch_at(switch)
            vsw.clear_origin_rules()
            for class_id, hash_range, sub_id, first_host in new_list:
                vsw.install_origin_rule(class_id, hash_range, sub_id, first_host)
            delta.vswitch_updates += 1

        # Physical-switch TCAM layouts, only where the rule set changed.
        for switch_name, sw in network.switches.items():
            new_rs = rules.switch_rule_sets.get(switch_name)
            old_rs = previous.switch_rule_sets.get(switch_name)
            if new_rs == old_rs:
                continue
            if new_rs is not None:
                new_rs.apply(sw)
            else:
                sw.table.clear()
                sw.install_pass_by()
            delta.switches_updated += 1
            delta.flow_mods += sw.table.logical_entries

        if obs.REGISTRY.enabled:
            obs.metric("controller_installs_total").labels(mode="delta").inc()
            obs.metric("controller_rule_installs_total").labels(kind="tcam").inc(
                delta.flow_mods
            )
            obs.metric("controller_rule_installs_total").labels(
                kind="vswitch"
            ).inc(delta.vswitch_updates)

        return inst_map, delta


def _group_by_switch(
    seq: Tuple[InstanceRef, ...],
) -> List[Tuple[str, List[InstanceRef]]]:
    """Group consecutive chain steps handled at the same switch.

    The sequence's switches are non-decreasing along the path (guaranteed
    by the sub-class construction), so each switch appears in exactly one
    contiguous group.
    """
    groups: List[Tuple[str, List[InstanceRef]]] = []
    for ref in seq:
        if groups and groups[-1][0] == ref.switch:
            groups[-1][1].append(ref)
        else:
            groups.append((ref.switch, [ref]))
    return groups
