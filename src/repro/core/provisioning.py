"""Orchestrated deployment: realise a plan through the cloud substrate.

The controller's plain :meth:`~repro.core.controller.AppleController.deploy`
materialises instances synchronously, which is right for pure-algorithm
studies.  This module follows the paper's actual control flow (Fig. 1 +
Fig. 5) instead: the Optimization Engine's plan is handed to the Resource
Orchestrator, which boots each VM through the OpenStack/OpenDaylight
facades (4.2 s slow path, 30 ms reconfigure fast path); forwarding rules
are only installed once every instance of a class's sub-classes is running
— the "wait for the VM" lesson of Sec. VIII-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cloud.orchestrator import ResourceOrchestrator
from repro.core.placement import PlacementPlan
from repro.core.rulegen import GeneratedRules, RuleGenerator
from repro.core.subclasses import assign_subclasses, SubclassPlan
from repro.dataplane.network import DataPlaneNetwork
from repro.sim.kernel import Simulator
from repro.vnf.instance import VNFInstance


@dataclass
class ProvisioningResult:
    """Outcome of an orchestrated rollout."""

    network: DataPlaneNetwork
    subclass_plan: SubclassPlan
    rules: GeneratedRules
    instances: Dict[str, VNFInstance]
    started_at: float
    instances_ready_at: Optional[float] = None
    rules_installed_at: Optional[float] = None

    @property
    def rollout_seconds(self) -> Optional[float]:
        """Wall time from request to rules installed (None while pending)."""
        if self.rules_installed_at is None:
            return None
        return self.rules_installed_at - self.started_at

    @property
    def complete(self) -> bool:
        return self.rules_installed_at is not None


class OrchestatedProvisioner:
    """Rolls a placement plan out through the Resource Orchestrator.

    Args:
        sim: shared simulator (clouds and rollouts share the clock).
        orchestrator: the cloud substrate managing APPLE hosts.
        rule_generator: compiles the plan's rules.
        use_fast_path: launch ClickOS-capable NFs by reconfiguring spare
            VMs when available (the Sec. VIII-D optimisation).
    """

    def __init__(
        self,
        sim: Simulator,
        orchestrator: ResourceOrchestrator,
        rule_generator: RuleGenerator,
        use_fast_path: bool = True,
    ) -> None:
        self.sim = sim
        self.orchestrator = orchestrator
        self.rule_generator = rule_generator
        self.use_fast_path = use_fast_path

    # ------------------------------------------------------------------
    def provision(
        self,
        plan: PlacementPlan,
        on_complete: Optional[Callable[[ProvisioningResult], None]] = None,
    ) -> ProvisioningResult:
        """Start the rollout; returns immediately with a pending result.

        Sequence per Fig. 5: launch every instance through the cloud
        substrate; when the last one reports running, generate rules, push
        them via OpenDaylight (70 ms), and wire the data plane.  Packets
        sent before :attr:`ProvisioningResult.complete` would blackhole —
        exactly the Fig. 7 failure mode the sequencing avoids.
        """
        subclass_plan = assign_subclasses(plan)
        rules = self.rule_generator.generate(plan.classes, subclass_plan)
        network = DataPlaneNetwork(self.orchestrator.topo)
        result = ProvisioningResult(
            network=network,
            subclass_plan=subclass_plan,
            rules=rules,
            instances={},
            started_at=self.sim.now,
        )

        refs = plan.instance_refs()
        pending = {"count": len(refs)}
        catalog = self.rule_generator.catalog

        def one_ready(ref_key: str, instance: VNFInstance) -> None:
            result.instances[ref_key] = instance
            pending["count"] -= 1
            if pending["count"] == 0:
                result.instances_ready_at = self.sim.now
                install_rules()

        def install_rules() -> None:
            def installed() -> None:
                # Wire the data plane only now: rules follow running VMs.
                self.rule_generator.install(
                    rules,
                    network,
                    plan.classes,
                    sim=self.sim,
                    instances=result.instances,
                )
                result.rules_installed_at = self.sim.now
                if on_complete is not None:
                    on_complete(result)

            # Push the concrete flow-mods through the ODL REST facade,
            # exactly what Steps 10-11 of Fig. 5 would send.
            from repro.dataplane.flowmod import (
                compile_switch_rules,
                compile_vswitch_rules,
            )

            flow_mods = [
                fm
                for mods in compile_switch_rules(rules).values()
                for fm in mods
            ] + [
                fm
                for mods in compile_vswitch_rules(rules).values()
                for fm in mods
            ]
            self.orchestrator.odl.install_rules(flow_mods, on_installed=installed)

        if not refs:
            result.instances_ready_at = self.sim.now
            install_rules()
            return result

        for ref in refs:
            nf_type = catalog.get(ref.nf)
            self.orchestrator.launch_instance(
                nf_type,
                ref.switch,
                on_ready=(
                    lambda inst, key=ref.key: one_ready(key, inst)
                ),
                fast=self.use_fast_path,
            )
        return result
