"""Deployment verification: prove the three properties by systematic probing.

Table I's properties are behavioural claims; this module checks them on a
live deployment the way an operator (or the AP Verifier the paper builds
on) would — by exhaustively probing the data plane:

* for every class and every sub-class, inject probes at the sub-class's
  hash midpoint and at both interval boundaries;
* verify each delivered probe traversed its chain in order
  (**policy enforcement**), on the class's exact routing path
  (**interference freedom**);
* audit instance-to-host core accounting (**isolation**).

The result is a structured report rather than a pass/fail, so partial
deployments and injected faults show up with precise locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.controller import Deployment
from repro.dataplane.packet import Packet
from repro.topology.graph import Topology


@dataclass
class Violation:
    """One observed property violation."""

    kind: str  # "policy", "interference", "isolation", "delivery"
    class_id: str
    detail: str


@dataclass
class VerificationReport:
    """Outcome of a deployment audit."""

    probes_sent: int = 0
    probes_delivered: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS"
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.by_kind().items()))
        return (
            f"{status}: {self.probes_delivered}/{self.probes_sent} probes "
            f"delivered{'; ' + kinds if kinds else ''}"
        )


def _probe_hashes(lo: float, hi: float) -> List[float]:
    """Midpoint plus near-boundary points of a hash interval."""
    eps = min(1e-6, (hi - lo) / 4) or 1e-9
    points = [(lo + hi) / 2, lo, max(lo, hi - eps)]
    return sorted({min(max(p, 0.0), 1.0 - 1e-12) for p in points})


def verify_deployment(
    deployment: Deployment,
    topo: Topology,
    expect_no_loss: bool = True,
) -> VerificationReport:
    """Audit a deployment; returns the structured report.

    Args:
        expect_no_loss: count dropped probes as delivery violations (set
            False when probing a deliberately overloaded deployment).
    """
    report = VerificationReport()
    plan = deployment.plan

    for cls in plan.classes:
        for sub in deployment.subclass_plan.subclasses(cls.class_id):
            lo, hi = sub.hash_range
            if hi <= lo:
                continue
            for h in _probe_hashes(lo, hi):
                report.probes_sent += 1
                packet = Packet(
                    class_id=cls.class_id, flow_hash=h, src=cls.src, dst=cls.dst
                )
                record = deployment.network.inject(packet)
                if not record.delivered:
                    if expect_no_loss:
                        report.violations.append(
                            Violation(
                                "delivery",
                                cls.class_id,
                                f"probe at hash {h:.6f} dropped at "
                                f"{record.dropped_at}",
                            )
                        )
                    continue
                report.probes_delivered += 1
                visited = [v.split("[")[0] for v in packet.vnfs_visited()]
                if visited != list(cls.chain.names):
                    report.violations.append(
                        Violation(
                            "policy",
                            cls.class_id,
                            f"hash {h:.6f}: traversed {visited}, policy "
                            f"requires {list(cls.chain.names)}",
                        )
                    )
                if tuple(packet.switches_visited()) != cls.path:
                    report.violations.append(
                        Violation(
                            "interference",
                            cls.class_id,
                            f"hash {h:.6f}: path {packet.switches_visited()} "
                            f"differs from routing path {list(cls.path)}",
                        )
                    )

    # Isolation: distinct instance objects, host budgets respected.
    cores_used: Dict[str, int] = {}
    seen_ids = set()
    for key, inst in deployment.instances.items():
        if id(inst) in seen_ids:
            report.violations.append(
                Violation("isolation", "-", f"instance object shared for {key}")
            )
        seen_ids.add(id(inst))
        cores_used[inst.switch] = (
            cores_used.get(inst.switch, 0) + inst.nf_type.cores
        )
    for switch, used in cores_used.items():
        budget = topo.host_cores(switch)
        if used > budget:
            report.violations.append(
                Violation(
                    "isolation",
                    "-",
                    f"switch {switch}: {used} cores allocated, budget {budget}",
                )
            )

    if obs.REGISTRY.enabled:
        result = "ok" if report.ok else "violations"
        obs.metric("controller_verify_calls_total").labels(result=result).inc()
        obs.metric("controller_verify_probes_total").inc(report.probes_sent)
    return report
