"""Placement-plan result types produced by the Optimization Engine.

A plan answers two questions (Sec. IV): how many instances of each VNF sit
at each switch (the integer variables q_n^v), and what portion of each
class is processed at each (path position, chain position) pair (the
continuous variables d_{h,j}^i).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.traffic.classes import TrafficClass
from repro.vnf.types import NFTypeCatalog


@dataclass(frozen=True)
class InstanceRef:
    """A logical instance slot: the k-th instance of NF ``nf`` at ``switch``."""

    switch: str
    nf: str
    index: int

    @property
    def key(self) -> str:
        return f"{self.nf}[{self.index}]@{self.switch}"

    def __repr__(self) -> str:
        return f"InstanceRef({self.key})"


@dataclass
class PlacementPlan:
    """The Optimization Engine's output.

    Attributes:
        quantities: q_n^v — instance count per (switch, nf name).
        distribution: d_{h,j}^i — keyed by (class_id, path index i, chain
            index j); omitted keys mean 0.  Path/chain indices are 0-based.
        classes: the classes the plan was computed for.
        catalog: NF datasheets (for core accounting).
        objective: total instance count (Eq. 1's value).
        lp_bound: LP-relaxation objective (optimality gap reporting).
        solve_seconds: wall time of model build + solve.
        warm_start: True when the engine re-solved a cached
            :class:`~repro.core.engine.PlacementTemplate` instead of
            rebuilding and recompiling the model.
    """

    quantities: Dict[Tuple[str, str], int]
    distribution: Dict[Tuple[str, int, int], float]
    classes: List[TrafficClass]
    catalog: NFTypeCatalog
    objective: float
    lp_bound: float = 0.0
    solve_seconds: float = 0.0
    warm_start: bool = False

    # ------------------------------------------------------------------
    def quantity(self, switch: str, nf: str) -> int:
        """q_n^v for one (switch, NF) pair."""
        return self.quantities.get((switch, nf), 0)

    def portion(self, class_id: str, path_idx: int, chain_idx: int) -> float:
        """d_{h,j}^i for one (class, path position, chain position)."""
        return self.distribution.get((class_id, path_idx, chain_idx), 0.0)

    def total_instances(self) -> int:
        """The objective: total VNF instances placed."""
        return sum(self.quantities.values())

    def total_cores(self) -> int:
        """CPU cores consumed by all placed instances (Fig. 11 metric)."""
        return sum(
            self.catalog.get(nf).cores * count
            for (_, nf), count in self.quantities.items()
        )

    def cores_by_switch(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for (switch, nf), count in self.quantities.items():
            out[switch] = out.get(switch, 0) + self.catalog.get(nf).cores * count
        return out

    def instance_refs(self) -> List[InstanceRef]:
        """All logical instance slots, deterministically ordered."""
        refs = []
        for (switch, nf), count in sorted(self.quantities.items()):
            refs.extend(InstanceRef(switch, nf, k) for k in range(count))
        return refs

    # ------------------------------------------------------------------
    def load_by_slot(self) -> Dict[Tuple[str, str], float]:
        """Offered load (Mbps) per (switch, nf) under the plan's classes."""
        load: Dict[Tuple[str, str], float] = {}
        class_by_id = {c.class_id: c for c in self.classes}
        for (cid, i, j), frac in self.distribution.items():
            if frac <= 0:
                continue
            cls = class_by_id[cid]
            key = (cls.path[i], cls.chain[j])
            load[key] = load.get(key, 0.0) + cls.rate_mbps * frac
        return load

    def memory_by_switch(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for (switch, nf), count in self.quantities.items():
            out[switch] = out.get(switch, 0.0) + self.catalog.get(nf).memory_gb * count
        return out

    def validate(
        self,
        available_cores: Mapping[str, int],
        tol: float = 1e-6,
        available_memory_gb: Optional[Mapping[str, float]] = None,
    ) -> List[str]:
        """Check the paper's constraints hold; returns violation messages.

        Verifies Eq. 2–8: completion, ordering, capacity, resources,
        non-negativity, and integrality of quantities.
        """
        problems: List[str] = []
        class_by_id = {c.class_id: c for c in self.classes}

        # Eq. 8 + domain checks.
        for (cid, i, j), frac in self.distribution.items():
            if frac < -tol or frac > 1 + tol:
                problems.append(f"d[{cid},{i},{j}]={frac} outside [0,1]")
            cls = class_by_id.get(cid)
            if cls is None:
                problems.append(f"distribution references unknown class {cid}")
            elif i >= cls.path_length or j >= cls.chain_length:
                problems.append(f"d[{cid},{i},{j}] indexes beyond path/chain")

        # Eq. 4 (completion) and Eq. 3 (ordering via cumulative portions).
        for cls in self.classes:
            for j in range(cls.chain_length):
                total = sum(
                    self.portion(cls.class_id, i, j) for i in range(cls.path_length)
                )
                if abs(total - 1.0) > 1e-4:
                    problems.append(
                        f"class {cls.class_id}: chain step {j} processes "
                        f"{total:.6f} of traffic, not 1"
                    )
            for j in range(1, cls.chain_length):
                cum_prev = cum_cur = 0.0
                for i in range(cls.path_length):
                    cum_prev += self.portion(cls.class_id, i, j - 1)
                    cum_cur += self.portion(cls.class_id, i, j)
                    if cum_cur > cum_prev + 1e-4:
                        problems.append(
                            f"class {cls.class_id}: order violated at switch "
                            f"{i} between chain steps {j-1}->{j}"
                        )
                        break

        # Eq. 5 (capacity).
        for (switch, nf), rate in self.load_by_slot().items():
            cap = self.catalog.get(nf).capacity_mbps * self.quantity(switch, nf)
            if rate > cap + 1e-3:
                problems.append(
                    f"capacity exceeded at ({switch}, {nf}): {rate:.3f} > {cap:.3f}"
                )

        # Eq. 6 (resources) and Eq. 7 (integrality/non-negativity).
        for (switch, nf), count in self.quantities.items():
            if count < 0 or int(count) != count:
                problems.append(f"q[{switch},{nf}]={count} not a natural number")
        for switch, cores in self.cores_by_switch().items():
            avail = available_cores.get(switch, 0)
            if cores > avail + tol:
                problems.append(
                    f"switch {switch}: {cores} cores placed, only {avail} available"
                )
        if available_memory_gb is not None:
            for switch, mem in self.memory_by_switch().items():
                avail_mem = available_memory_gb.get(switch, 0.0)
                if mem > avail_mem + tol:
                    problems.append(
                        f"switch {switch}: {mem} GB placed, only "
                        f"{avail_mem} GB available"
                    )
        return problems


@dataclass(frozen=True)
class PlanDelta:
    """The instance-slot difference between two placement plans.

    The elastic loop uses this to report what a scale action actually
    changed: ``added`` slots are materialized by the fabric's next push,
    ``retired`` slots are drained at that push's convergence.
    """

    added: Tuple[str, ...]
    retired: Tuple[str, ...]
    core_delta: int

    @property
    def is_noop(self) -> bool:
        return not self.added and not self.retired


def diff_plans(old: PlacementPlan, new: PlacementPlan) -> PlanDelta:
    """Slot-level diff ``old -> new``, keyed by :attr:`InstanceRef.key`.

    Slot keys are deterministic (sorted (switch, nf), index-packed), so
    shrinking a quantity retires the highest indices first — exactly the
    keys the southbound drain will stop referencing.
    """
    old_keys = {ref.key for ref in old.instance_refs()}
    new_keys = {ref.key for ref in new.instance_refs()}
    return PlanDelta(
        added=tuple(sorted(new_keys - old_keys)),
        retired=tuple(sorted(old_keys - new_keys)),
        core_delta=new.total_cores() - old.total_cores(),
    )
