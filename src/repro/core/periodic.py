"""Periodic re-optimization: the large time-scale loop of Sec. VI.

"The large time-scale traffic dynamic shows clear daily or weekly patterns
... it can be easily handled by periodically running the Optimization
Engine and placing VNF instances accordingly."  This module runs that loop
on the simulator clock: each period it pulls the current traffic matrix,
re-runs the engine, and diffs the new plan against the deployed one so the
Resource Orchestrator knows which instances to launch and retire.

Churn is the metric that matters here (how much the deployment thrashes);
the diff is reported per run and accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.controller import AppleController
from repro.core.engine import PlacementError
from repro.core.placement import PlacementPlan
from repro.sim.kernel import Simulator, Timer
from repro.traffic.matrix import TrafficMatrix

MatrixProvider = Callable[[float], TrafficMatrix]


@dataclass
class ReoptimizationReport:
    """Outcome of one periodic engine run."""

    time: float
    instances_before: int
    instances_after: int
    launched: Dict[Tuple[str, str], int]
    retired: Dict[Tuple[str, str], int]
    solve_seconds: float
    failed: bool = False
    #: True when the engine re-solved a cached placement template rather
    #: than rebuilding the model (the expected steady state of this loop:
    #: the class structure is stable across snapshots, only rates move).
    warm_start: bool = False

    @property
    def churn(self) -> int:
        """Instances launched + retired by this run."""
        return sum(self.launched.values()) + sum(self.retired.values())


def diff_plans(
    old: Optional[PlacementPlan], new: PlacementPlan
) -> Tuple[Dict[Tuple[str, str], int], Dict[Tuple[str, str], int]]:
    """(launched, retired) instance counts per slot between two plans."""
    old_q = old.quantities if old is not None else {}
    launched: Dict[Tuple[str, str], int] = {}
    retired: Dict[Tuple[str, str], int] = {}
    for slot in set(old_q) | set(new.quantities):
        delta = new.quantities.get(slot, 0) - old_q.get(slot, 0)
        if delta > 0:
            launched[slot] = delta
        elif delta < 0:
            retired[slot] = -delta
    return launched, retired


class PeriodicReoptimizer:
    """Re-runs the Optimization Engine every period on the sim clock.

    Args:
        sim: shared simulator.
        controller: the APPLE controller whose engine/classes to drive.
        matrix_provider: maps the current sim time to the traffic matrix
            the engine should plan for (e.g. a forecast, or the measured
            matrix of the last period).
        period: seconds between engine runs (large time-scale: the paper's
            snapshots are 15 minutes).
        redeploy: when True, each successful run also redeploys rules into
            a fresh data plane via the controller.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: AppleController,
        matrix_provider: MatrixProvider,
        period: float = 900.0,
        redeploy: bool = True,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.controller = controller
        self.matrix_provider = matrix_provider
        self.period = period
        self.redeploy = redeploy
        self.reports: List[ReoptimizationReport] = []
        self.current_plan: Optional[PlacementPlan] = None
        self._timer: Optional[Timer] = None

    # ------------------------------------------------------------------
    def start(self, immediately: bool = True) -> None:
        """Arm the periodic loop (first run now or after one period)."""
        self._timer = self.sim.every(
            self.period, self._run_once, start_delay=0.0 if immediately else None
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    def _run_once(self) -> None:
        matrix = self.matrix_provider(self.sim.now)
        before = (
            self.current_plan.total_instances() if self.current_plan else 0
        )
        try:
            plan = self.controller.compute_placement(matrix)
        except PlacementError:
            self.reports.append(
                ReoptimizationReport(
                    time=self.sim.now,
                    instances_before=before,
                    instances_after=before,
                    launched={},
                    retired={},
                    solve_seconds=0.0,
                    failed=True,
                )
            )
            return
        launched, retired = diff_plans(self.current_plan, plan)
        self.reports.append(
            ReoptimizationReport(
                time=self.sim.now,
                instances_before=before,
                instances_after=plan.total_instances(),
                launched=launched,
                retired=retired,
                solve_seconds=plan.solve_seconds,
                warm_start=plan.warm_start,
            )
        )
        self.current_plan = plan
        if self.redeploy:
            self.controller.deploy(plan, sim=self.sim)

    # ------------------------------------------------------------------
    @property
    def total_churn(self) -> int:
        return sum(r.churn for r in self.reports)

    @property
    def runs(self) -> int:
        return len(self.reports)
