"""Sharded, shared-nothing data plane: columnar walks over flow partitions.

The batched walker (:meth:`DataPlaneNetwork.inject_stream`) already
amortises rule lookups per hash bucket but still executes per packet.
This module adds the next structural step, in three layers:

**Partition** (:func:`build_partition`).  The unit of work is a
``(class, hash-interval)`` pair, where the intervals come from the union
of hash-range boundaries installed along the class's path
(:meth:`TcamTable.hash_boundaries`): within one interval every flow of
the class matches the same entry sequence at every hop, so probing the
interval midpoint with the planner yields the interval's exact VNF
instance set.  Units are then joined with a union-find whenever they
share an instance — an instance's sliding admission window is the one
piece of order-dependent mutable state in a walk, so two units touching
the same instance must never run on different shards.  The resulting
connected components are *shared-nothing*: components are distributed
across shards (largest weight first, least-loaded shard, deterministic
tie-breaks) and never split, which is what makes sharded execution
bit-identical to the global-order walk no matter how shards interleave.
The partition is keyed on the same generation snapshot as the walk-plan
cache, so every chaos invalidation (``invalidate_plans``, link failures,
rule mutations) retires it automatically.

**Columnar walk** (:class:`_ColumnWalker`).  Within a shard the column of
``(class_idx, hash, timestamp)`` arrays is grouped by ``(class, bucket)``
via one ``np.unique`` — the columnar TCAM walk: each distinct group
resolves its per-hop TCAM hits once through the plan cache.  The walker
then tries to apply whole time-slices in bulk: for every instance
appearing in the slice it evaluates a vectorised *no-drop* admission
check (exact sliding-window arithmetic over the instance's merged
arrival column), and if every instance admits everything, counters are
bulk-added and windows bulk-extended — numpy instead of the per-packet
loop.  If anything could drop, the slice is bisected; slices at or below
:data:`MIN_LEAF` run through the unmodified ``inject_stream``, which is
exact by definition (and also covers the scalar-fallback plans: boundary
buckets, header-modifying VNF hops, downstream hooks).  Instances that
fail a check are penalised so subsequent slices skip straight to the
sequential path instead of re-paying a doomed vector check.

**Process fan-out** (:class:`ShardedDataPlane`).  Shards can run in
worker processes: workers are forked once (inheriting the deployed
network as a copy-on-write replica), per-call timelines travel in a
:mod:`multiprocessing.shared_memory` block, and each worker returns its
outcomes plus a :class:`CounterDelta` — a commutative snapshot diff of
every ledger/switch/vSwitch/instance counter — which the parent merges
at flush time.  Order of merging is irrelevant because every counter
update in a walk is ``+=``.  On one core (or when forking is
unavailable, or inside another worker) execution stays in-process,
running the shard columns sequentially on the parent network — still
bit-identical, because shards share no instances.
"""

from __future__ import annotations

import pickle
from bisect import bisect_right
from dataclasses import dataclass, field
from heapq import heappop, heappush
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.network import DataPlaneNetwork, _WalkPlan
from repro.obs import state as _obs
from repro.parallel import (
    auto_shards,
    cpu_count,
    fork_available,
    in_worker,
    mp_context,
)
from repro.perf import REGISTRY

#: Bulk slices are bisected down to this size before giving up and
#: running the exact per-packet walker on the slice.
MIN_LEAF = 256

#: Slices at or below this size go straight to the sequential walker when
#: they contain a penalised instance or a scalar-fallback plan — skipping
#: vector checks that are known (or certain) to fail.
SEQ_BYPASS = 4 * MIN_LEAF

#: Vector-check failures put an instance "in penalty" for this many
#: sequential slices; while penalised, slices containing it skip the
#: vector check entirely.  Keeps a steadily-overloaded instance from
#: charging a failed check at every bisection level.
PENALTY = 8


# ----------------------------------------------------------------------
# Commutative counter deltas
# ----------------------------------------------------------------------
@dataclass
class CounterDelta:
    """Every mutable counter of a network, as a snapshot or a diff.

    All fields add elementwise, and every counter update a walk performs
    is ``+=`` — so deltas from different shards commute: merging them in
    any order yields the same totals as the global-order walk.
    ``ledger`` is ``(delivered, dropped, violations)``; ``switches`` maps
    name to ``(packets_seen, lookups, misses, cache_hits)``; ``vswitches``
    maps name to ``(packets_in, packets_dropped)``; ``instances`` maps
    ``(switch, alias)`` to ``(in, processed, dropped, bytes)``.
    """

    ledger: Tuple[int, int, int] = (0, 0, 0)
    switches: Dict[str, Tuple[int, int, int, int]] = field(default_factory=dict)
    vswitches: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    instances: Dict[Tuple[str, str], Tuple[int, int, int, int]] = field(
        default_factory=dict
    )

    @staticmethod
    def capture(network: DataPlaneNetwork) -> "CounterDelta":
        """Absolute counter snapshot (flushes deferred counts first)."""
        network.flush_counters()
        switches = {}
        for name, sw in network.switches.items():
            t = sw.table
            switches[name] = (
                sw.packets_seen, t.lookup_count, t.miss_count, t.cache_hits
            )
        vswitches = {}
        instances = {}
        for name, vsw in network.vswitches.items():
            vswitches[name] = (vsw.packets_in, vsw.packets_dropped)
            for alias, inst in vsw._instances.items():
                st = inst.stats
                instances[(name, alias)] = (
                    st.packets_in,
                    st.packets_processed,
                    st.packets_dropped,
                    st.bytes_processed,
                )
        return CounterDelta(
            ledger=(
                network.delivered_count,
                network.dropped_count,
                network.violation_count,
            ),
            switches=switches,
            vswitches=vswitches,
            instances=instances,
        )

    def subtract(self, base: "CounterDelta") -> "CounterDelta":
        """This snapshot minus ``base`` (what one shard's run added)."""

        def sub(a, b):
            return tuple(x - y for x, y in zip(a, b))

        return CounterDelta(
            ledger=sub(self.ledger, base.ledger),
            switches={
                k: sub(v, base.switches.get(k, (0,) * len(v)))
                for k, v in self.switches.items()
            },
            vswitches={
                k: sub(v, base.vswitches.get(k, (0,) * len(v)))
                for k, v in self.vswitches.items()
            },
            instances={
                k: sub(v, base.instances.get(k, (0,) * len(v)))
                for k, v in self.instances.items()
            },
        )

    def merge(self, other: "CounterDelta") -> "CounterDelta":
        """Elementwise sum — commutative and associative by construction."""

        def add_maps(a, b):
            out = dict(a)
            for k, v in b.items():
                prev = out.get(k)
                out[k] = v if prev is None else tuple(
                    x + y for x, y in zip(prev, v)
                )
            return out

        return CounterDelta(
            ledger=tuple(x + y for x, y in zip(self.ledger, other.ledger)),
            switches=add_maps(self.switches, other.switches),
            vswitches=add_maps(self.vswitches, other.vswitches),
            instances=add_maps(self.instances, other.instances),
        )

    def apply_to(self, network: DataPlaneNetwork) -> None:
        """Add this delta into a live network's counters."""
        d, dr, v = self.ledger
        network.delivered_count += d
        network.dropped_count += dr
        network.violation_count += v
        for name, (seen, lookups, misses, hits) in self.switches.items():
            sw = network.switches[name]
            sw.packets_seen += seen
            sw.table.lookup_count += lookups
            sw.table.miss_count += misses
            sw.table.cache_hits += hits
        for name, (pin, pdrop) in self.vswitches.items():
            vsw = network.vswitches[name]
            vsw.packets_in += pin
            vsw.packets_dropped += pdrop
        for (sw_name, alias), (pin, proc, drop, nbytes) in self.instances.items():
            inst = network.vswitches[sw_name]._instances.get(alias)
            if inst is None:
                continue  # instance torn down since the worker forked
            st = inst.stats
            st.packets_in += pin
            st.packets_processed += proc
            st.packets_dropped += drop
            st.bytes_processed += nbytes


# ----------------------------------------------------------------------
# Shared-nothing flow partition
# ----------------------------------------------------------------------
class FlowPartition:
    """An immutable class → hash-interval → shard map.

    Built by :func:`build_partition`; valid for exactly one generation
    snapshot of the network (rule tables + vSwitches + failure overlay).
    """

    def __init__(
        self,
        snapshot: tuple,
        nshards: int,
        n_components: int,
        class_bounds: Dict[str, np.ndarray],
        class_shards: Dict[str, np.ndarray],
        instance_shards: Dict[str, int],
        has_hooks: bool,
    ) -> None:
        self.snapshot = snapshot
        self.nshards = nshards
        self.n_components = n_components
        self._class_bounds = class_bounds
        self._class_shards = class_shards
        #: instance_id → shard, used to keep assignments sticky across
        #: rebuilds (a fault must not migrate an instance's window state
        #: to a different worker replica mid-run).
        self.instance_shards = instance_shards
        self.has_hooks = has_hooks

    def shard_ids_for(self, class_id: str, hashes: np.ndarray) -> np.ndarray:
        """Shard of every hash in ``hashes`` for one class (vectorised)."""
        bounds = self._class_bounds[class_id]
        shards = self._class_shards[class_id]
        if len(bounds) == 0:
            return np.full(len(hashes), shards[0], dtype=np.int64)
        return shards[np.searchsorted(bounds, hashes, side="right")]


def _uf_find(parent: dict, x):
    root = x
    while parent[root] != root:
        root = parent[root]
    while parent[x] != root:  # path compression
        parent[x], x = root, parent[x]
    return root


def _uf_union(parent: dict, a, b) -> None:
    ra, rb = _uf_find(parent, a), _uf_find(parent, b)
    if ra != rb:
        parent[rb] = ra


def build_partition(
    network: DataPlaneNetwork,
    shards: int = 0,
    class_weights: Optional[Dict[str, float]] = None,
    sticky: Optional[Dict[str, int]] = None,
) -> FlowPartition:
    """Partition every registered class's hash domain into shards.

    The partitioning rule, in order:

    1. cut each class's [0, 1) hash domain at the union of hash-range
       boundaries installed along its path — within one interval all
       flows take the same walk;
    2. probe each interval's midpoint through the planner to learn the
       interval's VNF instance set (for scalar-fallback probes the set is
       over-approximated to every instance hosted along the path, which
       costs parallelism but never correctness);
    3. union-find intervals sharing any instance into connected
       components — the shared-nothing units;
    4. deal components onto ``shards`` shards, heaviest first (weight =
       interval width × class rate), least-loaded shard wins, with
       deterministic tie-breaks; ``sticky`` assignments (from a previous
       partition of the same network) pin a component to the shard that
       already holds its instances' window state.

    ``shards == 0`` (or fewer components than shards) clamps to the
    component count, so requesting more shards than the traffic supports
    degrades gracefully instead of creating idle workers.
    """
    started = perf_counter()
    network._ensure_current_plans()
    class_ids = list(network.class_paths)
    weights = class_weights or {}
    sticky = sticky or {}

    parent: dict = {}  # union-find over ("u", unit_idx) and ("i", instance_id)
    units: List[tuple] = []  # (class_id, lo, hi, weight, frozenset(instance_ids))
    has_hooks = False
    for class_id in class_ids:
        path = network.class_paths[class_id]
        bounds: set = set()
        for sw_name in path:
            bounds.update(network.switches[sw_name].table.hash_boundaries(class_id))
        cuts = sorted(bounds)
        edges = [0.0] + cuts + [1.0]
        rate = float(weights.get(class_id, 1.0))
        for lo, hi in zip(edges[:-1], edges[1:]):
            if hi <= lo:
                continue
            mid = lo + (hi - lo) / 2
            if not (lo <= mid < hi):
                mid = lo  # degenerate float interval: probe its left edge
            plan = network._resolve_plan(class_id, mid)
            if plan.fallback:
                # The probe cannot vouch for the interval (header-modifying
                # VNF upstream, boundary bucket, downstream hook): assume
                # it may touch any instance hosted along the path.
                inst_ids = set()
                for sw_name in path:
                    vsw = network.vswitches.get(sw_name)
                    if vsw is not None:
                        for inst in vsw.instances():
                            inst_ids.add(inst.instance_id)
                            if inst.downstream is not None:
                                has_hooks = True
            else:
                inst_ids = set()
                for _hi, _sw, _vsw, slots in plan.vsteps:
                    for slot in slots:
                        inst = slot[0]
                        inst_ids.add(inst.instance_id)
                        if inst.downstream is not None:
                            has_hooks = True
            ui = ("u", len(units))
            units.append((class_id, lo, hi, rate * (hi - lo), inst_ids))
            parent[ui] = ui
            for iid in inst_ids:
                ik = ("i", iid)
                if ik not in parent:
                    parent[ik] = ik
                _uf_union(parent, ui, ik)

    # Connected components, in first-unit order (deterministic).
    comp_of_unit: List[int] = []
    comp_index: Dict[tuple, int] = {}
    comp_weight: List[float] = []
    comp_instances: List[set] = []
    for ui in range(len(units)):
        root = _uf_find(parent, ("u", ui))
        ci = comp_index.get(root)
        if ci is None:
            ci = comp_index[root] = len(comp_weight)
            comp_weight.append(0.0)
            comp_instances.append(set())
        comp_of_unit.append(ci)
        comp_weight[ci] += units[ui][3]
        comp_instances[ci] |= units[ui][4]

    n_components = max(1, len(comp_weight))
    nshards = auto_shards(n_components, shards if shards else "auto")
    if has_hooks:
        # Downstream hooks observe per-packet order across the whole
        # network; only a single shard preserves it.
        nshards = 1

    # Heaviest component first; least-loaded shard wins; ties go to the
    # lowest shard index (fully deterministic).
    comp_shard = [0] * len(comp_weight)
    order = sorted(
        range(len(comp_weight)), key=lambda c: (-comp_weight[c], c)
    )
    loads = [0.0] * nshards
    deferred: List[int] = []
    for ci in order:
        pinned = {
            sticky[iid]
            for iid in comp_instances[ci]
            if iid in sticky and sticky[iid] < nshards
        }
        if pinned:
            # Components only ever split under faults, so members almost
            # always agree; a merge conflict picks the lowest shard.
            s = min(pinned)
            comp_shard[ci] = s
            loads[s] += comp_weight[ci]
        else:
            deferred.append(ci)
    heap = [(loads[s], s) for s in range(nshards)]
    heap.sort()
    for ci in deferred:
        load, s = heappop(heap)
        comp_shard[ci] = s
        heappush(heap, (load + comp_weight[ci], s))

    instance_shards: Dict[str, int] = {}
    for ci, insts in enumerate(comp_instances):
        for iid in insts:
            instance_shards[iid] = comp_shard[ci]

    class_bounds: Dict[str, np.ndarray] = {}
    class_shards: Dict[str, np.ndarray] = {}
    ui = 0
    for class_id in class_ids:
        cuts: List[float] = []
        shard_list: List[int] = []
        while ui < len(units) and units[ui][0] == class_id:
            _cid, lo, hi, _w, _insts = units[ui]
            if shard_list:
                cuts.append(lo)
            shard_list.append(comp_shard[comp_of_unit[ui]])
            ui += 1
        if not shard_list:
            shard_list = [0]
        class_bounds[class_id] = np.asarray(cuts, dtype=np.float64)
        class_shards[class_id] = np.asarray(shard_list, dtype=np.int64)

    part = FlowPartition(
        snapshot=network._plans_snapshot,
        nshards=nshards,
        n_components=n_components,
        class_bounds=class_bounds,
        class_shards=class_shards,
        instance_shards=instance_shards,
        has_hooks=has_hooks,
    )
    REGISTRY.record("dataplane.shard.partition", perf_counter() - started)
    return part


# ----------------------------------------------------------------------
# Columnar walker
# ----------------------------------------------------------------------
class _ColumnWalker:
    """Columnar execution of one shard's packet column on one network.

    Stateless apart from the per-instance penalty box (which only affects
    *how* a slice is processed, never its outcome).
    """

    def __init__(self, network: DataPlaneNetwork) -> None:
        self.net = network
        self._penalty: Dict[int, int] = {}  # id(instance) → remaining leaves
        self._edges: Dict[str, tuple] = {}  # class → (edge list, cuts array)
        self._edges_snapshot: Optional[tuple] = None
        self.bulk_packets = 0
        self.seq_packets = 0

    def _class_edges(self, class_id: str) -> tuple:
        """Interval edges of one class's hash domain: ``[0, cuts…, 1]``.

        Cut points are the union of TCAM hash-range boundaries installed
        along the class path — the same rule :func:`build_partition` uses,
        so within one interval every flow matches the same entry sequence
        at every hop.
        """
        cached = self._edges.get(class_id)
        if cached is None:
            net = self.net
            bounds: set = set()
            for sw_name in net.class_paths[class_id]:
                bounds.update(
                    net.switches[sw_name].table.hash_boundaries(class_id)
                )
            cuts = sorted(bounds)
            cached = self._edges[class_id] = (
                [0.0] + cuts + [1.0],
                np.asarray(cuts, dtype=np.float64),
            )
        return cached

    def run(
        self,
        classes: Sequence[str],
        cls_idx: np.ndarray,
        hashes: np.ndarray,
        ts: np.ndarray,
        size_bytes: int,
        collect: bool,
    ) -> Optional[list]:
        """Walk one time-ordered column; exact ``inject_stream`` semantics."""
        net = self.net
        n = len(ts)
        if n == 0:
            return [] if collect else None
        net._ensure_current_plans()

        # Columnar TCAM walk: one plan resolution per (class, hash
        # interval) group.  Between adjacent TCAM hash-range boundaries
        # every flow matches the same entry sequence, so a whole interval
        # shares the plan resolved at its midpoint — grouping by exact
        # hash position, not bucket, keeps the group count at classes ×
        # intervals instead of one group per distinct flow hash.
        if self._edges_snapshot != net._plans_snapshot:
            self._edges.clear()
            self._edges_snapshot = net._plans_snapshot
        group_pos: List[np.ndarray] = []
        plans: List[_WalkPlan] = []
        fallback_parts = []
        order = np.argsort(cls_idx, kind="stable")
        sorted_cls = cls_idx[order]
        present = np.unique(sorted_cls)
        cstarts = np.searchsorted(sorted_cls, present)
        cends = np.searchsorted(sorted_cls, present, side="right")
        for ci, cs, ce in zip(present.tolist(), cstarts.tolist(),
                              cends.tolist()):
            class_id = classes[int(ci)]
            cpos = order[cs:ce]  # ascending: stable sort keeps time order
            edges, cuts = self._class_edges(class_id)
            if len(cuts):
                ivals = np.searchsorted(cuts, hashes[cpos], side="right")
            else:
                ivals = np.zeros(len(cpos), dtype=np.int64)
            for g in np.unique(ivals):
                pos = cpos[ivals == g]
                lo, hi = edges[g], edges[g + 1]
                mid = lo + (hi - lo) / 2
                if not (lo <= mid < hi):
                    mid = lo  # degenerate float interval: probe its edge
                plan = net.walk_plan(class_id, mid)
                plans.append(plan)
                group_pos.append(pos)
                if plan.fallback:
                    fallback_parts.append(pos)

        # Per-instance merged arrival columns (positions repeated per
        # occurrence in a plan, kept in global time order).
        inst_entries: Dict[int, list] = {}  # id → [slot, [(group, occ)...]]
        for g, plan in enumerate(plans):
            if plan.fallback:
                continue
            occ: Dict[int, list] = {}
            for step in plan.vsteps:
                for slot in step[3]:
                    rec = occ.setdefault(id(slot[0]), [slot, 0])
                    rec[1] += 1
            for iid, (slot, k) in occ.items():
                entry = inst_entries.setdefault(iid, [slot, []])
                entry[1].append((g, k))
        inst_cols: List[list] = []  # [slot, positions ndarray]
        for iid, (slot, parts) in inst_entries.items():
            pos_parts = [
                group_pos[g] if k == 1 else np.repeat(group_pos[g], k)
                for g, k in parts
            ]
            pos = (
                pos_parts[0]
                if len(pos_parts) == 1
                else np.sort(np.concatenate(pos_parts), kind="stable")
            )
            inst_cols.append([iid, slot, pos])

        outcomes: Optional[list] = [None] * n if collect else None

        # One full-column no-drop check.  The common case — nothing can
        # drop, no fallback groups — bulk-applies the whole column in one
        # pass with no recursion at all.
        culprits = self._check_bulk(0, n, ts, inst_cols)
        if not culprits and not fallback_parts:
            self._bulk_apply(
                0, n, ts, plans, group_pos, inst_cols, size_bytes, outcomes
            )
            return outcomes

        # A fallback plan's packets run through the exact scalar walker,
        # which may touch state (header-modified re-steers, downstream
        # hooks) that no static instance column names — so a clean/dirty
        # split cannot be proven safe.  Hand the whole column to the
        # slice recursion, which serialises around fallback positions.
        if fallback_parts:
            fallback_pos = np.sort(np.concatenate(fallback_parts))
            self._process(
                0, n, ts, hashes, cls_idx, classes, plans, group_pos,
                fallback_pos, inst_cols, size_bytes, outcomes,
            )
            return outcomes

        # Contamination is local, not transitive.  A culprit (check-
        # failing or stopped) instance invalidates exactly the groups
        # whose plans VISIT it: a drop there changes what reaches every
        # later hop of the same plan, so those packets must be walked by
        # the exact scalar path.  A clean group has no drop-capable hop
        # at all — every one of its packets survives end to end — so
        # bulk application stays exact for it, even when it shares a
        # pass-through instance with a dirty group: a pass-through
        # instance admits unconditionally (its check held for the full
        # arrival superset, and admission is monotone under removing
        # arrivals), so walk order cannot change any decision.  The one
        # piece of shared state that does see both sides is such an
        # instance's sliding window, rebuilt below by an explicit merge
        # of the sequential survivors and the clean-side arrivals.
        dirty_iids = set(culprits)
        dirty_groups: set = set()
        for g, plan in enumerate(plans):
            for step in plan.vsteps:
                if any(id(slot[0]) in dirty_iids for slot in step[3]):
                    dirty_groups.add(g)
                    break

        # Dirty side first: the scalar walk decides the survivors whose
        # timestamps the mixed-window merge below consumes.
        dlist = sorted(dirty_groups)
        dpos = np.sort(np.concatenate([group_pos[g] for g in dlist]))
        m = len(dpos)
        sub_out: Optional[list] = [None] * m if collect else None
        self._sequential(
            0, m, ts[dpos], hashes[dpos], cls_idx[dpos], classes,
            size_bytes, sub_out, (),
        )
        if collect:
            for i, p in enumerate(dpos.tolist()):
                outcomes[p] = sub_out[i]

        clean_plans = []
        clean_group_pos = []
        for g, plan in enumerate(plans):
            if g not in dirty_groups:
                clean_plans.append(plan)
                clean_group_pos.append(group_pos[g])
        if not clean_plans:
            return outcomes
        clean_cols: List[list] = []
        mixed: List[tuple] = []
        for iid, (slot, parts) in inst_entries.items():
            if iid in dirty_iids:
                continue
            cparts = [(g, k) for g, k in parts if g not in dirty_groups]
            if not cparts:
                continue
            pos_parts = [
                group_pos[g] if k == 1 else np.repeat(group_pos[g], k)
                for g, k in cparts
            ]
            pos = (
                pos_parts[0]
                if len(pos_parts) == 1
                else np.sort(np.concatenate(pos_parts), kind="stable")
            )
            if len(cparts) != len(parts):
                mixed.append((slot, pos))
            else:
                clean_cols.append([iid, slot, pos])
        self._bulk_apply(
            0, n, ts, clean_plans, clean_group_pos, clean_cols,
            size_bytes, outcomes,
        )
        for slot, pos in mixed:
            inst, recent, budget, window = slot
            st = inst.stats
            cnt = len(pos)
            st.packets_in += cnt
            st.packets_processed += cnt
            st.bytes_processed += size_bytes * cnt
            # ``recent`` now holds the dirty-side survivors (lazily
            # trimmed to the last dirty arrival's window, which the last
            # overall arrival's window can only shrink further), so the
            # exact final window is the merge of both sides cut at the
            # latest arrival.
            merged = np.sort(np.concatenate(
                [np.asarray(recent, dtype=np.float64), ts[pos]]
            ))
            cutoff = float(merged[-1]) - window
            keep = int(np.searchsorted(merged, cutoff, side="right"))
            recent[:] = merged[keep:].tolist()
        return outcomes

    # -- slice recursion ----------------------------------------------
    def _process(
        self, lo, hi, ts, hashes, cls_idx, classes, plans, group_pos,
        fallback_pos, inst_cols, size, outcomes,
    ) -> None:
        n = hi - lo
        if n <= 0:
            return
        penalty = self._penalty
        has_fallback = bool(len(fallback_pos)) and (
            np.searchsorted(fallback_pos, hi)
            > np.searchsorted(fallback_pos, lo)
        )
        penalised = []
        if penalty:
            for iid, slot, pos in inst_cols:
                if penalty.get(iid, 0) > 0:
                    a = np.searchsorted(pos, lo)
                    b = np.searchsorted(pos, hi)
                    if b > a:
                        penalised.append(iid)
        if has_fallback or penalised:
            # Bulk application is impossible (fallback) or very unlikely
            # (an instance recently failed its check): skip the vector
            # checks and either run the slice exactly or keep splitting
            # to salvage bulk work in the clean half.
            if n <= SEQ_BYPASS:
                self._sequential(
                    lo, hi, ts, hashes, cls_idx, classes, size, outcomes,
                    penalised,
                )
                return
            mid = lo + n // 2
            self._process(
                lo, mid, ts, hashes, cls_idx, classes, plans, group_pos,
                fallback_pos, inst_cols, size, outcomes,
            )
            self._process(
                mid, hi, ts, hashes, cls_idx, classes, plans, group_pos,
                fallback_pos, inst_cols, size, outcomes,
            )
            return
        culprits = self._check_bulk(lo, hi, ts, inst_cols)
        if not culprits:
            self._bulk_apply(
                lo, hi, ts, plans, group_pos, inst_cols, size, outcomes
            )
            return
        for iid in culprits:
            penalty[iid] = PENALTY
        if n <= MIN_LEAF:
            self._sequential(
                lo, hi, ts, hashes, cls_idx, classes, size, outcomes, culprits
            )
            return
        mid = lo + n // 2
        self._process(
            lo, mid, ts, hashes, cls_idx, classes, plans, group_pos,
            fallback_pos, inst_cols, size, outcomes,
        )
        self._process(
            mid, hi, ts, hashes, cls_idx, classes, plans, group_pos,
            fallback_pos, inst_cols, size, outcomes,
        )

    def _check_bulk(self, lo, hi, ts, inst_cols) -> List[int]:
        """Vectorised no-drop check; returns instances that could drop.

        For an instance with pre-slice window ``recent`` (sorted), budget
        ``B`` and window ``w``, a slice arrival at time ``t_j`` (j-th of
        the instance's in-slice arrivals) is admitted by the scalar
        walker iff, with every earlier slice arrival admitted,

            live_old(t_j) + j_within_window + 1 <= B

        where ``live_old`` counts surviving pre-slice entries
        (``> t_j - w``) and ``j_within_window`` counts in-slice arrivals
        in ``(t_j - w, t_j)`` before j.  If that holds for all j the
        whole slice admits (so bulk application is exact); any violation
        — or a stopped instance — marks the instance as a culprit.
        """
        culprits: List[int] = []
        for iid, slot, pos in inst_cols:
            a = np.searchsorted(pos, lo)
            b = np.searchsorted(pos, hi)
            if b <= a:
                continue
            inst, recent, budget, window = slot
            if not inst.running:
                culprits.append(iid)
                continue
            sub = ts[pos[a:b]]
            cut = sub - window
            old = np.asarray(recent, dtype=np.float64)
            old_live = len(old) - np.searchsorted(old, cut, side="right")
            within = np.arange(b - a) - np.searchsorted(sub, cut, side="right")
            if np.any(old_live + within + 1 > budget):
                culprits.append(iid)
        return culprits

    def _bulk_apply(
        self, lo, hi, ts, plans, group_pos, inst_cols, size, outcomes
    ) -> None:
        net = self.net
        dirty = net._dirty_plans
        applied = 0
        for g, pos in enumerate(group_pos):
            a = np.searchsorted(pos, lo)
            b = np.searchsorted(pos, hi)
            cnt = b - a
            if not cnt:
                continue
            plan = plans[g]
            if plan.n == 0:
                dirty.append(plan)
            plan.n += int(cnt)
            applied += int(cnt)
            if outcomes is not None:
                final = plan.final_outcome
                for p in pos[a:b].tolist():
                    outcomes[p] = final
        self.bulk_packets += applied
        for iid, slot, pos in inst_cols:
            a = np.searchsorted(pos, lo)
            b = np.searchsorted(pos, hi)
            m = b - a
            if not m:
                continue
            inst, recent, budget, window = slot
            sub = ts[pos[a:b]]
            st = inst.stats
            st.packets_in += int(m)
            st.packets_processed += int(m)
            st.bytes_processed += size * int(m)
            # The scalar walker trims lazily per packet; after the last
            # admission the window holds exactly the admitted timestamps
            # in (last_t - w, last_t], which is what we rebuild here.
            cutoff = float(sub[-1]) - window
            keep_from = bisect_right(recent, cutoff)
            fresh_from = int(np.searchsorted(sub, cutoff, side="right"))
            recent[:] = recent[keep_from:] + sub[fresh_from:].tolist()

    def _sequential(
        self, lo, hi, ts, hashes, cls_idx, classes, size, outcomes, involved
    ) -> None:
        """Run one slice through the exact per-packet walker."""
        items = [
            (
                classes[int(cls_idx[p])],
                float(hashes[p]),
                float(ts[p]),
            )
            for p in range(lo, hi)
        ]
        out = self.net.inject_stream(
            items, size_bytes=size, collect=outcomes is not None
        )
        self.seq_packets += len(items)
        if outcomes is not None:
            outcomes[lo:hi] = out
        penalty = self._penalty
        for iid in involved:
            left = penalty.get(iid, 0)
            if left > 1:
                penalty[iid] = left - 1
            else:
                penalty.pop(iid, None)


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------
def _reset_network(network: DataPlaneNetwork) -> None:
    """Broadcastable runtime reset (see ShardedDataPlane.apply)."""
    network.reset_runtime_state()


def _worker_main(network: DataPlaneNetwork, conn) -> None:
    """Shard worker loop: runs forked, owning a replica of ``network``."""
    from multiprocessing import shared_memory

    walker = _ColumnWalker(network)
    base = CounterDelta.capture(network)
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "column":
            _kind, shm_name, total, lo, hi, classes, size, collect = msg
            shm = shared_memory.SharedMemory(name=shm_name)
            try:
                ts_all = np.ndarray(total, dtype=np.float64, buffer=shm.buf)
                h_all = np.ndarray(
                    total, dtype=np.float64, buffer=shm.buf, offset=8 * total
                )
                c_all = np.ndarray(
                    total, dtype=np.int64, buffer=shm.buf, offset=16 * total
                )
                ts = np.array(ts_all[lo:hi])
                hashes = np.array(h_all[lo:hi])
                cls_idx = np.array(c_all[lo:hi])
            finally:
                shm.close()
                # Python 3.11 registers attached (not just created) segments
                # with the resource tracker; the parent owns the unlink, so
                # drop the worker-side registration to avoid bogus leak
                # warnings at worker exit.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
            out = walker.run(classes, cls_idx, hashes, ts, size, collect)
            network.flush_counters()
            cur = CounterDelta.capture(network)
            delta = cur.subtract(base)
            base = cur
            conn.send(
                (out, delta, walker.bulk_packets, walker.seq_packets)
            )
            walker.bulk_packets = walker.seq_packets = 0
        elif kind == "apply":
            fn, args, kwargs = msg[1], msg[2], msg[3]
            fn(network, *args, **kwargs)
            walker = _ColumnWalker(network)  # penalties may be stale
            base = CounterDelta.capture(network)
            conn.send("ok")
        elif kind == "stop":
            conn.send("bye")
            return


class ShardedDataPlane:
    """Shard-parallel façade over one deployed :class:`DataPlaneNetwork`.

    Args:
        network: the deployed network (rules installed, instances up).
        shards: requested shard count, or 0/"auto" to derive it from the
            core count and the partition's component count.
        processes: ``"auto"`` forks one worker per shard when the host
            has multiple cores (and forking is possible); ``True`` forces
            workers, ``False`` keeps everything in-process.  In-process
            execution runs the shard columns sequentially on the parent
            network — identical results, no parallel speedup.
        class_weights: optional class → rate map used to balance shard
            loads (defaults to uniform).

    The façade preserves the repo's bit-identity discipline: for the same
    item stream, outcomes and every counter equal the scalar and batched
    walkers', regardless of shard count or execution mode.  Faults follow
    the normal invalidation protocol — any rule/overlay mutation retires
    the partition on the next inject; with worker processes, mutations
    must go through :meth:`apply` so every replica sees them.
    """

    def __init__(
        self,
        network: DataPlaneNetwork,
        shards=0,
        processes="auto",
        class_weights: Optional[Dict[str, float]] = None,
    ) -> None:
        if isinstance(shards, str):
            shards = 0 if shards == "auto" else int(shards)
        if shards < 0:
            raise ValueError(f"shards must be >= 0, got {shards}")
        self.network = network
        self.requested_shards = int(shards)
        self.processes = processes
        self.class_weights = class_weights
        self._partition: Optional[FlowPartition] = None
        self._walker = _ColumnWalker(network)
        self._workers: List = []  # (process, parent_conn) pairs
        self._worker_shards = 0

    # -- partition lifecycle ------------------------------------------
    def _ensure_partition(
        self, classes: Optional[Sequence[str]] = None
    ) -> FlowPartition:
        self.network._ensure_current_plans()
        part = self._partition
        if part is not None and part.snapshot == self.network._plans_snapshot:
            # Registering a class does not bump the generation snapshot,
            # so a partition predating the class must be rebuilt by hand.
            if classes is None or all(
                c in part._class_shards for c in classes
            ):
                return part
        sticky = part.instance_shards if part is not None else None
        part = build_partition(
            self.network,
            shards=self.requested_shards,
            class_weights=self.class_weights,
            sticky=sticky,
        )
        self._partition = part
        self._walker = _ColumnWalker(self.network)  # plans were retired
        if _obs.REGISTRY.enabled:
            _obs.metric("dataplane_shard_components").set(part.n_components)
        return part

    @property
    def nshards(self) -> int:
        return self._ensure_partition().nshards

    def _use_processes(self, part: FlowPartition) -> bool:
        if part.nshards <= 1 or self.processes is False:
            return False
        if in_worker() or not fork_available():
            return False
        if self.processes == "auto" and cpu_count() < 2:
            return False
        return True

    # -- injection -----------------------------------------------------
    def inject_stream(
        self,
        items: Sequence[tuple],
        size_bytes: int = 1500,
        collect: bool = False,
    ) -> Optional[List[Tuple[bool, Optional[str]]]]:
        """Drop-in sharded counterpart of ``DataPlaneNetwork.inject_stream``."""
        classes: List[str] = []
        index: Dict[str, int] = {}
        n = len(items)
        cls_idx = np.empty(n, dtype=np.int64)
        hashes = np.empty(n, dtype=np.float64)
        ts = np.empty(n, dtype=np.float64)
        for i, (cid, h, t) in enumerate(items):
            ci = index.get(cid)
            if ci is None:
                ci = index[cid] = len(classes)
                classes.append(cid)
            cls_idx[i] = ci
            hashes[i] = h
            ts[i] = t
        return self.inject_columns(
            classes, cls_idx, hashes, ts, size_bytes=size_bytes, collect=collect
        )

    def inject_columns(
        self,
        classes: Sequence[str],
        cls_idx: np.ndarray,
        hashes: np.ndarray,
        ts: np.ndarray,
        size_bytes: int = 1500,
        collect: bool = False,
    ) -> Optional[List[Tuple[bool, Optional[str]]]]:
        """Walk a time-ordered column of packets, sharded.

        ``classes`` lists the distinct class ids; ``cls_idx`` indexes into
        it per packet; ``hashes``/``ts`` are float64 columns.  Timestamps
        must be non-decreasing (as in every walker).  Returns per-packet
        ``(delivered, dropped_at)`` outcomes when ``collect``.
        """
        started = perf_counter()
        classes = list(classes)
        part = self._ensure_partition(classes)
        n = len(ts)
        if n == 0:
            return [] if collect else None
        if part.nshards == 1:
            out = self._walker.run(
                classes, cls_idx, hashes, ts, size_bytes, collect
            )
            self._finish_span(started, part, n)
            return out
        shard_ids = np.empty(n, dtype=np.int64)
        for ci, cid in enumerate(classes):
            mask = cls_idx == ci
            if mask.any():
                shard_ids[mask] = part.shard_ids_for(cid, hashes[mask])
        if self._use_processes(part):
            out = self._run_processes(
                part, classes, cls_idx, hashes, ts, shard_ids,
                size_bytes, collect,
            )
        else:
            out = [None] * n if collect else None
            for s in range(part.nshards):
                sel = np.flatnonzero(shard_ids == s)
                if not len(sel):
                    continue
                res = self._walker.run(
                    classes, cls_idx[sel], hashes[sel], ts[sel],
                    size_bytes, collect,
                )
                if collect:
                    for i, p in enumerate(sel.tolist()):
                        out[p] = res[i]
        self._finish_span(started, part, n)
        return out

    def _finish_span(self, started: float, part: FlowPartition, n: int) -> None:
        REGISTRY.record("dataplane.walk.sharded", perf_counter() - started)
        if _obs.REGISTRY.enabled:
            _obs.metric("dataplane_shard_count").set(part.nshards)
            w = self._walker
            if w.bulk_packets:
                _obs.metric("dataplane_shard_bulk_packets_total").inc(
                    w.bulk_packets
                )
            if w.seq_packets:
                _obs.metric("dataplane_shard_sequential_packets_total").inc(
                    w.seq_packets
                )
            w.bulk_packets = w.seq_packets = 0

    # -- process mode --------------------------------------------------
    def _ensure_workers(self, nshards: int) -> None:
        if self._workers and self._worker_shards == nshards:
            return
        self.close()
        ctx = mp_context()
        for _s in range(nshards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(self.network, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))
        self._worker_shards = nshards

    def _run_processes(
        self, part, classes, cls_idx, hashes, ts, shard_ids, size, collect
    ):
        from multiprocessing import shared_memory

        self._ensure_workers(part.nshards)
        n = len(ts)
        perm = np.argsort(shard_ids, kind="stable")
        counts = np.bincount(shard_ids, minlength=part.nshards)
        offsets = np.zeros(part.nshards + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        shm = shared_memory.SharedMemory(create=True, size=max(1, 24 * n))
        try:
            ts_v = np.ndarray(n, dtype=np.float64, buffer=shm.buf)
            h_v = np.ndarray(n, dtype=np.float64, buffer=shm.buf, offset=8 * n)
            c_v = np.ndarray(n, dtype=np.int64, buffer=shm.buf, offset=16 * n)
            ts_v[:] = ts[perm]
            h_v[:] = hashes[perm]
            c_v[:] = cls_idx[perm]
            busy = []
            for s, (proc, conn) in enumerate(self._workers):
                lo, hi = int(offsets[s]), int(offsets[s + 1])
                if hi <= lo:
                    continue
                conn.send(
                    ("column", shm.name, n, lo, hi, classes, size, collect)
                )
                busy.append((s, conn, lo, hi))
            out = [None] * n if collect else None
            merge_started = perf_counter()
            bulk = seq = 0
            for s, conn, lo, hi in busy:
                res, delta, b, q = conn.recv()
                delta.apply_to(self.network)
                bulk += b
                seq += q
                if collect and res is not None:
                    for i, p in enumerate(perm[lo:hi].tolist()):
                        out[p] = res[i]
            REGISTRY.record(
                "dataplane.shard.merge", perf_counter() - merge_started
            )
            if _obs.REGISTRY.enabled:
                _obs.metric("dataplane_shard_merge_seconds").observe(
                    perf_counter() - merge_started
                )
            self._walker.bulk_packets += bulk
            self._walker.seq_packets += seq
        finally:
            shm.close()
            shm.unlink()
        return out

    def apply(self, fn, *args, **kwargs) -> None:
        """Apply a mutation to the parent network *and* every worker replica.

        ``fn`` must be a picklable module-level callable taking the
        network as its first argument (e.g. a chaos fault).  Without
        workers this is just ``fn(self.network, ...)``; with workers it is
        the broadcast that keeps replicas converged — a mutation applied
        to the parent alone would be invisible to forked shards.
        """
        pickle.dumps(fn)  # fail fast on closures before touching workers
        fn(self.network, *args, **kwargs)
        for _proc, conn in self._workers:
            conn.send(("apply", fn, args, kwargs))
        for _proc, conn in self._workers:
            conn.recv()

    def reset_runtime_state(self) -> None:
        """Reset runtime counters everywhere (parent + worker replicas)."""
        self.apply(_reset_network)

    def flush_counters(self) -> None:
        self.network.flush_counters()

    def stats_snapshot(self):
        return self.network.stats_snapshot()

    def close(self) -> None:
        """Stop worker processes (no-op without workers)."""
        for proc, conn in self._workers:
            try:
                conn.send(("stop",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._workers = []
        self._worker_shards = 0

    def __enter__(self) -> "ShardedDataPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
