"""Packets carrying APPLE's two tag fields.

Sec. V-B: "each packet contains two tag fields.  One field is for the host
ID, which specifies the next host to process this packet.  If one packet
has traversed all the required VNF instances, this tagging field is Fin.
The other field encodes sub-class ID within a class."

Functional classification in the simulator matches on ``class_id`` and
``flow_hash`` metadata (the wildcard-rule *cost* of real classification is
accounted separately through :mod:`repro.classify`); tags behave exactly as
in the paper — sub-class IDs are set once at the ingress switch, host IDs
rewritten as the packet progresses along its chain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Host-ID tag value meaning "all required VNF instances traversed".
FIN = "FIN"

_packet_ids = itertools.count()


@dataclass
class Packet:
    """One packet in flight.

    Attributes:
        class_id: the equivalence class the flow belongs to.
        flow_hash: flow's position in [0, 1) of the class's hash domain —
            decides its sub-class under consistent hashing.
        src / dst: ingress and egress switches.
        size_bytes: packet length (loss is rate-driven, size is accounting).
        host_tag: the host-ID tag field (None = empty, FIN = done).
        subclass_tag: the sub-class-ID tag field (None until tagged).
        header: optional concrete 5-tuple values for classifier tests.
        trace: visited elements as ("switch"|"vnf"|"vswitch", name) pairs.
    """

    class_id: str
    flow_hash: float
    src: str
    dst: str
    size_bytes: int = 1500
    host_tag: Optional[str] = None
    subclass_tag: Optional[int] = None
    header: Dict[str, int] = field(default_factory=dict)
    trace: List[Tuple[str, str]] = field(default_factory=list)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if not 0.0 <= self.flow_hash < 1.0:
            raise ValueError(f"flow_hash must be in [0, 1), got {self.flow_hash}")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")

    # ------------------------------------------------------------------
    @property
    def finished_processing(self) -> bool:
        """True once the host tag is FIN (chain fully traversed)."""
        return self.host_tag == FIN

    @property
    def tagged(self) -> bool:
        """Whether the ingress switch has classified this packet yet."""
        return self.subclass_tag is not None

    def visit(self, kind: str, name: str) -> None:
        """Record a hop in the trace (switch, vswitch or vnf)."""
        self.trace.append((kind, name))

    def switches_visited(self) -> List[str]:
        """Physical switches in visit order (interference-freedom check)."""
        return [name for kind, name in self.trace if kind == "switch"]

    def vnfs_visited(self) -> List[str]:
        """VNF instance ids in visit order (policy-enforcement check)."""
        return [name for kind, name in self.trace if kind == "vnf"]
