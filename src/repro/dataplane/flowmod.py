"""OpenFlow-style flow-mod rendering of APPLE's rules.

The prototype installs rules through OpenDaylight's REST API, ultimately
as OpenFlow flow-mods on physical switches and Open vSwitches.  This
module compiles the simulator's rule structures into FlowMod records and
an ``ovs-ofctl``-style text rendering — useful for eyeballing what a real
deployment would push, and consumed by the OpenDaylight facade's rule
journal in integration tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.dataplane.switch import (
    PRIORITY_CLASSIFICATION,
    PRIORITY_HOST_MATCH,
    PRIORITY_PASS_BY,
)

if TYPE_CHECKING:  # avoid a dataplane -> core import cycle at runtime
    from repro.core.rulegen import GeneratedRules

APPLE_TABLE = 0
NEXT_TABLE = 1  # other applications' rules (routing, ACLs)


def stable_cookie(*parts) -> str:
    """Content-addressed flow-mod cookie: stable across processes and runs.

    Python's builtin ``hash()`` is salted per process, so idempotency
    cookies (the southbound channel's duplicate suppressors) hash the
    canonical ``repr`` of their parts instead.  Parts must be built from
    ints/floats/strings/tuples so ``repr`` is deterministic.
    """
    blob = repr(parts).encode("utf-8")
    return hashlib.sha1(blob).hexdigest()[:16]


@dataclass(frozen=True)
class FlowMod:
    """One OpenFlow rule: table, priority, match, actions."""

    table_id: int
    priority: int
    match: Tuple[Tuple[str, str], ...]  # (field, value) pairs
    actions: Tuple[str, ...]
    cookie: str = ""

    def render(self) -> str:
        """``ovs-ofctl add-flow``-style text."""
        match_txt = ",".join(f"{k}={v}" for k, v in self.match) or "any"
        actions_txt = ",".join(self.actions) or "drop"
        return (
            f"table={self.table_id},priority={self.priority},"
            f"{match_txt},actions={actions_txt}"
        )


def compile_switch_rules(rules: "GeneratedRules") -> Dict[str, List[FlowMod]]:
    """FlowMods per physical switch implementing the Table III layout."""
    tags = rules.tag_allocator
    out: Dict[str, List[FlowMod]] = {}

    def add(switch: str, fm: FlowMod) -> None:
        out.setdefault(switch, []).append(fm)

    for switch, rule_set in rules.switch_rule_sets.items():
        if rule_set.host_match:
            add(
                switch,
                FlowMod(
                    table_id=APPLE_TABLE,
                    priority=PRIORITY_HOST_MATCH,
                    match=(("host_id", str(tags.host_id(switch))),),
                    actions=("output:apple-host",),
                    cookie=f"{switch}/host-match",
                ),
            )
        for class_id, (lo, hi), sub_id, first_host in rule_set.classifications:
            match = (
                ("host_id", "0x0/empty"),
                ("class", class_id),
                ("hash", f"[{lo:.4f},{hi:.4f})"),
            )
            if first_host == switch:
                actions = (f"set_subclass:{sub_id}", "output:apple-host")
            else:
                actions = (
                    f"set_subclass:{sub_id}",
                    f"set_host_id:{tags.host_id(first_host)}",
                    f"goto_table:{NEXT_TABLE}",
                )
            add(
                switch,
                FlowMod(
                    table_id=APPLE_TABLE,
                    priority=PRIORITY_CLASSIFICATION,
                    match=match,
                    actions=actions,
                    cookie=f"{switch}/classify/{class_id}#{sub_id}",
                ),
            )
        add(
            switch,
            FlowMod(
                table_id=APPLE_TABLE,
                priority=PRIORITY_PASS_BY,
                match=(),
                actions=(f"goto_table:{NEXT_TABLE}",),
                cookie=f"{switch}/pass-by",
            ),
        )
    return out


def compile_vswitch_rules(rules: "GeneratedRules") -> Dict[str, List[FlowMod]]:
    """FlowMods per vSwitch: the <in_port, class, sub-class> pipeline."""
    tags = rules.tag_allocator
    out: Dict[str, List[FlowMod]] = {}
    for switch, rule_list in rules.vswitch_rules.items():
        for class_id, sub_id, rule in rule_list:
            actions = [f"output:vm:{iid}" for iid in rule.instance_ids]
            if rule.exit_host_tag == "FIN":
                actions.append("set_host_id:0")
            else:
                actions.append(
                    f"set_host_id:{tags.host_id(rule.exit_host_tag)}"
                )
            actions.append("output:uplink")
            out.setdefault(switch, []).append(
                FlowMod(
                    table_id=APPLE_TABLE,
                    priority=PRIORITY_CLASSIFICATION,
                    match=(
                        ("in_port", "uplink"),
                        ("class", class_id),
                        ("subclass", str(sub_id)),
                    ),
                    actions=tuple(actions),
                    cookie=f"ovs-{switch}/{class_id}#{sub_id}",
                )
            )
    return out


def render_all(rules: "GeneratedRules") -> str:
    """Full textual dump of every switch's and vSwitch's flow table."""
    lines: List[str] = []
    for switch, mods in sorted(compile_switch_rules(rules).items()):
        lines.append(f"# switch {switch}")
        lines.extend(fm.render() for fm in mods)
    for switch, mods in sorted(compile_vswitch_rules(rules).items()):
        lines.append(f"# vswitch ovs-{switch}")
        lines.extend(fm.render() for fm in mods)
    return "\n".join(lines)
