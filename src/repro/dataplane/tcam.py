"""TCAM tables: prioritised match/action entries with pipeline support.

Models the expensive resource the tagging scheme conserves.  An entry
matches on the two tag fields plus the (class, hash-range) classification;
actions mirror Table III: forward to the APPLE host, tag sub-class / host
IDs, or fall through to the next table where other applications' rules
(routing, ACLs) live.

Entry counts reported by :meth:`TcamTable.entry_count` use the *hardware*
cost: a classification entry whose hash range needs k prefix rules counts
as k TCAM entries (Sec. V-A's prefix method).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.classify.split import range_to_cidr_count
from repro.dataplane.packet import Packet


class ActionKind(enum.Enum):
    """Action types appearing in Table III and the vSwitch pipeline."""

    FORWARD_TO_HOST = "fwd-host"
    TAG_SUBCLASS_AND_FORWARD_TO_HOST = "tag-subclass+fwd-host"
    TAG_SUBCLASS_AND_HOST = "tag-subclass+tag-host"
    GOTO_NEXT_TABLE = "goto-next"
    DROP = "drop"


@dataclass(frozen=True)
class Action:
    """A TCAM action with its tag parameters."""

    kind: ActionKind
    subclass_id: Optional[int] = None
    next_host: Optional[str] = None  # host-ID tag value to write (may be FIN)


@dataclass
class TcamEntry:
    """One prioritised TCAM entry.

    Match dimensions (None = wildcard):
        host_tag_is: require the host-ID tag to equal this value;
            ``"EMPTY"`` matches an untagged packet.
        class_id: require the packet's class.
        hash_range: ``[lo, hi)`` sub-range of the class's hash domain (the
            sub-class wildcard match); the hardware realisation needs
            :attr:`hardware_entries` prefix rules.
    """

    priority: int
    action: Action
    host_tag_is: Optional[str] = None
    class_id: Optional[str] = None
    hash_range: Optional[Tuple[float, float]] = None
    name: str = ""

    HASH_BITS = 16  # resolution at which hash ranges map onto prefix rules

    def matches(self, packet: Packet) -> bool:
        if self.host_tag_is is not None:
            tag = packet.host_tag if packet.host_tag is not None else "EMPTY"
            if tag != self.host_tag_is:
                return False
        if self.class_id is not None and packet.class_id != self.class_id:
            return False
        if self.hash_range is not None:
            lo, hi = self.hash_range
            if not lo <= packet.flow_hash < hi:
                return False
        return True

    @property
    def hardware_entries(self) -> int:
        """TCAM slots this logical entry occupies (prefix expansion)."""
        if self.hash_range is None:
            return 1
        lo, hi = self.hash_range
        size = 1 << self.HASH_BITS
        start = int(round(lo * size))
        stop = int(round(hi * size)) - 1
        if stop < start:
            return 1
        return range_to_cidr_count(start, stop, bits=self.HASH_BITS)


class TcamTable:
    """A priority-ordered TCAM table."""

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._entries: List[TcamEntry] = []
        self.lookup_count = 0
        self.miss_count = 0

    # ------------------------------------------------------------------
    def install(self, entry: TcamEntry) -> None:
        """Insert keeping priority order (higher priority matched first)."""
        self._entries.append(entry)
        self._entries.sort(key=lambda e: -e.priority)

    def remove_where(self, predicate) -> int:
        """Remove entries satisfying ``predicate``; returns count removed."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        return before - len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def lookup(self, packet: Packet) -> Optional[TcamEntry]:
        """First (highest-priority) matching entry, or None on miss."""
        self.lookup_count += 1
        for entry in self._entries:
            if entry.matches(packet):
                return entry
        self.miss_count += 1
        return None

    # ------------------------------------------------------------------
    @property
    def logical_entries(self) -> int:
        """Number of logical rules installed."""
        return len(self._entries)

    def entry_count(self) -> int:
        """Hardware TCAM slots consumed (prefix-expanded)."""
        return sum(e.hardware_entries for e in self._entries)

    def entries(self) -> List[TcamEntry]:
        return list(self._entries)

    def __repr__(self) -> str:
        return f"TcamTable({self.name!r}, logical={self.logical_entries}, hw={self.entry_count()})"
