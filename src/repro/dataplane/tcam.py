"""TCAM tables: prioritised match/action entries with pipeline support.

Models the expensive resource the tagging scheme conserves.  An entry
matches on the two tag fields plus the (class, hash-range) classification;
actions mirror Table III: forward to the APPLE host, tag sub-class / host
IDs, or fall through to the next table where other applications' rules
(routing, ACLs) live.

Entry counts reported by :meth:`TcamTable.entry_count` use the *hardware*
cost: a classification entry whose hash range needs k prefix rules counts
as k TCAM entries (Sec. V-A's prefix method).

Lookup fast path (the OVS architecture in miniature): real Open vSwitch
puts an exact-match *flow cache* in front of its megaflow classifier so
that only the first packet of a flow pays the full wildcard-match cost.
:meth:`TcamTable.match` does the same here.  The cache key is
``(class_id, host-tag, hash bucket)`` where the bucket quantises
``flow_hash`` at :attr:`TcamEntry.HASH_BITS` resolution — the exact
resolution the hardware prefix expansion uses.  Correctness:

* the three key components are the only packet fields ``matches`` reads,
  so a cached decision is wrong only if the matched entry could differ
  *within* one hash bucket;
* because the bucket width is 2**-HASH_BITS and scaling by a power of two
  is exact in binary floating point, a hash-range boundary can split a
  bucket only when ``boundary * 2**HASH_BITS`` is not an integer.  Buckets
  containing such an interior boundary are collected per generation and
  never cached — they always take the cold scan;
* every mutation (:meth:`install`, :meth:`remove_where`, :meth:`clear`)
  bumps a generation counter; the cache and the per-class index are
  rebuilt lazily when the generation moves, so a stale entry can never be
  served.

Cold lookups use a class-id index (entries keyed by their exact
``class_id`` plus the wildcard list) so they scan only entries that could
possibly match, merged in priority order.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass
from functools import cached_property
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.classify.split import range_to_cidr_count
from repro.dataplane.packet import Packet
from repro.perf import REGISTRY


class ActionKind(enum.Enum):
    """Action types appearing in Table III and the vSwitch pipeline."""

    FORWARD_TO_HOST = "fwd-host"
    TAG_SUBCLASS_AND_FORWARD_TO_HOST = "tag-subclass+fwd-host"
    TAG_SUBCLASS_AND_HOST = "tag-subclass+tag-host"
    GOTO_NEXT_TABLE = "goto-next"
    DROP = "drop"


@dataclass(frozen=True)
class Action:
    """A TCAM action with its tag parameters."""

    kind: ActionKind
    subclass_id: Optional[int] = None
    next_host: Optional[str] = None  # host-ID tag value to write (may be FIN)


@dataclass
class TcamEntry:
    """One prioritised TCAM entry.

    Match dimensions (None = wildcard):
        host_tag_is: require the host-ID tag to equal this value;
            ``"EMPTY"`` matches an untagged packet.
        class_id: require the packet's class.
        hash_range: ``[lo, hi)`` sub-range of the class's hash domain (the
            sub-class wildcard match); the hardware realisation needs
            :attr:`hardware_entries` prefix rules.

    Match fields are treated as immutable once the entry is installed in a
    table (the flow cache and the hardware-entry count rely on it); install
    a fresh entry instead of mutating one in place.
    """

    priority: int
    action: Action
    host_tag_is: Optional[str] = None
    class_id: Optional[str] = None
    hash_range: Optional[Tuple[float, float]] = None
    name: str = ""

    HASH_BITS = 16  # resolution at which hash ranges map onto prefix rules

    def matches(self, packet: Packet) -> bool:
        if self.host_tag_is is not None:
            tag = packet.host_tag if packet.host_tag is not None else "EMPTY"
            if tag != self.host_tag_is:
                return False
        if self.class_id is not None and packet.class_id != self.class_id:
            return False
        if self.hash_range is not None:
            lo, hi = self.hash_range
            if not lo <= packet.flow_hash < hi:
                return False
        return True

    @cached_property
    def hardware_entries(self) -> int:
        """TCAM slots this logical entry occupies (prefix expansion).

        Computed once per entry: experiments read it per snapshot via
        :meth:`TcamTable.entry_count`, and the prefix expansion
        (`range_to_cidr_count`) is by far the most expensive part.
        """
        if self.hash_range is None:
            return 1
        lo, hi = self.hash_range
        size = 1 << self.HASH_BITS
        start = int(round(lo * size))
        stop = int(round(hi * size)) - 1
        if stop < start:
            return 1
        return range_to_cidr_count(start, stop, bits=self.HASH_BITS)


#: Sentinel distinguishing "cached None (miss)" from "not cached".
_NOT_CACHED = object()

#: Number of exact-match buckets the hash domain is quantised into.
_BUCKETS = 1 << TcamEntry.HASH_BITS


class TcamTable:
    """A priority-ordered TCAM table with an exact-match flow cache."""

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._entries: List[TcamEntry] = []
        #: Parallel list of ``-priority`` keys for O(log n) ordered insert.
        self._prio_keys: List[int] = []
        self.lookup_count = 0
        self.miss_count = 0
        self.cache_hits = 0
        #: Disable to force the pre-fast-path linear scan (benchmarks use
        #: this to reproduce the uncached baseline).
        self.cache_enabled = True
        self._generation = 0
        self._hw_count = 0
        # Flow cache + cold-scan index, rebuilt lazily per generation.
        self._cache: Dict[Tuple[Optional[str], str, int], Optional[TcamEntry]] = {}
        self._index_generation = -1
        self._by_class: Dict[str, List[Tuple[int, TcamEntry]]] = {}
        self._wildcard: List[Tuple[int, TcamEntry]] = []
        self._boundary_buckets: frozenset = frozenset()

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotone counter bumped by every rule mutation."""
        return self._generation

    def install(self, entry: TcamEntry) -> None:
        """Insert keeping priority order (higher priority matched first).

        Uses a bisect insert on a parallel priority-key list, so bulk rule
        installation costs O(n log n) comparisons total instead of a full
        re-sort per insert.  Equal priorities keep insertion order (the
        same tie-break the previous stable sort produced).
        """
        key = -entry.priority
        idx = bisect_right(self._prio_keys, key)
        self._prio_keys.insert(idx, key)
        self._entries.insert(idx, entry)
        self._hw_count += entry.hardware_entries
        self._generation += 1

    def remove_where(self, predicate) -> int:
        """Remove entries satisfying ``predicate``; returns count removed."""
        kept = [e for e in self._entries if not predicate(e)]
        removed = len(self._entries) - len(kept)
        if removed:
            self._entries = kept
            self._prio_keys = [-e.priority for e in kept]
            self._hw_count = sum(e.hardware_entries for e in kept)
            self._generation += 1
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self._prio_keys.clear()
        self._hw_count = 0
        self._generation += 1

    def remove_by_name(self, name: str) -> int:
        """Remove every entry called ``name``; returns count removed.

        Entry names are the flow-mod cookies of the southbound channel —
        deleting by name models an OpenFlow delete-strict keyed by cookie.
        """
        return self.remove_where(lambda e: e.name == name)

    def replace(self, entry: TcamEntry) -> None:
        """Install ``entry``, first removing any entry with the same name.

        The southbound agent's idempotent put: re-applying a retried
        flow-mod converges to exactly one installed copy.
        """
        self.remove_where(lambda e: e.name == entry.name)
        self.install(entry)

    def entry_by_name(self, name: str) -> Optional[TcamEntry]:
        """The installed entry called ``name`` (None when absent)."""
        for e in self._entries:
            if e.name == name:
                return e
        return None

    def lookup(self, packet: Packet) -> Optional[TcamEntry]:
        """First (highest-priority) matching entry, or None on miss."""
        self.lookup_count += 1
        entry = self.match(packet.class_id, packet.host_tag, packet.flow_hash)
        if entry is None:
            self.miss_count += 1
        return entry

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def match(
        self,
        class_id: Optional[str],
        host_tag: Optional[str],
        flow_hash: float,
    ) -> Optional[TcamEntry]:
        """Like :meth:`lookup` on raw fields, without the hit/miss counters.

        This is the flow-cached fast path; the batched walker calls it
        directly when resolving a bucket's pipeline once.
        """
        tag = host_tag if host_tag is not None else "EMPTY"
        if not self.cache_enabled:
            return self._scan_all(class_id, tag, flow_hash)
        if self._index_generation != self._generation:
            self._rebuild_index()
        bucket = int(flow_hash * _BUCKETS)
        key = (class_id, tag, bucket)
        hit = self._cache.get(key, _NOT_CACHED)
        if hit is not _NOT_CACHED:
            self.cache_hits += 1
            return hit
        started = perf_counter()
        entry = self._scan_indexed(class_id, tag, flow_hash)
        if bucket not in self._boundary_buckets:
            self._cache[key] = entry
        REGISTRY.record("dataplane.tcam.cold_scan", perf_counter() - started)
        return entry

    def hash_boundaries(self, class_id: Optional[str]) -> List[float]:
        """Sorted interior hash-range bounds of entries a class can match.

        The sharded data plane's partitioner cuts the hash domain [0, 1)
        at these points: within one resulting interval, every flow of the
        class matches the same entry sequence in this table, so a single
        probe resolves the whole interval's walk.  Includes wildcard
        (``class_id is None``) entries, which the class can also match.
        """
        if self._index_generation != self._generation:
            self._rebuild_index()
        bounds = set()
        for e in self._entries:
            if e.class_id is not None and e.class_id != class_id:
                continue
            if e.hash_range is not None:
                for b in e.hash_range:
                    if 0.0 < b < 1.0:
                        bounds.add(b)
        return sorted(bounds)

    def bucket_is_cacheable(self, flow_hash: float) -> bool:
        """Whether the whole hash bucket of ``flow_hash`` matches uniformly.

        False only for buckets containing an interior hash-range boundary;
        the batched walker falls back to per-packet resolution there.
        """
        if self._index_generation != self._generation:
            self._rebuild_index()
        return int(flow_hash * _BUCKETS) not in self._boundary_buckets

    @staticmethod
    def _entry_matches(
        e: TcamEntry, class_id: Optional[str], tag: str, flow_hash: float
    ) -> bool:
        if e.host_tag_is is not None and tag != e.host_tag_is:
            return False
        if e.class_id is not None and e.class_id != class_id:
            return False
        if e.hash_range is not None:
            lo, hi = e.hash_range
            if not lo <= flow_hash < hi:
                return False
        return True

    def _scan_all(
        self, class_id: Optional[str], tag: str, flow_hash: float
    ) -> Optional[TcamEntry]:
        """The pre-fast-path behaviour: linear scan over every entry."""
        for e in self._entries:
            if self._entry_matches(e, class_id, tag, flow_hash):
                return e
        return None

    def _scan_indexed(
        self, class_id: Optional[str], tag: str, flow_hash: float
    ) -> Optional[TcamEntry]:
        """Cold lookup: merge the class's entries with the wildcard list.

        Both index lists carry each entry's position in the full priority
        order, so the merge visits candidates in exactly the order the
        linear scan would.
        """
        a = self._by_class.get(class_id, []) if class_id is not None else []
        b = self._wildcard
        i = j = 0
        la, lb = len(a), len(b)
        while i < la or j < lb:
            if j >= lb or (i < la and a[i][0] < b[j][0]):
                e = a[i][1]
                i += 1
            else:
                e = b[j][1]
                j += 1
            if self._entry_matches(e, class_id, tag, flow_hash):
                return e
        return None

    def _rebuild_index(self) -> None:
        by_class: Dict[str, List[Tuple[int, TcamEntry]]] = {}
        wildcard: List[Tuple[int, TcamEntry]] = []
        boundaries = set()
        for pos, e in enumerate(self._entries):
            if e.class_id is None:
                wildcard.append((pos, e))
            else:
                by_class.setdefault(e.class_id, []).append((pos, e))
            if e.hash_range is not None:
                for bound in e.hash_range:
                    scaled = bound * _BUCKETS  # exact: power-of-two scale
                    ib = int(scaled)
                    if scaled != ib and 0 <= ib < _BUCKETS:
                        boundaries.add(ib)
        self._by_class = by_class
        self._wildcard = wildcard
        self._boundary_buckets = frozenset(boundaries)
        self._cache = {}
        self._index_generation = self._generation

    # ------------------------------------------------------------------
    @property
    def logical_entries(self) -> int:
        """Number of logical rules installed."""
        return len(self._entries)

    def entry_count(self) -> int:
        """Hardware TCAM slots consumed (maintained incrementally)."""
        return self._hw_count

    def entries(self) -> List[TcamEntry]:
        return list(self._entries)

    def __repr__(self) -> str:
        return f"TcamTable({self.name!r}, logical={self.logical_entries}, hw={self.entry_count()})"
