"""The assembled data plane: walk packets through switches, hosts and VNFs.

:class:`DataPlaneNetwork` holds one :class:`PhysicalSwitch` per topology
node and one :class:`VSwitch` per APPLE host, executes installed rules on
injected packets, and records delivery outcomes.  Crucially the walker
*always* forwards along the class's original routing path — it has no other
forwarding state — so any policy-enforcement behaviour observed emerges
purely from the tag rules, and interference freedom is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dataplane.packet import Packet
from repro.dataplane.switch import PhysicalSwitch, SwitchDecision
from repro.dataplane.vswitch import VSwitch
from repro.topology.graph import Topology


@dataclass
class DeliveryRecord:
    """Outcome of one injected packet."""

    packet: Packet
    delivered: bool
    dropped_at: Optional[str] = None  # switch of the dropping vSwitch/instance

    @property
    def policy_satisfied(self) -> bool:
        """Delivered with its host tag at FIN (chain complete)."""
        return self.delivered and self.packet.finished_processing


class DataPlaneNetwork:
    """Switches + vSwitches wired to a topology, with a packet walker.

    Args:
        topo: the network topology; a vSwitch is created for every switch
            that has an APPLE host in ``topo.hosts``.
    """

    MAX_HOPS = 1024  # loop guard; paths are far shorter

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self.switches: Dict[str, PhysicalSwitch] = {
            s: PhysicalSwitch(s, has_host=s in topo.hosts) for s in topo.switches
        }
        self.vswitches: Dict[str, VSwitch] = {
            s: VSwitch(s) for s in topo.hosts
        }
        self.class_paths: Dict[str, Tuple[str, ...]] = {}
        self.records: List[DeliveryRecord] = []

    # ------------------------------------------------------------------
    def register_class_path(self, class_id: str, path: Tuple[str, ...]) -> None:
        """Declare the routing path of a class (set by other applications)."""
        if len(path) < 1:
            raise ValueError("path must contain at least one switch")
        for s in path:
            if s not in self.switches:
                raise KeyError(f"path references unknown switch {s!r}")
        self.class_paths[class_id] = tuple(path)

    def vswitch_at(self, switch: str) -> VSwitch:
        try:
            return self.vswitches[switch]
        except KeyError:
            raise KeyError(f"no APPLE host/vSwitch at switch {switch!r}") from None

    # ------------------------------------------------------------------
    def inject(self, packet: Packet, now: float = 0.0) -> DeliveryRecord:
        """Walk a packet from its ingress to its egress switch.

        The walk follows the registered class path hop by hop.  At each
        switch the Table III pipeline runs; a TO_HOST decision hands the
        packet to the local vSwitch (which may drop it on overload), after
        which forwarding resumes along the path.
        """
        path = self.class_paths.get(packet.class_id)
        if path is None:
            raise KeyError(f"class {packet.class_id!r} has no registered path")
        if path[0] != packet.src or path[-1] != packet.dst:
            raise ValueError(
                f"packet {packet.packet_id} src/dst disagree with class path"
            )

        hops = 0
        for i, sw_name in enumerate(path):
            if hops > self.MAX_HOPS:
                raise RuntimeError("hop limit exceeded (loop?)")
            hops += 1
            switch = self.switches[sw_name]
            decision = switch.process(packet)
            if decision is SwitchDecision.TO_HOST:
                vsw = self.vswitch_at(sw_name)
                out = vsw.process(packet, now)
                if out is None:
                    record = DeliveryRecord(packet, delivered=False, dropped_at=sw_name)
                    self.records.append(record)
                    return record
                # Packet re-enters the switch from the host; if it is now
                # tagged for this same switch again that is a rule bug.
                if packet.host_tag == sw_name:
                    raise RuntimeError(
                        f"packet re-tagged for the host it just left ({sw_name})"
                    )
            elif decision is SwitchDecision.DROP:
                record = DeliveryRecord(packet, delivered=False, dropped_at=sw_name)
                self.records.append(record)
                return record
            # FORWARD: continue to the next switch on the path.

        record = DeliveryRecord(packet, delivered=True)
        self.records.append(record)
        return record

    def inject_from_host(self, packet: Packet, now: float = 0.0) -> DeliveryRecord:
        """Walk a packet that originates at a production VM in an APPLE host.

        Fig. 3's third scenario: the packet enters its source switch's
        vSwitch untagged (from a production-VM port), is classified and
        tagged there, then follows the normal walk along its class path.
        """
        path = self.class_paths.get(packet.class_id)
        if path is None:
            raise KeyError(f"class {packet.class_id!r} has no registered path")
        vsw = self.vswitch_at(packet.src)
        out = vsw.process_origin(packet, now)
        if out is None:
            record = DeliveryRecord(packet, delivered=False, dropped_at=packet.src)
            self.records.append(record)
            return record
        return self.inject(packet, now=now)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def tcam_usage_by_switch(self) -> Dict[str, int]:
        """Hardware TCAM slots consumed by APPLE rules, per switch."""
        return {s: sw.tcam_usage() for s, sw in self.switches.items()}

    def total_tcam_usage(self) -> int:
        return sum(self.tcam_usage_by_switch().values())

    def delivery_stats(self) -> Tuple[int, int, int]:
        """(delivered, dropped, policy_violations) over recorded packets."""
        delivered = sum(1 for r in self.records if r.delivered)
        dropped = len(self.records) - delivered
        violations = sum(
            1 for r in self.records if r.delivered and not r.policy_satisfied
        )
        return delivered, dropped, violations

    def reset_records(self) -> None:
        self.records.clear()
